// Salesjoin: a SUM aggregate with a selection predicate over two retail
// streams, the query class of the paper's Section 2.1. Stream F carries
// loyalty-program purchase events (join key: product id); stream G
// carries per-sale revenue records (join key: product id, measure: sale
// amount). The query is
//
//	SELECT SUM(G.amount) FROM F JOIN G ON F.product = G.product
//	WHERE F.product < 4096        -- "grocery" product range
//
// which the stream engine answers by dropping non-grocery elements before
// they reach the synopses (predicate pushdown) and sketching G with the
// sale amount as the update weight (SUM-as-weighted-COUNT).
//
// Run with: go run ./examples/salesjoin
package main

import (
	"fmt"
	"log"

	"skimsketch/internal/core"
	"skimsketch/internal/query"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

const (
	domain     = 1 << 14 // product-id space
	groceryMax = 4096    // predicate: product < groceryMax
	nPurchases = 150000
	nSales     = 150000
)

func main() {
	est, err := query.NewSumEstimator(domain, core.Config{Tables: 7, Buckets: 1024, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	grocery := func(v uint64) bool { return v < groceryMax }

	// Exact answers kept only for grading.
	var facts, measures []stream.Update

	// Purchases: Zipf-distributed product popularity.
	pg, err := workload.NewZipf(domain, 1.1, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nPurchases; i++ {
		p := pg.Next()
		if !grocery(p) { // predicate pushdown: drop before sketching
			continue
		}
		est.UpdateFact(p)
		facts = append(facts, stream.Insert(p))
	}

	// Sales: product plus revenue measure; a few sales are later voided
	// (deletes with negated measure).
	sg, err := workload.NewZipf(domain, 1.1, 6)
	if err != nil {
		log.Fatal(err)
	}
	amount := workload.NewUniform(100, 7)
	var voided int
	for i := 0; i < nSales; i++ {
		p := sg.Next()
		if !grocery(p) {
			continue
		}
		a := int64(amount.Next()) + 1
		est.UpdateMeasure(p, a)
		measures = append(measures, stream.Update{Value: p, Weight: a})
		if i%50 == 0 { // ~2% of sales are voided afterwards
			est.UpdateMeasure(p, -a)
			measures = append(measures, stream.Update{Value: p, Weight: -a})
			voided++
		}
	}

	exact := query.ExactSum(facts, measures)
	res, err := est.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: SUM(G.amount) over F ⋈ G, product < %d, %d voided sales retracted\n",
		groceryMax, voided)
	fmt.Printf("exact SUM        = %d\n", exact)
	fmt.Printf("sketch estimate  = %d\n", res.Total)
	fmt.Printf("symmetric error  = %.4f\n", stats.SymmetricError(float64(res.Total), float64(exact)))
	fmt.Printf("dense values     = %d (F) / %d (G)\n", res.DenseCountF, res.DenseCountG)
}
