// Netmon: the paper's motivating scenario — continuous monitoring of IP
// traffic at two network elements. Each element exports a stream of flow
// records keyed by (hashed) source address; flow-start events are inserts
// and flow-end events are deletes, so the synopsis tracks *live* flows.
// The join size COUNT(R1 ⋈ R2) counts pairs of live flows sharing a
// source — a building block for correlating traffic across the network
// (e.g. DDoS sources active at both ingress points).
//
// The example replays a day of churn in epochs and prints the estimated
// versus exact live-flow correlation at each checkpoint, demonstrating
// that the sketch survives general insert/delete update streams.
//
// Run with: go run ./examples/netmon
package main

import (
	"fmt"
	"log"
	"math/rand"

	"skimsketch"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

const (
	domain  = 1 << 16 // hashed source-address space
	epochs  = 6
	arrive1 = 30000 // flow starts per epoch at element 1
	arrive2 = 30000 // flow starts per epoch at element 2
)

func main() {
	pair, err := skimsketch.NewJoinPair(domain, skimsketch.Config{Tables: 7, Buckets: 2048, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Exact live-flow tables kept only for grading the estimates.
	f1, f2 := stream.NewFreqVector(), stream.NewFreqVector()

	// Live flows eligible to end, per element.
	var live1, live2 []uint64
	rng := rand.New(rand.NewSource(99))

	// A handful of "chatty" sources produce a large share of flows at
	// both elements — the skewed regime skimmed sketches are built for.
	chatty := make([]uint64, 20)
	for i := range chatty {
		chatty[i] = uint64(rng.Int63n(domain))
	}
	source := func() uint64 {
		if rng.Float64() < 0.4 {
			return chatty[rng.Intn(len(chatty))]
		}
		return uint64(rng.Int63n(domain))
	}

	fmt.Println("epoch  live1   live2   exact-corr  estimate    sym-error")
	for e := 1; e <= epochs; e++ {
		// Flow starts.
		for i := 0; i < arrive1; i++ {
			s := source()
			pair.UpdateF(s, 1)
			f1.Update(s, 1)
			live1 = append(live1, s)
		}
		for i := 0; i < arrive2; i++ {
			s := source()
			pair.UpdateG(s, 1)
			f2.Update(s, 1)
			live2 = append(live2, s)
		}
		// Flow ends: roughly half of the live flows terminate.
		live1 = expire(live1, rng, func(s uint64) {
			pair.UpdateF(s, -1)
			f1.Update(s, -1)
		})
		live2 = expire(live2, rng, func(s uint64) {
			pair.UpdateG(s, -1)
			f2.Update(s, -1)
		})

		est, err := pair.Estimate()
		if err != nil {
			log.Fatal(err)
		}
		exact := f1.InnerProduct(f2)
		fmt.Printf("%5d  %6d  %6d  %10d  %8d  %10.4f\n",
			e, len(live1), len(live2), exact, est.Total,
			stats.SymmetricError(float64(est.Total), float64(exact)))
	}
	fmt.Printf("\nsynopsis: %d words total for both elements (vs %d live-flow records)\n",
		pair.Words(), len(live1)+len(live2))
}

// expire terminates ~50% of live flows, invoking onEnd for each, and
// returns the surviving flows.
func expire(live []uint64, rng *rand.Rand, onEnd func(uint64)) []uint64 {
	kept := live[:0]
	for _, s := range live {
		if rng.Float64() < 0.5 {
			onEnd(s)
		} else {
			kept = append(kept, s)
		}
	}
	return kept
}
