// Quickstart: estimate the join size of two Zipfian data streams with
// skimmed sketches and compare against the exact answer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skimsketch"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func main() {
	const (
		domain    = 1 << 14 // value domain [0, 16384)
		streamLen = 200000  // elements per stream
	)

	// A JoinPair holds one sketch per stream; both share hash functions.
	// 7 tables × 1024 buckets = 7168 words (~57 KB) per stream.
	pair, err := skimsketch.NewJoinPair(domain, skimsketch.Config{
		Tables:  7,
		Buckets: 1024,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream F: Zipf(1.1). Stream G: the same skew, right-shifted by 100,
	// so the two streams overlap on a slice of the domain.
	zf, err := workload.NewZipf(domain, 1.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	zg, err := workload.NewZipf(domain, 1.1, 2)
	if err != nil {
		log.Fatal(err)
	}
	shifted := workload.NewShifted(zg, 100)

	// We keep exact frequency vectors alongside purely to grade the
	// estimate; a real deployment would keep only the sketches.
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for i := 0; i < streamLen; i++ {
		v := zf.Next()
		pair.UpdateF(v, 1)
		fv.Update(v, 1)

		w := shifted.Next()
		pair.UpdateG(w, 1)
		gv.Update(w, 1)
	}

	est, err := pair.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	exact := fv.InnerProduct(gv)

	fmt.Printf("exact COUNT(F ⋈ G)        = %d\n", exact)
	fmt.Printf("skimmed-sketch estimate   = %d\n", est.Total)
	fmt.Printf("symmetric error           = %.4f\n", stats.SymmetricError(float64(est.Total), float64(exact)))
	fmt.Printf("synopsis size             = %d words total (both streams)\n", pair.Words())
	fmt.Printf("dense values skimmed      = %d from F, %d from G (thresholds %d / %d)\n",
		est.DenseCountF, est.DenseCountG, est.ThresholdF, est.ThresholdG)
	fmt.Printf("decomposition             = dd %d + ds %d + sd %d + ss %d\n",
		est.DenseDense, est.DenseSparse, est.SparseDense, est.SparseSparse)
}
