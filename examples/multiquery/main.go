// Multiquery: the stream query-processing engine of the paper's Figure 1
// serving several continuous queries at once, with synopsis sharing.
// Three streams (two ad-impression feeds and a click feed) support four
// registered queries; sides that agree on stream, predicate, window and
// sketch configuration share one synopsis, so memory and per-element
// work grow with distinct synopses, not with queries.
//
// Run with: go run ./examples/multiquery
package main

import (
	"fmt"
	"log"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
	"skimsketch/internal/workload"
)

const domain = 1 << 14 // user-id space

func main() {
	eng, err := engine.New(engine.Options{
		SketchConfig: core.Config{Tables: 7, Buckets: 1024, Seed: 17},
	})
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(eng.DeclareStream("impressionsA", domain))
	must(eng.DeclareStream("impressionsB", domain))
	must(eng.DeclareStream("clicks", domain))
	// "premium" users live in the low id range in this toy schema.
	must(eng.RegisterPredicate("premium", func(v uint64, _ int64) bool { return v < 2048 }))

	// Four continuous queries over three streams.
	must(eng.RegisterQuery(engine.QuerySpec{Name: "overlapAB", Agg: engine.Count,
		Left:  engine.Side{Stream: "impressionsA"},
		Right: engine.Side{Stream: "impressionsB"}}))
	must(eng.RegisterQuery(engine.QuerySpec{Name: "clickthroughA", Agg: engine.Count,
		Left:  engine.Side{Stream: "impressionsA"},
		Right: engine.Side{Stream: "clicks"}}))
	must(eng.RegisterQuery(engine.QuerySpec{Name: "clickthroughB", Agg: engine.Count,
		Left:  engine.Side{Stream: "impressionsB"},
		Right: engine.Side{Stream: "clicks"}}))
	must(eng.RegisterQuery(engine.QuerySpec{Name: "premiumClicksA", Agg: engine.Count,
		Left:  engine.Side{Stream: "impressionsA", Predicate: "premium"},
		Right: engine.Side{Stream: "clicks", Predicate: "premium"}}))

	// Feed the streams: both impression feeds share a hot user set; the
	// click feed follows feed A more closely than feed B.
	hot := []uint64{3, 77, 1200, 5000, 9001}
	ga := workload.NewMixture(workload.NewUniform(domain, 1), hot, 0.3, 2)
	gb := workload.NewMixture(workload.NewUniform(domain, 3), hot, 0.2, 4)
	gc := workload.NewMixture(workload.NewUniform(domain, 5), hot, 0.4, 6)
	for i := 0; i < 100000; i++ {
		must(eng.Update("impressionsA", ga.Next(), 1))
		must(eng.Update("impressionsB", gb.Next(), 1))
		if i%3 == 0 { // clicks are rarer
			must(eng.Update("clicks", gc.Next(), 1))
		}
	}

	fmt.Println("query            estimate")
	for _, q := range eng.Queries() {
		ans, err := eng.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s  %10d\n", q, ans.Estimate)
	}

	st := eng.Stats()
	fmt.Printf("\n%d queries (%d query sides) served by %d shared synopses, %d words total\n",
		st.Queries, st.SynopsisRefs, st.Synopses, st.TotalWords)
	fmt.Printf("without sharing this would take %d synopses\n", st.SynopsisRefs)
}
