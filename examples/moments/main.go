// Moments: self-join size (second frequency moment F2) tracking and
// heavy-hitter extraction from a single stream — the two COUNTSKETCH-era
// primitives the skimmed-sketch algorithm is assembled from. F2 is the
// paper's COUNT(F ⋈ F); the heavy hitters are exactly the dense values
// SKIMDENSE extracts.
//
// Run with: go run ./examples/moments
package main

import (
	"fmt"
	"log"

	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/topk"
	"skimsketch/internal/workload"
)

func main() {
	const (
		domain    = 1 << 12
		streamLen = 300000
		k         = 10
	)
	cfg := core.Config{Tables: 7, Buckets: 512, Seed: 3}

	// One pass, three consumers: exact frequencies (for grading), a hash
	// sketch for F2, and an online top-k tracker.
	exact := stream.NewFreqVector()
	sketch := core.MustNewHashSketch(cfg)
	tracker, err := topk.New(k, cfg)
	if err != nil {
		log.Fatal(err)
	}

	gen, err := workload.NewZipf(domain, 1.2, 17)
	if err != nil {
		log.Fatal(err)
	}
	stream.Apply(workload.MakeStream(gen, streamLen), exact, sketch, tracker)

	estF2 := sketch.SelfJoinEstimate()
	trueF2 := exact.SelfJoinSize()
	fmt.Printf("self-join size (F2): exact %d, estimate %d, sym-error %.4f\n",
		trueF2, estF2, stats.SymmetricError(float64(estF2), float64(trueF2)))
	fmt.Printf("synopsis: %d words (stream was %d elements over domain %d)\n\n",
		sketch.Words(), streamLen, domain)

	fmt.Printf("top-%d heavy hitters (COUNTSKETCH tracker):\n", k)
	fmt.Println("rank  value  est-freq  true-freq")
	for i, e := range tracker.Top() {
		fmt.Printf("%4d  %5d  %8d  %9d\n", i+1, e.Value, e.Estimate, exact.Get(e.Value))
	}

	// The same dense values drive SKIMDENSE: extract them and show how
	// much of the stream's "energy" (F2) they carry.
	clone := sketch.Clone()
	dense, err := clone.SkimDense(domain, sketch.DefaultSkimThreshold())
	if err != nil {
		log.Fatal(err)
	}
	var denseF2 int64
	for _, w := range dense {
		denseF2 += w * w
	}
	fmt.Printf("\nSKIMDENSE at threshold %d extracted %d values carrying ~%.0f%% of F2;\n",
		sketch.DefaultSkimThreshold(), len(dense), 100*float64(denseF2)/float64(trueF2))
	fmt.Printf("residual sketch self-join estimate: %d (was %d before skimming)\n",
		clone.SelfJoinEstimate(), estF2)
}
