// Windowed: sliding-window join monitoring. A landmark (whole-history)
// sketch answers "how correlated have these streams ever been", while a
// windowed sketch answers "how correlated are they right now" — the
// query an operations dashboard actually wants when workloads drift.
//
// The scenario: two services emit request streams keyed by customer id.
// For the first half of the run they serve the same customer population
// (high join size); then service B is migrated to a disjoint population.
// The windowed estimate collapses within one window of the migration
// while the landmark estimate barely moves.
//
// Run with: go run ./examples/windowed
package main

import (
	"fmt"
	"log"

	"skimsketch/internal/core"
	"skimsketch/internal/window"
	"skimsketch/internal/workload"
)

const (
	domain    = 1 << 14
	windowLen = 40000
	buckets   = 4 // window granularity: expiry in steps of windowLen/4
	epochLen  = 20000
	epochs    = 8
)

func main() {
	cfg := core.Config{Tables: 7, Buckets: 1024, Seed: 5}
	landA := core.MustNewHashSketch(cfg)
	landB := core.MustNewHashSketch(cfg)
	winA := window.MustNew(windowLen, buckets, cfg)
	winB := window.MustNew(windowLen, buckets, cfg)

	fmt.Printf("window = %d elements in %d buckets; migration after epoch %d\n\n",
		windowLen, buckets, epochs/2)
	fmt.Println("epoch  phase      landmark-est  windowed-est")

	for e := 1; e <= epochs; e++ {
		phase := "shared"
		// Service A always serves the base population.
		ga, err := workload.NewZipf(domain/2, 1.1, int64(e))
		if err != nil {
			log.Fatal(err)
		}
		// Service B serves the same population, then migrates.
		gb, err := workload.NewZipf(domain/2, 1.1, int64(e)+100)
		if err != nil {
			log.Fatal(err)
		}
		var shift uint64
		if e > epochs/2 {
			phase = "migrated"
			shift = domain / 2 // disjoint half of the id space
		}
		for i := 0; i < epochLen; i++ {
			a := ga.Next()
			b := gb.Next() + shift
			landA.Update(a, 1)
			landB.Update(b, 1)
			winA.Update(a, 1)
			winB.Update(b, 1)
		}

		land, err := core.EstimateJoin(landA, landB, domain, nil)
		if err != nil {
			log.Fatal(err)
		}
		win, err := window.EstimateJoin(winA, winB, domain)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-9s  %12d  %12d\n", e, phase, land.Total, win.Total)
	}

	fmt.Printf("\nwindowed synopsis: %d words per stream (%d buckets x %d words)\n",
		winA.Words(), buckets, cfg.Tables*cfg.Buckets)
	fmt.Println("after migration the windowed estimate decays to ~0 as shared-era")
	fmt.Println("buckets expire, while the landmark estimate keeps averaging history.")
}
