#!/usr/bin/env bash
# Bench smoke test (docs/OPERATIONS.md "Benchmarking & autotuning"):
#
#   1. boot sketchd with the concurrent ingest pipeline
#   2. run loadgen against it for a few seconds with a fixed seed,
#      declaring the streams and driving a mixed ingest + query load
#   3. assert the emitted BENCH_ingest.json / BENCH_query.json pass
#      loadgen's own -validate gate (schema-valid, nonzero throughput)
#
# This is a smoke test, not a benchmark: CI machines are noisy, so only
# the report plumbing is gated, never the numbers. The BENCH files are
# left in $OUT_DIR (default: a temp dir; CI uploads them as artifacts).
#
# Run from the repository root: ./scripts/bench_smoke.sh [out-dir]
set -euo pipefail

ADDR="127.0.0.1:18437"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
OUT_DIR="${1:-$WORKDIR/bench}"
PID=""

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

mkdir -p "$OUT_DIR"

echo "== build"
go build -o "$WORKDIR/sketchd" ./cmd/sketchd
go build -o "$WORKDIR/loadgen" ./cmd/loadgen

echo "== boot sketchd"
"$WORKDIR/sketchd" -addr "$ADDR" -tables 5 -buckets 512 \
    -ingest.workers 2 -ingest.batch 128 -ingest.queue 32 &
PID=$!

echo "== loadgen (fixed seed, ~5s)"
"$WORKDIR/loadgen" -target "$BASE" -declare -wait 10s \
    -seed 42 -domain 4096 -shape zipf:1.0 \
    -duration 5s -rate 20000 \
    -ingest.workers 2 -ingest.batch 128 -ingest.queue 32 \
    -query.workers 1 -query.name q \
    -out "$OUT_DIR" || die "loadgen run failed"

echo "== validate BENCH reports"
"$WORKDIR/loadgen" -validate "$OUT_DIR/BENCH_ingest.json,$OUT_DIR/BENCH_query.json" \
    || die "BENCH validation failed"

kill -TERM "$PID"
wait "$PID" || die "sketchd did not exit cleanly"
PID=""

echo "PASS: bench smoke (reports in $OUT_DIR)"
