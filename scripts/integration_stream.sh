#!/usr/bin/env bash
# Integration test for SKSP binary streaming ingest (docs/FORMATS.md
# "SKSP", docs/OPERATIONS.md "Streaming ingest"):
#
#   1. boot sketchd with BOTH listeners: HTTP (-addr) and SKSP
#      (-listen.stream), sharing one engine and one dedupe window
#   2. drive the SAME seeded workload twice with loadgen — once over
#      JSON HTTP, once over -proto=skimp — and require both runs to
#      finish with zero permanent errors and a schema-valid
#      BENCH_ingest.json whose per-tenant client/server counters
#      reconcile EXACTLY (loadgen -validate)
#   3. reconcile the /stats "stream" section: the listener's updates
#      counter must equal exactly the updates the skimp run acknowledged
#   4. kill-mid-run replay: a raw client sends a frame, the server
#      applies it but the connection dies before the ACK arrives; the
#      reconnect replays the same (clientID, seq) and must get a
#      duplicate ACK with NOTHING applied twice (exactly-once). This is
#      exercised in-process by `go test -run TestStreamReplayDedupe`
#      against the same listener code, then re-checked here end to end
#      by asserting the live server's duplicates counter moves on a
#      scripted replay.
#
# Run from the repository root: ./scripts/integration_stream.sh
set -euo pipefail

ADDR="127.0.0.1:18463"
STREAM_ADDR="127.0.0.1:18464"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
PID=""

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

wait_ready() {
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/stats" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    die "sketchd did not become ready on $ADDR"
}

# field NUM_JSON key -> integer value of "key":N (first match)
field() {
    local v
    v="$(sed -n 's/.*"'"$2"'":\(-\{0,1\}[0-9]\{1,\}\).*/\1/p' <<<"$1" | head -n1)"
    [[ -n "$v" ]] || die "field $2 missing in: $1"
    printf '%s' "$v"
}

echo "== build"
go build -o "$WORKDIR/sketchd" ./cmd/sketchd
go build -o "$WORKDIR/loadgen" ./cmd/loadgen

echo "== in-process kill/replay exactly-once checks (same listener code)"
go test -run 'TestStreamReplayDedupe|TestStreamDrainKeepsAckedFrames|TestRetryDoubleApplyThroughProxy' \
    -count=1 ./cmd/sketchd || die "stream replay/drain unit gates failed"

echo "== boot sketchd with HTTP + SKSP listeners"
"$WORKDIR/sketchd" -addr "$ADDR" -listen.stream "$STREAM_ADDR" \
    -tables 5 -buckets 512 \
    -ingest.workers 2 -ingest.batch 64 -ingest.queue 32 &
PID=$!
wait_ready

UPDATES=20000

echo "== run 1: JSON HTTP baseline ($UPDATES updates, fixed seed)"
mkdir -p "$WORKDIR/json" "$WORKDIR/skimp"
"$WORKDIR/loadgen" -target "$BASE" -declare -wait 10s \
    -seed 42 -domain 4096 -shape zipf:1.0 \
    -updates "$UPDATES" -tenants 2 \
    -ingest.workers 3 -ingest.batch 200 -ingest.queue 128 \
    -out "$WORKDIR/json" | tee "$WORKDIR/json.log" || die "json run failed"
"$WORKDIR/loadgen" -validate "$WORKDIR/json/BENCH_ingest.json" \
    || die "json BENCH validation failed"

ST0="$(curl -fsS "$BASE/stats")"
SKSP_BEFORE="$(field "$(grep -o '"stream":{[^}]*}' <<<"$ST0")" updates)"
[[ "$SKSP_BEFORE" -eq 0 ]] || die "stream listener counted $SKSP_BEFORE updates before any skimp traffic"

echo "== run 2: SKSP binary protocol (same workload, -proto=skimp)"
"$WORKDIR/loadgen" -target "$BASE" -wait 10s \
    -proto skimp -stream.addr "$STREAM_ADDR" \
    -seed 42 -domain 4096 -shape zipf:1.0 \
    -updates "$UPDATES" -tenants 2 \
    -ingest.workers 3 -ingest.batch 200 -ingest.queue 128 \
    -out "$WORKDIR/skimp" | tee "$WORKDIR/skimp.log" || die "skimp run failed"
"$WORKDIR/loadgen" -validate "$WORKDIR/skimp/BENCH_ingest.json" \
    || die "skimp BENCH validation failed (per-tenant reconciliation over SKSP)"
grep -q '"proto": *"skimp"' "$WORKDIR/skimp/BENCH_ingest.json" \
    || die "skimp BENCH report does not echo its protocol"

echo "== /stats stream section reconciles with the skimp run exactly"
ST1="$(curl -fsS "$BASE/stats")"
SECTION="$(grep -o '"stream":{[^}]*}' <<<"$ST1")" || die "no stream section in /stats"
SKSP_UPDATES="$(field "$SECTION" updates)"
# Acknowledged updates from the skimp run's own report (client side).
ACKED="$(sed -n 's/.*"updates": *\([0-9]\{1,\}\).*/\1/p' "$WORKDIR/skimp/BENCH_ingest.json" | head -n1)"
[[ -n "$ACKED" ]] || die "no updates field in skimp BENCH report"
[[ "$SKSP_UPDATES" -eq "$ACKED" ]] \
    || die "listener counted $SKSP_UPDATES updates, skimp client was ACKed $ACKED"
[[ "$(field "$SECTION" errors)" -eq 0 ]] || die "stream listener recorded protocol errors"

echo "== live replay: a re-sent (clientID, seq) is answered as duplicate"
DUP_BEFORE="$(field "$SECTION" duplicates)"
# streamprobe sends one frame, waits for the ACK, then reconnects and
# replays the SAME frame — the reconnect models a client that never saw
# the first ACK. Exactly-once means: second ACK is a duplicate, engine
# applies nothing twice.
go run ./cmd/streamprobe -addr "$STREAM_ADDR" -client it-probe -seq 7 -replay \
    || die "streamprobe replay failed"
ST2="$(curl -fsS "$BASE/stats")"
SECTION2="$(grep -o '"stream":{[^}]*}' <<<"$ST2")"
DUP_AFTER="$(field "$SECTION2" duplicates)"
[[ "$DUP_AFTER" -gt "$DUP_BEFORE" ]] \
    || die "replayed frame was not deduplicated (duplicates $DUP_BEFORE -> $DUP_AFTER)"
# The probe's 2 updates must appear exactly once in the listener total.
PROBE_UPDATES=$(( $(field "$SECTION2" updates) - SKSP_UPDATES ))
[[ "$PROBE_UPDATES" -eq 2 ]] \
    || die "probe applied $PROBE_UPDATES updates, want exactly 2 (replay double-applied or lost)"

echo "== graceful drain with live SKSP connections"
kill -TERM "$PID"
wait "$PID" || die "sketchd did not exit cleanly with a stream listener up"
PID=""

echo "PASS: SKSP ingest, exact reconciliation, and exactly-once replay verified"
