#!/usr/bin/env bash
# Integration test for sketchd's crash-safe lifecycle (docs/OPERATIONS.md):
#
#   1. boot sketchd with -checkpoint.dir and the concurrent ingest pipeline
#   2. declare streams + a query, ingest a batch, read /answer
#   3. kill -TERM during active ingestion -> the process must exit 0
#      after writing a final checkpoint
#   4. restart sketchd on the same checkpoint dir -> /answer must be
#      byte-identical to the pre-kill answer (sketch linearity)
#
# The mid-kill traffic targets a stream no query references, so it keeps
# the ingest pipeline active without (legitimately) moving the answer.
#
# Run from the repository root: ./scripts/integration_checkpoint.sh
set -euo pipefail

ADDR="127.0.0.1:18431"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
CKPT="$WORKDIR/ckpt"
BIN="$WORKDIR/sketchd"
PID=""

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

wait_ready() {
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/stats" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    die "sketchd did not become ready on $ADDR"
}

start_sketchd() {
    "$BIN" -addr "$ADDR" -tables 5 -buckets 512 \
        -ingest.workers 2 -ingest.batch 32 \
        -checkpoint.dir "$CKPT" -checkpoint.interval 1s &
    PID=$!
    wait_ready
}

stop_sketchd() { # graceful TERM; asserts exit code 0
    kill -TERM "$PID"
    local rc=0
    wait "$PID" || rc=$?
    PID=""
    [[ "$rc" -eq 0 ]] || die "sketchd exited $rc on SIGTERM, want 0"
}

post() { # path json
    curl -fsS -X POST -d "$2" "$BASE$1" >/dev/null || die "POST $1 failed"
}

make_batch() { # count -> JSON array of updates on stdout
    local n=$1 sep=""
    printf '['
    for ((i = 0; i < n; i++)); do
        printf '%s{"stream":"F","value":%d},{"stream":"G","value":%d}' \
            "$sep" $((i % 700)) $(((i * 13) % 1000))
        sep=","
    done
    printf ']'
}

echo "== build"
go build -o "$BIN" ./cmd/sketchd

echo "== first boot (fresh checkpoint dir)"
start_sketchd

post /streams '{"name":"F","domain":1000}'
post /streams '{"name":"G","domain":1000}'
post /streams '{"name":"side","domain":1000}' # ingested during the kill; no query reads it
post /predicates '{"name":"low","min":0,"max":499}'
post /queries '{"name":"q","agg":"COUNT","left":{"stream":"F","predicate":"low"},"right":{"stream":"G"}}'

echo "== ingest"
make_batch 400 | curl -fsS -X POST --data-binary @- "$BASE/update" >/dev/null || die "batch update failed"

ANSWER_BEFORE="$(curl -fsS "$BASE/answer?query=q")" || die "answer failed"
echo "   answer before kill: $ANSWER_BEFORE"

echo "== SIGTERM during active ingestion"
# Keep updates flowing into the unqueried stream while the TERM lands:
# the drain path must fold every accepted update and still exit 0.
# Errors are expected once the listener closes — the pusher just stops.
( for _ in $(seq 1 50); do
      curl -s -X POST -d '{"stream":"side","value":7}' "$BASE/update" >/dev/null 2>&1 || break
  done ) &
PUSHER=$!
sleep 0.05
stop_sketchd
wait "$PUSHER" 2>/dev/null || true
[[ -f "$CKPT/current.ckpt" ]] || die "no final checkpoint written"
echo "   clean exit 0, checkpoint present"

echo "== restart from checkpoint"
start_sketchd
ANSWER_AFTER="$(curl -fsS "$BASE/answer?query=q")" || die "recovered answer failed"
echo "   answer after restart: $ANSWER_AFTER"
[[ "$ANSWER_BEFORE" == "$ANSWER_AFTER" ]] \
    || die "recovered answer differs: before=$ANSWER_BEFORE after=$ANSWER_AFTER"

# The restored predicate definition must still be live: updates through
# it are accepted and the restored server keeps checkpointing.
post /update '{"stream":"F","value":3}'
curl -fsS -X POST "$BASE/flush" >/dev/null || die "flush failed"
stop_sketchd

# A second restart must also be a fixed point (current/previous rotation).
start_sketchd
ANSWER_FIXED="$(curl -fsS "$BASE/answer?query=q")" || die "third answer failed"
stop_sketchd
[[ -f "$CKPT/previous.ckpt" ]] || die "checkpoint rotation never produced a previous slot"

echo "PASS: graceful shutdown + crash-safe recovery verified"
echo "      (answer before kill == answer after restart: $ANSWER_AFTER)"
