#!/usr/bin/env bash
# Integration test for cluster mode (docs/OPERATIONS.md "Cluster mode"):
#
#   1. boot 3 shard sketchds and 1 merger over a static JSON ring,
#      plus a single-node reference sketchd with the same sketch config
#   2. register the same schema through the merger (broadcast) and on
#      the reference node; ingest an identical seeded shape into both
#   3. the merger's global /answer must be BIT-IDENTICAL to the
#      single-node answer — sketch linearity as a multi-process system
#   4. SIGKILL one shard -> /answer must still be 200, reporting
#      "answered":2,"of":3 and degraded confidence (never an error)
#   5. with every shard killed -> /answer is 503 with Retry-After
#
# Run from the repository root: ./scripts/integration_cluster.sh
set -euo pipefail

PORT_S0=18461
PORT_S1=18462
PORT_S2=18463
PORT_REF=18464
PORT_M=18465
MBASE="http://127.0.0.1:$PORT_M"
RBASE="http://127.0.0.1:$PORT_REF"
WORKDIR="$(mktemp -d)"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

wait_ready() { # base-url
    for _ in $(seq 1 100); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    die "server did not become ready on $1"
}

field() { # json key -> integer value of "key":N (first match)
    local v
    v="$(sed -n 's/.*"'"$2"'":\(-\{0,1\}[0-9]\{1,\}\).*/\1/p' <<<"$1" | head -n1)"
    [[ -n "$v" ]] || die "field $2 missing in: $1"
    printf '%s' "$v"
}

post() { # base path json
    curl -fsS -X POST -d "$3" "$1$2" >/dev/null || die "POST $1$2 failed"
}

# The seeded shape: deterministic, mildly skewed, fixed weights — the
# same batch goes to the merger and the reference node byte-for-byte.
make_batch() {
    local sep="" i
    printf '['
    for ((i = 0; i < 500; i++)); do
        printf '%s{"stream":"F","value":%d},{"stream":"G","value":%d,"weight":2}' \
            "$sep" $(((i * i) % 811)) $(((i * 13 + 5) % 1024))
        sep=","
    done
    printf ']'
}

echo "== build"
go build -o "$WORKDIR/sketchd" ./cmd/sketchd

echo "== boot 3 shards + reference node"
for port in $PORT_S0 $PORT_S1 $PORT_S2; do
    "$WORKDIR/sketchd" -role shard -addr "127.0.0.1:$port" \
        -tables 5 -buckets 512 -seed 42 \
        -ingest.workers 2 -ingest.batch 64 -ingest.queue 16 &
    PIDS+=($!)
done
S2_PID="${PIDS[2]}"
"$WORKDIR/sketchd" -addr "127.0.0.1:$PORT_REF" -tables 5 -buckets 512 -seed 42 &
PIDS+=($!)
for port in $PORT_S0 $PORT_S1 $PORT_S2 $PORT_REF; do
    wait_ready "http://127.0.0.1:$port"
done

echo "== boot merger (epoch 0: every answer pulls fresh shard sketches)"
cat >"$WORKDIR/ring.json" <<EOF
{"shards":[
  {"name":"s0","addr":"http://127.0.0.1:$PORT_S0"},
  {"name":"s1","addr":"http://127.0.0.1:$PORT_S1"},
  {"name":"s2","addr":"http://127.0.0.1:$PORT_S2"}
]}
EOF
"$WORKDIR/sketchd" -role merger -addr "127.0.0.1:$PORT_M" \
    -cluster.config "$WORKDIR/ring.json" -cluster.timeout 5s &
PIDS+=($!)
wait_ready "$MBASE"

echo "== register schema (merger broadcast + reference)"
for base in "$MBASE" "$RBASE"; do
    post "$base" /streams '{"name":"F","domain":1024}'
    post "$base" /streams '{"name":"G","domain":1024}'
    post "$base" /queries '{"name":"q","agg":"COUNT","left":{"stream":"F"},"right":{"stream":"G"}}'
done

echo "== seeded ingest into cluster and reference"
make_batch >"$WORKDIR/batch.json"
curl -fsS -X POST --data-binary @"$WORKDIR/batch.json" "$MBASE/update" >/dev/null \
    || die "cluster ingest failed"
curl -fsS -X POST --data-binary @"$WORKDIR/batch.json" "$RBASE/update" >/dev/null \
    || die "reference ingest failed"
curl -fsS -X POST "$MBASE/flush" >/dev/null || die "cluster flush failed"
curl -fsS -X POST "$RBASE/flush" >/dev/null || die "reference flush failed"

echo "== healthy global answer must be bit-identical to single-node"
ANS_M="$(curl -fsS "$MBASE/answer?query=q")" || die "cluster answer failed"
ANS_R="$(curl -fsS "$RBASE/answer?query=q")" || die "reference answer failed"
EST_M="$(field "$ANS_M" estimate)"
EST_R="$(field "$ANS_R" estimate)"
echo "   cluster estimate: $EST_M   single-node estimate: $EST_R"
[[ "$EST_M" -eq "$EST_R" ]] || die "cluster estimate $EST_M != single-node $EST_R (linearity broken)"
[[ "$(field "$ANS_M" answered)" -eq 3 ]] || die "healthy answer reports answered=$(field "$ANS_M" answered)"
[[ "$(field "$ANS_M" of)" -eq 3 ]] || die "healthy answer reports of=$(field "$ANS_M" of)"
grep -q '"degraded":false' <<<"$ANS_M" || die "healthy answer flagged degraded: $ANS_M"

echo "== SIGKILL shard s2 -> degraded answer, not an error"
kill -9 "$S2_PID" || die "could not kill shard s2"
DEG="$(curl -fsS "$MBASE/answer?query=q")" || die "degraded answer errored (must degrade, not fail)"
[[ "$(field "$DEG" answered)" -eq 2 ]] || die "degraded answer reports answered=$(field "$DEG" answered), want 2"
[[ "$(field "$DEG" of)" -eq 3 ]] || die "degraded answer reports of=$(field "$DEG" of), want 3"
grep -q '"degraded":true' <<<"$DEG" || die "killed shard not flagged degraded: $DEG"
grep -q '"missing":\["s2"\]' <<<"$DEG" || die "missing shard list wrong: $DEG"
EST_DEG="$(field "$DEG" estimate)"
echo "   degraded estimate over 2/3 shards: $EST_DEG"

echo "== every shard down -> 503 with Retry-After"
kill -9 "${PIDS[0]}" "${PIDS[1]}" || die "could not kill remaining shards"
HDRS="$WORKDIR/503.headers"
CODE="$(curl -s -o /dev/null -D "$HDRS" -w '%{http_code}' "$MBASE/answer?query=q")"
[[ "$CODE" == "503" ]] || die "all-shards-down answer returned $CODE, want 503"
grep -qi '^retry-after:' "$HDRS" || die "503 without Retry-After header"

echo "PASS: cluster reconciles bit-identical when healthy and degrades (never errors) under shard loss"
