#!/usr/bin/env bash
# Integration test for multi-tenant namespaces (docs/OPERATIONS.md
# "Tenants & quotas"):
#
#   1. boot sketchd with the concurrent ingest pipeline
#   2. two tenants declare IDENTICAL stream + query names, ingest
#      different deterministic data concurrently -> /t/{x}/answer must
#      differ, and each tenant's /t/{x}/stats updateCounts must equal
#      exactly what that tenant's client pushed (no cross-tenant bleed)
#   3. install a queue-share quota on one tenant -> an over-quota batch
#      is a 429 with Retry-After, nothing applied, counted only in that
#      tenant's rejected; the other tenant is untouched
#   4. loadgen -tenants 3 drives a mixed fan-out against the same server
#      and its BENCH_ingest.json must pass -validate, which requires the
#      per-tenant client/server counters to reconcile EXACTLY
#
# Run from the repository root: ./scripts/integration_tenants.sh
set -euo pipefail

ADDR="127.0.0.1:18443"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
PID=""

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

wait_ready() {
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/stats" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    die "sketchd did not become ready on $ADDR"
}

post() { # path json
    curl -fsS -X POST -d "$2" "$BASE$1" >/dev/null || die "POST $1 failed"
}

# field NUM_JSON key -> integer value of "key":N (first match)
field() {
    local v
    v="$(sed -n 's/.*"'"$2"'":\(-\{0,1\}[0-9]\{1,\}\).*/\1/p' <<<"$1" | head -n1)"
    [[ -n "$v" ]] || die "field $2 missing in: $1"
    printf '%s' "$v"
}

# stream_count STATS_JSON stream -> that stream's updateCounts entry
stream_count() {
    local counts
    counts="$(grep -o '"updateCounts":{[^}]*}' <<<"$1")" || die "no updateCounts in: $1"
    field "$counts" "$2"
}

make_batch() { # tenant count -> JSON array on stdout (F and G get $2 each)
    local n=$2 sep=""
    printf '['
    for ((i = 0; i < n; i++)); do
        printf '%s{"stream":"F","value":7},{"stream":"G","value":7}' "$sep"
        sep=","
    done
    printf ']'
}

echo "== build"
go build -o "$WORKDIR/sketchd" ./cmd/sketchd
go build -o "$WORKDIR/loadgen" ./cmd/loadgen

echo "== boot sketchd (concurrent pipeline)"
"$WORKDIR/sketchd" -addr "$ADDR" -tables 5 -buckets 512 \
    -ingest.workers 2 -ingest.batch 64 -ingest.queue 16 &
PID=$!
wait_ready

echo "== two tenants, identical names, different data (concurrently)"
for tenant in alpha beta; do
    post "/t/$tenant/streams" '{"name":"F","domain":1000}'
    post "/t/$tenant/streams" '{"name":"G","domain":1000}'
    post "/t/$tenant/queries" '{"name":"q","agg":"COUNT","left":{"stream":"F"},"right":{"stream":"G"}}'
done
ALPHA_N=40 # alpha pushes 40 F + 40 G at one value -> COUNT estimate 1600
BETA_N=9   # beta pushes 9 + 9 of the same value    -> COUNT estimate 81
make_batch alpha $ALPHA_N | curl -fsS -X POST --data-binary @- "$BASE/t/alpha/update" >/dev/null &
A=$!
make_batch beta $BETA_N | curl -fsS -X POST --data-binary @- "$BASE/t/beta/update" >/dev/null &
B=$!
wait "$A" || die "alpha ingest failed"
wait "$B" || die "beta ingest failed"
curl -fsS -X POST "$BASE/flush" >/dev/null || die "flush failed"

ANS_ALPHA="$(curl -fsS "$BASE/t/alpha/answer?query=q")" || die "alpha answer failed"
ANS_BETA="$(curl -fsS "$BASE/t/beta/answer?query=q")" || die "beta answer failed"
EST_ALPHA="$(field "$ANS_ALPHA" estimate)"
EST_BETA="$(field "$ANS_BETA" estimate)"
echo "   alpha estimate: $EST_ALPHA   beta estimate: $EST_BETA"
[[ "$EST_ALPHA" -eq $((ALPHA_N * ALPHA_N)) ]] || die "alpha estimate $EST_ALPHA, want $((ALPHA_N * ALPHA_N))"
[[ "$EST_BETA" -eq $((BETA_N * BETA_N)) ]] || die "beta estimate $EST_BETA, want $((BETA_N * BETA_N)) (cross-tenant bleed?)"

echo "== per-tenant counters reconcile exactly"
ST_ALPHA="$(curl -fsS "$BASE/t/alpha/stats")" || die "alpha stats failed"
ST_BETA="$(curl -fsS "$BASE/t/beta/stats")" || die "beta stats failed"
[[ "$(stream_count "$ST_ALPHA" F)" -eq "$ALPHA_N" ]] || die "alpha F count $(stream_count "$ST_ALPHA" F), client sent $ALPHA_N"
[[ "$(stream_count "$ST_ALPHA" G)" -eq "$ALPHA_N" ]] || die "alpha G count mismatch"
[[ "$(stream_count "$ST_BETA" F)" -eq "$BETA_N" ]] || die "beta F count $(stream_count "$ST_BETA" F), client sent $BETA_N"
[[ "$(field "$ST_ALPHA" rejected)" -eq 0 ]] || die "alpha rejected nonzero before any quota"

echo "== queue-share quota: over-quota batch is a 429 + Retry-After"
post /tenants '{"name":"beta","quota":{"maxPendingUpdates":50}}'
HDRS="$WORKDIR/429.headers"
CODE="$(make_batch beta 100 | curl -s -o /dev/null -D "$HDRS" -w '%{http_code}' \
    -X POST --data-binary @- "$BASE/t/beta/update")"
[[ "$CODE" == "429" ]] || die "over-quota batch returned $CODE, want 429"
grep -qi '^retry-after:' "$HDRS" || die "429 without Retry-After header"
curl -fsS -X POST "$BASE/flush" >/dev/null

ST_BETA2="$(curl -fsS "$BASE/t/beta/stats")"
[[ "$(field "$ST_BETA2" rejected)" -eq 200 ]] || die "beta rejected $(field "$ST_BETA2" rejected), want 200 (admission is atomic: the whole 100 F + 100 G batch is rejected)"
[[ "$(stream_count "$ST_BETA2" F)" -eq "$BETA_N" ]] || die "rejected batch leaked into beta's counts"
ST_ALPHA2="$(curl -fsS "$BASE/t/alpha/stats")"
[[ "$(field "$ST_ALPHA2" rejected)" -eq 0 ]] || die "beta's quota charged alpha"
[[ "$(stream_count "$ST_ALPHA2" F)" -eq "$ALPHA_N" ]] || die "alpha counts moved"
# Under the cap beta still works.
CODE="$(make_batch beta 10 | curl -s -o /dev/null -w '%{http_code}' \
    -X POST --data-binary @- "$BASE/t/beta/update")"
[[ "$CODE" == "200" ]] || die "under-quota batch returned $CODE, want 200"

echo "== loadgen -tenants 3: concurrent fan-out must reconcile per tenant"
mkdir -p "$WORKDIR/bench"
"$WORKDIR/loadgen" -target "$BASE" -declare -wait 10s \
    -seed 42 -domain 4096 -shape zipf:1.0 \
    -duration 3s -rate 10000 -tenants 3 \
    -ingest.workers 2 -ingest.batch 64 -ingest.queue 16 \
    -out "$WORKDIR/bench" || die "loadgen -tenants run failed"
"$WORKDIR/loadgen" -validate "$WORKDIR/bench/BENCH_ingest.json" \
    || die "multi-tenant BENCH validation failed (per-tenant reconciliation)"
grep -q '"tenants"' "$WORKDIR/bench/BENCH_ingest.json" \
    || die "BENCH_ingest.json has no per-tenant section"

kill -TERM "$PID"
wait "$PID" || die "sketchd did not exit cleanly"
PID=""

echo "PASS: tenant isolation, quota 429, and per-tenant reconciliation verified"
