// Command skimjoin estimates the join size of two stream files in one
// pass per file using skimmed sketches, optionally comparing against the
// basic-AGMS baseline and the exact answer.
//
// Usage:
//
//	skimjoin -f f.sks -g g.sks -tables 7 -buckets 2048
//	skimjoin -f f.sks -g g.sks -exact -agms
//
// The stream files carry their domain in the header; the larger of the
// two domains is used for skimming.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"skimsketch/internal/agms"
	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

func main() {
	var (
		fPath   = flag.String("f", "", "stream file for F (required)")
		gPath   = flag.String("g", "", "stream file for G (required)")
		tables  = flag.Int("tables", 7, "hash-sketch tables d")
		buckets = flag.Int("buckets", 2048, "hash-sketch buckets per table b")
		seed    = flag.Uint64("seed", 42, "sketch seed")
		exact   = flag.Bool("exact", false, "also compute the exact join size (materializes frequency vectors)")
		doAGMS  = flag.Bool("agms", false, "also run the basic-AGMS baseline at equal space")
		text    = flag.Bool("text", false, "inputs are text files (value[,weight] lines); requires -domain")
		domainF = flag.Uint64("domain", 0, "value domain for -text inputs")
	)
	flag.Parse()

	if err := run(*fPath, *gPath, *tables, *buckets, *seed, *exact, *doAGMS, *text, *domainF); err != nil {
		fmt.Fprintln(os.Stderr, "skimjoin:", err)
		os.Exit(1)
	}
}

func run(fPath, gPath string, tables, buckets int, seed uint64, exact, doAGMS, text bool, textDomain uint64) error {
	if fPath == "" || gPath == "" {
		return fmt.Errorf("-f and -g are required")
	}
	if text && textDomain == 0 {
		return fmt.Errorf("-text requires -domain (text files carry no header)")
	}
	cfg := core.Config{Tables: tables, Buckets: buckets, Seed: seed}
	fSketch, err := core.NewHashSketch(cfg)
	if err != nil {
		return err
	}
	gSketch, err := core.NewHashSketch(cfg)
	if err != nil {
		return err
	}

	// Optional extra sinks share the single pass over each file.
	var fSinks = []stream.Sink{fSketch}
	var gSinks = []stream.Sink{gSketch}
	var fv, gv stream.FreqVector
	if exact {
		fv, gv = stream.NewFreqVector(), stream.NewFreqVector()
		fSinks = append(fSinks, fv)
		gSinks = append(gSinks, gv)
	}
	var fAGMS, gAGMS *agms.Sketch
	if doAGMS {
		words := tables * buckets
		s2 := 11
		s1 := words / s2
		if s1 < 1 {
			s1 = 1
		}
		fAGMS, err = agms.New(s1, s2, seed)
		if err != nil {
			return err
		}
		gAGMS, err = agms.New(s1, s2, seed)
		if err != nil {
			return err
		}
		fSinks = append(fSinks, fAGMS)
		gSinks = append(gSinks, gAGMS)
	}

	ingest := pipeWithDomain
	if text {
		ingest = func(path string, sinks []stream.Sink) (uint64, int64, error) {
			f, err := os.Open(path)
			if err != nil {
				return 0, 0, err
			}
			defer f.Close()
			n, err := stream.PipeText(f, sinks...)
			return textDomain, n, err
		}
	}
	domain, nf, err := ingest(fPath, fSinks)
	if err != nil {
		return err
	}
	gDomain, ng, err := ingest(gPath, gSinks)
	if err != nil {
		return err
	}
	if gDomain > domain {
		domain = gDomain
	}

	est, err := core.EstimateJoin(fSketch, gSketch, domain, nil)
	if err != nil {
		return err
	}

	fmt.Printf("streams: F=%d updates, G=%d updates, domain=%d\n", nf, ng, domain)
	fmt.Printf("sketch: %d tables x %d buckets = %d words per stream\n", tables, buckets, tables*buckets)
	fmt.Printf("skimmed-sketch estimate: %d\n", est.Total)
	fmt.Printf("  dense x dense  = %d (F extracted %d dense values, G %d)\n", est.DenseDense, est.DenseCountF, est.DenseCountG)
	fmt.Printf("  dense x sparse = %d, sparse x dense = %d, sparse x sparse = %d\n",
		est.DenseSparse, est.SparseDense, est.SparseSparse)
	fmt.Printf("  skim thresholds: F=%d, G=%d\n", est.ThresholdF, est.ThresholdG)

	if doAGMS {
		a, err := agms.JoinEstimate(fAGMS, gAGMS)
		if err != nil {
			return err
		}
		fmt.Printf("basic-AGMS estimate:     %d (%d words per stream)\n", a, fAGMS.Words())
	}
	if exact {
		j := fv.InnerProduct(gv)
		fmt.Printf("exact join size:         %d\n", j)
		fmt.Printf("skimmed symmetric error: %.4f\n", stats.SymmetricError(float64(est.Total), float64(j)))
	}
	return nil
}

// pipeWithDomain streams a file into the sinks, returning its header
// domain and record count.
func pipeWithDomain(path string, sinks []stream.Sink) (uint64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r, err := stream.NewReader(f)
	if err != nil {
		return 0, 0, err
	}
	var n int64
	for {
		u, err := r.Read()
		if err == io.EOF {
			return r.Domain(), n, nil
		}
		if err != nil {
			return r.Domain(), n, err
		}
		for _, s := range sinks {
			s.Update(u.Value, u.Weight)
		}
		n++
	}
}
