package main

import (
	"os"
	"path/filepath"
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func writeStreams(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	fPath := filepath.Join(dir, "f.sks")
	gPath := filepath.Join(dir, "g.sks")
	zf, _ := workload.NewZipf(1024, 1.1, 1)
	zg, _ := workload.NewZipf(1024, 1.1, 2)
	if err := stream.WriteFile(fPath, 1024, workload.MakeStream(zf, 5000)); err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteFile(gPath, 1024, workload.MakeStream(zg, 5000)); err != nil {
		t.Fatal(err)
	}
	return fPath, gPath
}

func TestRunValidation(t *testing.T) {
	if err := run("", "x", 3, 8, 1, false, false, false, 0); err == nil {
		t.Fatal("expected error for missing -f")
	}
	if err := run("x", "", 3, 8, 1, false, false, false, 0); err == nil {
		t.Fatal("expected error for missing -g")
	}
	if err := run("x", "y", 0, 8, 1, false, false, false, 0); err == nil {
		t.Fatal("expected error for bad sketch config")
	}
	f, g := writeStreams(t)
	if err := run(f, filepath.Join(t.TempDir(), "missing.sks"), 3, 8, 1, false, false, false, 0); err == nil {
		t.Fatal("expected error for missing stream file")
	}
	if err := run(f, g, 3, 8, 1, false, false, true, 0); err == nil {
		t.Fatal("expected error for -text without -domain")
	}
}

func TestRunTextInputs(t *testing.T) {
	dir := t.TempDir()
	fPath := filepath.Join(dir, "f.txt")
	gPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(fPath, []byte("7\n7\n9,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gPath, []byte("7,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(fPath, gPath, 5, 64, 1, true, false, true, 64); err != nil {
		t.Fatal(err)
	}
	// Parse errors propagate.
	if err := os.WriteFile(fPath, []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(fPath, gPath, 5, 64, 1, false, false, true, 64); err == nil {
		t.Fatal("expected text parse error")
	}
}

func TestRunEstimates(t *testing.T) {
	f, g := writeStreams(t)
	if err := run(f, g, 5, 256, 7, false, false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithExactAndAGMS(t *testing.T) {
	f, g := writeStreams(t)
	if err := run(f, g, 5, 64, 7, true, true, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPipeWithDomain(t *testing.T) {
	f, _ := writeStreams(t)
	fv := stream.NewFreqVector()
	domain, n, err := pipeWithDomain(f, []stream.Sink{fv})
	if err != nil {
		t.Fatal(err)
	}
	if domain != 1024 || n != 5000 {
		t.Fatalf("domain=%d n=%d", domain, n)
	}
	if fv.L1() != 5000 {
		t.Fatalf("L1 = %d", fv.L1())
	}
	if _, _, err := pipeWithDomain(filepath.Join(t.TempDir(), "nope"), nil); err == nil {
		t.Fatal("expected error")
	}
}
