package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs main.run with stdout/stderr redirected to files and
// returns the exit code and outputs.
func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	outF.Close()
	errF.Close()
	ob, _ := os.ReadFile(filepath.Join(dir, "out"))
	eb, _ := os.ReadFile(filepath.Join(dir, "err"))
	return code, string(ob), string(eb)
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"lockscope", "detseed", "atomicmix", "widenmul"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, "-analyzers", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr = %q", errOut)
	}
}

// TestFindingsExitNonZero runs the full suite over a fixture package
// that violates several invariants and checks the exit code and output
// format contract that CI depends on.
func TestFindingsExitNonZero(t *testing.T) {
	code, out, errOut := capture(t, "../../internal/lint/testdata/src/widenmul")
	if code != 1 {
		t.Fatalf("exit = %d (stderr %q), want 1", code, errOut)
	}
	if !strings.Contains(out, "[widenmul]") || !strings.Contains(out, "widenmul.go") {
		t.Errorf("findings output missing file or analyzer tag:\n%s", out)
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr summary missing: %q", errOut)
	}
}

// TestRepoIsClean is the acceptance criterion: the suite must exit
// clean over the whole repository.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and checks every package")
	}
	code, out, errOut := capture(t, "../...")
	if code != 0 {
		t.Fatalf("sketchlint over the repo exited %d:\n%s%s", code, out, errOut)
	}
}
