package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs main.run with stdout/stderr redirected to files and
// returns the exit code and outputs.
func capture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	outF.Close()
	errF.Close()
	ob, _ := os.ReadFile(filepath.Join(dir, "out"))
	eb, _ := os.ReadFile(filepath.Join(dir, "err"))
	return code, string(ob), string(eb)
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"lockscope", "detseed", "atomicmix", "widenmul",
		"poolown", "ctxleak", "alloclen", "errctr",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, "-analyzers", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr = %q", errOut)
	}
}

// TestFindingsExitNonZero runs the full suite over a fixture package
// that violates several invariants and checks the exit code and output
// format contract that CI depends on.
func TestFindingsExitNonZero(t *testing.T) {
	code, out, errOut := capture(t, "../../internal/lint/testdata/src/widenmul")
	if code != 1 {
		t.Fatalf("exit = %d (stderr %q), want 1", code, errOut)
	}
	if !strings.Contains(out, "[widenmul]") || !strings.Contains(out, "widenmul.go") {
		t.Errorf("findings output missing file or analyzer tag:\n%s", out)
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr summary missing: %q", errOut)
	}
}

// TestNewAnalyzerProbes is the injected-violation check for each
// analyzer added in this PR: running it alone over its flagging
// fixture must exit 1 with tagged findings — proof that a real
// violation fails the CI job, not just the unit tests.
func TestNewAnalyzerProbes(t *testing.T) {
	for _, name := range []string{"poolown", "ctxleak", "alloclen", "errctr"} {
		t.Run(name, func(t *testing.T) {
			code, out, errOut := capture(t, "-analyzers", name,
				"../../internal/lint/testdata/src/"+name)
			if code != 1 {
				t.Fatalf("exit = %d (stderr %q), want 1", code, errOut)
			}
			if !strings.Contains(out, "["+name+"]") {
				t.Errorf("findings output missing [%s] tag:\n%s", name, out)
			}
		})
	}
}

// TestCleanFixturesAllAnalyzers runs the full eight-analyzer suite
// over every clean fixture at once: no analyzer may fire on another's
// sanctioned patterns.
func TestCleanFixturesAllAnalyzers(t *testing.T) {
	args := []string{}
	for _, dir := range []string{
		"detseed_clean", "poolown_clean", "ctxleak_clean", "alloclen_clean", "errctr_clean",
	} {
		args = append(args, "../../internal/lint/testdata/src/"+dir)
	}
	code, out, errOut := capture(t, args...)
	if code != 0 {
		t.Fatalf("clean fixtures exited %d:\n%s%s", code, out, errOut)
	}
}

// TestJSONOutput checks the -json contract CI's findings artifact
// depends on: exit code unchanged, stdout a parseable array of
// {file, line, col, analyzer, message} records.
func TestJSONOutput(t *testing.T) {
	code, out, errOut := capture(t, "-json", "-analyzers", "errctr",
		"../../internal/lint/testdata/src/errctr")
	if code != 1 {
		t.Fatalf("exit = %d (stderr %q), want 1", code, errOut)
	}
	var records []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(records) == 0 {
		t.Fatal("-json produced no records over the flagging fixture")
	}
	for _, r := range records {
		if r.File == "" || r.Line == 0 || r.Analyzer != "errctr" || r.Message == "" {
			t.Errorf("incomplete record: %+v", r)
		}
	}
}

// TestJSONOutputCleanIsEmptyArray pins the clean shape: an empty array
// (not null, not nothing), so artifact consumers can always parse it.
func TestJSONOutputCleanIsEmptyArray(t *testing.T) {
	code, out, errOut := capture(t, "-json", "-analyzers", "poolown",
		"../../internal/lint/testdata/src/poolown_clean")
	if code != 0 {
		t.Fatalf("exit = %d (stderr %q), want 0", code, errOut)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

// TestRepoIsClean is the acceptance criterion: the suite must exit
// clean over the whole repository.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and checks every package")
	}
	code, out, errOut := capture(t, "../...")
	if code != 0 {
		t.Fatalf("sketchlint over the repo exited %d:\n%s%s", code, out, errOut)
	}
}
