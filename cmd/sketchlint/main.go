// Command sketchlint runs the repo's custom static analyzers — the
// concurrency and determinism invariants of the skimmed-sketch engine
// — over the packages matching the given go-list patterns.
//
// Usage:
//
//	go run ./cmd/sketchlint ./...
//	go run ./cmd/sketchlint -analyzers lockscope,detseed ./internal/engine
//	go run ./cmd/sketchlint -json ./... > findings.json
//	go run ./cmd/sketchlint -list
//
// It exits 1 if any analyzer reports a finding, 2 on usage or load
// errors. Findings are printed one per line as
// "file:line:col: [analyzer] message", or, with -json, as a JSON array
// of {file, line, col, analyzer, message} records (an empty array when
// clean) — the machine-readable form CI archives as its findings
// artifact. A finding can be suppressed with a trailing or preceding
// comment:
//
//	//sketchlint:ignore <analyzer>[,<analyzer>] -- <reason>
//
// The reason is mandatory; a bare or reasonless directive suppresses
// nothing and is itself reported. See docs/LINTING.md for what each
// analyzer enforces and why.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"skimsketch/internal/lint"
)

// jsonFinding is the -json record shape; field order is the human
// format's order so the two stay trivially diffable.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sketchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	analyzers := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sketchlint [-list] [-json] [-analyzers a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadPackages(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.Run(pkg, selected)...)
	}
	if *jsonOut {
		records := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			records = append(records, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sketchlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
