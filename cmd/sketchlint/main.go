// Command sketchlint runs the repo's custom static analyzers — the
// concurrency and determinism invariants of the skimmed-sketch engine
// — over the packages matching the given go-list patterns.
//
// Usage:
//
//	go run ./cmd/sketchlint ./...
//	go run ./cmd/sketchlint -analyzers lockscope,detseed ./internal/engine
//	go run ./cmd/sketchlint -list
//
// It exits 1 if any analyzer reports a finding, 2 on usage or load
// errors. Findings are printed one per line as
// "file:line:col: [analyzer] message". A finding can be suppressed
// with a trailing or preceding comment:
//
//	//sketchlint:ignore <analyzer> <reason>
//
// See docs/LINTING.md for what each analyzer enforces and why.
package main

import (
	"flag"
	"fmt"
	"os"

	"skimsketch/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("sketchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available analyzers and exit")
	analyzers := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sketchlint [-list] [-analyzers a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadPackages(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, selected) {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "sketchlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
