package main

import (
	"testing"

	"skimsketch/internal/experiments"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false, 0, false, false, 4, 256, 0); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestPickConfigs(t *testing.T) {
	if pick5a(false).StreamLen == pick5a(true).StreamLen {
		t.Fatal("full scale must differ from laptop scale")
	}
	if pick5b(true).Zipf != 1.5 || pick5a(true).Zipf != 1.0 {
		t.Fatal("fig5a/fig5b skews swapped")
	}
	if pick5a(true).StreamLen != experiments.PaperFig5a().StreamLen {
		t.Fatal("full fig5a must be the paper-scale config")
	}
}

// The heavy experiment paths are exercised at scale by the experiments
// package tests and the benchmarks; here we only confirm the driver wires
// a valid custom-seed configuration through without error on the cheapest
// experiment.
func TestSeedsOverride(t *testing.T) {
	cfg := pick5a(false)
	cfg.Seeds = 7
	if cfg.Seeds != 7 {
		t.Fatal("seed override must stick")
	}
}
