// Command expdriver regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows/series the paper reports
// (error versus space per method, or ns/element for the update-cost
// claim).
//
// Usage:
//
//	expdriver -exp fig5a            # Figure 5(a), laptop scale
//	expdriver -exp fig5b -full      # Figure 5(b) at full paper scale
//	expdriver -exp census           # census-like table
//	expdriver -exp update           # per-element update cost
//	expdriver -exp ablation         # skim on/off ablation
//	expdriver -exp all              # everything, laptop scale
package main

import (
	"flag"
	"fmt"
	"os"

	"skimsketch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5a|fig5b|census|update|ablation|skew|threshold|ingest|all")
	full := flag.Bool("full", false, "run at full paper scale (minutes instead of seconds)")
	seeds := flag.Int("seeds", 0, "override the number of seeds per configuration")
	csvOut := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	partitioned := flag.Bool("partitioned", false, "add the Dobra-style partitioned baseline to fig5 experiments (granted exact priors)")
	workers := flag.Int("ingest.workers", 4, "shard workers for the ingest experiment's pipeline mode")
	batch := flag.Int("ingest.batch", 256, "batch size for the ingest experiment's batched modes")
	qworkers := flag.Int("query.workers", 0, "estimation goroutines per answer in the ingest experiment (0 or 1 = sequential, -1 = one per CPU); answers are bit-identical for every setting")
	flag.Parse()

	if err := run(*exp, *full, *seeds, *csvOut, *partitioned, *workers, *batch, *qworkers); err != nil {
		fmt.Fprintln(os.Stderr, "expdriver:", err)
		os.Exit(1)
	}
}

func run(exp string, full bool, seeds int, csvOut, partitioned bool, workers, batch, qworkers int) error {
	switch exp {
	case "fig5a":
		return runFig5(pick5a(full), seeds, csvOut, partitioned)
	case "fig5b":
		return runFig5(pick5b(full), seeds, csvOut, partitioned)
	case "census":
		return runCensus(seeds, csvOut)
	case "update":
		return runUpdate()
	case "ablation":
		return runAblation(seeds, csvOut)
	case "skew":
		return runSkew(seeds, csvOut)
	case "threshold":
		return runThreshold(seeds, csvOut)
	case "ingest":
		return runIngest(full, csvOut, workers, batch, qworkers)
	case "all":
		for _, e := range []string{"fig5a", "fig5b", "census", "update", "ablation", "skew", "threshold", "ingest"} {
			if err := run(e, full, seeds, csvOut, partitioned, workers, batch, qworkers); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// runIngest compares sequential, batched and concurrent-pipeline engine
// ingestion on one workload (see internal/experiments/ingest.go).
func runIngest(full, csvOut bool, workers, batch, qworkers int) error {
	cfg := experiments.DefaultIngestThroughput()
	if full {
		cfg.StreamLen *= 10
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	if batch > 0 {
		cfg.Batch = batch
	}
	cfg.QueryWorkers = qworkers
	res, err := experiments.RunIngestThroughput(cfg)
	if err != nil {
		return err
	}
	if csvOut {
		return res.WriteCSV(os.Stdout)
	}
	res.WriteTable(os.Stdout)
	return nil
}

func pick5a(full bool) experiments.Fig5Config {
	if full {
		return experiments.PaperFig5a()
	}
	return experiments.DefaultFig5a()
}

func pick5b(full bool) experiments.Fig5Config {
	if full {
		return experiments.PaperFig5b()
	}
	return experiments.DefaultFig5b()
}

func runFig5(cfg experiments.Fig5Config, seeds int, csvOut, partitioned bool) error {
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	cfg.IncludePartitioned = partitioned
	res, err := experiments.RunFig5(cfg)
	if err != nil {
		return err
	}
	return emit(res, csvOut)
}

func runCensus(seeds int, csvOut bool) error {
	cfg := experiments.DefaultCensus()
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	res, err := experiments.RunCensus(cfg)
	if err != nil {
		return err
	}
	return emit(res, csvOut)
}

func runUpdate() error {
	res, err := experiments.RunUpdateCost(experiments.DefaultUpdateCost())
	if err != nil {
		return err
	}
	res.WriteTable(os.Stdout)
	return nil
}

func runAblation(seeds int, csvOut bool) error {
	cfg := experiments.DefaultAblation()
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	res, err := experiments.RunAblation(cfg)
	if err != nil {
		return err
	}
	return emit(res, csvOut)
}

func runSkew(seeds int, csvOut bool) error {
	cfg := experiments.DefaultSkewSweep()
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	res, err := experiments.RunSkewSweep(cfg)
	if err != nil {
		return err
	}
	return emit(res, csvOut)
}

func runThreshold(seeds int, csvOut bool) error {
	cfg := experiments.DefaultThresholdSweep()
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	res, err := experiments.RunThresholdSweep(cfg)
	if err != nil {
		return err
	}
	return emit(res, csvOut)
}

// emit renders a result as a table or CSV.
func emit(res experiments.Result, csvOut bool) error {
	if csvOut {
		return res.WriteCSV(os.Stdout)
	}
	res.WriteTable(os.Stdout)
	return nil
}
