// Command loadgen is the end-to-end load harness for sketchd: an
// open-loop generator (token-bucket arrivals that never slow down when
// the server does), concurrent ingest workers honoring the server's
// 429/Retry-After backpressure contract, and an optional mixed query
// stream against /answer. Latency percentiles come from merging the
// per-worker log-bucketed histograms — never from averaging per-worker
// percentiles — and each run emits BENCH_ingest.json / BENCH_query.json
// (schema in docs/FORMATS.md) so the repo's speed trajectory is
// comparable across commits.
//
//	loadgen -target http://127.0.0.1:8080 -declare -duration 10s -rate 50000
//
// With -autotune the harness searches its own knobs (-ingest.workers,
// -ingest.batch, -ingest.queue, -query.workers) by coordinate descent
// over short live trials (-autotune.trial each), writes the best
// configuration and the full measured curve to BENCH_autotune.json, and
// then runs the final measured pass with the winning knobs. The first
// trial is always the flag configuration and the incumbent only ever
// improves, so the tuned result is never slower than the defaults.
//
// With -validate FILE[,FILE...] loadgen instead checks that each file
// is a schema-valid BENCH report with nonzero throughput — the CI
// bench-smoke gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"skimsketch/internal/loadtest"
)

// options collects every flag so run is testable without a flag set.
type options struct {
	target   string
	streams  string
	declare  bool
	domain   uint64
	shape    string
	seed     int64
	rate     float64
	burst    int
	duration time.Duration
	updates  int64
	workers  int
	batch    int
	queue    int
	qworkers int
	qname    string
	tenants  int
	proto    string
	streamAd string
	idem     bool
	outDir   string

	autotune       bool
	autotuneTrial  time.Duration
	autotuneSweeps int

	validate string
	waitFor  time.Duration
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.StringVar(&o.target, "target", "http://127.0.0.1:8080", "sketchd base URL")
	fs.StringVar(&o.streams, "streams", "F,G", "comma-separated stream names to drive round-robin")
	fs.BoolVar(&o.declare, "declare", false, "declare the streams (and register the query) before the run; existing declarations are tolerated")
	fs.Uint64Var(&o.domain, "domain", 1<<16, "stream domain [0, domain)")
	fs.StringVar(&o.shape, "shape", "zipf:1.0", `workload shape: "uniform", "zipf", "zipf:Z", optional "+shift:S"`)
	fs.Int64Var(&o.seed, "seed", 42, "workload generator seed (runs are reproducible per seed)")
	fs.Float64Var(&o.rate, "rate", 0, "target arrival rate in updates/sec (0 = unpaced, as fast as the queue drains)")
	fs.IntVar(&o.burst, "burst", 0, "token-bucket burst size in updates (0 = one batch)")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "run length (ignored when -updates > 0)")
	fs.Int64Var(&o.updates, "updates", 0, "stop after exactly this many generated updates instead of -duration")
	fs.IntVar(&o.workers, "ingest.workers", 4, "concurrent ingest sender goroutines")
	fs.IntVar(&o.batch, "ingest.batch", 256, "updates per /update request")
	fs.IntVar(&o.queue, "ingest.queue", 64, "client-side queue depth in batches (full queue = open-loop shed)")
	fs.IntVar(&o.qworkers, "query.workers", 0, "concurrent /answer goroutines (0 = no query stream)")
	fs.StringVar(&o.qname, "query.name", "q", "query to answer (and to register under -declare)")
	fs.IntVar(&o.tenants, "tenants", 0, "fan the run out across N tenant namespaces (t0..tN-1), each batch's tenant drawn from the seeded workload shape; reports carry exact per-tenant reconciliation (0 or 1 = single default tenant)")
	fs.StringVar(&o.proto, "proto", "json", `ingest protocol: "json" (HTTP /update) or "skimp" (SKSP binary streaming; needs -stream.addr)`)
	fs.StringVar(&o.streamAd, "stream.addr", "", "sketchd -listen.stream host:port for -proto=skimp")
	fs.BoolVar(&o.idem, "idempotency", true, "stamp JSON /update batches with Idempotency-Key headers so retries after lost responses cannot double-apply (skimp frames always carry one)")
	fs.StringVar(&o.outDir, "out", ".", "directory for BENCH_*.json reports")
	fs.BoolVar(&o.autotune, "autotune", false, "search -ingest.*/-query.workers for max throughput before the measured run")
	fs.DurationVar(&o.autotuneTrial, "autotune.trial", 2*time.Second, "duration of each autotune trial")
	fs.IntVar(&o.autotuneSweeps, "autotune.sweeps", 4, "max coordinate-descent sweeps")
	fs.StringVar(&o.validate, "validate", "", "comma-separated BENCH_*.json files to validate instead of running (CI gate)")
	fs.DurationVar(&o.waitFor, "wait", 10*time.Second, "how long to wait for the target's /healthz before giving up")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout); err != nil {
		log.Fatal("loadgen: ", err)
	}
}

// config assembles the harness configuration from the flags.
func (o options) config() loadtest.Config {
	cfg := loadtest.Config{
		BaseURL:      strings.TrimRight(o.target, "/"),
		Shape:        o.shape,
		Domain:       o.domain,
		Seed:         o.seed,
		Rate:         o.rate,
		Burst:        o.burst,
		Workers:      o.workers,
		Batch:        o.batch,
		QueueDepth:   o.queue,
		Duration:     o.duration,
		TotalUpdates: o.updates,
		QueryWorkers: o.qworkers,
		Tenants:      o.tenants,
		Proto:        o.proto,
		StreamAddr:   o.streamAd,
	}
	if o.idem {
		cfg.Client.Idem = loadtest.NewIdemSource("")
	}
	for _, s := range strings.Split(o.streams, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.Streams = append(cfg.Streams, s)
		}
	}
	if o.qworkers > 0 {
		cfg.QueryName = o.qname
	}
	if o.updates > 0 {
		cfg.Duration = 0
	}
	return cfg
}

// run executes one harness invocation: validate mode, or wait-ready →
// declare → (autotune →) measured run → BENCH reports.
func run(ctx context.Context, opts options, out io.Writer) error {
	if opts.validate != "" {
		return validateReports(opts.validate, out)
	}
	cfg := opts.config()
	client := &loadtest.Client{BaseURL: cfg.BaseURL}

	waitCtx, cancel := context.WithTimeout(ctx, opts.waitFor)
	err := client.WaitReady(waitCtx)
	cancel()
	if err != nil {
		return err
	}

	if opts.declare {
		if err := declareWorkload(ctx, client, cfg, out); err != nil {
			return err
		}
	}

	if opts.autotune {
		base := cfg
		base.Duration = opts.autotuneTrial
		base.TotalUpdates = 0
		fmt.Fprintf(out, "loadgen autotuning (%s trials, <= %d sweeps)\n", opts.autotuneTrial, opts.autotuneSweeps)
		at, err := loadtest.Autotune(ctx, loadtest.AutotuneOptions{
			Base:      base,
			MaxSweeps: opts.autotuneSweeps,
		}, nil, time.Now())
		if err != nil {
			return err
		}
		atPath := filepath.Join(opts.outDir, "BENCH_autotune.json")
		if err := loadtest.WriteAutotuneResult(atPath, at); err != nil {
			return err
		}
		fmt.Fprintf(out, "loadgen autotune best: workers=%d batch=%d queue=%d queryWorkers=%d (%.0f updates/s over %d trials) -> %s\n",
			at.Best.Workers, at.Best.Batch, at.Best.QueueDepth, at.Best.QueryWorkers,
			at.Best.Throughput, len(at.Trials), atPath)
		cfg = at.BestConfig(cfg)
	}

	res, err := loadtest.Run(ctx, cfg)
	if err != nil {
		return err
	}
	now := time.Now()
	ingest := loadtest.IngestReport(res, now)
	ingestPath := filepath.Join(opts.outDir, "BENCH_ingest.json")
	if err := loadtest.WriteReport(ingestPath, ingest); err != nil {
		return err
	}
	fmt.Fprintf(out, "loadgen ingest [%s]: %.0f updates/s (%d updates, %d requests, %d x 429, %d retries, %d shed, %d errors) p50=%s p99=%s -> %s\n",
		cfg.Proto, ingest.ThroughputPerSec, ingest.Updates, ingest.Requests, ingest.Rejected429,
		ingest.Retries, ingest.Shed, ingest.Errors,
		time.Duration(ingest.Latency.P50Ns), time.Duration(ingest.Latency.P99Ns), ingestPath)
	for _, t := range res.Tenants {
		status := "reconciled"
		if t.UpdatesSent != t.ServerUpdates {
			status = "MISMATCH"
		}
		fmt.Fprintf(out, "loadgen tenant %s: client %d / server %d updates (%s), %d rejected by quota\n",
			t.Tenant, t.UpdatesSent, t.ServerUpdates, status, t.ServerRejected)
	}
	if cfg.QueryWorkers > 0 {
		query := loadtest.QueryReport(res, now)
		queryPath := filepath.Join(opts.outDir, "BENCH_query.json")
		if err := loadtest.WriteReport(queryPath, query); err != nil {
			return err
		}
		fmt.Fprintf(out, "loadgen query:  %.0f answers/s (%d requests, %d errors) p50=%s p99=%s -> %s\n",
			query.ThroughputPerSec, query.Requests, query.Errors,
			time.Duration(query.Latency.P50Ns), time.Duration(query.Latency.P99Ns), queryPath)
	}
	if res.Ingest.Errors > 0 {
		return fmt.Errorf("run finished with %d permanent ingest errors", res.Ingest.Errors)
	}
	return nil
}

// declareWorkload declares the run's streams and registers the COUNT
// query for the mixed stream, tolerating declarations that already
// exist so repeated runs against a warm server work. With -tenants N
// the same setup is repeated in every tenant namespace (plus the
// default tenant, which the mixed query stream targets).
func declareWorkload(ctx context.Context, client *loadtest.Client, cfg loadtest.Config, out io.Writer) error {
	clients := []*loadtest.Client{client}
	for _, name := range loadtest.TenantNames(cfg.Tenants) {
		clients = append(clients, client.ForTenant(name))
	}
	for _, c := range clients {
		label := ""
		if c.Tenant != "" {
			label = " [" + c.Tenant + "]"
		}
		for _, s := range cfg.Streams {
			err := c.DeclareStream(ctx, s, cfg.Domain)
			switch {
			case err == nil:
				fmt.Fprintf(out, "loadgen declared stream %s%s (domain %d)\n", s, label, cfg.Domain)
			case strings.Contains(err.Error(), "already declared"):
			default:
				return err
			}
		}
		if cfg.QueryName == "" {
			continue
		}
		if len(cfg.Streams) < 2 {
			return fmt.Errorf("query stream needs two streams to join, have %d", len(cfg.Streams))
		}
		err := c.RegisterCountQuery(ctx, cfg.QueryName, cfg.Streams[0], cfg.Streams[1])
		switch {
		case err == nil:
			fmt.Fprintf(out, "loadgen registered query %s%s = COUNT(%s join %s)\n", cfg.QueryName, label, cfg.Streams[0], cfg.Streams[1])
		case strings.Contains(err.Error(), "already registered"):
		default:
			return err
		}
	}
	return nil
}

// validateReports is the bench-smoke gate: every named file must be a
// schema-valid BENCH report with nonzero traffic and throughput.
func validateReports(list string, out io.Writer) error {
	var checked int
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		rep, err := loadtest.ReadReport(path)
		if err != nil {
			return err
		}
		if err := rep.Validate(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if rep.Requests == 0 || rep.ThroughputPerSec <= 0 {
			return fmt.Errorf("%s: no traffic recorded (requests=%d, throughput=%v)", path, rep.Requests, rep.ThroughputPerSec)
		}
		if rep.Kind == "ingest" && rep.Updates == 0 {
			return fmt.Errorf("%s: ingest report with zero updates", path)
		}
		fmt.Fprintf(out, "loadgen validate %s: ok (%s, %.0f/s, p99=%s)\n",
			path, rep.Kind, rep.ThroughputPerSec, time.Duration(rep.Latency.P99Ns))
		checked++
	}
	if checked == 0 {
		return errors.New("-validate: no files named")
	}
	return nil
}
