package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"skimsketch/internal/loadtest"
)

// fakeTarget is a minimal sketchd stand-in for exercising the binary's
// run path without booting an engine.
type fakeTarget struct {
	mu       sync.Mutex
	requests int64
	applied  int64
	declared map[string]bool
	queries  map[string]bool
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{declared: map[string]bool{}, queries: map[string]bool{}}
}

func (f *fakeTarget) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
	})
	mux.HandleFunc("/streams", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Name string }
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.declared[req.Name] {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]string{"error": "engine: stream already declared"})
			return
		}
		f.declared[req.Name] = true
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Name string }
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.queries[req.Name] {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]string{"error": "engine: query already registered"})
			return
		}
		f.queries[req.Name] = true
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		var batch []loadtest.Update
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.requests++
		f.applied += int64(len(batch))
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]int{"applied": len(batch)})
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/answer", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"estimate": 0})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"ingest": map[string]any{
				"updatesEnqueued": f.applied, "updatesApplied": f.applied, "rejected": 0,
			},
			"updateLatency": map[string]any{"count": f.requests, "meanNs": 1000.0, "maxNs": 2000, "p99Ns": 1500},
			"uptimeSeconds": 1.0,
		})
	})
	return mux
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.workers != 4 || o.batch != 256 || o.queue != 64 {
		t.Fatalf("ingest defaults changed: %+v", o)
	}
	if o.duration != 10*time.Second || o.shape != "zipf:1.0" {
		t.Fatalf("run defaults changed: %+v", o)
	}
	cfg := o.config()
	if len(cfg.Streams) != 2 || cfg.Streams[0] != "F" || cfg.Streams[1] != "G" {
		t.Fatalf("default streams parsed as %v", cfg.Streams)
	}
	if cfg.QueryName != "" {
		t.Fatal("query name set without query workers")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunEndToEnd drives the binary's run path against a fake target:
// declare (twice — the second run must tolerate existing declarations),
// push a fixed burst, and check the emitted BENCH files pass the
// binary's own -validate gate.
func TestRunEndToEnd(t *testing.T) {
	fake := newFakeTarget()
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()
	dir := t.TempDir()

	args := []string{
		"-target", ts.URL, "-declare",
		"-updates", "2000", "-seed", "7", "-domain", "1024",
		"-ingest.workers", "2", "-ingest.batch", "50", "-ingest.queue", "32",
		"-query.workers", "1",
		"-out", dir,
	}
	for i := 0; i < 2; i++ {
		opts, err := parseFlags(args)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := run(context.Background(), opts, &buf); err != nil {
			t.Fatalf("run %d: %v\n%s", i, err, buf.String())
		}
	}

	ingestPath := filepath.Join(dir, "BENCH_ingest.json")
	queryPath := filepath.Join(dir, "BENCH_query.json")
	for _, p := range []string{ingestPath, queryPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing report: %v", err)
		}
	}
	opts, err := parseFlags([]string{"-validate", ingestPath + "," + queryPath})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run(context.Background(), opts, &buf); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.Contains(buf.String(), "ok (ingest") || !strings.Contains(buf.String(), "ok (query") {
		t.Fatalf("validate output missing per-file lines:\n%s", buf.String())
	}
}

// TestRunAutotuneEmitsCurve: -autotune against the fake target writes a
// schema-tagged BENCH_autotune.json whose first trial is the flag
// configuration.
func TestRunAutotuneEmitsCurve(t *testing.T) {
	fake := newFakeTarget()
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()
	dir := t.TempDir()
	opts, err := parseFlags([]string{
		"-target", ts.URL, "-declare",
		"-updates", "500", "-domain", "256",
		"-ingest.workers", "2", "-ingest.batch", "25", "-ingest.queue", "8",
		"-autotune", "-autotune.trial", "50ms", "-autotune.sweeps", "1",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run(context.Background(), opts, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_autotune.json"))
	if err != nil {
		t.Fatal(err)
	}
	var at loadtest.AutotuneResult
	if err := json.Unmarshal(data, &at); err != nil {
		t.Fatal(err)
	}
	if at.Schema != loadtest.AutotuneSchema {
		t.Fatalf("schema %q", at.Schema)
	}
	if len(at.Trials) == 0 || at.Trials[0].Workers != 2 || at.Trials[0].Batch != 25 {
		t.Fatalf("first trial is not the flag config: %+v", at.Trials)
	}
	if at.Best.Throughput < at.Trials[0].Throughput {
		t.Fatalf("best %v slower than base %v", at.Best.Throughput, at.Trials[0].Throughput)
	}
	// The measured run after tuning still emitted the ingest report.
	if _, err := os.Stat(filepath.Join(dir, "BENCH_ingest.json")); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejects: the gate fails on garbage, on schema-invalid
// reports, and on valid-looking reports with zero traffic.
func TestValidateRejects(t *testing.T) {
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage.json")
	os.WriteFile(garbage, []byte("not json"), 0o644)
	if err := validateReports(garbage, &strings.Builder{}); err == nil {
		t.Fatal("garbage accepted")
	}

	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"schema":"skimsketch-bench/1","kind":"ingest"}`), 0o644)
	if err := validateReports(empty, &strings.Builder{}); err == nil {
		t.Fatal("schema-invalid report accepted")
	}

	if err := validateReports("", &strings.Builder{}); err == nil {
		t.Fatal("empty file list accepted")
	}
}
