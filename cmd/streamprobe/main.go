// Command streamprobe is a raw SKSP diagnostic: it dials a sketchd
// -listen.stream endpoint, sends one small DATA frame, and prints the
// response. With -replay it then drops the connection, reconnects, and
// re-sends the SAME (clientID, seq) — modelling a client whose ACK was
// lost in a disconnect — and fails unless the server answers with a
// duplicate ACK (exactly-once replay). Operators use it to check a live
// listener's health; scripts/integration_stream.sh uses it to gate the
// end-to-end dedupe contract.
//
//	streamprobe -addr 127.0.0.1:9091 -client probe-1 -seq 7 -replay
//
// The frame carries one insert into each of -streams (default "F,G")
// at -value, scoped to -tenant (empty = server default tenant). The
// streams must already be declared; a permanent ERROR response makes
// the probe exit nonzero with the server's message.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"skimsketch/internal/stream"
	"skimsketch/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9091", "sketchd -listen.stream address")
		client  = flag.String("client", "streamprobe", "client ID for the dedupe window")
		seq     = flag.Uint64("seq", 1, "frame sequence number")
		tenant  = flag.String("tenant", "", "tenant namespace (empty = default)")
		streams = flag.String("streams", "F,G", "comma-separated streams; one insert each")
		value   = flag.Uint64("value", 7, "inserted value (must be in every stream's domain)")
		replay  = flag.Bool("replay", false, "reconnect and re-send the same frame; require a duplicate ACK")
		timeout = flag.Duration("timeout", 5*time.Second, "per-connection I/O deadline")
	)
	flag.Parse()

	d := &wire.Data{ClientID: *client, Seq: *seq, Tenant: *tenant}
	for _, s := range strings.Split(*streams, ",") {
		if s = strings.TrimSpace(s); s != "" {
			d.Groups = append(d.Groups, stream.Group{Name: s, Updates: []stream.Update{{Value: *value, Weight: 1}}})
		}
	}

	ack, err := sendOnce(*addr, d, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamprobe:", err)
		os.Exit(1)
	}
	fmt.Printf("streamprobe: seq %d ACKed, applied=%d duplicate=%v\n", ack.Seq, ack.Applied, ack.Duplicate)
	if !*replay {
		return
	}
	// The replay: same frame, fresh connection — the server must answer
	// from its dedupe window without applying anything twice.
	ack2, err := sendOnce(*addr, d, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamprobe: replay:", err)
		os.Exit(1)
	}
	if !ack2.Duplicate {
		fmt.Fprintf(os.Stderr, "streamprobe: replay of seq %d was NOT deduplicated (applied=%d)\n", ack2.Seq, ack2.Applied)
		os.Exit(1)
	}
	if ack2.Applied != ack.Applied {
		fmt.Fprintf(os.Stderr, "streamprobe: duplicate ACK reports applied=%d, original said %d\n", ack2.Applied, ack.Applied)
		os.Exit(1)
	}
	fmt.Printf("streamprobe: replay of seq %d answered as duplicate, nothing re-applied\n", ack2.Seq)
}

// sendOnce performs one full SKSP session: dial, header exchange, one
// DATA frame, one response. REJECTs and ERRORs are returned as errors
// (the probe is a one-shot check, not a retrying client).
func sendOnce(addr string, d *wire.Data, timeout time.Duration) (wire.Ack, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return wire.Ack{}, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	w, rd := wire.NewWriter(nc), wire.NewReader(nc)
	if err := w.WriteHeader(); err != nil {
		return wire.Ack{}, err
	}
	if err := w.WriteData(d); err != nil {
		return wire.Ack{}, err
	}
	if err := w.Flush(); err != nil {
		return wire.Ack{}, err
	}
	if err := rd.ReadHeader(); err != nil {
		return wire.Ack{}, fmt.Errorf("header exchange: %w", err)
	}
	ft, payload, err := rd.Next()
	if err != nil {
		return wire.Ack{}, err
	}
	switch ft {
	case wire.FrameAck:
		return wire.DecodeAck(payload)
	case wire.FrameReject:
		rej, err := wire.DecodeReject(payload)
		if err != nil {
			return wire.Ack{}, err
		}
		return wire.Ack{}, fmt.Errorf("seq %d rejected, retry after %ds", rej.Seq, rej.RetryAfter)
	case wire.FrameError:
		ef, err := wire.DecodeError(payload)
		if err != nil {
			return wire.Ack{}, err
		}
		return wire.Ack{}, fmt.Errorf("seq %d permanent error: %s", ef.Seq, ef.Msg)
	default:
		return wire.Ack{}, fmt.Errorf("unexpected frame type %d", ft)
	}
}
