package main

import (
	"net/http/httptest"
	"sync"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

// testServerConcurrent builds a server whose engine runs the concurrent
// ingest pipeline.
func testServerConcurrent(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 4, BatchSize: 32, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.StopIngest)
	ts := httptest.NewServer(newServer(eng))
	t.Cleanup(ts.Close)
	return ts
}

// TestConcurrentHTTPUpdates hammers /update from many goroutines while
// /answer and /stats race with them, then reconciles exactly: every
// update inserts value 0, so the COUNT(F ⋈ G) estimate must equal nF·nG
// precisely and any lost update would change the product.
func TestConcurrentHTTPUpdates(t *testing.T) {
	ts := testServerConcurrent(t)
	for _, s := range []string{"F", "G"} {
		if code, _ := do(t, "POST", ts.URL+"/streams", map[string]any{"name": s, "domain": 64}); code != 201 {
			t.Fatalf("declare %s: %d", s, code)
		}
	}
	if code, body := do(t, "POST", ts.URL+"/queries", map[string]any{
		"name": "q", "agg": "COUNT",
		"left":  map[string]any{"stream": "F"},
		"right": map[string]any{"stream": "G"},
	}); code != 201 {
		t.Fatalf("register query: %d %v", code, body)
	}

	const (
		writers      = 6
		postsEach    = 25
		perBatchEach = 7 // updates per stream per POST body
	)
	// Each POST carries a mixed F/G batch, exercising the server's
	// group-by-stream decode in front of the pipeline.
	batch := make([]map[string]any, 0, 2*perBatchEach)
	for i := 0; i < perBatchEach; i++ {
		batch = append(batch,
			map[string]any{"stream": "F", "value": 0, "weight": 1},
			map[string]any{"stream": "G", "value": 0, "weight": 1},
		)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < postsEach; p++ {
				code, body := do(t, "POST", ts.URL+"/update", batch)
				if code != 200 {
					t.Errorf("update: %d %v", code, body)
					return
				}
			}
		}()
	}
	// Readers race with the writers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				path := "/answer?query=q"
				if r == 1 {
					path = "/stats"
				}
				if code, body := do(t, "GET", ts.URL+path, nil); code != 200 {
					t.Errorf("GET %s: %d %v", path, code, body)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if code, _ := do(t, "POST", ts.URL+"/flush", nil); code != 200 {
		t.Fatalf("flush: %d", code)
	}
	perStream := float64(writers * postsEach * perBatchEach)
	code, body := do(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	counts := body["updateCounts"].(map[string]any)
	if counts["F"].(float64) != perStream || counts["G"].(float64) != perStream {
		t.Fatalf("update counts %v, want %v per stream", counts, perStream)
	}
	ingest, ok := body["ingest"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing ingest counters: %v", body)
	}
	if applied := ingest["updatesApplied"].(float64); applied != 2*perStream {
		t.Fatalf("ingest counters applied=%v, want %v", applied, 2*perStream)
	}
	code, body = do(t, "GET", ts.URL+"/answer?query=q", nil)
	if code != 200 {
		t.Fatalf("answer: %d %v", code, body)
	}
	if est := body["estimate"].(float64); est != perStream*perStream {
		t.Fatalf("final estimate %v, want exactly %v (lost updates?)", est, perStream*perStream)
	}
}
