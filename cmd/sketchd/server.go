package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skimsketch/internal/engine"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// retryAfterSeconds is the Retry-After hint on 429 responses: the
// ingest queues drain in well under a second unless a worker is wedged,
// so one second is a safe client backoff.
const retryAfterSeconds = 1

// server wraps an engine with the HTTP API.
type server struct {
	eng *engine.Engine
	mux *http.ServeMux
	// snapshot produces the engine checkpoint; a field so tests can
	// substitute a failing producer.
	snapshot func(io.Writer) error
	// predMu guards preds, the wire-expressible definitions of every
	// registered range predicate. Engine predicates are opaque functions,
	// so the server keeps the definitions itself — they go into the
	// checkpoint and are re-registered before restore at boot.
	predMu sync.Mutex
	preds  []predicateDef

	// start anchors the monotonic clock every latency and uptime figure
	// in /stats derives from — wall-clock jumps (NTP steps, suspends)
	// cannot corrupt them, which is what lets an external harness
	// reconcile its own measurements against the server's.
	start time.Time
	// draining flips once shutdown begins; /healthz then reports 503 so
	// load balancers and harnesses stop sending new work during drain.
	draining atomic.Bool
	// latMu guards updateLat, the server-side histogram of /update
	// handling latency (monotonic, admission through response encode,
	// 429 rejections included). One histogram per process; the load
	// harness merges it with its own client-side view.
	latMu     sync.Mutex
	updateLat stats.Histogram
}

func newServer(eng *engine.Engine) *server {
	s := &server{eng: eng, mux: http.NewServeMux(), snapshot: eng.Snapshot, start: time.Now()}
	s.mux.HandleFunc("/streams", s.handleStreams)
	s.mux.HandleFunc("/predicates", s.handlePredicates)
	s.mux.HandleFunc("/queries", s.handleQueries)
	s.mux.HandleFunc("/queries/", s.handleQueryByName)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/answer", s.handleAnswer)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/restore", s.handleRestore)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// handleHealthz is the readiness probe: 200 while the server is taking
// traffic, 503 once shutdown drain begins. A sketchd that can execute
// this handler has already restored its checkpoint and started its
// ingest pipeline (run() opens the listener last), so 200 really does
// mean "ready", not merely "process exists".
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// recordUpdateLatency folds one /update handling duration into the
// server-side histogram.
func (s *server) recordUpdateLatency(d time.Duration) {
	s.latMu.Lock()
	s.updateLat.Record(int64(d))
	s.latMu.Unlock()
}

// updateLatencySnapshot summarizes the server-side /update latency
// histogram for /stats. All durations are nanoseconds from the
// monotonic clock.
func (s *server) updateLatencySnapshot() map[string]any {
	s.latMu.Lock()
	h := s.updateLat // histograms are value types; this is a deep copy
	s.latMu.Unlock()
	return map[string]any{
		"count":  h.Count(),
		"meanNs": h.Mean(),
		"minNs":  h.Min(),
		"maxNs":  h.Max(),
		"p50Ns":  stats.Quantile(&h, 0.50),
		"p95Ns":  stats.Quantile(&h, 0.95),
		"p99Ns":  stats.Quantile(&h, 0.99),
		"p999Ns": stats.Quantile(&h, 0.999),
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders an error payload.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decode parses the request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

type streamReq struct {
	Name   string `json:"name"`
	Domain uint64 `json:"domain"`
}

func (s *server) handleStreams(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req streamReq
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.eng.DeclareStream(req.Name, req.Domain); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"streams": s.eng.Streams()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST or GET"))
	}
}

// predicateReq describes a value-range predicate [min, max], the
// predicate form expressible over the wire.
type predicateReq struct {
	Name string `json:"name"`
	Min  uint64 `json:"min"`
	Max  uint64 `json:"max"`
}

// predicateDef is the persistent form of a range predicate: unlike the
// engine's opaque predicate functions it serializes, so checkpoints are
// self-contained.
type predicateDef struct {
	Name string `json:"name"`
	Min  uint64 `json:"min"`
	Max  uint64 `json:"max"`
}

// rangePredicate builds the engine predicate for a [min, max] value range.
func rangePredicate(min, max uint64) engine.Predicate {
	return func(v uint64, _ int64) bool { return v >= min && v <= max }
}

// registerRangePredicate registers def with the engine and records its
// definition for checkpointing. Re-registering an identical definition
// is a no-op (so checkpoint restore is idempotent); a conflicting
// definition under an existing name is an error.
func (s *server) registerRangePredicate(def predicateDef) error {
	s.predMu.Lock()
	defer s.predMu.Unlock()
	for _, p := range s.preds {
		if p.Name == def.Name {
			if p == def {
				return nil
			}
			return fmt.Errorf("predicate %q already registered with range [%d,%d]", p.Name, p.Min, p.Max)
		}
	}
	if err := s.eng.RegisterPredicate(def.Name, rangePredicate(def.Min, def.Max)); err != nil {
		return err
	}
	s.preds = append(s.preds, def)
	return nil
}

func (s *server) handlePredicates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req predicateReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Max < req.Min {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("max %d below min %d", req.Max, req.Min))
		return
	}
	if err := s.registerRangePredicate(predicateDef{Name: req.Name, Min: req.Min, Max: req.Max}); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

type sideReq struct {
	Stream        string `json:"stream"`
	Predicate     string `json:"predicate,omitempty"`
	WindowLen     int64  `json:"windowLen,omitempty"`
	WindowBuckets int    `json:"windowBuckets,omitempty"`
}

type queryReq struct {
	Name  string  `json:"name"`
	Agg   string  `json:"agg"`
	Left  sideReq `json:"left"`
	Right sideReq `json:"right"`
}

func (s *server) handleQueries(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req queryReq
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var agg engine.Aggregate
		switch strings.ToUpper(req.Agg) {
		case "COUNT", "":
			agg = engine.Count
		case "SUM":
			agg = engine.Sum
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown aggregate %q", req.Agg))
			return
		}
		spec := engine.QuerySpec{
			Name:  req.Name,
			Agg:   agg,
			Left:  engine.Side(req.Left),
			Right: engine.Side(req.Right),
		}
		if err := s.eng.RegisterQuery(spec); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"queries": s.eng.Queries()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST or GET"))
	}
}

func (s *server) handleQueryByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/queries/")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing query name"))
		return
	}
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use DELETE"))
		return
	}
	if err := s.eng.RemoveQuery(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type updateReq struct {
	Stream string `json:"stream"`
	Value  uint64 `json:"value"`
	// Weight is a pointer so an omitted weight (nil → default 1, a bare
	// insert) is distinguishable from an explicit 0 (a no-op update the
	// caller really asked for, e.g. generated pipelines).
	Weight *int64 `json:"weight"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	// Every /update outcome — applied, rejected, malformed — is timed on
	// the monotonic clock into the server-side latency histogram, so the
	// request count the harness reconciles against includes 429s.
	t0 := time.Now()
	defer func() { s.recordUpdateLatency(time.Since(t0)) }()
	// Backpressure: when the ingest queues are full, shed load with 429 +
	// Retry-After instead of blocking the handler (and the client, and
	// eventually every server connection) on a queue that may stay full.
	// The check is first — before body parsing — because an overloaded
	// server wants the cheapest possible rejection path. Nothing has been
	// applied, so the request is safely retryable.
	if s.eng.IngestSaturated() {
		s.eng.NoteRejected(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "ingest queues full; retry after backoff",
		})
		return
	}
	// Accept a single object or a batch array.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var batch []updateReq
	if err := json.Unmarshal(body, &batch); err != nil {
		var one updateReq
		if err := json.Unmarshal(body, &one); err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("expected a JSON update object or array of them"))
			return
		}
		batch = []updateReq{one}
	}
	// Group the batch by stream (preserving per-stream order) and hand
	// each group to the engine's batched ingest path, which amortizes
	// locking and hash evaluation and, with -ingest.workers, applies
	// concurrently.
	groups := make(map[string][]stream.Update)
	order := make([]string, 0, 2)
	for _, u := range batch {
		weight := int64(1) // bare inserts may omit the weight
		if u.Weight != nil {
			weight = *u.Weight
		}
		if _, ok := groups[u.Stream]; !ok {
			order = append(order, u.Stream)
		}
		groups[u.Stream] = append(groups[u.Stream], stream.Update{Value: u.Value, Weight: weight})
	}
	// The request is atomic: validate EVERY stream group first, then
	// apply. A bad group (unknown stream, out-of-domain value) rejects the
	// whole request with the failing stream named, and no group — not even
	// an earlier valid one — is applied.
	for _, name := range order {
		if err := s.eng.ValidateBatch(name, groups[name]); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error":  err.Error(),
				"stream": name,
			})
			return
		}
	}
	for _, name := range order {
		if err := s.eng.IngestBatch(name, groups[name]); err != nil {
			// Unreachable in practice (validated above); report faithfully.
			writeJSON(w, http.StatusInternalServerError, map[string]string{
				"error":  err.Error(),
				"stream": name,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"applied": len(batch)})
}

// handleFlush drains the ingest pipeline (a no-op when ingestion is
// synchronous): once it returns, every previously accepted update is
// folded into its synopses.
func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	s.eng.Flush()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	name := r.URL.Query().Get("query")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?query="))
		return
	}
	ans, err := s.eng.Answer(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":    ans.Query,
		"agg":      ans.Agg.String(),
		"estimate": ans.Estimate,
		"detail": map[string]any{
			"denseDense":   ans.Detail.DenseDense,
			"denseSparse":  ans.Detail.DenseSparse,
			"sparseDense":  ans.Detail.SparseDense,
			"sparseSparse": ans.Detail.SparseSparse,
			"denseCountF":  ans.Detail.DenseCountF,
			"denseCountG":  ans.Detail.DenseCountG,
		},
	})
}

// handleSnapshot serves the engine state (streams, queries, synopsis
// counters) as the engine's JSON snapshot format — the checkpoint side
// of a restart. The snapshot is buffered before any byte reaches the
// client: a mid-serialization error therefore yields a clean 500 JSON
// error instead of a 200 with a truncated body glued to an error
// fragment (which a restoring client would read as a corrupt
// checkpoint), and success responses carry an exact Content-Length.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	var buf bytes.Buffer
	if err := s.snapshot(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleRestore loads a snapshot into the (empty) engine. Range
// predicates registered via /predicates must be re-registered before
// restoring a snapshot that references them.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	if err := s.eng.Restore(r.Body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"streams":      st.Streams,
		"queries":      st.Queries,
		"synopses":     st.Synopses,
		"synopsisRefs": st.SynopsisRefs,
		"totalWords":   st.TotalWords,
		"updateCounts": st.UpdateCounts,
		"queryWorkers": st.QueryWorkers,
		"answerCache": map[string]int64{
			"hits":   st.AnswerCacheHits,
			"misses": st.AnswerCacheMisses,
		},
		"ingest": s.eng.IngestStats(),
		// saturated mirrors the admission probe behind /update's 429:
		// true while at least one ingest queue is full.
		"saturated": s.eng.IngestSaturated(),
		// updateLatency is the server-side /update handling histogram
		// and uptimeSeconds the process age, both on the monotonic
		// clock — the fields cmd/loadgen reconciles its client-side
		// measurements against (request counts must match exactly;
		// latencies must bracket from below).
		"updateLatency": s.updateLatencySnapshot(),
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

// sketchdCheckpoint is the payload sketchd stores inside the SKCP
// checkpoint envelope (internal/checkpoint): the wire-expressible
// predicate definitions plus the engine's own JSON snapshot. Carrying
// the predicates makes the checkpoint self-contained — Engine.Restore
// requires every predicate named by a snapshot to be re-registered
// first, which a bare engine snapshot cannot do across a restart.
type sketchdCheckpoint struct {
	Version    int             `json:"version"`
	Predicates []predicateDef  `json:"predicates,omitempty"`
	Engine     json.RawMessage `json:"engine"`
}

const sketchdCheckpointVersion = 1

// writeCheckpoint produces the full server checkpoint payload. It is
// handed to checkpoint.Manager.Save, which wraps it in the SKCP
// envelope and rotates it onto disk atomically.
func (s *server) writeCheckpoint(w io.Writer) error {
	var engBuf bytes.Buffer
	if err := s.snapshot(&engBuf); err != nil {
		return err
	}
	s.predMu.Lock()
	preds := append([]predicateDef(nil), s.preds...)
	s.predMu.Unlock()
	return json.NewEncoder(w).Encode(&sketchdCheckpoint{
		Version:    sketchdCheckpointVersion,
		Predicates: preds,
		Engine:     engBuf.Bytes(),
	})
}

// readCheckpoint restores a checkpoint payload into the (empty) engine:
// predicates first, then the engine snapshot.
func (s *server) readCheckpoint(r io.Reader) error {
	var cp sketchdCheckpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cp); err != nil {
		return fmt.Errorf("decode checkpoint: %w", err)
	}
	if cp.Version != sketchdCheckpointVersion {
		return fmt.Errorf("unsupported sketchd checkpoint version %d", cp.Version)
	}
	for _, def := range cp.Predicates {
		if err := s.registerRangePredicate(def); err != nil {
			return err
		}
	}
	return s.eng.Restore(bytes.NewReader(cp.Engine))
}
