package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skimsketch/internal/cluster"
	"skimsketch/internal/engine"
	"skimsketch/internal/monitor"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/wire"
)

// retryAfterSeconds is the Retry-After hint on 429 responses: the
// ingest queues drain in well under a second unless a worker is wedged,
// so one second is a safe client backoff.
const retryAfterSeconds = 1

// server wraps an engine with the HTTP API.
type server struct {
	eng *engine.Engine
	mux *http.ServeMux
	// snapshot produces the engine checkpoint; a field so tests can
	// substitute a failing producer.
	snapshot func(io.Writer) error
	// predMu guards preds, the wire-expressible definitions of every
	// registered range predicate. Engine predicates are opaque functions,
	// so the server keeps the definitions itself — they go into the
	// checkpoint and are re-registered before restore at boot.
	predMu sync.Mutex
	preds  []predicateDef

	// start anchors the monotonic clock every latency and uptime figure
	// in /stats derives from — wall-clock jumps (NTP steps, suspends)
	// cannot corrupt them, which is what lets an external harness
	// reconcile its own measurements against the server's.
	start time.Time
	// draining flips once shutdown begins; /healthz then reports 503 so
	// load balancers and harnesses stop sending new work during drain.
	draining atomic.Bool
	// latMu guards updateLat, the server-side histogram of /update
	// handling latency (monotonic, admission through response encode,
	// 429 rejections included). One histogram per process; the load
	// harness merges it with its own client-side view.
	latMu     sync.Mutex
	updateLat stats.Histogram

	// dedupe is the (clientID, seq) replay window shared by the SKSP
	// stream listener and /update's Idempotency-Key path: a client that
	// lost a response (dropped connection, timeout) retries under the
	// same identity and is answered from here instead of re-applied.
	dedupe *wire.Window
	// stream is the SKSP listener, when -listen.stream enabled it; its
	// counters render under /stats "stream".
	stream *streamServer
}

func newServer(eng *engine.Engine) *server {
	s := &server{
		eng:      eng,
		mux:      http.NewServeMux(),
		snapshot: eng.Snapshot,
		start:    time.Now(),
		dedupe:   wire.NewWindow(0, 0),
	}
	s.mux.HandleFunc("/streams", s.handleStreams)
	s.mux.HandleFunc("/predicates", s.handlePredicates)
	s.mux.HandleFunc("/queries", s.handleQueries)
	s.mux.HandleFunc("/queries/", s.handleQueryByName)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/answer", s.handleAnswer)
	s.mux.HandleFunc("/sketch", s.handleSketch)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/restore", s.handleRestore)
	s.mux.HandleFunc("/tenants", s.handleTenants)
	s.mux.HandleFunc("/watches", s.handleWatches)
	s.mux.HandleFunc("/watches/", s.handleWatchByName)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// tenantCtxKey carries the tenant resolved from the URL (path prefix or
// ?tenant=) through the mux. The empty string means "not specified",
// which is distinct from naming the default tenant explicitly: a bare
// /stats reports every tenant, /t/default/stats reports one.
type tenantCtxKey struct{}

// ServeHTTP resolves the tenant scope, then muxes. Every endpoint of
// the flat API is also reachable under /t/{tenant}/…, and a ?tenant=
// query parameter scopes the flat paths; naming conflicting tenants in
// both is a 400, not a silent pick.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tenant := ""
	if rest, ok := strings.CutPrefix(r.URL.Path, "/t/"); ok {
		name, tail, found := strings.Cut(rest, "/")
		if !found || name == "" {
			writeErr(w, http.StatusNotFound, errors.New("tenant-scoped paths are /t/{tenant}/{endpoint}"))
			return
		}
		tenant = name
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/" + tail
		r = r2
	}
	if q := r.URL.Query().Get("tenant"); q != "" {
		if tenant != "" && q != tenant {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("conflicting tenants %q (path) and %q (query)", tenant, q))
			return
		}
		tenant = q
	}
	if tenant != "" {
		if err := engine.ValidTenantName(tenant); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tenant))
	}
	s.mux.ServeHTTP(w, r)
}

// requestTenant returns the tenant the URL named, or "" when the
// request used the flat un-scoped API.
func requestTenant(r *http.Request) string {
	tenant, _ := r.Context().Value(tenantCtxKey{}).(string)
	return tenant
}

// scope resolves the tenant handle a request operates on. bodyTenant is
// the request body's optional "tenant" field; precedence is path >
// query > body, with disagreement between URL and body rejected rather
// than resolved. An entirely unscoped request targets the default
// tenant, which is how the pre-tenant flat API keeps its behavior.
func (s *server) scope(r *http.Request, bodyTenant string) (*engine.Tenant, error) {
	tenant := requestTenant(r)
	if bodyTenant != "" && tenant != "" && bodyTenant != tenant {
		return nil, fmt.Errorf("conflicting tenants %q (url) and %q (body)", tenant, bodyTenant)
	}
	if tenant == "" {
		tenant = bodyTenant
	}
	if tenant == "" {
		tenant = engine.DefaultTenant
	} else if err := engine.ValidTenantName(tenant); err != nil {
		return nil, err
	}
	return s.eng.Tenant(tenant), nil
}

// handleHealthz is the readiness probe: 200 while the server is taking
// traffic, 503 once shutdown drain begins. A sketchd that can execute
// this handler has already restored its checkpoint and started its
// ingest pipeline (run() opens the listener last), so 200 really does
// mean "ready", not merely "process exists".
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// recordUpdateLatency folds one /update handling duration into the
// server-side histogram.
func (s *server) recordUpdateLatency(d time.Duration) {
	s.latMu.Lock()
	s.updateLat.Record(int64(d))
	s.latMu.Unlock()
}

// updateLatencySnapshot summarizes the server-side /update latency
// histogram for /stats. All durations are nanoseconds from the
// monotonic clock.
func (s *server) updateLatencySnapshot() map[string]any {
	s.latMu.Lock()
	h := s.updateLat // histograms are value types; this is a deep copy
	s.latMu.Unlock()
	return map[string]any{
		"count":  h.Count(),
		"meanNs": h.Mean(),
		"minNs":  h.Min(),
		"maxNs":  h.Max(),
		"p50Ns":  stats.Quantile(&h, 0.50),
		"p95Ns":  stats.Quantile(&h, 0.95),
		"p99Ns":  stats.Quantile(&h, 0.99),
		"p999Ns": stats.Quantile(&h, 0.999),
	}
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders an error payload.
func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeEngineErr maps an engine registration/ingest error to the wire:
// the whole ErrQuotaExceeded family becomes 429 with a Retry-After hint
// (the universal "this tenant is over its share" signal clients already
// back off on), everything else is a caller mistake (400).
func writeEngineErr(w http.ResponseWriter, err error) {
	if errors.Is(err, engine.ErrQuotaExceeded) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeErr(w, http.StatusTooManyRequests, err)
		return
	}
	writeErr(w, http.StatusBadRequest, err)
}

// decode parses the request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

type streamReq struct {
	Tenant string `json:"tenant,omitempty"`
	Name   string `json:"name"`
	Domain uint64 `json:"domain"`
}

func (s *server) handleStreams(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req streamReq
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		t, err := s.scope(r, req.Tenant)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := t.DeclareStream(req.Name, req.Domain); err != nil {
			writeEngineErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
	case http.MethodGet:
		t, _ := s.scope(r, "")
		writeJSON(w, http.StatusOK, map[string]any{"streams": t.Streams()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST or GET"))
	}
}

// predicateReq describes a value-range predicate [min, max], the
// predicate form expressible over the wire.
type predicateReq struct {
	Tenant string `json:"tenant,omitempty"`
	Name   string `json:"name"`
	Min    uint64 `json:"min"`
	Max    uint64 `json:"max"`
}

// predicateDef is the persistent form of a range predicate: unlike the
// engine's opaque predicate functions it serializes, so checkpoints are
// self-contained. An empty Tenant means the default tenant — which is
// also what a pre-tenant (version 1) checkpoint decodes to.
type predicateDef struct {
	Tenant string `json:"tenant,omitempty"`
	Name   string `json:"name"`
	Min    uint64 `json:"min"`
	Max    uint64 `json:"max"`
}

// rangePredicate builds the engine predicate for a [min, max] value range.
func rangePredicate(min, max uint64) engine.Predicate {
	return func(v uint64, _ int64) bool { return v >= min && v <= max }
}

// registerRangePredicate registers def with the engine and records its
// definition for checkpointing. Re-registering an identical definition
// is a no-op (so checkpoint restore is idempotent); a conflicting
// definition under an existing (tenant, name) is an error.
func (s *server) registerRangePredicate(def predicateDef) error {
	if def.Tenant == engine.DefaultTenant {
		def.Tenant = "" // canonical spelling, so dedup and checkpoints agree
	}
	tenant := def.Tenant
	if tenant == "" {
		tenant = engine.DefaultTenant
	}
	s.predMu.Lock()
	defer s.predMu.Unlock()
	for _, p := range s.preds {
		if p.Name == def.Name && p.Tenant == def.Tenant {
			if p == def {
				return nil
			}
			return fmt.Errorf("predicate %q already registered with range [%d,%d]", p.Name, p.Min, p.Max)
		}
	}
	if err := s.eng.Tenant(tenant).RegisterPredicate(def.Name, rangePredicate(def.Min, def.Max)); err != nil {
		return err
	}
	s.preds = append(s.preds, def)
	return nil
}

func (s *server) handlePredicates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req predicateReq
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Max < req.Min {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("max %d below min %d", req.Max, req.Min))
		return
	}
	t, err := s.scope(r, req.Tenant)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.registerRangePredicate(predicateDef{Tenant: t.Name(), Name: req.Name, Min: req.Min, Max: req.Max}); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
}

type sideReq struct {
	Stream        string `json:"stream"`
	Predicate     string `json:"predicate,omitempty"`
	WindowLen     int64  `json:"windowLen,omitempty"`
	WindowBuckets int    `json:"windowBuckets,omitempty"`
}

type queryReq struct {
	Tenant string  `json:"tenant,omitempty"`
	Name   string  `json:"name"`
	Agg    string  `json:"agg"`
	Left   sideReq `json:"left"`
	Right  sideReq `json:"right"`
}

func (s *server) handleQueries(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req queryReq
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var agg engine.Aggregate
		switch strings.ToUpper(req.Agg) {
		case "COUNT", "":
			agg = engine.Count
		case "SUM":
			agg = engine.Sum
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown aggregate %q", req.Agg))
			return
		}
		t, err := s.scope(r, req.Tenant)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		spec := engine.QuerySpec{
			Name:  req.Name,
			Agg:   agg,
			Left:  engine.Side(req.Left),
			Right: engine.Side(req.Right),
		}
		if err := t.RegisterQuery(spec); err != nil {
			// A fresh synopsis pair over the memory quota arrives here and
			// leaves as a 429.
			writeEngineErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
	case http.MethodGet:
		t, _ := s.scope(r, "")
		writeJSON(w, http.StatusOK, map[string]any{"queries": t.Queries()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST or GET"))
	}
}

func (s *server) handleQueryByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/queries/")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing query name"))
		return
	}
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use DELETE"))
		return
	}
	t, _ := s.scope(r, "")
	if err := t.RemoveQuery(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type updateReq struct {
	Tenant string `json:"tenant,omitempty"`
	Stream string `json:"stream"`
	Value  uint64 `json:"value"`
	// Weight is a pointer so an omitted weight (nil → default 1, a bare
	// insert) is distinguishable from an explicit 0 (a no-op update the
	// caller really asked for, e.g. generated pipelines).
	Weight *int64 `json:"weight"`
}

// parseIdempotencyKey parses an optional Idempotency-Key header of the
// form "clientID:seq". A client that may retry a batch (because the
// connection died after the server applied it but before the response
// arrived) sends the same key on every attempt; the server remembers
// applied keys in its dedupe window and answers replays without
// re-applying. Returns ok=false when the header is absent.
func parseIdempotencyKey(r *http.Request) (client string, seq uint64, ok bool, err error) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		return "", 0, false, nil
	}
	i := strings.LastIndexByte(key, ':')
	if i <= 0 || i == len(key)-1 {
		return "", 0, false, fmt.Errorf("malformed Idempotency-Key %q: want clientID:seq", key)
	}
	seq, err = strconv.ParseUint(key[i+1:], 10, 64)
	if err != nil {
		return "", 0, false, fmt.Errorf("malformed Idempotency-Key %q: seq: %w", key, err)
	}
	if len(key) > 2*wire.MaxNameLen {
		return "", 0, false, fmt.Errorf("Idempotency-Key longer than %d bytes", 2*wire.MaxNameLen)
	}
	return key[:i], seq, true, nil
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	// Every /update outcome — applied, rejected, malformed — is timed on
	// the monotonic clock into the server-side latency histogram, so the
	// request count the harness reconciles against includes 429s.
	t0 := time.Now()
	defer func() { s.recordUpdateLatency(time.Since(t0)) }()
	// Idempotent replay: a remembered key means an earlier attempt of
	// this very batch was applied and only the response was lost. Answer
	// from the window — before the saturation check, because re-applying
	// nothing is always admissible.
	idClient, idSeq, hasKey, err := parseIdempotencyKey(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if hasKey {
		if out, ok := s.dedupe.Lookup(idClient, idSeq); ok {
			writeJSON(w, http.StatusOK, map[string]any{"applied": out.Applied, "deduplicated": true})
			return
		}
	}
	// Backpressure: when the ingest queues are full, shed load with 429 +
	// Retry-After instead of blocking the handler (and the client, and
	// eventually every server connection) on a queue that may stay full.
	// The check is early — before body parsing — because an overloaded
	// server wants the cheapest possible rejection path. Nothing has been
	// applied, so the request is safely retryable.
	if s.eng.IngestSaturated() {
		s.eng.NoteRejected(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "ingest queues full; retry after backoff",
		})
		return
	}
	// Accept a single object or a batch array.
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var batch []updateReq
	if err := json.Unmarshal(body, &batch); err != nil {
		var one updateReq
		if err := json.Unmarshal(body, &one); err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("expected a JSON update object or array of them"))
			return
		}
		batch = []updateReq{one}
	}
	// One request updates one tenant: per-object tenant fields must agree
	// with each other and with the URL scope, so a batch can never be
	// half-applied across namespaces.
	bodyTenant := ""
	for _, u := range batch {
		if u.Tenant == "" {
			continue
		}
		if bodyTenant != "" && u.Tenant != bodyTenant {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("batch mixes tenants %q and %q; one tenant per request", bodyTenant, u.Tenant))
			return
		}
		bodyTenant = u.Tenant
	}
	t, err := s.scope(r, bodyTenant)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Group the batch by stream (preserving per-stream order) and hand
	// the whole request to the engine's multi-group ingest path, which
	// amortizes locking and hash evaluation and, with -ingest.workers,
	// applies concurrently.
	byStream := make(map[string]int)
	groups := make([]stream.Group, 0, 2)
	for _, u := range batch {
		weight := int64(1) // bare inserts may omit the weight
		if u.Weight != nil {
			weight = *u.Weight
		}
		i, ok := byStream[u.Stream]
		if !ok {
			i = len(groups)
			byStream[u.Stream] = i
			groups = append(groups, stream.Group{Name: u.Stream})
		}
		groups[i].Updates = append(groups[i].Updates, stream.Update{Value: u.Value, Weight: weight})
	}
	// The request is atomic: validate EVERY stream group first, so a bad
	// group (unknown stream, out-of-domain value) rejects the whole
	// request with the failing stream named.
	for _, g := range groups {
		if err := t.ValidateBatch(g.Name, g.Updates); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error":  err.Error(),
				"stream": g.Name,
			})
			return
		}
	}
	// Admission is atomic too: IngestGroups checks the tenant's
	// queue-share quota against the WHOLE request before admitting any
	// group, so a 429 here really means "nothing was applied, retry the
	// whole batch" — the contract every retrying client assumes.
	if err := t.IngestGroups(groups, nil); err != nil {
		if errors.Is(err, engine.ErrQuotaExceeded) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
			return
		}
		// Unreachable in practice (validated above); report faithfully.
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if hasKey {
		s.dedupe.Record(idClient, idSeq, wire.Outcome{Applied: int64(len(batch))})
	}
	writeJSON(w, http.StatusOK, map[string]int{"applied": len(batch)})
}

// handleFlush drains the ingest pipeline (a no-op when ingestion is
// synchronous): once it returns, every previously accepted update is
// folded into its synopses. The pipeline is shared, so a tenant-scoped
// flush drains everyone — flush is a barrier, not a privilege.
func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	s.eng.Flush()
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	name := r.URL.Query().Get("query")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?query="))
		return
	}
	t, _ := s.scope(r, "")
	ans, err := t.Answer(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":    ans.Query,
		"agg":      ans.Agg.String(),
		"estimate": ans.Estimate,
		"detail": map[string]any{
			"denseDense":   ans.Detail.DenseDense,
			"denseSparse":  ans.Detail.DenseSparse,
			"sparseDense":  ans.Detail.SparseDense,
			"sparseSparse": ans.Detail.SparseSparse,
			"denseCountF":  ans.Detail.DenseCountF,
			"denseCountG":  ans.Detail.DenseCountG,
		},
	})
}

// handleSketch serves one query's slim SKSL cluster payload — both
// synopses plus the metadata a merger needs to estimate without asking
// again (docs/FORMATS.md). This is the shard side of cluster mode: the
// fat update-side state (hash families, pipeline, intern tables) stays
// here, only the slim counters travel. The snapshot drains the ingest
// pipeline first, so a payload reflects every previously accepted
// update — which is what makes a healthy cluster answer bit-identical
// to a single node's.
func (s *server) handleSketch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	name := r.URL.Query().Get("query")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing ?query="))
		return
	}
	t, _ := s.scope(r, "")
	qs, err := t.QuerySketches(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	agg := cluster.AggCount
	if qs.Agg == engine.Sum {
		agg = cluster.AggSum
	}
	blob, err := cluster.EncodePayload(&cluster.Payload{
		Agg: agg, Domain: qs.Domain,
		LeftEpoch: qs.LeftEpoch, RightEpoch: qs.RightEpoch,
		Left: qs.Left, Right: qs.Right,
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// handleSnapshot serves the engine state (streams, queries, synopsis
// counters) as the engine's JSON snapshot format — the checkpoint side
// of a restart. Tenant-scoped, it serves just that tenant's slice in
// the single-tenant layout. The snapshot is buffered before any byte
// reaches the client: a mid-serialization error therefore yields a
// clean 500 JSON error instead of a 200 with a truncated body glued to
// an error fragment (which a restoring client would read as a corrupt
// checkpoint), and success responses carry an exact Content-Length.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	produce := s.snapshot
	if tenant := requestTenant(r); tenant != "" {
		produce = s.eng.Tenant(tenant).Snapshot
	}
	var buf bytes.Buffer
	if err := produce(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleRestore loads a snapshot into the (empty) engine, or — tenant-
// scoped — a single-tenant snapshot into one empty tenant of a running
// engine. Range predicates registered via /predicates must be
// re-registered before restoring a snapshot that references them.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var err error
	if tenant := requestTenant(r); tenant != "" {
		err = s.eng.Tenant(tenant).Restore(r.Body)
	} else {
		err = s.eng.Restore(r.Body)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// quotaJSON is the wire form of a tenant quota (0 = unlimited).
func quotaJSON(q engine.Quota) map[string]any {
	return map[string]any{
		"maxSynopsisWords":  q.MaxSynopsisWords,
		"maxPendingUpdates": q.MaxPendingUpdates,
	}
}

// tenantStatsJSON renders one tenant's stats slice.
func tenantStatsJSON(st engine.TenantStats) map[string]any {
	return map[string]any{
		"tenant":       st.Tenant,
		"streams":      st.Streams,
		"queries":      st.Queries,
		"synopses":     st.Synopses,
		"synopsisRefs": st.SynopsisRefs,
		"totalWords":   st.TotalWords,
		"updateCounts": st.UpdateCounts,
		"answerCache": map[string]int64{
			"hits":   st.AnswerCacheHits,
			"misses": st.AnswerCacheMisses,
		},
		"pendingUpdates": st.PendingUpdates,
		"rejected":       st.Rejected,
		"watches":        st.Watches,
		"quota":          quotaJSON(st.Quota),
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	// A tenant-scoped /stats is just that tenant's slice — what a tenant
	// harness reconciles its own counters against.
	if tenant := requestTenant(r); tenant != "" {
		writeJSON(w, http.StatusOK, tenantStatsJSON(s.eng.Tenant(tenant).Stats()))
		return
	}
	st := s.eng.Stats()
	tenants := make(map[string]any, len(st.Tenants))
	for name, ts := range st.Tenants {
		tenants[name] = tenantStatsJSON(ts)
	}
	resp := map[string]any{
		"streams":      st.Streams,
		"queries":      st.Queries,
		"synopses":     st.Synopses,
		"synopsisRefs": st.SynopsisRefs,
		"totalWords":   st.TotalWords,
		"updateCounts": st.UpdateCounts,
		"queryWorkers": st.QueryWorkers,
		"answerCache": map[string]int64{
			"hits":   st.AnswerCacheHits,
			"misses": st.AnswerCacheMisses,
		},
		"watches": st.Watches,
		"tenants": tenants,
		"ingest":  s.eng.IngestStats(),
		// saturated mirrors the admission probe behind /update's 429:
		// true while at least one ingest queue is full.
		"saturated": s.eng.IngestSaturated(),
		// updateLatency is the server-side /update handling histogram
		// and uptimeSeconds the process age, both on the monotonic
		// clock — the fields cmd/loadgen reconciles its client-side
		// measurements against (request counts must match exactly;
		// latencies must bracket from below).
		"updateLatency": s.updateLatencySnapshot(),
		"uptimeSeconds": time.Since(s.start).Seconds(),
	}
	// The SKSP listener's counters, when -listen.stream is on: the
	// binary-protocol mirror of the HTTP ingest figures above.
	if s.stream != nil {
		resp["stream"] = s.stream.statsJSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

// tenantReq configures one tenant: POST /tenants installs (or replaces)
// its quota.
type tenantReq struct {
	Name  string       `json:"name"`
	Quota engine.Quota `json:"quota"`
}

// handleTenants administers tenant namespaces: GET lists every tenant
// with its quota, POST sets a tenant's quota (creating the namespace if
// needed). Quotas take effect immediately; lowering one below current
// usage keeps existing state and rejects further growth.
func (s *server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		st := s.eng.Stats()
		names := s.eng.TenantNames()
		out := make([]map[string]any, 0, len(names))
		for _, name := range names {
			out = append(out, tenantStatsJSON(st.Tenants[name]))
		}
		writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
	case http.MethodPost:
		var req tenantReq
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.eng.SetQuota(req.Name, req.Quota); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

// watchReq registers one standing watch on a query of the scoped
// tenant.
type watchReq struct {
	Tenant string `json:"tenant,omitempty"`
	Query  string `json:"query"`
	High   int64  `json:"high"`
	Low    int64  `json:"low"`
}

// watchJSON renders one watch status, naming the alert state.
func watchJSON(st monitor.WatchStatus) map[string]any {
	state := "normal"
	if st.State == monitor.Alert {
		state = "alert"
	}
	return map[string]any{
		"tenant":       st.Tenant,
		"query":        st.Query,
		"high":         st.High,
		"low":          st.Low,
		"state":        state,
		"evaluations":  st.Evaluations,
		"transitions":  st.Transitions,
		"lastEstimate": st.LastEstimate,
	}
}

// watchListJSON renders a watch status list (never null on the wire).
func watchListJSON(sts []monitor.WatchStatus) []map[string]any {
	out := make([]map[string]any, 0, len(sts))
	for _, st := range sts {
		out = append(out, watchJSON(st))
	}
	return out
}

// handleWatches manages the scoped tenant's standing watches: GET lists
// them, POST registers one.
func (s *server) handleWatches(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		t, _ := s.scope(r, "")
		writeJSON(w, http.StatusOK, map[string]any{"watches": watchListJSON(t.Watches())})
	case http.MethodPost:
		var req watchReq
		if err := decode(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		t, err := s.scope(r, req.Tenant)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := t.RegisterWatch(engine.WatchSpec{Query: req.Query, High: req.High, Low: req.Low}); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "ok"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

// handleWatchByName serves /watches/evaluate (POST: answer every watched
// query of the scoped tenant and run the alert state machines) and
// /watches/{query} (DELETE: drop one watch).
func (s *server) handleWatchByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/watches/")
	if name == "evaluate" {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		t, _ := s.scope(r, "")
		sts, err := t.EvaluateWatches()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"watches": watchListJSON(sts)})
		return
	}
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing watch query name"))
		return
	}
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use DELETE"))
		return
	}
	t, _ := s.scope(r, "")
	if err := t.RemoveWatch(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// sketchdCheckpoint is the payload sketchd stores inside the SKCP
// checkpoint envelope (internal/checkpoint): the wire-expressible
// predicate definitions plus the engine's own JSON snapshot. Carrying
// the predicates makes the checkpoint self-contained — Engine.Restore
// requires every predicate named by a snapshot to be re-registered
// first, which a bare engine snapshot cannot do across a restart.
//
// Version 2 scopes each predicate to its tenant (predicateDef.Tenant,
// empty = default) and may carry a multi-tenant engine snapshot.
// Version 1 payloads — written before tenants existed — decode
// identically with every predicate in the default tenant, and their
// engine snapshot restores into the default tenant bit-identically.
type sketchdCheckpoint struct {
	Version    int             `json:"version"`
	Predicates []predicateDef  `json:"predicates,omitempty"`
	Engine     json.RawMessage `json:"engine"`
}

const sketchdCheckpointVersion = 2

// writeCheckpoint produces the full server checkpoint payload. It is
// handed to checkpoint.Manager.Save, which wraps it in the SKCP
// envelope and rotates it onto disk atomically.
func (s *server) writeCheckpoint(w io.Writer) error {
	var engBuf bytes.Buffer
	if err := s.snapshot(&engBuf); err != nil {
		return err
	}
	s.predMu.Lock()
	preds := append([]predicateDef(nil), s.preds...)
	s.predMu.Unlock()
	return json.NewEncoder(w).Encode(&sketchdCheckpoint{
		Version:    sketchdCheckpointVersion,
		Predicates: preds,
		Engine:     engBuf.Bytes(),
	})
}

// readCheckpoint restores a checkpoint payload into the (empty) engine:
// predicates first, then the engine snapshot. Versions 1 (pre-tenant)
// and 2 are both accepted.
func (s *server) readCheckpoint(r io.Reader) error {
	var cp sketchdCheckpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cp); err != nil {
		return fmt.Errorf("decode checkpoint: %w", err)
	}
	if cp.Version != 1 && cp.Version != sketchdCheckpointVersion {
		return fmt.Errorf("unsupported sketchd checkpoint version %d", cp.Version)
	}
	for _, def := range cp.Predicates {
		if err := s.registerRangePredicate(def); err != nil {
			return err
		}
	}
	return s.eng.Restore(bytes.NewReader(cp.Engine))
}
