// Command sketchd serves the stream query-processing engine over HTTP:
// declare streams, register continuous join-aggregate queries, push
// updates, and read approximate answers — the paper's Figure 1
// architecture as a network service.
//
//	sketchd -addr :8080 -tables 7 -buckets 2048 -seed 42
//
// With -ingest.workers N (N > 0) updates are ingested through the
// engine's concurrent batched pipeline: batches are decoded, grouped by
// stream, and enqueued to N shard workers over bounded queues
// (-ingest.batch and -ingest.queue size them); /answer, /stats and
// /snapshot drain the pipeline first, so reads always observe every
// previously accepted update. When every queue slot is full, /update
// sheds load with 429 + Retry-After instead of blocking (the rejection
// counter is in /stats under ingest.rejected).
//
// With -query.workers N the estimation behind /answer runs on N
// goroutines (-1 = one per CPU) with bit-identical answers; /answer
// clones the synopses and estimates outside the engine locks, so a slow
// answer never stalls ingestion, and repeated answers with no
// intervening updates are served from an epoch-keyed cache.
//
// With -checkpoint.dir the engine state (and the range predicates
// needed to restore it) is persisted crash-safely: restored at boot,
// saved every -checkpoint.interval, and saved once more on shutdown.
// SIGINT/SIGTERM trigger a graceful exit — stop accepting connections,
// drain in-flight requests and the ingest pipeline, write the final
// checkpoint, exit 0 — so `kill -TERM` during active ingestion loses
// nothing. Because sketches are linear, a restored checkpoint plus a
// replayed tail is bit-identical to uninterrupted ingestion. See
// docs/OPERATIONS.md for the full lifecycle contract.
//
// API (JSON bodies, JSON responses):
//
//	POST   /streams     {"name":"F","domain":262144}
//	POST   /predicates  {"name":"small","min":0,"max":4095}     (value range)
//	POST   /queries     {"name":"q","agg":"COUNT",
//	                     "left":{"stream":"F","predicate":"small"},
//	                     "right":{"stream":"G","windowLen":100000,"windowBuckets":4}}
//	DELETE /queries/q
//	POST   /update      {"stream":"F","value":7,"weight":1}
//	                    or a JSON array of such objects (batch)
//	GET    /answer?query=q
//	POST   /flush       (drain the ingest pipeline)
//	GET    /healthz     (readiness: 200 serving, 503 draining)
//	GET    /stats
//	GET    /snapshot    (checkpoint: engine state as JSON)
//	POST   /restore     (load a snapshot into an empty engine)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"skimsketch/internal/checkpoint"
	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

// options collects every flag so run is testable without a flag set.
type options struct {
	addr     string
	tables   int
	buckets  int
	seed     uint64
	workers  int
	batch    int
	queue    int
	qworkers int

	checkpointDir      string
	checkpointInterval time.Duration

	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	shutdownTimeout   time.Duration
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("sketchd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.tables, "tables", 7, "default sketch tables d")
	fs.IntVar(&o.buckets, "buckets", 2048, "default sketch buckets b")
	fs.Uint64Var(&o.seed, "seed", 42, "default sketch seed")
	fs.IntVar(&o.workers, "ingest.workers", 0, "concurrent ingest shard workers (0 = synchronous ingestion)")
	fs.IntVar(&o.batch, "ingest.batch", 256, "max updates per queued ingest batch")
	fs.IntVar(&o.queue, "ingest.queue", 64, "per-worker ingest queue capacity in batches")
	fs.IntVar(&o.qworkers, "query.workers", 0, "estimation goroutines per /answer (0 or 1 = sequential, -1 = one per CPU); answers are bit-identical for every setting")
	fs.StringVar(&o.checkpointDir, "checkpoint.dir", "", "directory for crash-safe checkpoints (empty = no persistence)")
	fs.DurationVar(&o.checkpointInterval, "checkpoint.interval", 30*time.Second, "periodic checkpoint interval (0 = only the final checkpoint on shutdown)")
	fs.DurationVar(&o.readHeaderTimeout, "http.read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	fs.DurationVar(&o.writeTimeout, "http.write-timeout", 60*time.Second, "http.Server WriteTimeout; bound it above the slowest expected /answer")
	fs.DurationVar(&o.idleTimeout, "http.idle-timeout", 120*time.Second, "http.Server IdleTimeout for keep-alive connections")
	fs.DurationVar(&o.shutdownTimeout, "shutdown.timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout); err != nil {
		log.Fatal("sketchd: ", err)
	}
}

// run is the whole server lifecycle: build the engine, restore the
// newest checkpoint, serve until ctx is canceled (the signal handler),
// then shut down gracefully — stop the listener, drain in-flight
// requests, drain and stop the ingest pipeline, write the final
// checkpoint. A nil return is a clean exit (process status 0).
func run(ctx context.Context, opts options, out io.Writer) error {
	eng, err := engine.New(engine.Options{
		SketchConfig: core.Config{Tables: opts.tables, Buckets: opts.buckets, Seed: opts.seed},
		QueryWorkers: opts.qworkers,
	})
	if err != nil {
		return err
	}
	srv := newServer(eng)

	// Restore before the ingest pipeline starts and before the listener
	// opens: Engine.Restore requires an empty, quiescent engine.
	var mgr *checkpoint.Manager
	if opts.checkpointDir != "" {
		mgr, err = checkpoint.NewManager(opts.checkpointDir)
		if err != nil {
			return err
		}
		switch path, err := mgr.Load(srv.readCheckpoint); {
		case err == nil:
			fmt.Fprintf(out, "sketchd restored checkpoint %s\n", path)
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			fmt.Fprintf(out, "sketchd starting fresh (no checkpoint in %s)\n", opts.checkpointDir)
		default:
			return err
		}
	}

	if opts.workers > 0 {
		err := eng.StartIngest(engine.IngestConfig{
			Workers:    opts.workers,
			BatchSize:  opts.batch,
			QueueDepth: opts.queue,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "sketchd ingest pipeline: %d workers, batch %d, queue %d\n", opts.workers, opts.batch, opts.queue)
	}

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sketchd listening on %s (default sketch %dx%d)\n", ln.Addr(), opts.tables, opts.buckets)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Periodic checkpoints, stopped (and awaited) before the final save
	// so the two writers never interleave on the shutdown path.
	var cpWG sync.WaitGroup
	cpCtx, cpCancel := context.WithCancel(ctx)
	defer cpCancel()
	if mgr != nil && opts.checkpointInterval > 0 {
		cpWG.Add(1)
		go func() {
			defer cpWG.Done()
			mgr.Run(cpCtx, opts.checkpointInterval, srv.writeCheckpoint, func(err error) {
				log.Print("sketchd: periodic checkpoint: ", err)
			})
		}()
	}

	select {
	case err := <-serveErr:
		// The listener died on its own — not a requested shutdown.
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "sketchd shutting down")
	// Flip readiness first: /healthz now answers 503, steering load
	// balancers and harnesses away while in-flight requests drain.
	srv.draining.Store(true)

	// 1. Stop accepting connections and drain in-flight requests.
	shCtx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		// Stragglers past the grace period are cut off; their updates were
		// either fully accepted (and will be flushed below) or rejected.
		log.Print("sketchd: shutdown grace period expired: ", err)
		httpSrv.Close()
	}
	<-serveErr // Serve has returned (http.ErrServerClosed)

	// 2. Quiesce the periodic checkpointer, then drain the ingest
	// pipeline so every accepted update is folded into its synopsis.
	cpCancel()
	cpWG.Wait()
	eng.Flush()
	eng.StopIngest()

	// 3. Final checkpoint: the state a restarted sketchd resumes from,
	// bit-identical to what this process would have answered.
	if mgr != nil {
		if err := mgr.Save(srv.writeCheckpoint); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Fprintf(out, "sketchd final checkpoint written to %s\n", mgr.CurrentPath())
	}
	return nil
}
