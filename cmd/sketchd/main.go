// Command sketchd serves the stream query-processing engine over HTTP:
// declare streams, register continuous join-aggregate queries, push
// updates, and read approximate answers — the paper's Figure 1
// architecture as a network service.
//
//	sketchd -addr :8080 -tables 7 -buckets 2048 -seed 42
//
// With -ingest.workers N (N > 0) updates are ingested through the
// engine's concurrent batched pipeline: batches are decoded, grouped by
// stream, and enqueued to N shard workers over bounded queues
// (-ingest.batch and -ingest.queue size them); /answer, /stats and
// /snapshot drain the pipeline first, so reads always observe every
// previously accepted update. When every queue slot is full, /update
// sheds load with 429 + Retry-After instead of blocking (the rejection
// counter is in /stats under ingest.rejected).
//
// With -query.workers N the estimation behind /answer runs on N
// goroutines (-1 = one per CPU) with bit-identical answers; /answer
// clones the synopses and estimates outside the engine locks, so a slow
// answer never stalls ingestion, and repeated answers with no
// intervening updates are served from an epoch-keyed cache.
//
// With -checkpoint.dir the engine state (and the range predicates
// needed to restore it) is persisted crash-safely: restored at boot,
// saved every -checkpoint.interval, and saved once more on shutdown.
// SIGINT/SIGTERM trigger a graceful exit — stop accepting connections,
// drain in-flight requests and the ingest pipeline, write the final
// checkpoint, exit 0 — so `kill -TERM` during active ingestion loses
// nothing. Because sketches are linear, a restored checkpoint plus a
// replayed tail is bit-identical to uninterrupted ingestion. See
// docs/OPERATIONS.md for the full lifecycle contract.
//
// Cluster mode (-role, docs/OPERATIONS.md "Cluster mode"): shards are
// ordinary sketchds named in a static JSON membership file; a merger
// (`-role=merger -cluster.config ring.json`) serves the same API,
// hash-routing ingest across the ring (HTTP and SKSP both), keeping
// registrations schema-uniform by broadcast, and answering global
// /answer by pulling each shard's slim /sketch payload and merging
// through sketch linearity. A dead shard degrades the answer (reported
// shard coverage + widened confidence) instead of failing it.
//
// Every piece of state is scoped to a tenant namespace. The flat API
// below operates on the "default" tenant, so single-tenant deployments
// are unaffected; prefix any path with /t/{tenant}/ (or add ?tenant= /
// a "tenant" body field) to scope it. All tenants share one ingest
// pipeline and one sketch configuration; per-tenant quotas on synopsis
// memory and ingest queue share (-tenant.max-synopsis-words,
// -tenant.max-pending-updates, or per-tenant via POST /tenants) reject
// over-quota requests with 429 + Retry-After. Standing watches
// (/watches) raise hysteresis alerts on watched query estimates,
// evaluated on demand or every -watch.interval.
//
// API (JSON bodies, JSON responses; all but /healthz, /tenants and
// /flush also under /t/{tenant}/...):
//
//	POST   /streams     {"name":"F","domain":262144}
//	POST   /predicates  {"name":"small","min":0,"max":4095}     (value range)
//	POST   /queries     {"name":"q","agg":"COUNT",
//	                     "left":{"stream":"F","predicate":"small"},
//	                     "right":{"stream":"G","windowLen":100000,"windowBuckets":4}}
//	DELETE /queries/q
//	POST   /update      {"stream":"F","value":7,"weight":1}
//	                    or a JSON array of such objects (batch)
//	GET    /answer?query=q
//	GET    /sketch?query=q  (slim SKSL cluster payload: both synopses + metadata)
//	POST   /flush       (drain the ingest pipeline; shared, drains all tenants)
//	GET    /healthz     (readiness: 200 serving, 503 draining)
//	GET    /stats       (global + per-tenant; scoped: one tenant's slice)
//	GET    /snapshot    (checkpoint: engine state as JSON; scoped: one tenant)
//	POST   /restore     (load a snapshot into an empty engine/tenant)
//	GET    /tenants     (list tenants with quotas and counters)
//	POST   /tenants     {"name":"acme","quota":{"maxSynopsisWords":65536,
//	                     "maxPendingUpdates":100000}}
//	GET    /watches     (list standing watches)
//	POST   /watches     {"query":"q","high":1000000,"low":900000}
//	DELETE /watches/q
//	POST   /watches/evaluate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"skimsketch/internal/checkpoint"
	"skimsketch/internal/cluster"
	"skimsketch/internal/core"
	"skimsketch/internal/engine"
	"skimsketch/internal/monitor"
)

// options collects every flag so run is testable without a flag set.
type options struct {
	addr       string
	streamAddr string
	tables     int
	buckets    int
	seed       uint64
	workers    int
	batch      int
	queue      int
	qworkers   int

	role           string
	clusterConfig  string
	clusterEpoch   time.Duration
	clusterTimeout time.Duration

	tenantMaxWords   int
	tenantMaxPending int64
	watchInterval    time.Duration

	checkpointDir      string
	checkpointInterval time.Duration

	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	shutdownTimeout   time.Duration
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("sketchd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.streamAddr, "listen.stream", "", "SKSP binary streaming ingest listen address (empty = disabled); see docs/FORMATS.md")
	fs.IntVar(&o.tables, "tables", 7, "default sketch tables d")
	fs.IntVar(&o.buckets, "buckets", 2048, "default sketch buckets b")
	fs.Uint64Var(&o.seed, "seed", 42, "default sketch seed")
	fs.IntVar(&o.workers, "ingest.workers", 0, "concurrent ingest shard workers (0 = synchronous ingestion)")
	fs.IntVar(&o.batch, "ingest.batch", 256, "max updates per queued ingest batch")
	fs.IntVar(&o.queue, "ingest.queue", 64, "per-worker ingest queue capacity in batches")
	fs.IntVar(&o.qworkers, "query.workers", 0, "estimation goroutines per /answer (0 or 1 = sequential, -1 = one per CPU); answers are bit-identical for every setting")
	fs.StringVar(&o.role, "role", "single", "process role: single (standalone), shard (cluster member; same server, conventionally with -checkpoint.dir), or merger (routes ingest across -cluster.config shards and answers global joins)")
	fs.StringVar(&o.clusterConfig, "cluster.config", "", "merger: path to the static JSON membership file {\"shards\":[{\"name\":...,\"addr\":\"http://...\"}]}")
	fs.DurationVar(&o.clusterEpoch, "cluster.epoch", 0, "merger: pull-cache TTL — global answers younger than this are served without re-pulling shard sketches (0 = pull fresh every answer)")
	fs.DurationVar(&o.clusterTimeout, "cluster.timeout", 5*time.Second, "merger: deadline on every cross-node call (routing, pulls, broadcasts)")
	fs.IntVar(&o.tenantMaxWords, "tenant.max-synopsis-words", 0, "default per-tenant synopsis memory quota in sketch words (0 = unlimited); override per tenant via POST /tenants")
	fs.Int64Var(&o.tenantMaxPending, "tenant.max-pending-updates", 0, "default per-tenant ingest queue-share quota in pending updates (0 = unlimited); override per tenant via POST /tenants")
	fs.DurationVar(&o.watchInterval, "watch.interval", 0, "periodic standing-watch evaluation interval (0 = evaluate only via POST /watches/evaluate)")
	fs.StringVar(&o.checkpointDir, "checkpoint.dir", "", "directory for crash-safe checkpoints (empty = no persistence)")
	fs.DurationVar(&o.checkpointInterval, "checkpoint.interval", 30*time.Second, "periodic checkpoint interval (0 = only the final checkpoint on shutdown)")
	fs.DurationVar(&o.readHeaderTimeout, "http.read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	fs.DurationVar(&o.writeTimeout, "http.write-timeout", 60*time.Second, "http.Server WriteTimeout; bound it above the slowest expected /answer")
	fs.DurationVar(&o.idleTimeout, "http.idle-timeout", 120*time.Second, "http.Server IdleTimeout for keep-alive connections")
	fs.DurationVar(&o.shutdownTimeout, "shutdown.timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout); err != nil {
		log.Fatal("sketchd: ", err)
	}
}

// run dispatches on role: single and shard are the same standalone
// server lifecycle (a shard IS a sketchd — the cluster layer above it
// is schema broadcasts, hash-routed ingest, and /sketch pulls); merger
// runs the stateless routing/merging tier from internal/cluster.
func run(ctx context.Context, opts options, out io.Writer) error {
	switch opts.role {
	case "", "single", "shard":
		return runNode(ctx, opts, out)
	case "merger":
		return runMerger(ctx, opts, out)
	default:
		return fmt.Errorf("unknown -role %q: want single, shard, or merger", opts.role)
	}
}

// runMerger is the merger lifecycle: load the static membership ring,
// serve the routing/merging API until ctx is canceled, then drain.
// The merger holds no sketch state — shards own persistence — so its
// shutdown is just a connection drain.
func runMerger(ctx context.Context, opts options, out io.Writer) error {
	if opts.clusterConfig == "" {
		return errors.New("-role=merger requires -cluster.config")
	}
	cfg, err := cluster.LoadConfig(opts.clusterConfig)
	if err != nil {
		return err
	}
	m, err := cluster.NewMerger(cfg, cluster.MergerOptions{
		Timeout: opts.clusterTimeout,
		Epoch:   opts.clusterEpoch,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           m,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sketchd merger listening on %s (%d shards, epoch %s, timeout %s)\n",
		ln.Addr(), len(cfg.Shards), opts.clusterEpoch, opts.clusterTimeout)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// SKSP ingress: same binary protocol as a single node, frames
	// hash-routed across the ring.
	var fwd *cluster.StreamForwarder
	streamErr := make(chan error, 1)
	if opts.streamAddr != "" {
		sln, err := net.Listen("tcp", opts.streamAddr)
		if err != nil {
			return err
		}
		fwd = cluster.NewStreamForwarder(m, sln)
		fmt.Fprintf(out, "sketchd %s\n", fwd)
		go func() { streamErr <- fwd.Serve() }()
	}

	select {
	case err := <-serveErr:
		return err
	case err := <-streamErr:
		return fmt.Errorf("sksp forwarder: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "sketchd merger shutting down")
	m.SetDraining()
	shCtx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Print("sketchd: merger shutdown grace period expired: ", err)
		httpSrv.Close()
	}
	<-serveErr
	if fwd != nil {
		fwd.Shutdown()
	}
	return nil
}

// runNode is the whole standalone/shard server lifecycle: build the
// engine, restore the newest checkpoint, serve until ctx is canceled
// (the signal handler), then shut down gracefully — stop the listener,
// drain in-flight requests, drain and stop the ingest pipeline, write
// the final checkpoint. A nil return is a clean exit (process status 0).
func runNode(ctx context.Context, opts options, out io.Writer) error {
	eng, err := engine.New(engine.Options{
		SketchConfig: core.Config{Tables: opts.tables, Buckets: opts.buckets, Seed: opts.seed},
		QueryWorkers: opts.qworkers,
		DefaultQuota: engine.Quota{
			MaxSynopsisWords:  opts.tenantMaxWords,
			MaxPendingUpdates: opts.tenantMaxPending,
		},
	})
	if err != nil {
		return err
	}
	srv := newServer(eng)

	// Restore before the ingest pipeline starts and before the listener
	// opens: Engine.Restore requires an empty, quiescent engine.
	var mgr *checkpoint.Manager
	if opts.checkpointDir != "" {
		mgr, err = checkpoint.NewManager(opts.checkpointDir)
		if err != nil {
			return err
		}
		switch path, err := mgr.Load(srv.readCheckpoint); {
		case err == nil:
			fmt.Fprintf(out, "sketchd restored checkpoint %s\n", path)
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			fmt.Fprintf(out, "sketchd starting fresh (no checkpoint in %s)\n", opts.checkpointDir)
		default:
			return err
		}
	}

	if opts.workers > 0 {
		err := eng.StartIngest(engine.IngestConfig{
			Workers:    opts.workers,
			BatchSize:  opts.batch,
			QueueDepth: opts.queue,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "sketchd ingest pipeline: %d workers, batch %d, queue %d\n", opts.workers, opts.batch, opts.queue)
	}

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sketchd listening on %s (default sketch %dx%d)\n", ln.Addr(), opts.tables, opts.buckets)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The SKSP binary ingest listener shares the engine, the dedupe
	// window, and the shutdown drain with the HTTP front end.
	streamErr := make(chan error, 1)
	if opts.streamAddr != "" {
		sln, err := net.Listen("tcp", opts.streamAddr)
		if err != nil {
			return err
		}
		srv.stream = newStreamServer(eng, srv.dedupe, sln)
		fmt.Fprintf(out, "sketchd %s\n", srv.stream)
		go func() { streamErr <- srv.stream.serve() }()
	}

	// Periodic checkpoints, stopped (and awaited) before the final save
	// so the two writers never interleave on the shutdown path.
	var cpWG sync.WaitGroup
	cpCtx, cpCancel := context.WithCancel(ctx)
	defer cpCancel()
	if mgr != nil && opts.checkpointInterval > 0 {
		cpWG.Add(1)
		go func() {
			defer cpWG.Done()
			mgr.Run(cpCtx, opts.checkpointInterval, srv.writeCheckpoint, func(err error) {
				log.Print("sketchd: periodic checkpoint: ", err)
			})
		}()
	}

	// Periodic standing-watch evaluation: every tick answers each watched
	// query (cache-served when its synopses are unchanged) and runs the
	// alert state machines, logging transitions. Shares the checkpointer's
	// quiesce point so no evaluation runs during the shutdown drain.
	if opts.watchInterval > 0 {
		cpWG.Add(1)
		go func() {
			defer cpWG.Done()
			ticker := time.NewTicker(opts.watchInterval)
			defer ticker.Stop()
			// Log only state flips, not every tick spent in alert: compare
			// each watch's cumulative transition count against the last tick.
			lastTransitions := make(map[monitor.WatchKey]int64)
			for {
				select {
				case <-cpCtx.Done():
					return
				case <-ticker.C:
					sts, err := eng.EvaluateAllWatches()
					if err != nil {
						log.Print("sketchd: watch evaluation: ", err)
						continue
					}
					for _, st := range sts {
						key := monitor.WatchKey{Tenant: st.Tenant, Query: st.Query}
						if st.Transitions != lastTransitions[key] {
							lastTransitions[key] = st.Transitions
							state := "cleared"
							if st.State == monitor.Alert {
								state = "raised"
							}
							log.Printf("sketchd: watch %s/%s %s: estimate %d vs band [low %d, high %d]",
								st.Tenant, st.Query, state, st.LastEstimate, st.Low, st.High)
						}
					}
				}
			}
		}()
	}

	select {
	case err := <-serveErr:
		// The listener died on its own — not a requested shutdown.
		return err
	case err := <-streamErr:
		return fmt.Errorf("sksp listener: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "sketchd shutting down")
	// Flip readiness first: /healthz now answers 503, steering load
	// balancers and harnesses away while in-flight requests drain.
	srv.draining.Store(true)

	// 1. Stop accepting connections and drain in-flight requests.
	shCtx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		// Stragglers past the grace period are cut off; their updates were
		// either fully accepted (and will be flushed below) or rejected.
		log.Print("sketchd: shutdown grace period expired: ", err)
		httpSrv.Close()
	}
	<-serveErr // Serve has returned (http.ErrServerClosed)

	// Drain the SKSP listener after the HTTP one: stop accepting, close
	// every session (handlers finish their in-flight frame), wait. Every
	// ACKed frame is now in the ingest queues for the Flush below;
	// un-ACKed frames will be replayed by their clients on reconnect.
	if srv.stream != nil {
		srv.stream.shutdown()
	}

	// 2. Quiesce the periodic checkpointer, then drain the ingest
	// pipeline so every accepted update is folded into its synopsis.
	cpCancel()
	cpWG.Wait()
	eng.Flush()
	eng.StopIngest()

	// 3. Final checkpoint: the state a restarted sketchd resumes from,
	// bit-identical to what this process would have answered.
	if mgr != nil {
		if err := mgr.Save(srv.writeCheckpoint); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Fprintf(out, "sketchd final checkpoint written to %s\n", mgr.CurrentPath())
	}
	return nil
}
