// Command sketchd serves the stream query-processing engine over HTTP:
// declare streams, register continuous join-aggregate queries, push
// updates, and read approximate answers — the paper's Figure 1
// architecture as a network service.
//
//	sketchd -addr :8080 -tables 7 -buckets 2048 -seed 42
//
// API (JSON bodies, JSON responses):
//
//	POST   /streams     {"name":"F","domain":262144}
//	POST   /predicates  {"name":"small","min":0,"max":4095}     (value range)
//	POST   /queries     {"name":"q","agg":"COUNT",
//	                     "left":{"stream":"F","predicate":"small"},
//	                     "right":{"stream":"G","windowLen":100000,"windowBuckets":4}}
//	DELETE /queries/q
//	POST   /update      {"stream":"F","value":7,"weight":1}
//	                    or a JSON array of such objects (batch)
//	GET    /answer?query=q
//	GET    /stats
//	GET    /snapshot    (checkpoint: engine state as JSON)
//	POST   /restore     (load a snapshot into an empty engine)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		tables  = flag.Int("tables", 7, "default sketch tables d")
		buckets = flag.Int("buckets", 2048, "default sketch buckets b")
		seed    = flag.Uint64("seed", 42, "default sketch seed")
	)
	flag.Parse()

	eng, err := engine.New(engine.Options{
		SketchConfig: core.Config{Tables: *tables, Buckets: *buckets, Seed: *seed},
	})
	if err != nil {
		log.Fatal("sketchd: ", err)
	}
	srv := newServer(eng)
	fmt.Printf("sketchd listening on %s (default sketch %dx%d)\n", *addr, *tables, *buckets)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
