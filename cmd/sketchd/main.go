// Command sketchd serves the stream query-processing engine over HTTP:
// declare streams, register continuous join-aggregate queries, push
// updates, and read approximate answers — the paper's Figure 1
// architecture as a network service.
//
//	sketchd -addr :8080 -tables 7 -buckets 2048 -seed 42
//
// With -ingest.workers N (N > 0) updates are ingested through the
// engine's concurrent batched pipeline: batches are decoded, grouped by
// stream, and enqueued to N shard workers over bounded queues
// (-ingest.batch and -ingest.queue size them); /answer, /stats and
// /snapshot drain the pipeline first, so reads always observe every
// previously accepted update.
//
// With -query.workers N the estimation behind /answer runs on N
// goroutines (-1 = one per CPU) with bit-identical answers; /answer
// clones the synopses and estimates outside the engine locks, so a slow
// answer never stalls ingestion, and repeated answers with no
// intervening updates are served from an epoch-keyed cache.
//
// API (JSON bodies, JSON responses):
//
//	POST   /streams     {"name":"F","domain":262144}
//	POST   /predicates  {"name":"small","min":0,"max":4095}     (value range)
//	POST   /queries     {"name":"q","agg":"COUNT",
//	                     "left":{"stream":"F","predicate":"small"},
//	                     "right":{"stream":"G","windowLen":100000,"windowBuckets":4}}
//	DELETE /queries/q
//	POST   /update      {"stream":"F","value":7,"weight":1}
//	                    or a JSON array of such objects (batch)
//	GET    /answer?query=q
//	POST   /flush       (drain the ingest pipeline)
//	GET    /stats
//	GET    /snapshot    (checkpoint: engine state as JSON)
//	POST   /restore     (load a snapshot into an empty engine)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		tables   = flag.Int("tables", 7, "default sketch tables d")
		buckets  = flag.Int("buckets", 2048, "default sketch buckets b")
		seed     = flag.Uint64("seed", 42, "default sketch seed")
		workers  = flag.Int("ingest.workers", 0, "concurrent ingest shard workers (0 = synchronous ingestion)")
		batch    = flag.Int("ingest.batch", 256, "max updates per queued ingest batch")
		queue    = flag.Int("ingest.queue", 64, "per-worker ingest queue capacity in batches")
		qworkers = flag.Int("query.workers", 0, "estimation goroutines per /answer (0 or 1 = sequential, -1 = one per CPU); answers are bit-identical for every setting")
	)
	flag.Parse()

	eng, err := engine.New(engine.Options{
		SketchConfig: core.Config{Tables: *tables, Buckets: *buckets, Seed: *seed},
		QueryWorkers: *qworkers,
	})
	if err != nil {
		log.Fatal("sketchd: ", err)
	}
	if *workers > 0 {
		err := eng.StartIngest(engine.IngestConfig{
			Workers:    *workers,
			BatchSize:  *batch,
			QueueDepth: *queue,
		})
		if err != nil {
			log.Fatal("sketchd: ", err)
		}
		fmt.Printf("sketchd ingest pipeline: %d workers, batch %d, queue %d\n", *workers, *batch, *queue)
	}
	srv := newServer(eng)
	fmt.Printf("sketchd listening on %s (default sketch %dx%d)\n", *addr, *tables, *buckets)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
