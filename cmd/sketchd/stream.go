package main

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skimsketch/internal/engine"
	"skimsketch/internal/wire"
)

// streamServer is the SKSP binary ingest listener (-listen.stream): a
// persistent-connection TCP front end that decodes DATA frames into
// pooled buffers and feeds them to the engine's multi-group ingest
// path. It exists because JSON-over-HTTP pays for itself many times
// over per update (request parsing, JSON decoding, per-request
// allocation); SKSP amortizes all of it across a connection and
// recycles every decode buffer through a sync.Pool, so steady-state
// ingest allocates nothing per frame.
//
// Reliability contract (the frame-level mirror of /update's):
//
//   - ACK means the frame was admitted to the ingest queues — exactly
//     what HTTP 200 means. The element count rides back for client-side
//     reconciliation.
//   - REJECT means NOTHING was applied (global saturation or tenant
//     quota): resend the same seq after the Retry-After hint.
//   - ERROR is permanent (malformed frame, unknown stream, value out of
//     domain): resending the same frame can never succeed.
//   - A (clientID, seq) already admitted is answered from the shared
//     dedupe window with a duplicate ACK and applied nothing, which is
//     what makes reconnect-with-replay exactly-once. The window is
//     in-memory and bounded: replays must be prompt (a process restart
//     or a very deep backlog forgets old seqs).
type streamServer struct {
	eng    *engine.Engine
	dedupe *wire.Window
	ln     net.Listener

	// pool recycles decode buffers: each *wire.Data keeps its update
	// slab and name intern table across frames, so a warm pool decodes
	// with zero allocation. The engine's release callback returns the
	// Data once the last shard worker has folded its groups.
	pool sync.Pool

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup

	// Counters for /stats "stream" — the binary protocol's mirror of the
	// HTTP ingest figures, so a harness can reconcile either path.
	connsTotal atomic.Int64
	connsOpen  atomic.Int64
	frames     atomic.Int64
	updates    atomic.Int64
	duplicates atomic.Int64
	rejected   atomic.Int64
	errored    atomic.Int64
}

func newStreamServer(eng *engine.Engine, dedupe *wire.Window, ln net.Listener) *streamServer {
	sv := &streamServer{
		eng:    eng,
		dedupe: dedupe,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	sv.pool.New = func() any { return &wire.Data{} }
	return sv
}

// serve accepts connections until the listener closes. The returned
// error is nil on a requested shutdown.
func (sv *streamServer) serve() error {
	for {
		nc, err := sv.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		sv.mu.Lock()
		if sv.closing {
			sv.mu.Unlock()
			nc.Close()
			continue
		}
		sv.conns[nc] = struct{}{}
		sv.wg.Add(1)
		sv.mu.Unlock()
		sv.connsTotal.Add(1)
		sv.connsOpen.Add(1)
		go func() {
			defer sv.wg.Done()
			defer sv.connsOpen.Add(-1)
			sv.serveConn(nc)
			sv.mu.Lock()
			delete(sv.conns, nc)
			sv.mu.Unlock()
			nc.Close()
		}()
	}
}

// shutdown drains the listener: stop accepting, close every
// connection, wait for the handlers to finish their in-flight frame.
// Once it returns, every ACKed frame sits in the ingest queues — the
// caller's eng.Flush() folds them before the final checkpoint. Clients
// mid-frame never got an ACK and will replay on reconnect.
func (sv *streamServer) shutdown() {
	sv.ln.Close()
	sv.mu.Lock()
	sv.closing = true
	for nc := range sv.conns {
		nc.Close()
	}
	sv.mu.Unlock()
	sv.wg.Wait()
}

// serveConn runs one SKSP session: header exchange, then a frame loop.
// Any protocol violation ends the session — the framing's CRC and
// length checks mean a violation is a broken peer, not a recoverable
// hiccup.
func (sv *streamServer) serveConn(nc net.Conn) {
	const headerTimeout = 5 * time.Second // slow-header guard, like http.Server's
	rd := wire.NewReader(nc)
	w := wire.NewWriter(nc)
	nc.SetReadDeadline(time.Now().Add(headerTimeout))
	if err := rd.ReadHeader(); err != nil {
		return
	}
	nc.SetReadDeadline(time.Time{})
	if err := w.WriteHeader(); err != nil || w.Flush() != nil {
		return
	}
	for {
		ft, payload, err := rd.Next()
		if err != nil {
			return // client closed, or the connection broke
		}
		if ft != wire.FrameData {
			return // clients only send DATA
		}
		sv.frames.Add(1)
		if !sv.handleData(payload, w) {
			return
		}
	}
}

// handleData decodes and admits one DATA frame, writing exactly one
// response frame. Returns false to drop the connection (encode errors
// or an unwritable socket).
func (sv *streamServer) handleData(payload []byte, w *wire.Writer) bool {
	d := sv.pool.Get().(*wire.Data)
	if err := wire.DecodeData(payload, d); err != nil {
		// Framing passed CRC but the payload is malformed: broken peer.
		sv.pool.Put(d)
		sv.errored.Add(1)
		return false
	}
	// Everything the response needs is copied out now: on successful
	// admission the engine owns d until its release fires, and the pool
	// may hand d to another connection immediately after.
	clientID, seq, tenant := d.ClientID, d.Seq, d.Tenant
	var total int64
	for i := range d.Groups {
		total += int64(len(d.Groups[i].Updates))
	}

	if out, ok := sv.dedupe.Lookup(clientID, seq); ok {
		// Replay of an admitted frame: the first ACK was lost in a
		// disconnect. Answer from memory, apply nothing.
		sv.pool.Put(d)
		sv.duplicates.Add(1)
		return sv.reply(w, func() error {
			return w.WriteAck(wire.Ack{Seq: seq, Applied: out.Applied, Duplicate: true})
		})
	}
	if tenant != "" {
		if err := engine.ValidTenantName(tenant); err != nil {
			sv.pool.Put(d)
			sv.errored.Add(1)
			return sv.reply(w, func() error {
				return w.WriteError(wire.ErrorFrame{Seq: seq, Msg: err.Error()})
			})
		}
	} else {
		tenant = engine.DefaultTenant
	}
	if sv.eng.IngestSaturated() {
		sv.eng.NoteRejected(1)
		sv.pool.Put(d)
		sv.rejected.Add(1)
		return sv.reply(w, func() error {
			return w.WriteReject(wire.Reject{Seq: seq, RetryAfter: retryAfterSeconds})
		})
	}
	// Atomic admission, same contract as /update: every group validated
	// and the quota checked against the whole frame before anything is
	// applied. The release callback recycles the decode buffers once the
	// last shard worker is done with them — d must not be touched after
	// a successful return.
	err := sv.eng.Tenant(tenant).IngestGroups(d.Groups, func() { sv.pool.Put(d) })
	switch {
	case err == nil:
		sv.updates.Add(total)
		sv.dedupe.Record(clientID, seq, wire.Outcome{Applied: total})
		return sv.reply(w, func() error {
			return w.WriteAck(wire.Ack{Seq: seq, Applied: total})
		})
	case errors.Is(err, engine.ErrQuotaExceeded):
		// Retryable: nothing was admitted, and the deliberately
		// unrecorded seq stays replayable.
		sv.pool.Put(d)
		sv.rejected.Add(1)
		return sv.reply(w, func() error {
			return w.WriteReject(wire.Reject{Seq: seq, RetryAfter: retryAfterSeconds})
		})
	default:
		// Unknown stream / out-of-domain value: permanent.
		sv.pool.Put(d)
		sv.errored.Add(1)
		return sv.reply(w, func() error {
			return w.WriteError(wire.ErrorFrame{Seq: seq, Msg: err.Error()})
		})
	}
}

// reply writes and flushes one response frame; false drops the session.
func (sv *streamServer) reply(w *wire.Writer, write func() error) bool {
	if err := write(); err != nil {
		return false
	}
	return w.Flush() == nil
}

// statsJSON renders the listener's counters for /stats.
func (sv *streamServer) statsJSON() map[string]any {
	return map[string]any{
		"addr":          sv.ln.Addr().String(),
		"conns":         sv.connsOpen.Load(),
		"connsTotal":    sv.connsTotal.Load(),
		"frames":        sv.frames.Load(),
		"updates":       sv.updates.Load(),
		"duplicates":    sv.duplicates.Load(),
		"rejected":      sv.rejected.Load(),
		"errors":        sv.errored.Load(),
		"dedupeClients": sv.dedupe.Clients(),
	}
}

// String implements fmt.Stringer for the boot banner.
func (sv *streamServer) String() string {
	return fmt.Sprintf("sksp listener on %s", sv.ln.Addr())
}
