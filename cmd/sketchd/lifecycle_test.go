package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"skimsketch/internal/checkpoint"
	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

// syncBuffer lets the test read run's log output while run writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`listening on ([^ ]+) `)

// startRun boots run() on an ephemeral port and waits for the listener,
// returning the base URL and a channel with run's eventual result.
func startRun(t *testing.T, ctx context.Context, opts options, out *syncBuffer) (string, chan error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- run(ctx, opts, out) }()
	deadline := time.After(10 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], done
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\n%s", err, out.String())
		case <-deadline:
			t.Fatalf("server never started listening:\n%s", out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func httpJSON(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRunGracefulShutdownAndRecovery is the acceptance path in-process:
// boot with a checkpoint directory, ingest through the concurrent
// pipeline, shut down gracefully (the context stands in for SIGTERM,
// which feeds the same signal.NotifyContext cancellation), restart from
// the checkpoint, and require the recovered answer byte-identical.
func TestRunGracefulShutdownAndRecovery(t *testing.T) {
	dir := t.TempDir()
	opts, err := parseFlags([]string{
		"-addr", "127.0.0.1:0",
		"-tables", "5", "-buckets", "256",
		"-ingest.workers", "2", "-ingest.batch", "16",
		"-checkpoint.dir", dir,
		"-checkpoint.interval", "50ms",
		"-shutdown.timeout", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	base, done := startRun(t, ctx, opts, out)

	for _, req := range []struct{ method, path, body string }{
		{"POST", "/streams", `{"name":"F","domain":1024}`},
		{"POST", "/streams", `{"name":"G","domain":1024}`},
		{"POST", "/predicates", `{"name":"low","min":0,"max":511}`},
		{"POST", "/queries", `{"name":"q","agg":"COUNT","left":{"stream":"F","predicate":"low"},"right":{"stream":"G"}}`},
	} {
		if code, body := httpJSON(t, req.method, base+req.path, req.body); code != 201 {
			t.Fatalf("%s %s: %d %s", req.method, req.path, code, body)
		}
	}
	var batch []string
	for i := 0; i < 500; i++ {
		batch = append(batch,
			fmt.Sprintf(`{"stream":"F","value":%d}`, i%700),
			fmt.Sprintf(`{"stream":"G","value":%d}`, (i*7)%1024))
	}
	if code, body := httpJSON(t, "POST", base+"/update", "["+strings.Join(batch, ",")+"]"); code != 200 {
		t.Fatalf("update: %d %s", code, body)
	}
	code, ans1 := httpJSON(t, "GET", base+"/answer?query=q", "")
	if code != 200 {
		t.Fatalf("answer: %d %s", code, ans1)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned error: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not shut down:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "final checkpoint written") {
		t.Fatalf("no final checkpoint in log:\n%s", out.String())
	}
	if _, err := os.Stat(dir + "/" + checkpoint.CurrentName); err != nil {
		t.Fatal(err)
	}

	// Restart from the checkpoint.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	out2 := &syncBuffer{}
	base2, done2 := startRun(t, ctx2, opts, out2)
	if !strings.Contains(out2.String(), "restored checkpoint") {
		t.Fatalf("restart did not restore the checkpoint:\n%s", out2.String())
	}
	code, ans2 := httpJSON(t, "GET", base2+"/answer?query=q", "")
	if code != 200 {
		t.Fatalf("recovered answer: %d %s", code, ans2)
	}
	if ans1 != ans2 {
		t.Fatalf("recovered answer differs:\n before %s\n after  %s", ans1, ans2)
	}
	// The restored predicate still filters: updates keep flowing and the
	// estimate moves, i.e. the checkpoint carried live, usable state.
	if code, body := httpJSON(t, "POST", base2+"/update", `{"stream":"F","value":3}`); code != 200 {
		t.Fatalf("post-restore update: %d %s", code, body)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRunWithoutCheckpointDir: persistence is opt-in; the lifecycle
// still shuts down cleanly with no checkpoint configured.
func TestRunWithoutCheckpointDir(t *testing.T) {
	opts, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-tables", "3", "-buckets", "64"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	base, done := startRun(t, ctx, opts, out)
	if code, _ := httpJSON(t, "GET", base+"/stats", ""); code != 200 {
		t.Fatal("stats failed")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not shut down")
	}
}

// TestRunListenError: a dead listener is an error return, not a hang.
func TestRunListenError(t *testing.T) {
	opts, err := parseFlags([]string{"-addr", "256.0.0.1:99999"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), opts, io.Discard); err == nil {
		t.Fatal("expected listen error")
	}
}

// TestUpdateBackpressure429 pins the degradation contract: with every
// ingest queue slot full, POST /update returns 429 with a Retry-After
// header instead of blocking, nothing is applied, and the rejection is
// counted in /stats.
func TestUpdateBackpressure429(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 3, Buckets: 64, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	err = eng.RegisterPredicate("gate", func(uint64, int64) bool {
		entered <- struct{}{}
		<-gate
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body := httpJSON(t, "POST", ts.URL+"/streams", `{"name":"F","domain":64}`); code != 201 {
		t.Fatalf("streams: %d %s", code, body)
	}
	if code, body := httpJSON(t, "POST", ts.URL+"/streams", `{"name":"G","domain":64}`); code != 201 {
		t.Fatalf("streams: %d %s", code, body)
	}
	code, body := httpJSON(t, "POST", ts.URL+"/queries",
		`{"name":"q","agg":"COUNT","left":{"stream":"F","predicate":"gate"},"right":{"stream":"G"}}`)
	if code != 201 {
		t.Fatalf("queries: %d %s", code, body)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 1, BatchSize: 1, QueueDepth: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		eng.StopIngest()
	}()

	// First update parks the lone worker inside the gated predicate...
	if code, body := httpJSON(t, "POST", ts.URL+"/update", `{"stream":"F","value":1}`); code != 200 {
		t.Fatalf("update 1: %d %s", code, body)
	}
	<-entered
	// ...second fills the depth-1 queue...
	if code, body := httpJSON(t, "POST", ts.URL+"/update", `{"stream":"F","value":2}`); code != 200 {
		t.Fatalf("update 2: %d %s", code, body)
	}
	// ...third must be shed with 429 + Retry-After, not block.
	req, err := http.NewRequest("POST", ts.URL+"/update", strings.NewReader(`{"stream":"F","value":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	close(gate)
	eng.Flush()
	// The shed update was never applied; the two admitted ones were.
	if got := eng.IngestStats().UpdatesApplied; got != 2 {
		t.Fatalf("applied %d updates, want 2", got)
	}
	if got := eng.IngestStats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// And /stats surfaces the counter.
	code, stats := httpJSON(t, "GET", ts.URL+"/stats", "")
	if code != 200 || !strings.Contains(stats, `"rejected":1`) {
		t.Fatalf("stats missing rejection counter: %d %s", code, stats)
	}
}

// TestServerCheckpointRoundTrip exercises the predicate-carrying
// checkpoint envelope directly: a server checkpoint restored into a
// fresh server answers identically, predicates included — the part a
// bare engine snapshot cannot do.
func TestServerCheckpointRoundTrip(t *testing.T) {
	mk := func() (*server, *engine.Engine) {
		eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		return newServer(eng), eng
	}
	srcSrv, srcEng := mk()
	if err := srcSrv.registerRangePredicate(predicateDef{Name: "low", Min: 0, Max: 31}); err != nil {
		t.Fatal(err)
	}
	if err := srcEng.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	if err := srcEng.DeclareStream("G", 64); err != nil {
		t.Fatal(err)
	}
	err := srcEng.RegisterQuery(engine.QuerySpec{
		Name: "q", Agg: engine.Count,
		Left:  engine.Side{Stream: "F", Predicate: "low"},
		Right: engine.Side{Stream: "G"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := srcEng.Update("F", uint64(i%64), 1); err != nil {
			t.Fatal(err)
		}
		if err := srcEng.Update("G", uint64((i*3)%64), 1); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := srcSrv.writeCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	dstSrv, dstEng := mk()
	if err := dstSrv.readCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := srcEng.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dstEng.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("restored answer %+v differs from source %+v", got, want)
	}
	// The restored predicate definition is recorded, so the next
	// checkpoint of the restored server carries it too.
	var buf2 bytes.Buffer
	if err := dstSrv.writeCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `"low"`) {
		t.Fatal("re-checkpointed server lost the predicate definition")
	}
}

func TestReadCheckpointRejectsBadPayload(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 3, Buckets: 64, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng)
	if err := s.readCheckpoint(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if err := s.readCheckpoint(strings.NewReader(`{"version":99,"engine":{}}`)); err == nil {
		t.Fatal("expected version error")
	}
}
