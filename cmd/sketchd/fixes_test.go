package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

// Regression tests for the three sketchd bug fixes: /update batch
// atomicity, explicit zero weights, and /snapshot corruption on a
// mid-stream serialization error.

func streamCount(t *testing.T, ts *httptest.Server, stream string) float64 {
	t.Helper()
	_, body := do(t, "GET", ts.URL+"/stats", nil)
	counts := body["updateCounts"].(map[string]any)
	c, ok := counts[stream]
	if !ok {
		return 0
	}
	return c.(float64)
}

// A multi-stream /update batch must be atomic: when ANY stream group
// fails validation (unknown stream, out-of-domain value), NO group is
// applied — not even groups that validated fine — and the error names
// the failing stream. The old handler applied groups in order until the
// first failure, silently keeping the earlier ones.
func TestUpdateBatchAtomicity(t *testing.T) {
	ts := testServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "G", "domain": 64})

	// Unknown stream in the second group.
	code, body := do(t, "POST", ts.URL+"/update", []map[string]any{
		{"stream": "F", "value": 1},
		{"stream": "F", "value": 2},
		{"stream": "nope", "value": 3},
	})
	if code != 400 {
		t.Fatalf("status = %d, want 400", code)
	}
	if got := body["stream"]; got != "nope" {
		t.Fatalf("error names stream %v, want \"nope\"", got)
	}
	if n := streamCount(t, ts, "F"); n != 0 {
		t.Fatalf("F received %v updates from a rejected batch, want 0", n)
	}

	// Out-of-domain value in the LAST group: the valid F and G prefixes
	// must not be applied either.
	code, body = do(t, "POST", ts.URL+"/update", []map[string]any{
		{"stream": "F", "value": 1},
		{"stream": "G", "value": 2},
		{"stream": "G", "value": 999},
	})
	if code != 400 {
		t.Fatalf("status = %d, want 400", code)
	}
	if got := body["stream"]; got != "G" {
		t.Fatalf("error names stream %v, want \"G\"", got)
	}
	if f, g := streamCount(t, ts, "F"), streamCount(t, ts, "G"); f != 0 || g != 0 {
		t.Fatalf("rejected batch applied F=%v G=%v updates, want 0/0", f, g)
	}

	// A fully valid batch still applies.
	if code, body := do(t, "POST", ts.URL+"/update", []map[string]any{
		{"stream": "F", "value": 1},
		{"stream": "G", "value": 2},
	}); code != 200 || body["applied"].(float64) != 2 {
		t.Fatalf("valid batch: %d %v", code, body)
	}
}

// An explicit "weight": 0 must be honored as a no-op update, not
// rewritten to the omitted-weight default of 1.
func TestUpdateExplicitZeroWeight(t *testing.T) {
	ts := testServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "G", "domain": 64})
	do(t, "POST", ts.URL+"/queries", map[string]any{
		"name": "q",
		"left": map[string]any{"stream": "F"}, "right": map[string]any{"stream": "G"},
	})
	do(t, "POST", ts.URL+"/update", []map[string]any{
		{"stream": "F", "value": 7, "weight": 10},
		{"stream": "G", "value": 7, "weight": 5},
	})
	// Explicit zero: f_7 stays 10 → estimate stays 50.
	do(t, "POST", ts.URL+"/update", map[string]any{"stream": "F", "value": 7, "weight": 0})
	if _, body := do(t, "GET", ts.URL+"/answer?query=q", nil); body["estimate"].(float64) != 50 {
		t.Fatalf("estimate = %v after explicit zero weight, want 50 (zero treated as +1?)", body["estimate"])
	}
	// Omitted weight still defaults to 1: f_7 = 11 → 55.
	do(t, "POST", ts.URL+"/update", map[string]any{"stream": "F", "value": 7})
	if _, body := do(t, "GET", ts.URL+"/answer?query=q", nil); body["estimate"].(float64) != 55 {
		t.Fatalf("estimate = %v after omitted weight, want 55", body["estimate"])
	}
}

// A snapshot that fails mid-serialization must yield a clean 500 JSON
// error, never a 200 with truncated snapshot bytes glued to an error
// fragment. The failing producer below writes a partial payload before
// erroring — none of it may reach the client.
func TestSnapshotMidStreamErrorIsClean(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng)
	srv.snapshot = func(w io.Writer) error {
		if _, err := w.Write([]byte(`{"version":1,"stre`)); err != nil {
			return err
		}
		return errors.New("synopsis marshal failed")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("error body is not clean JSON: %v (%q)", err, raw)
	}
	if out["error"] == "" {
		t.Fatalf("missing error field in %q", raw)
	}
	if string(raw[0]) != "{" || len(raw) > 256 {
		t.Fatalf("response carries partial snapshot bytes: %q", raw)
	}
}

// A successful snapshot must carry an exact Content-Length (the body is
// buffered), so clients detect truncated transfers.
func TestSnapshotContentLength(t *testing.T) {
	ts := testServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength <= 0 || resp.ContentLength != int64(len(raw)) {
		t.Fatalf("Content-Length = %d, body = %d bytes", resp.ContentLength, len(raw))
	}
	if err := json.Unmarshal(raw, &map[string]any{}); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
}

// /stats must surface the answer-cache counters and the configured
// estimation parallelism.
func TestStatsReportsAnswerCache(t *testing.T) {
	ts := testServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "G", "domain": 64})
	do(t, "POST", ts.URL+"/queries", map[string]any{
		"name": "q",
		"left": map[string]any{"stream": "F"}, "right": map[string]any{"stream": "G"},
	})
	do(t, "GET", ts.URL+"/answer?query=q", nil)
	do(t, "GET", ts.URL+"/answer?query=q", nil)
	_, body := do(t, "GET", ts.URL+"/stats", nil)
	cache, ok := body["answerCache"].(map[string]any)
	if !ok {
		t.Fatalf("missing answerCache in %v", body)
	}
	if cache["misses"].(float64) != 1 || cache["hits"].(float64) != 1 {
		t.Fatalf("answerCache = %v, want 1 hit / 1 miss", cache)
	}
	if _, ok := body["queryWorkers"]; !ok {
		t.Fatalf("missing queryWorkers in %v", body)
	}
}
