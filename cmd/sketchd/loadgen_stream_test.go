package main

import (
	"context"
	"net"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
	"skimsketch/internal/loadtest"
)

// TestLoadHarnessSkimpProto is the SKSP mirror of the HTTP harness
// reconciliation test: a real sketchd with BOTH listeners up, the load
// harness driving the binary protocol (Proto: skimp) across two tenant
// namespaces, and exact reconciliation afterwards — every update the
// harness got an ACK for is in the engine, in the right tenant, and the
// /stats stream counters agree with the client's accounting.
func TestLoadHarnessSkimpProto(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 3, Buckets: 256, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"t0", "t1"}
	for _, name := range tenants {
		tn := eng.Tenant(name)
		for _, s := range []string{"F", "G"} {
			if err := tn.DeclareStream(s, 1<<12); err != nil {
				t.Fatal(err)
			}
		}
		// A registered query gives each stream a synopsis; without one the
		// engine admits updates but counts nothing as applied (nothing
		// listens), which would void the reconciliation below.
		if err := tn.RegisterQuery(engine.QuerySpec{
			Name: "q", Agg: engine.Count,
			Left:  engine.Side{Stream: "F"},
			Right: engine.Side{Stream: "G"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 2, BatchSize: 64, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopIngest()

	// Both front ends share one server value, hence one dedupe window.
	srv := newServer(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.stream = newStreamServer(eng, srv.dedupe, ln)
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.stream.serve() }()
	defer func() { srv.stream.shutdown(); <-done }()

	const totalUpdates = 6000
	cfg := loadtest.Config{
		BaseURL:      ts.URL,
		Streams:      []string{"F", "G"},
		Shape:        "zipf:1.0",
		Domain:       1 << 12,
		Seed:         42,
		Tenants:      len(tenants),
		Workers:      3,
		Batch:        100,
		QueueDepth:   128,
		TotalUpdates: totalUpdates,
		Proto:        loadtest.ProtoSkimp,
		StreamAddr:   ln.Addr().String(),
		Client:       loadtest.Client{Backoff: fastClientBackoff()},
	}
	res, err := loadtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingest.Errors != 0 {
		t.Fatalf("permanent errors over SKSP: %d", res.Ingest.Errors)
	}
	if got := res.Ingest.Updates + res.Ingest.Shed; got != totalUpdates {
		t.Fatalf("accepted %d + shed %d = %d, want %d", res.Ingest.Updates, res.Ingest.Shed, got, totalUpdates)
	}
	if res.Ingest.Updates != res.Server.Ingest.UpdatesApplied {
		t.Fatalf("client ACKed %d but engine applied %d", res.Ingest.Updates, res.Server.Ingest.UpdatesApplied)
	}
	// Per-tenant isolation holds over the binary path too.
	var tenantSum int64
	for _, tr := range res.Tenants {
		if tr.UpdatesSent != tr.ServerUpdates {
			t.Fatalf("tenant %s: client %d != server %d", tr.Tenant, tr.UpdatesSent, tr.ServerUpdates)
		}
		tenantSum += tr.ServerUpdates
	}
	if tenantSum != res.Ingest.Updates {
		t.Fatalf("tenant counters sum to %d, client ACKed %d", tenantSum, res.Ingest.Updates)
	}
	// The listener's own counters saw the traffic.
	if got := srv.stream.updates.Load(); got != res.Ingest.Updates {
		t.Fatalf("stream listener counted %d updates, client ACKed %d", got, res.Ingest.Updates)
	}
	if srv.stream.frames.Load() == 0 || srv.stream.connsTotal.Load() == 0 {
		t.Fatal("stream listener saw no frames/connections")
	}

	// The BENCH report round-trips with the protocol echoed.
	rep := loadtest.IngestReport(res, time.Now())
	if rep.Config.Proto != loadtest.ProtoSkimp {
		t.Fatalf("report proto %q, want %q", rep.Config.Proto, loadtest.ProtoSkimp)
	}
	path := filepath.Join(t.TempDir(), "BENCH_ingest.json")
	if err := loadtest.WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := loadtest.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Config.Proto != loadtest.ProtoSkimp {
		t.Fatalf("round-tripped proto %q", back.Config.Proto)
	}
}
