package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
	"skimsketch/internal/engine"
	"skimsketch/internal/stream"
	"skimsketch/internal/wire"
	"skimsketch/internal/wire/client"
)

// pipelinedServer boots an httptest server over an engine running the
// async ingest pipeline — the production shape, where queue-share
// quotas actually guard something.
func pipelinedServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 2, BatchSize: 64, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.StopIngest)
	ts := httptest.NewServer(newServer(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

// TestUpdatePartial429Atomic is the headline regression: a multi-stream
// batch that trips the tenant's queue-share quota on a LATER stream
// group must apply NOTHING. The old handler admitted groups one at a
// time, so a 429 could leave earlier groups applied — and every
// retrying client treats 429 as "nothing was applied, send the whole
// batch again", which double-counted the admitted prefix on retry.
func TestUpdatePartial429Atomic(t *testing.T) {
	ts, eng := pipelinedServer(t)
	capped := ts.URL + "/t/capped"
	setupTenantHTTP(t, capped)
	if code, body := do(t, "POST", ts.URL+"/tenants", map[string]any{
		"name":  "capped",
		"quota": map[string]any{"maxPendingUpdates": 150},
	}); code != 200 {
		t.Fatalf("set quota: %d %v", code, body)
	}

	// 100 F updates then 100 G updates: F alone fits the quota of 150,
	// the whole request does not. Pre-fix, F was admitted before G's
	// quota check fired.
	batch := make([]map[string]any, 0, 200)
	for i := 0; i < 100; i++ {
		batch = append(batch, map[string]any{"stream": "F", "value": uint64(i % 64)})
	}
	for i := 0; i < 100; i++ {
		batch = append(batch, map[string]any{"stream": "G", "value": uint64(i % 64)})
	}
	resp, out := doRaw(t, "POST", capped+"/update", batch)
	if resp.StatusCode != 429 {
		t.Fatalf("over-quota batch: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	eng.Flush()
	_, st := do(t, "GET", capped+"/stats", nil)
	counts := st["updateCounts"].(map[string]any)
	if f, g := counts["F"].(float64), counts["G"].(float64); f != 0 || g != 0 {
		t.Fatalf("429 left F=%v G=%v updates applied, want 0/0 (partial admission)", f, g)
	}
	// The whole request counts as rejected — not just the group that
	// tripped the quota.
	if st["rejected"].(float64) != 200 {
		t.Fatalf("rejected = %v, want 200 (the entire request)", st["rejected"])
	}

	// The same batch is retryable once the quota allows it: 429 really
	// meant "nothing applied".
	if code, body := do(t, "POST", ts.URL+"/tenants", map[string]any{
		"name":  "capped",
		"quota": map[string]any{"maxPendingUpdates": 1000},
	}); code != 200 {
		t.Fatalf("raise quota: %d %v", code, body)
	}
	if code, body := do(t, "POST", capped+"/update", batch); code != 200 || body["applied"].(float64) != 200 {
		t.Fatalf("retry after quota raise: %d %v", code, body)
	}
	eng.Flush()
	_, st = do(t, "GET", capped+"/stats", nil)
	counts = st["updateCounts"].(map[string]any)
	if f, g := counts["F"].(float64), counts["G"].(float64); f != 100 || g != 100 {
		t.Fatalf("retried batch applied F=%v G=%v, want 100/100", f, g)
	}
}

// TestUpdateIdempotencyKey: the HTTP twin of SKSP's (clientID, seq)
// dedupe. A replayed key answers from the window without re-applying;
// fresh keys apply normally; malformed keys are caller bugs.
func TestUpdateIdempotencyKey(t *testing.T) {
	ts, eng := pipelinedServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})

	send := func(key string) (*http.Response, map[string]any) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/update", strings.NewReader(
			`[{"stream":"F","value":1},{"stream":"F","value":2}]`))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := jsonDecode(resp.Body, &out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	resp, out := send("loader-1:7")
	if resp.StatusCode != 200 || out["applied"].(float64) != 2 || out["deduplicated"] != nil {
		t.Fatalf("first send: %d %v", resp.StatusCode, out)
	}
	// The retry (same key) is answered from the window.
	resp, out = send("loader-1:7")
	if resp.StatusCode != 200 || out["applied"].(float64) != 2 || out["deduplicated"] != true {
		t.Fatalf("replay: %d %v", resp.StatusCode, out)
	}
	// A fresh seq applies again; a different client's seq 7 is distinct.
	if resp, out = send("loader-1:8"); out["deduplicated"] != nil {
		t.Fatalf("fresh seq deduplicated: %d %v", resp.StatusCode, out)
	}
	if resp, out = send("loader-2:7"); out["deduplicated"] != nil {
		t.Fatalf("other client deduplicated: %d %v", resp.StatusCode, out)
	}
	eng.Flush()
	if n := streamCount(t, ts, "F"); n != 6 {
		t.Fatalf("F = %v updates, want 6 (three applies, one dedupe)", n)
	}

	for _, bad := range []string{"nocolon", ":7", "c:", "c:notanumber", "c:-1"} {
		if resp, _ := send(bad); resp.StatusCode != 400 {
			t.Fatalf("malformed key %q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// jsonDecode is a tiny helper so send() above can live without the
// do() wrapper (it needs the raw *http.Response for headers).
func jsonDecode(r io.Reader, v any) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// dropProxy forwards TCP to backend. While swallow is set, it lets the
// backend fully process one request, then cuts the connection without
// forwarding the response — the classic "applied but the client never
// heard" failure that makes naive retries double-apply.
func dropProxy(t *testing.T, backend string, swallow *atomic.Bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				b, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer b.Close()
				go func() { _, _ = io.Copy(b, c) }()
				if swallow.CompareAndSwap(true, false) {
					// Wait for the backend's response — proof the request
					// was fully processed — then drop everything.
					one := make([]byte, 1)
					_, _ = b.Read(one)
					return
				}
				_, _ = io.Copy(c, b)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestRetryDoubleApplyThroughProxy demonstrates the double-apply the
// Idempotency-Key exists to prevent. The proxy delivers the request
// and swallows the response; the client's retry is a SECOND copy of
// the same batch. Without a key the server applies both (F counts
// twice); with a key the replay is answered from the dedupe window and
// applies once.
func TestRetryDoubleApplyThroughProxy(t *testing.T) {
	ts, eng := pipelinedServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "G", "domain": 64})

	var swallow atomic.Bool
	proxyAddr := dropProxy(t, ts.Listener.Addr().String(), &swallow)
	// One connection per request: a swallowed response must not poison a
	// kept-alive connection for the next attempt.
	httpc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	sendOnce := func(body, key string) (*http.Response, error) {
		req, err := http.NewRequest("POST", "http://"+proxyAddr+"/update", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		return httpc.Do(req)
	}
	// sendRetrying is what every real client does: on a transport error
	// (no response received), send the whole batch again.
	sendRetrying := func(body, key string) {
		t.Helper()
		for attempt := 0; attempt < 3; attempt++ {
			resp, err := sendOnce(body, key)
			if err != nil {
				continue // response lost; retry the batch
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("attempt %d: status %d", attempt, resp.StatusCode)
			}
			return
		}
		t.Fatal("no successful attempt")
	}

	// Without a key: the swallowed first attempt was applied, the retry
	// applies again — 20 updates land from a 10-update batch.
	swallow.Store(true)
	sendRetrying(`[`+nUpdates("F", 10)+`]`, "")
	eng.Flush()
	if n := streamCount(t, ts, "F"); n != 20 {
		t.Fatalf("F = %v updates from a 10-update batch, want 20 (the double-apply this test documents)", n)
	}

	// With a key: same drop, but the retry is deduped — exactly 10.
	swallow.Store(true)
	sendRetrying(`[`+nUpdates("G", 10)+`]`, "retrier:1")
	eng.Flush()
	if n := streamCount(t, ts, "G"); n != 10 {
		t.Fatalf("G = %v updates, want exactly 10 (idempotent retry)", n)
	}
}

// nUpdates renders n single-update JSON objects for stream s.
func nUpdates(s string, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf(`{"stream":%q,"value":%d}`, s, i%64)
	}
	return strings.Join(parts, ",")
}

// streamListener boots the SKSP listener over a pipelined engine and
// returns its address plus the server for counter inspection.
func streamListener(t *testing.T, eng *engine.Engine, dedupe *wire.Window) (*streamServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := newStreamServer(eng, dedupe, ln)
	done := make(chan struct{})
	go func() { defer close(done); _ = sv.serve() }()
	t.Cleanup(func() { sv.shutdown(); <-done })
	return sv, ln.Addr().String()
}

func fastClientBackoff() distributed.Backoff {
	return distributed.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Jitter: 0}
}

// TestStreamIngestEndToEnd drives the SKSP listener with the real
// client: admitted batches land in the engine exactly once, quota trips
// come back as retryable REJECTs, bad frames as permanent errors, and
// raw replays of an admitted seq are answered from the dedupe window.
func TestStreamIngestEndToEnd(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 2, BatchSize: 64, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.StopIngest)
	def := eng.Tenant(engine.DefaultTenant)
	for _, s := range []string{"F", "G"} {
		if err := def.DeclareStream(s, 64); err != nil {
			t.Fatal(err)
		}
	}
	sv, addr := streamListener(t, eng, wire.NewWindow(0, 0))

	c := client.New(addr, client.Options{Backoff: fastClientBackoff()})
	defer c.Close()
	out, err := c.Send(context.Background(), "", []stream.Group{
		{Name: "F", Updates: []stream.Update{{Value: 1, Weight: 1}, {Value: 2, Weight: 1}}},
		{Name: "G", Updates: []stream.Update{{Value: 3, Weight: 2}}},
	})
	if err != nil || out.Applied != 3 {
		t.Fatalf("send: %+v %v", out, err)
	}
	eng.Flush()
	st := def.Stats()
	if st.UpdateCounts["F"] != 2 || st.UpdateCounts["G"] != 1 {
		t.Fatalf("counts after SKSP ingest: %v", st.UpdateCounts)
	}

	// Unknown stream: permanent ERROR frame, nothing applied.
	if _, err := c.Send(context.Background(), "", []stream.Group{
		{Name: "F", Updates: []stream.Update{{Value: 1, Weight: 1}}},
		{Name: "nope", Updates: []stream.Update{{Value: 1, Weight: 1}}},
	}); err == nil || !strings.Contains(err.Error(), "unknown stream") {
		t.Fatalf("unknown stream: %v", err)
	}
	eng.Flush()
	if n := def.Stats().UpdateCounts["F"]; n != 2 {
		t.Fatalf("F = %d after rejected frame, want 2 (atomic frames)", n)
	}

	// Quota trip: retryable REJECT until the budget is spent, and the
	// engine admits nothing.
	if err := eng.SetQuota("capped", engine.Quota{MaxPendingUpdates: 2}); err != nil {
		t.Fatal(err)
	}
	capped := eng.Tenant("capped")
	if err := capped.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	b := fastClientBackoff()
	b.Attempts = 2
	c2 := client.New(addr, client.Options{Backoff: b})
	defer c2.Close()
	big := make([]stream.Update, 10)
	for i := range big {
		big[i] = stream.Update{Value: uint64(i % 64), Weight: 1}
	}
	out, err = c2.Send(context.Background(), "capped", []stream.Group{{Name: "F", Updates: big}})
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("quota trip: %+v %v", out, err)
	}
	if out.Rejected429 != 2 {
		t.Fatalf("rejected %d times, want 2", out.Rejected429)
	}
	eng.Flush()
	if n := capped.Stats().UpdateCounts["F"]; n != 0 {
		t.Fatalf("capped F = %d, want 0", n)
	}

	if sv.frames.Load() == 0 || sv.rejected.Load() != 2 || sv.errored.Load() != 1 {
		t.Fatalf("listener counters: %+v", sv.statsJSON())
	}
}

// TestStreamReplayDedupe speaks raw SKSP: the same (clientID, seq)
// DATA frame sent twice — on one connection, then again after a
// reconnect — applies exactly once, and each replay is answered with a
// duplicate ACK carrying the original count.
func TestStreamReplayDedupe(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 1, BatchSize: 16, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.StopIngest)
	def := eng.Tenant(engine.DefaultTenant)
	if err := def.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	_, addr := streamListener(t, eng, wire.NewWindow(0, 0))

	dialSKSP := func() (net.Conn, *wire.Writer, *wire.Reader) {
		t.Helper()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		w, rd := wire.NewWriter(nc), wire.NewReader(nc)
		if err := w.WriteHeader(); err != nil || w.Flush() != nil {
			t.Fatal("header write failed")
		}
		if err := rd.ReadHeader(); err != nil {
			t.Fatal(err)
		}
		return nc, w, rd
	}
	frame := &wire.Data{
		ClientID: "raw-1",
		Seq:      42,
		Groups:   []stream.Group{{Name: "F", Updates: []stream.Update{{Value: 5, Weight: 1}, {Value: 6, Weight: 1}}}},
	}
	sendAndAck := func(w *wire.Writer, rd *wire.Reader) wire.Ack {
		t.Helper()
		if err := w.WriteData(frame); err != nil || w.Flush() != nil {
			t.Fatal("write failed")
		}
		ft, p, err := rd.Next()
		if err != nil || ft != wire.FrameAck {
			t.Fatalf("response: type %d err %v", ft, err)
		}
		a, err := wire.DecodeAck(p)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	nc, w, rd := dialSKSP()
	if a := sendAndAck(w, rd); a.Seq != 42 || a.Applied != 2 || a.Duplicate {
		t.Fatalf("first ack %+v", a)
	}
	// Same connection replay.
	if a := sendAndAck(w, rd); a.Applied != 2 || !a.Duplicate {
		t.Fatalf("same-conn replay ack %+v", a)
	}
	nc.Close()
	// Reconnect replay — the disconnect story.
	nc2, w2, rd2 := dialSKSP()
	defer nc2.Close()
	if a := sendAndAck(w2, rd2); a.Applied != 2 || !a.Duplicate {
		t.Fatalf("reconnect replay ack %+v", a)
	}

	eng.Flush()
	if n := def.Stats().UpdateCounts["F"]; n != 2 {
		t.Fatalf("F = %d updates after three transmissions, want 2 (exactly once)", n)
	}
}

// TestStreamDrainKeepsAckedFrames: shutdown() after an ACK must leave
// the acknowledged updates in the engine once flushed — drain loses
// nothing that was acknowledged.
func TestStreamDrainKeepsAckedFrames(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 2, BatchSize: 8, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	def := eng.Tenant(engine.DefaultTenant)
	if err := def.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := newStreamServer(eng, wire.NewWindow(0, 0), ln)
	done := make(chan struct{})
	go func() { defer close(done); _ = sv.serve() }()

	c := client.New(ln.Addr().String(), client.Options{Backoff: fastClientBackoff()})
	const batches = 20
	var want int64
	for i := 0; i < batches; i++ {
		out, err := c.Send(context.Background(), "", []stream.Group{
			{Name: "F", Updates: []stream.Update{{Value: uint64(i % 64), Weight: 1}}},
		})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		want += out.Applied
	}
	// The shutdown sequence main.go runs: drain the listener, then the
	// ingest pipeline.
	sv.shutdown()
	<-done
	eng.Flush()
	eng.StopIngest()
	c.Close()

	if n := def.Stats().UpdateCounts["F"]; n != want {
		t.Fatalf("F = %d after drain, want %d (every ACKed update kept)", n, want)
	}
}
