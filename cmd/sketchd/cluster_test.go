package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

// TestRunRejectsUnknownRole: a typo'd -role must fail loudly at boot,
// not silently run a standalone node inside a cluster.
func TestRunRejectsUnknownRole(t *testing.T) {
	opts, err := parseFlags([]string{"-role", "coordinator"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), opts, os.Stderr); err == nil || !strings.Contains(err.Error(), "coordinator") {
		t.Fatalf("run accepted unknown role: %v", err)
	}
	opts, err = parseFlags([]string{"-role", "merger"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), opts, os.Stderr); err == nil || !strings.Contains(err.Error(), "cluster.config") {
		t.Fatalf("merger without a membership file booted: %v", err)
	}
}

// TestClusterEndToEnd boots two real shard processes (in-process run()
// lifecycles, concurrent ingest pipelines) and a real merger over them,
// and checks the whole tentpole contract: schema broadcast, hash-routed
// ingest, a global answer bit-identical to a single-node reference, and
// a degraded (not failed) answer after one shard dies.
func TestClusterEndToEnd(t *testing.T) {
	shardArgs := func() options {
		opts, err := parseFlags([]string{
			"-role", "shard", "-addr", "127.0.0.1:0",
			"-tables", "5", "-buckets", "256", "-seed", "42",
			"-ingest.workers", "2", "-ingest.batch", "16",
			"-shutdown.timeout", "5s",
		})
		if err != nil {
			t.Fatal(err)
		}
		return opts
	}
	sctx0, cancel0 := context.WithCancel(context.Background())
	defer cancel0()
	out0 := &syncBuffer{}
	base0, done0 := startRun(t, sctx0, shardArgs(), out0)
	sctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	out1 := &syncBuffer{}
	base1, done1 := startRun(t, sctx1, shardArgs(), out1)

	ring := filepath.Join(t.TempDir(), "ring.json")
	ringJSON := fmt.Sprintf(`{"shards":[{"name":"s0","addr":"%s"},{"name":"s1","addr":"%s"}]}`, base0, base1)
	if err := os.WriteFile(ring, []byte(ringJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	mopts, err := parseFlags([]string{
		"-role", "merger", "-addr", "127.0.0.1:0",
		"-cluster.config", ring, "-cluster.timeout", "3s",
		"-shutdown.timeout", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	mctx, mcancel := context.WithCancel(context.Background())
	defer mcancel()
	mout := &syncBuffer{}
	mbase, mdone := startRun(t, mctx, mopts, mout)

	// Schema through the merger broadcast; both shards must hold it.
	for _, req := range []struct{ path, body string }{
		{"/streams", `{"name":"F","domain":1024}`},
		{"/streams", `{"name":"G","domain":1024}`},
		{"/queries", `{"name":"q","agg":"COUNT","left":{"stream":"F"},"right":{"stream":"G"}}`},
	} {
		if code, body := httpJSON(t, "POST", mbase+req.path, req.body); code != 201 {
			t.Fatalf("POST %s via merger: %d %s", req.path, code, body)
		}
	}

	// Seeded ingest through the merger, mirrored into a single-node
	// reference engine.
	ref, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 256, Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"F", "G"} {
		if err := ref.DeclareStream(name, 1024); err != nil {
			t.Fatal(err)
		}
	}
	err = ref.RegisterQuery(engine.QuerySpec{Name: "q", Agg: engine.Count,
		Left: engine.Side{Stream: "F"}, Right: engine.Side{Stream: "G"}})
	if err != nil {
		t.Fatal(err)
	}
	var batch []string
	for i := 0; i < 600; i++ {
		fv, gv := uint64(i*i%811), uint64((i*13+5)%1024)
		batch = append(batch,
			fmt.Sprintf(`{"stream":"F","value":%d}`, fv),
			fmt.Sprintf(`{"stream":"G","value":%d,"weight":2}`, gv))
		if err := ref.Update("F", fv, 1); err != nil {
			t.Fatal(err)
		}
		if err := ref.Update("G", gv, 2); err != nil {
			t.Fatal(err)
		}
	}
	if code, body := httpJSON(t, "POST", mbase+"/update", "["+strings.Join(batch, ",")+"]"); code != 200 {
		t.Fatalf("POST /update via merger: %d %s", code, body)
	}

	want, err := ref.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	var ar struct {
		Estimate int64 `json:"estimate"`
		Shards   struct {
			Answered int `json:"answered"`
			Of       int `json:"of"`
		} `json:"shards"`
		Confidence struct {
			Degraded bool `json:"degraded"`
		} `json:"confidence"`
	}
	code, body := httpJSON(t, "GET", mbase+"/answer?query=q", "")
	if code != 200 {
		t.Fatalf("GET /answer: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Estimate != want.Estimate {
		t.Fatalf("cluster estimate %d != single-node %d", ar.Estimate, want.Estimate)
	}
	if ar.Shards.Answered != 2 || ar.Shards.Of != 2 || ar.Confidence.Degraded {
		t.Fatalf("healthy answer misreported: %s", body)
	}

	// Kill shard 1 (context cancel = SIGTERM path) and require a
	// degraded answer, not an error.
	cancel1()
	if err := <-done1; err != nil {
		t.Fatalf("shard 1 shutdown: %v", err)
	}
	code, body = httpJSON(t, "GET", mbase+"/answer?query=q", "")
	if code != 200 {
		t.Fatalf("degraded GET /answer: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Shards.Answered != 1 || ar.Shards.Of != 2 || !ar.Confidence.Degraded {
		t.Fatalf("killed shard did not degrade the answer: %s", body)
	}

	// Clean shutdown of the rest.
	mcancel()
	if err := <-mdone; err != nil {
		t.Fatalf("merger shutdown: %v", err)
	}
	cancel0()
	if err := <-done0; err != nil {
		t.Fatalf("shard 0 shutdown: %v", err)
	}
}
