package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

// doRaw is do() plus response headers, for contract checks like
// Retry-After on 429.
func doRaw(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(b)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// setupTenantHTTP declares streams F and G plus the COUNT query "q"
// under one tenant base URL (e.g. ts.URL+"/t/alice").
func setupTenantHTTP(t *testing.T, base string) {
	t.Helper()
	for _, s := range []string{"F", "G"} {
		if code, body := do(t, "POST", base+"/streams", map[string]any{"name": s, "domain": 1024}); code != 201 {
			t.Fatalf("declare %s under %s: %d %v", s, base, code, body)
		}
	}
	code, body := do(t, "POST", base+"/queries", map[string]any{
		"name": "q", "agg": "COUNT",
		"left":  map[string]any{"stream": "F"},
		"right": map[string]any{"stream": "G"},
	})
	if code != 201 {
		t.Fatalf("register query under %s: %d %v", base, code, body)
	}
}

func pushN(t *testing.T, base string, value uint64, n int) {
	t.Helper()
	batch := make([]map[string]any, 0, 2*n)
	for i := 0; i < n; i++ {
		batch = append(batch,
			map[string]any{"stream": "F", "value": value},
			map[string]any{"stream": "G", "value": value})
	}
	if code, body := do(t, "POST", base+"/update", batch); code != 200 {
		t.Fatalf("update under %s: %d %v", base, code, body)
	}
}

// TestHTTPTenantIsolation drives two tenants with identical stream and
// query names through the wire API and checks estimates, stats slices,
// and the global rollup stay separate.
func TestHTTPTenantIsolation(t *testing.T) {
	ts := testServer(t)
	alice, bob := ts.URL+"/t/alice", ts.URL+"/t/bob"
	setupTenantHTTP(t, alice)
	setupTenantHTTP(t, bob)
	pushN(t, alice, 7, 10) // self-join mass 100
	pushN(t, bob, 7, 2)    // self-join mass 4

	_, ansA := do(t, "GET", alice+"/answer?query=q", nil)
	_, ansB := do(t, "GET", bob+"/answer?query=q", nil)
	if ansA["estimate"].(float64) != 100 || ansB["estimate"].(float64) != 4 {
		t.Fatalf("tenant answers: alice %v bob %v, want 100/4", ansA["estimate"], ansB["estimate"])
	}

	// Tenant-scoped stats carry only that tenant's counters.
	_, stA := do(t, "GET", alice+"/stats", nil)
	if stA["tenant"].(string) != "alice" {
		t.Fatalf("scoped stats tenant = %v", stA["tenant"])
	}
	if counts := stA["updateCounts"].(map[string]any); counts["F"].(float64) != 10 {
		t.Fatalf("alice updateCounts: %v", counts)
	}

	// The global view aggregates and namespaces.
	code, st := do(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("global stats: %d", code)
	}
	if st["streams"].(float64) != 4 || st["queries"].(float64) != 2 {
		t.Fatalf("global stats did not aggregate: %v", st)
	}
	tenants := st["tenants"].(map[string]any)
	if _, ok := tenants["alice"]; !ok {
		t.Fatalf("global stats missing alice slice: %v", tenants)
	}
	counts := st["updateCounts"].(map[string]any)
	if counts["alice/F"].(float64) != 10 || counts["bob/F"].(float64) != 2 {
		t.Fatalf("global updateCounts not tenant-prefixed: %v", counts)
	}

	// /tenants lists both namespaces.
	_, listing := do(t, "GET", ts.URL+"/tenants", nil)
	names := map[string]bool{}
	for _, row := range listing["tenants"].([]any) {
		names[row.(map[string]any)["tenant"].(string)] = true
	}
	if !names["alice"] || !names["bob"] {
		t.Fatalf("/tenants listing: %v", listing)
	}
}

// TestHTTPTenantRouting pins the scoping contract: path prefix, query
// parameter and body field agree or the request is refused — and the
// bare API remains the default tenant.
func TestHTTPTenantRouting(t *testing.T) {
	ts := testServer(t)

	// Bare path = default tenant; /t/default is the same namespace.
	if code, _ := do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64}); code != 201 {
		t.Fatal("bare declare failed")
	}
	if code, body := do(t, "POST", ts.URL+"/t/default/streams", map[string]any{"name": "F", "domain": 64}); code == 201 {
		t.Fatalf("/t/default is a different namespace than the bare API: %d %v", code, body)
	}
	if _, body := do(t, "GET", ts.URL+"/t/default/streams", nil); len(body["streams"].([]any)) != 1 {
		t.Fatalf("/t/default/streams: %v", body)
	}

	// Query parameter and body field scope too.
	if code, _ := do(t, "POST", ts.URL+"/streams?tenant=qt", map[string]any{"name": "F", "domain": 64}); code != 201 {
		t.Fatal("?tenant= scoping failed")
	}
	if code, _ := do(t, "POST", ts.URL+"/update", map[string]any{"tenant": "qt", "stream": "F", "value": 3}); code != 200 {
		t.Fatal("body-tenant update failed")
	}
	_, st := do(t, "GET", ts.URL+"/t/qt/stats", nil)
	if st["updateCounts"].(map[string]any)["F"].(float64) != 1 {
		t.Fatalf("qt stats after body-scoped update: %v", st)
	}

	// Conflicts are refused, not guessed.
	if code, body := do(t, "GET", ts.URL+"/t/a/stats?tenant=b", nil); code != 400 {
		t.Fatalf("path/query tenant conflict: %d %v", code, body)
	}
	if code, body := do(t, "POST", ts.URL+"/t/a/update", map[string]any{"tenant": "b", "stream": "F", "value": 1}); code != 400 {
		t.Fatalf("path/body tenant conflict: %d %v", code, body)
	}
	// Agreeing spellings are fine.
	if code, _ := do(t, "GET", ts.URL+"/t/qt/stats?tenant=qt", nil); code != 200 {
		t.Fatal("agreeing path+query tenant refused")
	}
	// A bare /t/{tenant} with no endpoint is a 404, not a panic.
	if code, _ := do(t, "GET", ts.URL+"/t/a", nil); code != 404 {
		t.Fatal("bare /t/{tenant} not 404")
	}

	// A batch mixing tenant fields can never half-apply.
	code, body := do(t, "POST", ts.URL+"/update", []map[string]any{
		{"tenant": "qt", "stream": "F", "value": 1},
		{"tenant": "other", "stream": "F", "value": 2},
	})
	if code != 400 || !strings.Contains(body["error"].(string), "mixes tenants") {
		t.Fatalf("mixed-tenant batch: %d %v", code, body)
	}
	// Invalid tenant names are 400s.
	if code, _ := do(t, "GET", ts.URL+"/stats?tenant=a%20b", nil); code != 400 {
		t.Fatal("whitespace tenant name accepted")
	}
}

// TestHTTPTenantQuota429 sets a queue-share quota over the admin API and
// checks the wire contract: 429 + Retry-After, rejected counter on the
// tenant's slice, other tenants untouched. Queue-share quotas guard the
// ingest queues, so this server runs the async pipeline like production
// sketchd does.
func TestHTTPTenantQuota429(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 2, BatchSize: 8, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.StopIngest)
	ts := httptest.NewServer(newServer(eng))
	t.Cleanup(ts.Close)
	capped := ts.URL + "/t/capped"
	setupTenantHTTP(t, capped)
	code, body := do(t, "POST", ts.URL+"/tenants", map[string]any{
		"name":  "capped",
		"quota": map[string]any{"maxPendingUpdates": 4},
	})
	if code != 200 {
		t.Fatalf("set quota: %d %v", code, body)
	}

	batch := make([]map[string]any, 10)
	for i := range batch {
		batch[i] = map[string]any{"stream": "F", "value": uint64(i)}
	}
	resp, out := doRaw(t, "POST", capped+"/update", batch)
	if resp.StatusCode != 429 {
		t.Fatalf("over-quota batch: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	_, st := do(t, "GET", capped+"/stats", nil)
	if st["rejected"].(float64) != 10 {
		t.Fatalf("rejected counter: %v", st["rejected"])
	}
	if st["updateCounts"].(map[string]any)["F"].(float64) != 0 {
		t.Fatalf("rejected batch leaked into counts: %v", st["updateCounts"])
	}
	if q := st["quota"].(map[string]any); q["maxPendingUpdates"].(float64) != 4 {
		t.Fatalf("quota not echoed in stats: %v", q)
	}

	// Under the cap the tenant still works, and the default tenant was
	// never throttled.
	if code, _ := do(t, "POST", capped+"/update", batch[:4]); code != 200 {
		t.Fatal("under-quota batch refused")
	}
	if code, _ := do(t, "POST", ts.URL+"/streams", map[string]any{"name": "H", "domain": 64}); code != 201 {
		t.Fatal("default tenant affected by capped quota")
	}
}

// TestHTTPWatchLifecycle exercises the standing-watch endpoints end to
// end: register, evaluate through the answer cache, alert transition,
// listing, and removal.
func TestHTTPWatchLifecycle(t *testing.T) {
	ts := testServer(t)
	ops := ts.URL + "/t/ops"
	setupTenantHTTP(t, ops)

	if code, body := do(t, "POST", ops+"/watches", map[string]any{"query": "q", "high": 50, "low": 10}); code != 201 {
		t.Fatalf("register watch: %d %v", code, body)
	}
	// Watch on a missing query is refused.
	if code, _ := do(t, "POST", ops+"/watches", map[string]any{"query": "nope", "high": 1}); code != 400 {
		t.Fatal("watch on unknown query accepted")
	}

	evaluate := func() map[string]any {
		t.Helper()
		code, body := do(t, "POST", ops+"/watches/evaluate", nil)
		if code != 200 {
			t.Fatalf("evaluate: %d %v", code, body)
		}
		rows := body["watches"].([]any)
		if len(rows) != 1 {
			t.Fatalf("want 1 watch, got %v", body)
		}
		return rows[0].(map[string]any)
	}
	if st := evaluate(); st["state"].(string) != "normal" {
		t.Fatalf("fresh watch state: %v", st)
	}
	pushN(t, ops, 3, 8) // self-join mass 64 ≥ High
	if st := evaluate(); st["state"].(string) != "alert" || st["transitions"].(float64) != 1 {
		t.Fatalf("watch did not raise: %v", evaluate())
	}
	if _, body := do(t, "GET", ops+"/watches", nil); len(body["watches"].([]any)) != 1 {
		t.Fatalf("watch listing: %v", body)
	}
	// Watches are tenant-scoped: another tenant sees none.
	if _, body := do(t, "GET", ts.URL+"/t/other/watches", nil); len(body["watches"].([]any)) != 0 {
		t.Fatalf("watches leaked across tenants: %v", body)
	}
	if code, _ := do(t, "DELETE", ops+"/watches/q", nil); code != 200 {
		t.Fatal("delete watch failed")
	}
	if code, _ := do(t, "DELETE", ops+"/watches/q", nil); code != 404 {
		t.Fatal("deleting a missing watch not 404")
	}
	if _, body := do(t, "GET", ops+"/watches", nil); len(body["watches"].([]any)) != 0 {
		t.Fatalf("watch survived deletion: %v", body)
	}
}

// TestHTTPTenantScopedSnapshot moves one tenant between servers over the
// wire while a second tenant stays home.
func TestHTTPTenantScopedSnapshot(t *testing.T) {
	src := testServer(t)
	setupTenantHTTP(t, src.URL+"/t/alice")
	setupTenantHTTP(t, src.URL+"/t/bob")
	pushN(t, src.URL+"/t/alice", 5, 6)

	resp, err := http.Get(src.URL + "/t/alice/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, code := readAll(t, resp)
	if code != 200 {
		t.Fatalf("tenant snapshot: %d %s", code, blob)
	}

	dst := testServer(t)
	resp2, err := http.Post(dst.URL+"/t/carol/restore", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body, code := readAll(t, resp2)
	if code != 200 {
		t.Fatalf("tenant restore: %d %s", code, body)
	}
	_, ans := do(t, "GET", dst.URL+"/t/carol/answer?query=q", nil)
	if ans["estimate"].(float64) != 36 {
		t.Fatalf("restored tenant answers %v, want 36", ans["estimate"])
	}
	// Bob did not travel.
	if _, body := do(t, "GET", dst.URL+"/t/bob/streams", nil); len(body["streams"].([]any)) != 0 {
		t.Fatalf("tenant-scoped snapshot leaked bob: %v", body)
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, int) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// TestCheckpointV1RestoresIntoDefault is the pre-tenant compatibility
// contract at the sketchd layer: a version-1 checkpoint payload —
// tenant-free predicates and a version-1 engine snapshot — restores
// into the default tenant and answers bit-identically, and the restored
// server's next checkpoint is a version-2 document carrying the same
// state.
func TestCheckpointV1RestoresIntoDefault(t *testing.T) {
	mk := func() (*server, *engine.Engine) {
		eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		return newServer(eng), eng
	}
	_, srcEng := mk()
	if err := srcEng.RegisterPredicate("low", rangePredicate(0, 31)); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"F", "G"} {
		if err := srcEng.DeclareStream(s, 64); err != nil {
			t.Fatal(err)
		}
	}
	err := srcEng.RegisterQuery(engine.QuerySpec{
		Name: "q", Agg: engine.Count,
		Left:  engine.Side{Stream: "F", Predicate: "low"},
		Right: engine.Side{Stream: "G"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := srcEng.Update("F", uint64(i%64), 1); err != nil {
			t.Fatal(err)
		}
		if err := srcEng.Update("G", uint64((i*7)%64), 1); err != nil {
			t.Fatal(err)
		}
	}
	var engSnap bytes.Buffer
	if err := srcEng.Snapshot(&engSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(engSnap.Bytes(), []byte(`"version":1`)) {
		t.Fatalf("fixture is not a v1 engine snapshot: %.80s", engSnap.Bytes())
	}
	// Assemble the payload exactly as a pre-tenant sketchd wrote it:
	// version 1, predicates without tenant fields.
	v1 := fmt.Sprintf(`{"version":1,"predicates":[{"name":"low","min":0,"max":31}],"engine":%s}`, engSnap.Bytes())

	dstSrv, dstEng := mk()
	if err := dstSrv.readCheckpoint(strings.NewReader(v1)); err != nil {
		t.Fatalf("v1 checkpoint refused: %v", err)
	}
	want, err := srcEng.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dstEng.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("v1 restore diverged: %+v vs %+v", got, want)
	}
	// The state landed in the default tenant, nowhere else.
	if names := dstEng.TenantNames(); len(names) != 1 || names[0] != engine.DefaultTenant {
		t.Fatalf("v1 restore created tenants %v", names)
	}
	// And the restored server re-checkpoints as version 2 with the same
	// predicate, default-tenant spelled canonically (no tenant field).
	var buf2 bytes.Buffer
	if err := dstSrv.writeCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	var cp sketchdCheckpoint
	if err := json.Unmarshal(buf2.Bytes(), &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Version != sketchdCheckpointVersion {
		t.Fatalf("re-checkpoint version %d", cp.Version)
	}
	if len(cp.Predicates) != 1 || cp.Predicates[0].Tenant != "" || cp.Predicates[0].Name != "low" {
		t.Fatalf("re-checkpoint predicates: %+v", cp.Predicates)
	}
}
