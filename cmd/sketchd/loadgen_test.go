package main

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
	"skimsketch/internal/engine"
	"skimsketch/internal/loadtest"
	"skimsketch/internal/stats"
)

// TestLoadHarnessReconciliation is the deterministic in-process harness
// test: a real sketchd (engine + HTTP server + concurrent ingest
// pipeline) booted via httptest, a seeded loadgen burst, then exact
// reconciliation — every update the harness reports accepted is in the
// engine, the server's monotonic /update latency count matches the
// client's request count, and the emitted BENCH JSON validates against
// the documented schema.
func TestLoadHarnessReconciliation(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 3, Buckets: 256, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DeclareStream("F", 1<<12); err != nil {
		t.Fatal(err)
	}
	if err := eng.DeclareStream("G", 1<<12); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery(engine.QuerySpec{
		Name: "q", Agg: engine.Count,
		Left:  engine.Side{Stream: "F"},
		Right: engine.Side{Stream: "G"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 2, BatchSize: 64, QueueDepth: 32}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopIngest()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	const totalUpdates = 8000
	cfg := loadtest.Config{
		BaseURL:      ts.URL,
		Streams:      []string{"F", "G"},
		Shape:        "zipf:1.0",
		Domain:       1 << 12,
		Seed:         42,
		Workers:      3,
		Batch:        100,
		QueueDepth:   128, // deep enough that nothing sheds: exact volume
		TotalUpdates: totalUpdates,
		QueryWorkers: 1,
		QueryName:    "q",
		Client: loadtest.Client{Backoff: distributed.Backoff{
			Base: time.Millisecond, Max: 10 * time.Millisecond,
			Rand: rand.New(rand.NewSource(5)),
		}},
	}
	res, err := loadtest.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Exact reconciliation: sent == engine ingested + rejected-by-429
	// (here nothing saturates a depth-128 queue of an in-process server,
	// so all 8000 land unless shed client-side — and a shed batch was
	// never sent).
	if res.Ingest.Errors != 0 {
		t.Fatalf("permanent errors during burst: %d", res.Ingest.Errors)
	}
	if got := res.Ingest.Updates + res.Ingest.Shed; got != totalUpdates {
		t.Fatalf("accepted %d + shed %d = %d, want %d", res.Ingest.Updates, res.Ingest.Shed, got, totalUpdates)
	}
	if res.Ingest.Updates != res.Server.Ingest.UpdatesApplied {
		t.Fatalf("client accepted %d but engine applied %d", res.Ingest.Updates, res.Server.Ingest.UpdatesApplied)
	}
	if res.Ingest.Rejected429 != res.Server.Ingest.Rejected {
		t.Fatalf("client saw %d 429s, server counted %d rejections", res.Ingest.Rejected429, res.Server.Ingest.Rejected)
	}
	if res.Ingest.Requests != res.Server.UpdateLatency.Count {
		t.Fatalf("client made %d requests, server's monotonic latency histogram holds %d",
			res.Ingest.Requests, res.Server.UpdateLatency.Count)
	}
	// And against the engine directly, not just /stats.
	if got := eng.IngestStats().UpdatesApplied; got != res.Ingest.Updates {
		t.Fatalf("engine applied %d, client accepted %d", got, res.Ingest.Updates)
	}

	// The emitted BENCH files validate against the documented schema.
	dir := t.TempDir()
	now := time.Now()
	ingestPath := filepath.Join(dir, "BENCH_ingest.json")
	queryPath := filepath.Join(dir, "BENCH_query.json")
	if err := loadtest.WriteReport(ingestPath, loadtest.IngestReport(res, now)); err != nil {
		t.Fatal(err)
	}
	if err := loadtest.WriteReport(queryPath, loadtest.QueryReport(res, now)); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{ingestPath, queryPath} {
		rep, err := loadtest.ReadReport(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("%s: %v", filepath.Base(p), err)
		}
		if rep.ThroughputPerSec <= 0 {
			t.Fatalf("%s: zero throughput", filepath.Base(p))
		}
	}
}

// TestLoadgenClientBackoffOn429 is the regression test for the 429
// path end to end: a sketchd with a saturated depth-1 ingest queue
// sheds the harness's batch with Retry-After, the loadtest client's
// jittered backoff retries (honoring the hint as a floor), and once the
// queue drains the batch lands exactly once — no loss, no double count.
func TestLoadgenClientBackoffOn429(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 3, Buckets: 64, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	err = eng.RegisterPredicate("gate", func(uint64, int64) bool {
		entered <- struct{}{}
		<-gate
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	if err := eng.DeclareStream("G", 64); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterQuery(engine.QuerySpec{
		Name: "q", Agg: engine.Count,
		Left:  engine.Side{Stream: "F", Predicate: "gate"},
		Right: engine.Side{Stream: "G"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartIngest(engine.IngestConfig{Workers: 1, BatchSize: 1, QueueDepth: 1}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopIngest()
	ts := httptest.NewServer(newServer(eng))
	defer ts.Close()

	client := &loadtest.Client{BaseURL: ts.URL, Backoff: distributed.Backoff{
		Base: 5 * time.Millisecond, Max: 50 * time.Millisecond,
		Rand: rand.New(rand.NewSource(3)),
	}}

	// Park the lone worker inside the gated predicate and fill the
	// depth-1 queue: the pipeline is now saturated.
	if _, err := client.SendUpdates(context.Background(), []loadtest.Update{{Stream: "F", Value: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	<-entered
	if _, err := client.SendUpdates(context.Background(), []loadtest.Update{{Stream: "F", Value: 2}}, nil); err != nil {
		t.Fatal(err)
	}

	// The next batch must be shed with 429 + Retry-After and retried by
	// the client until the gate opens. Open the gate once the first 429
	// is observed (the server's Retry-After is 1s, which floors the
	// client's backoff — so the retry lands after the queue drained).
	var wg sync.WaitGroup
	var out loadtest.SendOutcome
	var sendErr error
	var hist stats.Histogram
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, sendErr = client.SendUpdates(context.Background(),
			[]loadtest.Update{{Stream: "F", Value: 3}, {Stream: "G", Value: 3}}, &hist)
	}()
	// Wait until the server has rejected at least once, then release.
	for eng.IngestStats().Rejected == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if out.Rejected429 < 1 {
		t.Fatalf("expected at least one 429, got %d", out.Rejected429)
	}
	if out.Applied != 2 {
		t.Fatalf("final attempt applied %d updates, want 2", out.Applied)
	}
	if out.Attempts != out.Rejected429+1 {
		t.Fatalf("attempts %d, rejections %d: retried a non-429 or lost one", out.Attempts, out.Rejected429)
	}
	eng.Flush()
	// No loss, no double count: 2 parked updates + the 2-update batch.
	if got := eng.IngestStats().UpdatesApplied; got != 4 {
		t.Fatalf("engine applied %d updates, want exactly 4", got)
	}
	if got := eng.IngestStats().Rejected; got != out.Rejected429 {
		t.Fatalf("engine rejected %d, client observed %d", got, out.Rejected429)
	}
}

// TestHealthzLifecycle pins the readiness contract: ready while
// serving, 503 draining once shutdown flips the gauge.
func TestHealthzLifecycle(t *testing.T) {
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 3, Buckets: 64, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body := httpJSON(t, "GET", ts.URL+"/healthz", ""); code != 200 || body == "" {
		t.Fatalf("healthz while serving: %d %s", code, body)
	}
	client := &loadtest.Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := client.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady against a live server: %v", err)
	}
	srv.draining.Store(true)
	if code, _ := httpJSON(t, "GET", ts.URL+"/healthz", ""); code != 503 {
		t.Fatalf("healthz while draining: %d, want 503", code)
	}
}

// TestStatsUpdateLatencyHistogram: the /stats latency block counts
// every /update request (success and 429 alike) with sane monotonic
// figures.
func TestStatsUpdateLatencyHistogram(t *testing.T) {
	ts := testServer(t)
	if code, _ := do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64}); code != 201 {
		t.Fatal("declare")
	}
	for i := 0; i < 5; i++ {
		if code, _ := do(t, "POST", ts.URL+"/update", map[string]any{"stream": "F", "value": i}); code != 200 {
			t.Fatal("update")
		}
	}
	// A malformed update is timed too — the count is requests, not successes.
	if code, _ := do(t, "POST", ts.URL+"/update", map[string]any{"stream": "nope", "value": 1}); code != 400 {
		t.Fatal("expected 400")
	}
	code, body := do(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatal("stats")
	}
	lat, ok := body["updateLatency"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing updateLatency: %v", body)
	}
	if got := lat["count"].(float64); got != 6 {
		t.Fatalf("updateLatency.count = %v, want 6", got)
	}
	if lat["maxNs"].(float64) <= 0 || lat["p99Ns"].(float64) <= 0 {
		t.Fatalf("latency figures not positive: %v", lat)
	}
	if body["uptimeSeconds"].(float64) <= 0 {
		t.Fatal("uptimeSeconds missing or zero")
	}
}
