package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(eng))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(b)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestFullHTTPWorkflow(t *testing.T) {
	ts := testServer(t)

	// Declare streams.
	if code, _ := do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 1024}); code != 201 {
		t.Fatalf("declare F: %d", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/streams", map[string]any{"name": "G", "domain": 1024}); code != 201 {
		t.Fatalf("declare G: %d", code)
	}
	// Register a query.
	if code, body := do(t, "POST", ts.URL+"/queries", map[string]any{
		"name": "q", "agg": "COUNT",
		"left":  map[string]any{"stream": "F"},
		"right": map[string]any{"stream": "G"},
	}); code != 201 {
		t.Fatalf("register query: %d %v", code, body)
	}
	// Push a batch and a single update.
	batch := []map[string]any{
		{"stream": "F", "value": 7, "weight": 10},
		{"stream": "G", "value": 7, "weight": 4},
	}
	if code, body := do(t, "POST", ts.URL+"/update", batch); code != 200 || body["applied"].(float64) != 2 {
		t.Fatalf("batch update: %d %v", code, body)
	}
	if code, body := do(t, "POST", ts.URL+"/update", map[string]any{"stream": "G", "value": 7}); code != 200 || body["applied"].(float64) != 1 {
		t.Fatalf("single update: %d %v", code, body)
	}
	// Answer: f_7 = 10, g_7 = 5 → 50.
	code, body := do(t, "GET", ts.URL+"/answer?query=q", nil)
	if code != 200 {
		t.Fatalf("answer: %d %v", code, body)
	}
	if est := body["estimate"].(float64); est != 50 {
		t.Fatalf("estimate = %v, want 50", est)
	}
	if body["agg"].(string) != "COUNT" {
		t.Fatalf("agg = %v", body["agg"])
	}
	// Stats.
	code, body = do(t, "GET", ts.URL+"/stats", nil)
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if body["queries"].(float64) != 1 || body["synopses"].(float64) != 2 {
		t.Fatalf("stats: %v", body)
	}
	// Listings.
	if _, body := do(t, "GET", ts.URL+"/queries", nil); len(body["queries"].([]any)) != 1 {
		t.Fatalf("queries listing: %v", body)
	}
	if _, body := do(t, "GET", ts.URL+"/streams", nil); len(body["streams"].([]any)) != 2 {
		t.Fatalf("streams listing: %v", body)
	}
	// Delete the query.
	if code, _ := do(t, "DELETE", ts.URL+"/queries/q", nil); code != 200 {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/answer?query=q", nil); code != 404 {
		t.Fatalf("answer after delete: %d", code)
	}
}

func TestPredicateAndSumOverHTTP(t *testing.T) {
	ts := testServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "subs", "domain": 64})
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "sales", "domain": 64})
	if code, _ := do(t, "POST", ts.URL+"/predicates", map[string]any{"name": "low", "min": 0, "max": 9}); code != 201 {
		t.Fatal("predicate registration failed")
	}
	if code, body := do(t, "POST", ts.URL+"/queries", map[string]any{
		"name": "rev", "agg": "SUM",
		"left":  map[string]any{"stream": "subs", "predicate": "low"},
		"right": map[string]any{"stream": "sales"},
	}); code != 201 {
		t.Fatalf("register: %d %v", code, body)
	}
	do(t, "POST", ts.URL+"/update", []map[string]any{
		{"stream": "subs", "value": 5},
		{"stream": "subs", "value": 20}, // filtered by predicate
		{"stream": "sales", "value": 5, "weight": 300},
		{"stream": "sales", "value": 20, "weight": 999},
	})
	_, body := do(t, "GET", ts.URL+"/answer?query=rev", nil)
	if est := body["estimate"].(float64); est != 300 {
		t.Fatalf("SUM estimate = %v, want 300 (value 20 filtered on the left)", est)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		method, path string
		body         any
		wantCode     int
	}{
		{"GET", "/predicates", nil, 405},
		{"POST", "/streams", map[string]any{"name": "", "domain": 0}, 400},
		{"PUT", "/streams", nil, 405},
		{"POST", "/predicates", map[string]any{"name": "bad", "min": 9, "max": 1}, 400},
		{"POST", "/queries", map[string]any{"name": "q", "agg": "AVG"}, 400},
		{"POST", "/queries", map[string]any{"name": "q", "left": map[string]any{"stream": "missing"}, "right": map[string]any{"stream": "missing"}}, 400},
		{"PATCH", "/queries", nil, 405},
		{"GET", "/queries/x", nil, 405},
		{"DELETE", "/queries/", nil, 400},
		{"DELETE", "/queries/missing", nil, 404},
		{"GET", "/update", nil, 405},
		{"POST", "/update", "notanupdate", 400},
		{"POST", "/update", map[string]any{"stream": "missing", "value": 1}, 400},
		{"POST", "/answer", nil, 405},
		{"GET", "/answer", nil, 400},
		{"GET", "/answer?query=missing", nil, 404},
		{"POST", "/stats", nil, 405},
	}
	for _, c := range cases {
		code, _ := do(t, c.method, ts.URL+c.path, c.body)
		if code != c.wantCode {
			t.Fatalf("%s %s: got %d, want %d", c.method, c.path, code, c.wantCode)
		}
	}
}

func TestWindowedQueryOverHTTP(t *testing.T) {
	ts := testServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "G", "domain": 64})
	if code, body := do(t, "POST", ts.URL+"/queries", map[string]any{
		"name": "w",
		"left": map[string]any{"stream": "F", "windowLen": 100, "windowBuckets": 4},
		"right": map[string]any{
			"stream": "G"},
	}); code != 201 {
		t.Fatalf("register windowed: %d %v", code, body)
	}
	// Old F mass expires.
	var batch []map[string]any
	for i := 0; i < 80; i++ {
		batch = append(batch, map[string]any{"stream": "F", "value": 7})
	}
	do(t, "POST", ts.URL+"/update", batch)
	batch = batch[:0]
	for i := 0; i < 400; i++ {
		batch = append(batch, map[string]any{"stream": "F", "value": float64(i%32 + 32)})
	}
	do(t, "POST", ts.URL+"/update", batch)
	do(t, "POST", ts.URL+"/update", map[string]any{"stream": "G", "value": 7, "weight": 100})
	_, body := do(t, "GET", ts.URL+"/answer?query=w", nil)
	if est := body["estimate"].(float64); est > 1500 {
		t.Fatalf("windowed estimate %v; early mass should have expired", est)
	}
}

func TestSnapshotRestoreOverHTTP(t *testing.T) {
	ts := testServer(t)
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "F", "domain": 64})
	do(t, "POST", ts.URL+"/streams", map[string]any{"name": "G", "domain": 64})
	do(t, "POST", ts.URL+"/queries", map[string]any{
		"name": "q",
		"left": map[string]any{"stream": "F"}, "right": map[string]any{"stream": "G"},
	})
	do(t, "POST", ts.URL+"/update", []map[string]any{
		{"stream": "F", "value": 7, "weight": 6},
		{"stream": "G", "value": 7, "weight": 5},
	})
	// Fetch the snapshot.
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("snapshot: %d %v", resp.StatusCode, err)
	}
	// Restore into a fresh server and re-ask.
	ts2 := testServer(t)
	resp, err = http.Post(ts2.URL+"/restore", "application/json", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("restore status %d", resp.StatusCode)
	}
	_, body := do(t, "GET", ts2.URL+"/answer?query=q", nil)
	if est := body["estimate"].(float64); est != 30 {
		t.Fatalf("restored estimate = %v, want 30", est)
	}
	// Restore into a non-empty server fails.
	if code, _ := do(t, "POST", ts2.URL+"/restore", map[string]any{"version": 1}); code != 400 {
		t.Fatalf("second restore: %d", code)
	}
	// Method checks.
	if code, _ := do(t, "POST", ts.URL+"/snapshot", map[string]any{}); code != 405 {
		t.Fatal("snapshot must be GET")
	}
	if code, _ := do(t, "GET", ts2.URL+"/restore", nil); code != 405 {
		t.Fatal("restore must be POST")
	}
}

func TestBadJSONBody(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/streams", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestParseIdempotencyKeyUnwraps: a non-numeric seq wraps the strconv
// error with %w so handlers can errors.As to *strconv.NumError.
func TestParseIdempotencyKeyUnwraps(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/update", nil)
	r.Header.Set("Idempotency-Key", "client-1:notanumber")
	_, _, _, err := parseIdempotencyKey(r)
	if err == nil {
		t.Fatal("malformed seq accepted")
	}
	var ne *strconv.NumError
	if !errors.As(err, &ne) {
		t.Errorf("error %q does not unwrap to *strconv.NumError", err)
	}
}
