package main

import (
	"os"
	"path/filepath"
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestRunValidation(t *testing.T) {
	if err := run("zipf", "", "", 16, 10, 1.0, 0, 1, 0, "binary"); err == nil {
		t.Fatal("expected error for missing -out")
	}
	if err := run("zipf", "x", "", 16, 0, 1.0, 0, 1, 0, "binary"); err == nil {
		t.Fatal("expected error for n=0")
	}
	if err := run("nope", "x", "", 16, 10, 1.0, 0, 1, 0, "binary"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if err := run("census", filepath.Join(t.TempDir(), "w.sks"), "", 16, 10, 1.0, 0, 1, 0, "binary"); err == nil {
		t.Fatal("expected error for census without -out2")
	}
	if err := run("zipf", "x", "", 0, 10, 1.0, 0, 1, 0, "binary"); err == nil {
		t.Fatal("expected error for zero domain")
	}
}

func TestRunZipfWritesStream(t *testing.T) {
	out := filepath.Join(t.TempDir(), "f.sks")
	if err := run("zipf", out, "", 256, 1000, 1.0, 10, 7, 0, "binary"); err != nil {
		t.Fatal(err)
	}
	domain, updates, err := stream.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if domain != 256 || len(updates) != 1000 {
		t.Fatalf("domain=%d len=%d", domain, len(updates))
	}
	if err := stream.Validate(updates, 256); err != nil {
		t.Fatal(err)
	}
}

func TestRunUniformWithDeletes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "u.sks")
	if err := run("uniform", out, "", 64, 500, 0, 0, 3, 0.5, "binary"); err != nil {
		t.Fatal(err)
	}
	_, updates, err := stream.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) <= 500 {
		t.Fatalf("delete noise should add updates, got %d", len(updates))
	}
	var deletes int
	for _, u := range updates {
		if u.Weight < 0 {
			deletes++
		}
	}
	if deletes == 0 {
		t.Fatal("expected delete records")
	}
}

func TestRunTextFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "f.txt")
	if err := run("zipf", out, "", 64, 200, 1.0, 0, 7, 0, "text"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	updates, err := stream.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 200 {
		t.Fatalf("got %d text updates", len(updates))
	}
	if err := stream.Validate(updates, 64); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run("zipf", filepath.Join(t.TempDir(), "x"), "", 16, 10, 1.0, 0, 1, 0, "yaml"); err == nil {
		t.Fatal("expected format error")
	}
}

func TestRunCensusWritesBothStreams(t *testing.T) {
	dir := t.TempDir()
	w := filepath.Join(dir, "wage.sks")
	o := filepath.Join(dir, "ot.sks")
	if err := run("census", w, o, 0, 2000, 0, 0, 5, 0, "binary"); err != nil {
		t.Fatal(err)
	}
	dw, uw, err := stream.ReadFile(w)
	if err != nil {
		t.Fatal(err)
	}
	do, uo, err := stream.ReadFile(o)
	if err != nil {
		t.Fatal(err)
	}
	if dw != workload.CensusDomain || do != workload.CensusDomain {
		t.Fatalf("domains %d/%d", dw, do)
	}
	if len(uw) != 2000 || len(uo) != 2000 {
		t.Fatalf("lengths %d/%d", len(uw), len(uo))
	}
}
