// Command datagen writes synthetic update-stream files in the repository's
// SKS1 binary format, for use with cmd/skimjoin.
//
// Usage:
//
//	datagen -kind zipf -out f.sks -domain 262144 -n 4000000 -zipf 1.0
//	datagen -kind zipf -out g.sks -domain 262144 -n 4000000 -zipf 1.0 -shift 100 -seed 2
//	datagen -kind uniform -out u.sks -domain 1024 -n 100000
//	datagen -kind census -out wage.sks -out2 overtime.sks -n 159434
//
// The -deletes flag interleaves insert/delete noise that leaves the net
// frequency vector unchanged, for exercising the general-update path.
package main

import (
	"flag"
	"fmt"
	"os"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "zipf", "workload: zipf|uniform|census")
		out     = flag.String("out", "", "output stream file (required)")
		out2    = flag.String("out2", "", "second output file (census only: overtime stream)")
		domain  = flag.Uint64("domain", 1<<18, "value domain size m")
		n       = flag.Int("n", 1000000, "number of stream elements")
		zipf    = flag.Float64("zipf", 1.0, "zipf skew parameter z")
		shift   = flag.Uint64("shift", 0, "right-shift applied to generated values")
		seed    = flag.Int64("seed", 1, "generator seed")
		deletes = flag.Float64("deletes", 0, "fraction of insert/delete noise to interleave")
		format  = flag.String("format", "binary", "output format: binary (SKS1) or text (value[,weight] lines)")
	)
	flag.Parse()

	if err := run(*kind, *out, *out2, *domain, *n, *zipf, *shift, *seed, *deletes, *format); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(kind, out, out2 string, domain uint64, n int, zipf float64, shift uint64, seed int64, deletes float64, format string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	if n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	writeStream := func(path string, d uint64, updates []stream.Update) error {
		switch format {
		case "binary":
			return stream.WriteFile(path, d, updates)
		case "text":
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := stream.WriteText(f, updates); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		default:
			return fmt.Errorf("unknown -format %q", format)
		}
	}

	switch kind {
	case "zipf", "uniform":
		var gen workload.Generator
		var err error
		if kind == "zipf" {
			gen, err = workload.NewZipf(domain, zipf, seed)
			if err != nil {
				return err
			}
		} else {
			gen = workload.NewUniform(domain, seed)
		}
		if shift > 0 {
			gen = workload.NewShifted(gen, shift)
		}
		updates := workload.MakeStream(gen, n)
		if deletes > 0 {
			updates = workload.WithDeletes(updates, deletes, seed+1)
		}
		if err := writeStream(out, domain, updates); err != nil {
			return err
		}
		fmt.Printf("wrote %d updates over domain %d to %s\n", len(updates), domain, out)
		return nil

	case "census":
		if out2 == "" {
			return fmt.Errorf("-out2 is required for -kind census (the overtime stream)")
		}
		wage, overtime := workload.CensusPair(n, seed)
		if err := writeStream(out, workload.CensusDomain, wage); err != nil {
			return err
		}
		if err := writeStream(out2, workload.CensusDomain, overtime); err != nil {
			return err
		}
		fmt.Printf("wrote %d wage records to %s and %d overtime records to %s (domain %d)\n",
			len(wage), out, len(overtime), out2, workload.CensusDomain)
		return nil

	default:
		return fmt.Errorf("unknown -kind %q", kind)
	}
}
