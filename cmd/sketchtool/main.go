// Command sketchtool works with serialized hash-sketch files (.skhs):
// build one from a stream file, inspect it, merge several (multi-site
// aggregation), and estimate a join from two of them.
//
// Usage:
//
//	sketchtool build -in f.sks -out f.skhs -tables 7 -buckets 2048 -seed 42
//	sketchtool info -in f.skhs
//	sketchtool merge -out all.skhs shard1.skhs shard2.skhs ...
//	sketchtool join -f f.skhs -g g.skhs -domain 262144
//
// Sketches that will be merged or joined must have been built with the
// same -tables/-buckets/-seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
	"skimsketch/internal/stream"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "sketchtool: need a subcommand: build|info|merge|join")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "merge":
		err = runMerge(os.Args[2:])
	case "join":
		err = runJoin(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchtool:", err)
		os.Exit(1)
	}
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	in := fs.String("in", "", "input stream file (required)")
	out := fs.String("out", "", "output sketch file (required)")
	tables := fs.Int("tables", 7, "hash-sketch tables d")
	buckets := fs.Int("buckets", 2048, "buckets per table b")
	seed := fs.Uint64("seed", 42, "sketch seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("build: -in and -out are required")
	}
	sk, err := core.NewHashSketch(core.Config{Tables: *tables, Buckets: *buckets, Seed: *seed})
	if err != nil {
		return err
	}
	n, err := stream.Pipe(*in, sk)
	if err != nil {
		return err
	}
	if err := writeSketch(*out, sk); err != nil {
		return err
	}
	fmt.Printf("sketched %d updates into %s (%d words)\n", n, *out, sk.Words())
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("in", "", "sketch file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -in is required")
	}
	sk, err := readSketch(*in)
	if err != nil {
		return err
	}
	cfg := sk.Config()
	fmt.Printf("tables=%d buckets=%d seed=%d words=%d\n", cfg.Tables, cfg.Buckets, cfg.Seed, sk.Words())
	fmt.Printf("net-count=%d gross-count=%d\n", sk.NetCount(), sk.GrossCount())
	fmt.Printf("self-join-estimate=%d default-skim-threshold=%d\n", sk.SelfJoinEstimate(), sk.DefaultSkimThreshold())
	return nil
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	out := fs.String("out", "", "output sketch file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("merge: -out is required")
	}
	ins := fs.Args()
	if len(ins) == 0 {
		return fmt.Errorf("merge: need at least one input sketch file")
	}
	sketches := make([]*core.HashSketch, 0, len(ins))
	for _, p := range ins {
		sk, err := readSketch(p)
		if err != nil {
			return fmt.Errorf("merge: %s: %w", p, err)
		}
		sketches = append(sketches, sk)
	}
	merged, err := distributed.Merge(sketches...)
	if err != nil {
		return err
	}
	if err := writeSketch(*out, merged); err != nil {
		return err
	}
	fmt.Printf("merged %d sketches into %s (net-count %d)\n", len(ins), *out, merged.NetCount())
	return nil
}

func runJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ContinueOnError)
	fPath := fs.String("f", "", "F sketch file (required)")
	gPath := fs.String("g", "", "G sketch file (required)")
	domain := fs.Uint64("domain", 0, "value domain size (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fPath == "" || *gPath == "" || *domain == 0 {
		return fmt.Errorf("join: -f, -g and -domain are required")
	}
	f, err := readSketch(*fPath)
	if err != nil {
		return err
	}
	g, err := readSketch(*gPath)
	if err != nil {
		return err
	}
	est, err := core.EstimateJoin(f, g, *domain, nil)
	if err != nil {
		return err
	}
	fmt.Printf("estimate=%d dense=(%d,%d) components=(dd %d, ds %d, sd %d, ss %d)\n",
		est.Total, est.DenseCountF, est.DenseCountG,
		est.DenseDense, est.DenseSparse, est.SparseDense, est.SparseSparse)
	return nil
}

func writeSketch(path string, sk *core.HashSketch) error {
	blob, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func readSketch(path string) (*core.HashSketch, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sk core.HashSketch
	if err := sk.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return &sk, nil
}
