package main

import (
	"path/filepath"
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func writeStream(t *testing.T, path string, seed int64, n int) {
	t.Helper()
	z, _ := workload.NewZipf(1024, 1.2, seed)
	if err := stream.WriteFile(path, 1024, workload.MakeStream(z, n)); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInfoJoinMergePipeline(t *testing.T) {
	dir := t.TempDir()
	fStream := filepath.Join(dir, "f.sks")
	gStream := filepath.Join(dir, "g.sks")
	writeStream(t, fStream, 1, 5000)
	writeStream(t, gStream, 2, 5000)
	fSketch := filepath.Join(dir, "f.skhs")
	gSketch := filepath.Join(dir, "g.skhs")

	if err := runBuild([]string{"-in", fStream, "-out", fSketch, "-tables", "5", "-buckets", "256", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := runBuild([]string{"-in", gStream, "-out", gSketch, "-tables", "5", "-buckets", "256", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := runInfo([]string{"-in", fSketch}); err != nil {
		t.Fatal(err)
	}
	if err := runJoin([]string{"-f", fSketch, "-g", gSketch, "-domain", "1024"}); err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(dir, "all.skhs")
	if err := runMerge([]string{"-out", merged, fSketch, gSketch}); err != nil {
		t.Fatal(err)
	}
	// Merged sketch summarizes both streams: net count doubles.
	sk, err := readSketch(merged)
	if err != nil {
		t.Fatal(err)
	}
	if sk.NetCount() != 10000 {
		t.Fatalf("merged net = %d, want 10000", sk.NetCount())
	}
}

func TestValidationErrors(t *testing.T) {
	if err := runBuild([]string{"-in", "", "-out", ""}); err == nil {
		t.Fatal("build must require paths")
	}
	if err := runBuild([]string{"-in", "missing", "-out", "x", "-tables", "0"}); err == nil {
		t.Fatal("build must reject bad config")
	}
	if err := runInfo([]string{}); err == nil {
		t.Fatal("info must require -in")
	}
	if err := runInfo([]string{"-in", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("info must fail on missing file")
	}
	if err := runMerge([]string{"-out", ""}); err == nil {
		t.Fatal("merge must require -out")
	}
	if err := runMerge([]string{"-out", "x"}); err == nil {
		t.Fatal("merge must require inputs")
	}
	if err := runJoin([]string{"-f", "", "-g", "", "-domain", "0"}); err == nil {
		t.Fatal("join must require flags")
	}
}

func TestJoinRejectsIncompatibleSketches(t *testing.T) {
	dir := t.TempDir()
	s := filepath.Join(dir, "s.sks")
	writeStream(t, s, 1, 100)
	a := filepath.Join(dir, "a.skhs")
	b := filepath.Join(dir, "b.skhs")
	if err := runBuild([]string{"-in", s, "-out", a, "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := runBuild([]string{"-in", s, "-out", b, "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := runJoin([]string{"-f", a, "-g", b, "-domain", "1024"}); err == nil {
		t.Fatal("join must reject sketches with different seeds")
	}
	if err := runMerge([]string{"-out", filepath.Join(dir, "m.skhs"), a, b}); err == nil {
		t.Fatal("merge must reject sketches with different seeds")
	}
}

func TestInfoRejectsCorruptFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.skhs")
	if err := writeStreamFile(p); err != nil {
		t.Fatal(err)
	}
	if err := runInfo([]string{"-in", p}); err == nil {
		t.Fatal("info must reject non-sketch files")
	}
}

func writeStreamFile(p string) error {
	return stream.WriteFile(p, 8, []stream.Update{stream.Insert(1)})
}
