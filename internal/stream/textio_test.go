package stream

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadText(t *testing.T) {
	in := `
# comment
42
7,3

  13 , -2
`
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Update{{Value: 42, Weight: 1}, {Value: 7, Weight: 3}, {Value: 13, Weight: -2}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("notanumber")); err == nil {
		t.Fatal("expected value error")
	}
	if _, err := ReadText(strings.NewReader("1,notaweight")); err == nil {
		t.Fatal("expected weight error")
	}
	if _, err := ReadText(strings.NewReader("3\nbad\n")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatal("errors must carry line numbers")
	}
	if _, err := ReadText(strings.NewReader("-1")); err == nil {
		t.Fatal("negative values must be rejected")
	}
}

func TestWriteTextRoundTrip(t *testing.T) {
	in := []Update{{Value: 1, Weight: 1}, {Value: 2, Weight: -5}, {Value: 3, Weight: 100}}
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Bare form for weight-1 inserts.
	if !strings.HasPrefix(buf.String(), "1\n2,-5\n") {
		t.Fatalf("unexpected rendering:\n%s", buf.String())
	}
	out, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestPipeText(t *testing.T) {
	fv := NewFreqVector()
	n, err := PipeText(strings.NewReader("5\n5\n9,4\n"), fv)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("applied %d", n)
	}
	if fv.Get(5) != 2 || fv.Get(9) != 4 {
		t.Fatalf("frequencies %v", fv)
	}
	if _, err := PipeText(strings.NewReader("x"), fv); err == nil {
		t.Fatal("expected parse error")
	}
}
