package stream

import (
	"bytes"
	"testing"
)

func BenchmarkFreqVectorUpdate(b *testing.B) {
	f := NewFreqVector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Update(uint64(i&16383), 1)
	}
}

func BenchmarkInnerProduct(b *testing.B) {
	f, g := NewFreqVector(), NewFreqVector()
	for v := uint64(0); v < 10000; v++ {
		f.Update(v, int64(v%7)+1)
		g.Update(v*2, int64(v%5)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.InnerProduct(g)
	}
}

func BenchmarkWriteRecord(b *testing.B) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	u := Insert(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(u); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			b.StopTimer()
			buf.Reset()
			b.StartTimer()
		}
	}
}
