package stream

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the stream-file reader; it must
// never panic, and on valid prefixes must parse consistently.
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid two-record file, a truncated one, junk.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 64)
	w.Write(Insert(1))
	w.Write(Delete(63))
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("SKS1junkjunkjunkjunk"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		for {
			u, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // truncated record: fine
			}
			_ = u
		}
	})
}

// FuzzRoundTrip: any updates written must read back identically.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(3), int64(1), uint64(9), int64(-4))
	f.Fuzz(func(t *testing.T, v1 uint64, w1 int64, v2 uint64, w2 int64) {
		in := []Update{{Value: v1, Weight: w1}, {Value: v2, Weight: w2}}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, ^uint64(0))
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range in {
			if err := w.Write(u); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
			t.Fatalf("round trip mismatch: %v vs %v", out, in)
		}
	})
}
