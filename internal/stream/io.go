package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary stream-file format ("SKS1"): a 16-byte header (4-byte magic,
// 4-byte version, 8-byte domain size) followed by 16-byte records of
// (value uint64, weight int64), all little-endian. The format is
// append-friendly: readers consume records until EOF.

var magic = [4]byte{'S', 'K', 'S', '1'}

const headerSize = 16

// ErrBadMagic reports a file that is not a stream file.
var ErrBadMagic = errors.New("stream: bad magic, not a SKS1 stream file")

// Writer writes a stream file.
type Writer struct {
	w   *bufio.Writer
	buf [16]byte
	n   int64
}

// NewWriter writes the header for a stream over [0, domain) and returns a
// Writer for its records.
func NewWriter(w io.Writer, domain uint64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], 1)
	binary.LittleEndian.PutUint64(hdr[8:16], domain)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one update record.
func (w *Writer) Write(u Update) error {
	binary.LittleEndian.PutUint64(w.buf[0:8], u.Value)
	binary.LittleEndian.PutUint64(w.buf[8:16], uint64(u.Weight))
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("stream: writing record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a stream file.
type Reader struct {
	r      *bufio.Reader
	domain uint64
	buf    [16]byte
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("stream: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != 1 {
		return nil, fmt.Errorf("stream: unsupported version %d", v)
	}
	return &Reader{r: br, domain: binary.LittleEndian.Uint64(hdr[8:16])}, nil
}

// Domain returns the domain size recorded in the header.
func (r *Reader) Domain() uint64 { return r.domain }

// Read returns the next update, or io.EOF when the stream is exhausted.
func (r *Reader) Read() (Update, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return Update{}, io.EOF
		}
		return Update{}, fmt.Errorf("stream: reading record: %w", err)
	}
	return Update{
		Value:  binary.LittleEndian.Uint64(r.buf[0:8]),
		Weight: int64(binary.LittleEndian.Uint64(r.buf[8:16])),
	}, nil
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Update, error) {
	var out []Update
	for {
		u, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, u)
	}
}

// WriteFile writes updates to path as a stream file.
func WriteFile(path string, domain uint64, updates []Update) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	w, err := NewWriter(f, domain)
	if err != nil {
		f.Close()
		return err
	}
	for _, u := range updates {
		if err := w.Write(u); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a stream file written by WriteFile.
func ReadFile(path string) (domain uint64, updates []Update, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("stream: %w", err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return 0, nil, err
	}
	updates, err = r.ReadAll()
	return r.Domain(), updates, err
}

// Pipe streams a file's records straight into sinks without materializing
// them, returning the number of records processed. This is the one-pass
// path used by cmd/skimjoin.
func Pipe(path string, sinks ...Sink) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("stream: %w", err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		u, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		for _, s := range sinks {
			s.Update(u.Value, u.Weight)
		}
		n++
	}
}
