// Package stream defines the data-stream processing model of the paper:
// unordered sequences of insert/delete updates over an integer value
// domain, frequency vectors as the ground-truth state, and exact
// join-aggregate computation used to validate the sketch estimators.
package stream

import "fmt"

// Update is one stream element. Value is the joined attribute drawn from
// the domain [0, m). Weight is +1 for an insert, −1 for a delete, or an
// arbitrary signed measure for SUM-style aggregates (a weight-w update is
// semantically w repetitions of the element, matching Section 2.1 of the
// paper).
type Update struct {
	Value  uint64
	Weight int64
}

// Insert returns an insert update for v.
func Insert(v uint64) Update { return Update{Value: v, Weight: 1} }

// Delete returns a delete update for v.
func Delete(v uint64) Update { return Update{Value: v, Weight: -1} }

// Group is one stream's contiguous slice of a multi-stream batch: the
// unit in which wire protocols (JSON /update bodies, SKSP data frames)
// hand updates to the engine. Updates may alias a caller-owned buffer;
// ownership is whatever contract the consumer documents.
type Group struct {
	Name    string
	Updates []Update
}

// Sink consumes stream updates. Every synopsis in the repository
// implements Sink, so any generator can feed any summary.
type Sink interface {
	// Update applies one stream element.
	Update(value uint64, weight int64)
}

// Apply feeds every update to each sink in order.
func Apply(updates []Update, sinks ...Sink) {
	for _, u := range updates {
		for _, s := range sinks {
			s.Update(u.Value, u.Weight)
		}
	}
}

// BatchSink is implemented by synopses that can fold a whole batch of
// updates at once. Implementations must be exactly equivalent to calling
// Update once per element in order — batching is a pure amortization of
// per-element overhead, never an approximation.
type BatchSink interface {
	UpdateBatch(batch []Update)
}

// ApplyBatched feeds updates to each sink in chunks of batchSize, using
// UpdateBatch on sinks that implement BatchSink and falling back to
// per-element Update otherwise. batchSize <= 0 means one chunk.
func ApplyBatched(updates []Update, batchSize int, sinks ...Sink) {
	if batchSize <= 0 || batchSize > len(updates) {
		batchSize = len(updates)
	}
	for off := 0; off < len(updates); off += batchSize {
		end := off + batchSize
		if end > len(updates) {
			end = len(updates)
		}
		chunk := updates[off:end]
		for _, s := range sinks {
			if bs, ok := s.(BatchSink); ok {
				bs.UpdateBatch(chunk)
			} else {
				for _, u := range chunk {
					s.Update(u.Value, u.Weight)
				}
			}
		}
	}
}

// FreqVector is the exact (net) frequency vector of a stream: value →
// accumulated weight. It is the ground truth against which estimators are
// evaluated, and also serves as the carrier for skimmed dense frequencies.
type FreqVector map[uint64]int64

// NewFreqVector returns an empty frequency vector.
func NewFreqVector() FreqVector { return make(FreqVector) }

// Update implements Sink; zero entries are removed so that the vector's
// support always reflects the net stream.
func (f FreqVector) Update(value uint64, weight int64) {
	n := f[value] + weight
	if n == 0 {
		delete(f, value)
	} else {
		f[value] = n
	}
}

// UpdateBatch implements BatchSink as a sequential fold.
func (f FreqVector) UpdateBatch(batch []Update) {
	for _, u := range batch {
		f.Update(u.Value, u.Weight)
	}
}

// Get returns the frequency of v (0 if absent).
func (f FreqVector) Get(v uint64) int64 { return f[v] }

// Support returns the number of values with non-zero frequency.
func (f FreqVector) Support() int { return len(f) }

// L1 returns Σ|f_v|, the net stream size for insert-only streams.
func (f FreqVector) L1() int64 {
	var s int64
	for _, w := range f {
		if w < 0 {
			s -= w
		} else {
			s += w
		}
	}
	return s
}

// SelfJoinSize returns the second frequency moment F2 = Σ f_v², the size
// of the self-join COUNT(F ⋈ F).
func (f FreqVector) SelfJoinSize() int64 {
	var s int64
	for _, w := range f {
		s += w * w
	}
	return s
}

// InnerProduct returns Σ f_v·g_v = COUNT(F ⋈ G), iterating over the
// smaller support.
func (f FreqVector) InnerProduct(g FreqVector) int64 {
	if len(g) < len(f) {
		f, g = g, f
	}
	var s int64
	for v, w := range f {
		if gw, ok := g[v]; ok {
			s += w * gw
		}
	}
	return s
}

// Dense returns the sub-vector of frequencies with |f_v| ≥ threshold.
func (f FreqVector) Dense(threshold int64) FreqVector {
	d := NewFreqVector()
	for v, w := range f {
		if w >= threshold || -w >= threshold {
			d[v] = w
		}
	}
	return d
}

// Sub returns f − g as a new vector (the sparse residual after skimming g
// away from f).
func (f FreqVector) Sub(g FreqVector) FreqVector {
	r := NewFreqVector()
	for v, w := range f {
		r[v] = w
	}
	for v, w := range g {
		n := r[v] - w
		if n == 0 {
			delete(r, v)
		} else {
			r[v] = n
		}
	}
	return r
}

// Clone returns a deep copy of f.
func (f FreqVector) Clone() FreqVector {
	c := make(FreqVector, len(f))
	for v, w := range f {
		c[v] = w
	}
	return c
}

// MaxValue returns the largest value with non-zero frequency and whether
// the vector is non-empty.
func (f FreqVector) MaxValue() (uint64, bool) {
	var max uint64
	found := false
	for v := range f {
		if !found || v > max {
			max, found = v, true
		}
	}
	return max, found
}

// ExactJoinSize computes COUNT(F ⋈ G) from two update streams by
// materializing both frequency vectors. It is the reference answer for
// every experiment.
func ExactJoinSize(fs, gs []Update) int64 {
	f, g := NewFreqVector(), NewFreqVector()
	Apply(fs, f)
	Apply(gs, g)
	return f.InnerProduct(g)
}

// Filter returns the updates that satisfy pred, modelling the paper's
// selection-predicate pushdown ("we simply drop from the streams, elements
// that do not satisfy the predicates").
func Filter(updates []Update, pred func(Update) bool) []Update {
	out := make([]Update, 0, len(updates))
	for _, u := range updates {
		if pred(u) {
			out = append(out, u)
		}
	}
	return out
}

// Validate checks that every update's value lies in [0, domain) and
// returns a descriptive error otherwise.
func Validate(updates []Update, domain uint64) error {
	for i, u := range updates {
		if u.Value >= domain {
			return fmt.Errorf("stream: update %d has value %d outside domain [0,%d)", i, u.Value, domain)
		}
	}
	return nil
}
