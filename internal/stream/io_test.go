package stream

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTripInMemory(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1024)
	if err != nil {
		t.Fatal(err)
	}
	in := []Update{Insert(1), Delete(7), {Value: 1000, Weight: 42}}
	for _, u := range in {
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d, want 3", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Domain() != 1024 {
		t.Fatalf("Domain = %d, want 1024", r.Domain())
	}
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOTASTREAMFILE..")
	if _, err := NewReader(buf); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	buf := bytes.NewBufferString("SKS")
	if _, err := NewReader(buf); err == nil {
		t.Fatal("expected error on truncated header")
	}
}

func TestEmptyStreamReadsEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestFileRoundTripAndPipe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.sks")
	rng := rand.New(rand.NewSource(7))
	var in []Update
	for i := 0; i < 500; i++ {
		in = append(in, Update{Value: uint64(rng.Intn(64)), Weight: int64(rng.Intn(5)) - 2})
	}
	if err := WriteFile(path, 64, in); err != nil {
		t.Fatal(err)
	}
	domain, out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if domain != 64 || len(out) != len(in) {
		t.Fatalf("domain=%d len=%d", domain, len(out))
	}

	// Pipe must produce the same frequency vector as materializing.
	want := NewFreqVector()
	Apply(in, want)
	got := NewFreqVector()
	n, err := Pipe(path, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(in)) {
		t.Fatalf("Pipe processed %d records, want %d", n, len(in))
	}
	if len(got) != len(want) {
		t.Fatalf("support %d vs %d", len(got), len(want))
	}
	for v, w := range want {
		if got[v] != w {
			t.Fatalf("value %d: %d vs %d", v, got[v], w)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "missing.sks")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestWriteFileBadDir(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f.sks"), 8, nil); err == nil {
		t.Fatal("expected error creating file in missing directory")
	}
}

func TestNegativeWeightSurvivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8)
	w.Write(Update{Value: 1, Weight: -9999999999})
	w.Flush()
	r, _ := NewReader(&buf)
	u, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if u.Weight != -9999999999 {
		t.Fatalf("weight = %d", u.Weight)
	}
}

func TestPipeMissingFile(t *testing.T) {
	if _, err := Pipe(filepath.Join(t.TempDir(), "missing.sks")); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnsupportedVersion(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8)
	w.Flush()
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Fatal("expected version error")
	}
	_ = os.Stdout
}
