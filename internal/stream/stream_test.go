package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFreqVectorBasics(t *testing.T) {
	f := NewFreqVector()
	f.Update(3, 1)
	f.Update(3, 1)
	f.Update(5, 4)
	if got := f.Get(3); got != 2 {
		t.Fatalf("Get(3) = %d, want 2", got)
	}
	if got := f.Get(5); got != 4 {
		t.Fatalf("Get(5) = %d, want 4", got)
	}
	if got := f.Get(99); got != 0 {
		t.Fatalf("Get(99) = %d, want 0", got)
	}
	if got := f.Support(); got != 2 {
		t.Fatalf("Support = %d, want 2", got)
	}
	if got := f.L1(); got != 6 {
		t.Fatalf("L1 = %d, want 6", got)
	}
	if got := f.SelfJoinSize(); got != 4+16 {
		t.Fatalf("SelfJoinSize = %d, want 20", got)
	}
}

func TestFreqVectorDeleteCancels(t *testing.T) {
	f := NewFreqVector()
	f.Update(7, 1)
	f.Update(7, -1)
	if f.Support() != 0 {
		t.Fatal("insert followed by delete must leave empty support")
	}
	f.Update(8, -3)
	if got := f.Get(8); got != -3 {
		t.Fatalf("negative frequencies must be representable, got %d", got)
	}
	if got := f.L1(); got != 3 {
		t.Fatalf("L1 of |-3| = %d, want 3", got)
	}
}

func TestInnerProduct(t *testing.T) {
	f := FreqVector{1: 2, 2: 3, 4: 1}
	g := FreqVector{2: 5, 4: 4, 9: 100}
	want := int64(3*5 + 1*4)
	if got := f.InnerProduct(g); got != want {
		t.Fatalf("InnerProduct = %d, want %d", got, want)
	}
	if got := g.InnerProduct(f); got != want {
		t.Fatal("InnerProduct must be symmetric")
	}
	if got := f.InnerProduct(NewFreqVector()); got != 0 {
		t.Fatalf("inner product with empty vector = %d, want 0", got)
	}
}

func TestInnerProductSymmetryProperty(t *testing.T) {
	f := func(av, bv []uint8, aw, bw []int8) bool {
		a, b := NewFreqVector(), NewFreqVector()
		for i, v := range av {
			w := int64(1)
			if i < len(aw) {
				w = int64(aw[i])
			}
			a.Update(uint64(v), w)
		}
		for i, v := range bv {
			w := int64(1)
			if i < len(bw) {
				w = int64(bw[i])
			}
			b.Update(uint64(v), w)
		}
		return a.InnerProduct(b) == b.InnerProduct(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfJoinEqualsInnerProductWithSelf(t *testing.T) {
	f := func(vals []uint16) bool {
		fv := NewFreqVector()
		for _, v := range vals {
			fv.Update(uint64(v%256), 1)
		}
		return fv.SelfJoinSize() == fv.InnerProduct(fv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDense(t *testing.T) {
	f := FreqVector{1: 10, 2: 3, 3: -7, 4: 5}
	d := f.Dense(5)
	if len(d) != 3 || d[1] != 10 || d[3] != -7 || d[4] != 5 {
		t.Fatalf("Dense(5) = %v", d)
	}
}

func TestSubResidualIdentity(t *testing.T) {
	// f = dense + (f − dense) must hold for any threshold.
	f := func(vals []uint8, thr uint8) bool {
		fv := NewFreqVector()
		for _, v := range vals {
			fv.Update(uint64(v%32), 1)
		}
		d := fv.Dense(int64(thr%8) + 1)
		r := fv.Sub(d)
		// recombine
		back := r.Clone()
		for v, w := range d {
			back.Update(v, w)
		}
		if len(back) != len(fv) {
			return false
		}
		for v, w := range fv {
			if back[v] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactJoinSize(t *testing.T) {
	fs := []Update{Insert(1), Insert(1), Insert(2), Delete(2)}
	gs := []Update{Insert(1), Insert(3)}
	if got := ExactJoinSize(fs, gs); got != 2 {
		t.Fatalf("ExactJoinSize = %d, want 2", got)
	}
}

func TestApplyFansOut(t *testing.T) {
	a, b := NewFreqVector(), NewFreqVector()
	Apply([]Update{Insert(1), Insert(2)}, a, b)
	if a.Get(1) != 1 || b.Get(2) != 1 {
		t.Fatal("Apply must feed every sink")
	}
}

func TestFilter(t *testing.T) {
	us := []Update{Insert(1), Insert(10), Insert(3)}
	got := Filter(us, func(u Update) bool { return u.Value < 5 })
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 3 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]Update{Insert(3)}, 4); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := Validate([]Update{Insert(4)}, 4); err == nil {
		t.Fatal("expected out-of-domain error")
	}
}

func TestMaxValue(t *testing.T) {
	f := NewFreqVector()
	if _, ok := f.MaxValue(); ok {
		t.Fatal("empty vector has no max")
	}
	f.Update(9, 1)
	f.Update(4, 1)
	if v, ok := f.MaxValue(); !ok || v != 9 {
		t.Fatalf("MaxValue = %d,%v want 9,true", v, ok)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := FreqVector{1: 1}
	c := f.Clone()
	c.Update(1, 5)
	if f.Get(1) != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestExactJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var fs, gs []Update
		nf, ng := rng.Intn(200), rng.Intn(200)
		for i := 0; i < nf; i++ {
			fs = append(fs, Insert(uint64(rng.Intn(50))))
		}
		for i := 0; i < ng; i++ {
			gs = append(gs, Insert(uint64(rng.Intn(50))))
		}
		// brute force: count matching pairs
		var brute int64
		for _, a := range fs {
			for _, b := range gs {
				if a.Value == b.Value {
					brute++
				}
			}
		}
		if got := ExactJoinSize(fs, gs); got != brute {
			t.Fatalf("trial %d: ExactJoinSize = %d, brute force = %d", trial, got, brute)
		}
	}
}
