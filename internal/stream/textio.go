package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text ingestion for log-style feeds: one update per line as
// "value[,weight]" (weight defaults to 1), with '#' comments and blank
// lines skipped. This is the interchange format for piping existing logs
// into the tools without converting to the binary SKS1 format first.

// ReadText parses updates from r. Lines are 1-indexed in errors.
func ReadText(r io.Reader) ([]Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var out []Update
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		u, err := parseTextUpdate(text)
		if err != nil {
			return out, fmt.Errorf("stream: line %d: %w", line, err)
		}
		out = append(out, u)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("stream: reading text: %w", err)
	}
	return out, nil
}

// PipeText streams text-format updates from r into sinks without
// materializing them, returning the number applied.
func PipeText(r io.Reader, sinks ...Sink) (int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var n int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		u, err := parseTextUpdate(text)
		if err != nil {
			return n, fmt.Errorf("stream: line %d: %w", line, err)
		}
		for _, s := range sinks {
			s.Update(u.Value, u.Weight)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("stream: reading text: %w", err)
	}
	return n, nil
}

// WriteText renders updates one per line; weight-1 inserts are written
// bare for compactness.
func WriteText(w io.Writer, updates []Update) error {
	bw := bufio.NewWriter(w)
	for _, u := range updates {
		var err error
		if u.Weight == 1 {
			_, err = fmt.Fprintf(bw, "%d\n", u.Value)
		} else {
			_, err = fmt.Fprintf(bw, "%d,%d\n", u.Value, u.Weight)
		}
		if err != nil {
			return fmt.Errorf("stream: writing text: %w", err)
		}
	}
	return bw.Flush()
}

func parseTextUpdate(text string) (Update, error) {
	valuePart, weightPart, hasWeight := strings.Cut(text, ",")
	v, err := strconv.ParseUint(strings.TrimSpace(valuePart), 10, 64)
	if err != nil {
		return Update{}, fmt.Errorf("bad value %q", valuePart)
	}
	w := int64(1)
	if hasWeight {
		w, err = strconv.ParseInt(strings.TrimSpace(weightPart), 10, 64)
		if err != nil {
			return Update{}, fmt.Errorf("bad weight %q", weightPart)
		}
	}
	return Update{Value: v, Weight: w}, nil
}
