package agms

import (
	"math"
	"testing"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, 1); err == nil {
		t.Fatal("expected error for s1=0")
	}
	if _, err := New(5, -1, 1); err == nil {
		t.Fatal("expected error for negative s2")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 0, 1)
}

func TestAccessors(t *testing.T) {
	s := MustNew(4, 3, 9)
	if s.Words() != 12 {
		t.Fatalf("Words = %d", s.Words())
	}
	if a, b := s.Dims(); a != 4 || b != 3 {
		t.Fatalf("Dims = %d,%d", a, b)
	}
	if s.Seed() != 9 {
		t.Fatalf("Seed = %d", s.Seed())
	}
}

func TestPairSharesFamilies(t *testing.T) {
	a := MustNew(3, 3, 7)
	b := MustNew(3, 3, 7)
	if !a.Compatible(b) {
		t.Fatal("same config must be compatible")
	}
	// Same single update must produce identical counters.
	a.Update(42, 1)
	b.Update(42, 1)
	for q := 0; q < 3; q++ {
		for j := 0; j < 3; j++ {
			if a.AtomicSketch(q, j) != b.AtomicSketch(q, j) {
				t.Fatal("paired sketches must evolve identically on identical input")
			}
		}
	}
	c := MustNew(3, 3, 8)
	if a.Compatible(c) {
		t.Fatal("different seeds must be incompatible")
	}
}

func TestUpdateDeleteCancels(t *testing.T) {
	s := MustNew(5, 5, 3)
	s.Update(10, 1)
	s.Update(11, 7)
	s.Update(10, -1)
	s.Update(11, -7)
	for q := 0; q < 5; q++ {
		for j := 0; j < 5; j++ {
			if s.AtomicSketch(q, j) != 0 {
				t.Fatal("deletes must exactly cancel inserts (linearity)")
			}
		}
	}
}

func TestSelfJoinExactForSingleValue(t *testing.T) {
	// With one distinct value, every atomic sketch is ±f, so X² = f²
	// exactly and the estimate must be exact.
	s := MustNew(4, 5, 2)
	for i := 0; i < 9; i++ {
		s.Update(123, 1)
	}
	if got := s.SelfJoinEstimate(); got != 81 {
		t.Fatalf("SelfJoinEstimate = %d, want 81", got)
	}
}

func TestJoinEstimateIncompatible(t *testing.T) {
	a := MustNew(2, 2, 1)
	b := MustNew(2, 2, 2)
	if _, err := JoinEstimate(a, b); err == nil {
		t.Fatal("expected pairing error")
	}
}

func TestJoinExactForSingleSharedValue(t *testing.T) {
	a := MustNew(3, 3, 5)
	b := MustNew(3, 3, 5)
	for i := 0; i < 4; i++ {
		a.Update(7, 1)
	}
	for i := 0; i < 6; i++ {
		b.Update(7, 1)
	}
	got, err := JoinEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 24 {
		t.Fatalf("JoinEstimate = %d, want 24 (ξ(7)² = 1 makes this exact)", got)
	}
}

// TestSelfJoinAccuracy: with enough space the F2 estimate should land
// within the AMS error bound comfortably.
func TestSelfJoinAccuracy(t *testing.T) {
	g, err := workload.NewZipf(1<<12, 1.0, 17)
	if err != nil {
		t.Fatal(err)
	}
	updates := workload.MakeStream(g, 50000)
	f := stream.NewFreqVector()
	sk := MustNew(64, 7, 99)
	stream.Apply(updates, f, sk)
	exact := float64(f.SelfJoinSize())
	got := float64(sk.SelfJoinEstimate())
	if e := stats.SymmetricError(got, exact); e > 0.35 {
		t.Fatalf("self-join error %.3f too large (est %.0f vs exact %.0f)", e, got, exact)
	}
}

// TestJoinAccuracy: basic sketching on a moderately-skewed join.
func TestJoinAccuracy(t *testing.T) {
	const m = 1 << 12
	gf, _ := workload.NewZipf(m, 1.0, 31)
	gg, _ := workload.NewZipf(m, 1.0, 32)
	fs := workload.MakeStream(gf, 40000)
	gs := workload.MakeStream(workload.NewShifted(gg, 5), 40000)

	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	fsk := MustNew(128, 7, 4242)
	gsk := MustNew(128, 7, 4242)
	stream.Apply(fs, fv, fsk)
	stream.Apply(gs, gv, gsk)

	exact := float64(fv.InnerProduct(gv))
	est, err := JoinEstimate(fsk, gsk)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.SymmetricError(float64(est), exact); e > 1.0 {
		t.Fatalf("join error %.3f too large (est %d vs exact %.0f)", e, est, exact)
	}
}

// TestJoinUnbiasedAcrossSeeds: the mean of many independent estimates
// should approach the exact join size much more closely than any single
// estimate's error bound.
func TestJoinUnbiasedAcrossSeeds(t *testing.T) {
	const m = 256
	gf, _ := workload.NewZipf(m, 1.0, 41)
	gg, _ := workload.NewZipf(m, 1.0, 42)
	fs := workload.MakeStream(gf, 5000)
	gs := workload.MakeStream(gg, 5000)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(fs, fv)
	stream.Apply(gs, gv)
	exact := float64(fv.InnerProduct(gv))

	var w stats.Welford
	for seed := uint64(0); seed < 40; seed++ {
		fsk := MustNew(32, 1, seed)
		gsk := MustNew(32, 1, seed)
		stream.Apply(fs, fsk)
		stream.Apply(gs, gsk)
		est, err := JoinEstimate(fsk, gsk)
		if err != nil {
			t.Fatal(err)
		}
		w.Add(float64(est))
	}
	if math.Abs(w.Mean()-exact)/exact > 0.15 {
		t.Fatalf("mean estimate %.0f drifts from exact %.0f: estimator looks biased", w.Mean(), exact)
	}
}

func TestCombine(t *testing.T) {
	a := MustNew(8, 3, 1)
	b := MustNew(8, 3, 1)
	c := MustNew(8, 3, 1)
	a.Update(5, 2)
	b.Update(9, 3)
	// c sees the concatenated stream.
	c.Update(5, 2)
	c.Update(9, 3)
	if err := a.Combine(b); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		for j := 0; j < 8; j++ {
			if a.AtomicSketch(q, j) != c.AtomicSketch(q, j) {
				t.Fatal("Combine must equal sketching the concatenated stream")
			}
		}
	}
	d := MustNew(8, 3, 2)
	if err := a.Combine(d); err == nil {
		t.Fatal("expected incompatibility error")
	}
}

func TestCloneAndReset(t *testing.T) {
	s := MustNew(2, 2, 1)
	s.Update(1, 5)
	c := s.Clone()
	s.Reset()
	if s.AtomicSketch(0, 0) != 0 {
		t.Fatal("Reset must zero counters")
	}
	if c.AtomicSketch(0, 0) == 0 && c.AtomicSketch(0, 1) == 0 &&
		c.AtomicSketch(1, 0) == 0 && c.AtomicSketch(1, 1) == 0 {
		t.Fatal("Clone must not alias the original counters")
	}
}

func TestSketchLinearityProperty(t *testing.T) {
	// sketch(stream1 ++ stream2) == sketch(stream1) + sketch(stream2)
	s1 := MustNew(4, 3, 77)
	s2 := MustNew(4, 3, 77)
	both := MustNew(4, 3, 77)
	u1 := []stream.Update{{Value: 3, Weight: 2}, {Value: 9, Weight: -1}}
	u2 := []stream.Update{{Value: 3, Weight: -2}, {Value: 100, Weight: 5}}
	stream.Apply(u1, s1, both)
	stream.Apply(u2, s2, both)
	if err := s1.Combine(s2); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		for j := 0; j < 4; j++ {
			if s1.AtomicSketch(q, j) != both.AtomicSketch(q, j) {
				t.Fatal("linearity violated")
			}
		}
	}
}
