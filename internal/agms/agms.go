// Package agms implements the basic sketching method of Alon, Matias &
// Szegedy (STOC 1996) and Alon, Gibbons, Matias & Szegedy (PODS 1999):
// arrays of "tug-of-war" atomic sketches with averaging/median boosting.
// It is the paper's primary baseline (procedures ESTSJSIZE and
// ESTJOINSIZE of Section 2.2) and also a substrate the skimmed-sketch
// analysis is phrased against.
//
// A Sketch holds an s1 × s2 array of atomic sketches. Each atomic sketch
// is the random linear projection X = Σ_v f_v·ξ(v) of the stream's
// frequency vector with a four-wise independent ±1 family ξ. Averaging s1
// iid copies shrinks variance; the median of s2 averages boosts
// confidence. Every update touches all s1·s2 counters — the per-element
// cost the skimmed-sketch algorithm eliminates.
//
// Two sketches built with New using the same (s1, s2, seed) draw identical
// ξ families and therefore form a valid pair for join estimation, since
// E[X_F·X_G] = Σ_v f_v·g_v requires the projections to share ξ.
package agms

import (
	"fmt"
	"math"

	"skimsketch/internal/hashfam"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// Sketch is an s1 × s2 array of AGMS atomic sketches.
type Sketch struct {
	s1, s2   int
	seed     uint64
	counters []int64            // row-major: counters[q*s1+j] for row q, column j
	xis      []hashfam.FourWise // one ξ family per atomic sketch, same layout
}

// New returns an empty sketch with s1 averaging copies and s2 median
// copies, with all ξ families derived deterministically from seed.
func New(s1, s2 int, seed uint64) (*Sketch, error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, fmt.Errorf("agms: sketch dimensions must be positive, got s1=%d s2=%d", s1, s2)
	}
	ss := hashfam.NewSeedStream(seed)
	n := s1 * s2
	xis := make([]hashfam.FourWise, n)
	for i := range xis {
		xis[i] = hashfam.NewFourWise(ss)
	}
	return &Sketch{
		s1:       s1,
		s2:       s2,
		seed:     seed,
		counters: make([]int64, n),
		xis:      xis,
	}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(s1, s2 int, seed uint64) *Sketch {
	s, err := New(s1, s2, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Update folds one stream element into every atomic sketch. It implements
// stream.Sink. A negative weight is a delete; an arbitrary weight is a
// weighted (SUM-semantics) update.
func (s *Sketch) Update(value uint64, weight int64) {
	for i := range s.counters {
		s.counters[i] += weight * s.xis[i].Sign(value)
	}
}

// UpdateBatch folds a whole batch of stream elements into every atomic
// sketch. It is bit-for-bit equivalent to calling Update per element
// (int64 addition is exact and commutative) but hoists each ξ family out
// of the inner loop and writes each counter once per batch. It implements
// stream.BatchSink.
func (s *Sketch) UpdateBatch(batch []stream.Update) {
	for i := range s.counters {
		xi := &s.xis[i]
		var acc int64
		for _, u := range batch {
			acc += u.Weight * xi.Sign(u.Value)
		}
		s.counters[i] += acc
	}
}

// Words returns the synopsis size in counter words, the unit used for
// space accounting in the experiments.
func (s *Sketch) Words() int { return s.s1 * s.s2 }

// Dims returns (s1, s2).
func (s *Sketch) Dims() (int, int) { return s.s1, s.s2 }

// Seed returns the master seed the ξ families were derived from.
func (s *Sketch) Seed() uint64 { return s.seed }

// Compatible reports whether two sketches share dimensions and ξ families
// and can therefore be combined or joined.
func (s *Sketch) Compatible(o *Sketch) bool {
	return s.s1 == o.s1 && s.s2 == o.s2 && s.seed == o.seed
}

// SelfJoinEstimate implements ESTSJSIZE: the estimate of F2 = Σ f_v² as
// the median over rows of the mean over columns of the squared atomic
// sketches.
func (s *Sketch) SelfJoinEstimate() int64 {
	rows := make([]float64, s.s2)
	for q := 0; q < s.s2; q++ {
		sum := 0.0
		for j := 0; j < s.s1; j++ {
			c := float64(s.counters[q*s.s1+j])
			sum += c * c
		}
		rows[q] = sum / float64(s.s1)
	}
	return int64(math.Round(stats.MedianFloat64(rows)))
}

// JoinEstimate implements ESTJOINSIZE: the estimate of COUNT(F ⋈ G) as
// the median over rows of the mean over columns of the products of
// corresponding atomic sketches. The sketches must be a pair (same
// dimensions and seed).
func JoinEstimate(f, g *Sketch) (int64, error) {
	if !f.Compatible(g) {
		return 0, fmt.Errorf("agms: sketches are not a pair (dims %dx%d/%dx%d, seeds %d/%d)",
			f.s1, f.s2, g.s1, g.s2, f.seed, g.seed)
	}
	rows := make([]float64, f.s2)
	for q := 0; q < f.s2; q++ {
		sum := 0.0
		for j := 0; j < f.s1; j++ {
			sum += float64(f.counters[q*f.s1+j]) * float64(g.counters[q*f.s1+j])
		}
		rows[q] = sum / float64(f.s1)
	}
	return int64(math.Round(stats.MedianFloat64(rows))), nil
}

// Combine adds o into s (sketch linearity): the result summarizes the
// concatenation of the two input streams. This is the property that makes
// AGMS sketches unions-friendly in distributed settings.
func (s *Sketch) Combine(o *Sketch) error {
	if !s.Compatible(o) {
		return fmt.Errorf("agms: cannot combine incompatible sketches")
	}
	for i := range s.counters {
		s.counters[i] += o.counters[i]
	}
	return nil
}

// Clone returns a deep copy of s.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.counters = make([]int64, len(s.counters))
	copy(c.counters, s.counters)
	return &c
}

// Reset zeroes all counters, keeping the hash families.
func (s *Sketch) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
}

// AtomicSketch exposes the raw counter at (row q, column j) for tests and
// diagnostics.
func (s *Sketch) AtomicSketch(q, j int) int64 {
	return s.counters[q*s.s1+j]
}
