package agms

import (
	"testing"
	"testing/quick"

	"skimsketch/internal/stream"
)

// Property: UpdateBatch over any chunking equals the sequential Update
// loop bit-for-bit — counters, self-join estimate, and the join estimate
// against a sequentially-built pair sketch.
func TestQuickUpdateBatchEquivalence(t *testing.T) {
	f := func(vals []uint16, weights []int8, sizes []uint8) bool {
		us := make([]stream.Update, len(vals))
		for i, v := range vals {
			w := int64(3)
			if i < len(weights) && weights[i] != 0 {
				w = int64(weights[i])
			}
			us[i] = stream.Update{Value: uint64(v % 256), Weight: w}
		}
		seq := MustNew(8, 5, 77)
		bat := MustNew(8, 5, 77)
		stream.Apply(us, seq)
		i := 0
		for off := 0; off < len(us); {
			n := 1
			if len(sizes) > 0 {
				n = int(sizes[i%len(sizes)]%9) + 1
				i++
			}
			end := off + n
			if end > len(us) {
				end = len(us)
			}
			bat.UpdateBatch(us[off:end])
			off = end
		}
		for q := 0; q < 5; q++ {
			for j := 0; j < 8; j++ {
				if seq.AtomicSketch(q, j) != bat.AtomicSketch(q, j) {
					return false
				}
			}
		}
		if seq.SelfJoinEstimate() != bat.SelfJoinEstimate() {
			return false
		}
		other := MustNew(8, 5, 77)
		stream.Apply(us, other)
		js, err1 := JoinEstimate(seq, other)
		jb, err2 := JoinEstimate(bat, other)
		return err1 == nil && err2 == nil && js == jb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
