package agms

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization mirrors internal/core's: "SKAG" magic, u32
// version, u32 s1, u32 s2, u64 seed, then s1·s2 i64 counters,
// little-endian. The ξ families are rebuilt from the seed on load.

var sketchMagic = [4]byte{'S', 'K', 'A', 'G'}

const sketchVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 24+8*len(s.counters))
	buf = append(buf, sketchMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, sketchVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.s1))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.s2))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	for _, c := range s.counters {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state entirely.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("agms: sketch data truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != sketchMagic {
		return fmt.Errorf("agms: bad sketch magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != sketchVersion {
		return fmt.Errorf("agms: unsupported sketch version %d", v)
	}
	s1 := int(binary.LittleEndian.Uint32(data[8:12]))
	s2 := int(binary.LittleEndian.Uint32(data[12:16]))
	seed := binary.LittleEndian.Uint64(data[16:24])
	// Validate length before allocating (hostile headers could demand
	// gigabytes). The uint64 product cannot overflow.
	want := 24 + 8*uint64(uint32(s1))*uint64(uint32(s2))
	if uint64(len(data)) != want {
		return fmt.Errorf("agms: sketch data is %d bytes, want %d for %dx%d", len(data), want, s1, s2)
	}
	fresh, err := New(s1, s2, seed)
	if err != nil {
		return fmt.Errorf("agms: unmarshal: %w", err)
	}
	for i := range fresh.counters {
		fresh.counters[i] = int64(binary.LittleEndian.Uint64(data[24+8*i:]))
	}
	*s = *fresh
	return nil
}
