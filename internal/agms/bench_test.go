package agms

import (
	"fmt"
	"testing"
)

// BenchmarkUpdateBySize shows the O(s1·s2) per-element cost growing with
// the synopsis — the scaling the skimmed sketch's hash structure removes.
func BenchmarkUpdateBySize(b *testing.B) {
	for _, words := range []int{128, 512, 2048, 8192} {
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			s := MustNew(words/8, 8, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(uint64(i), 1)
			}
		})
	}
}

func BenchmarkJoinEstimate(b *testing.B) {
	f := MustNew(256, 11, 1)
	g := MustNew(256, 11, 1)
	for v := uint64(0); v < 10000; v++ {
		f.Update(v%1024, 1)
		g.Update(v%512, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JoinEstimate(f, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfJoinEstimate(b *testing.B) {
	s := MustNew(256, 11, 1)
	for v := uint64(0); v < 10000; v++ {
		s.Update(v%1024, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SelfJoinEstimate()
	}
}
