package agms

import "testing"

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNew(8, 3, 42)
	s.Update(7, 5)
	s.Update(9, -2)
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Sketch
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !r.Compatible(s) {
		t.Fatal("restored sketch must be compatible with the original")
	}
	for q := 0; q < 3; q++ {
		for j := 0; j < 8; j++ {
			if r.AtomicSketch(q, j) != s.AtomicSketch(q, j) {
				t.Fatal("counters must round-trip")
			}
		}
	}
	// Restored sketches keep working as join pairs.
	if err := r.Combine(s); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	s := MustNew(2, 2, 1)
	blob, _ := s.MarshalBinary()
	var r Sketch
	if err := r.UnmarshalBinary(blob[:8]); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte{}, blob...)
	bad[1] = 'x'
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected magic error")
	}
	bad = append([]byte{}, blob...)
	bad[4] = 9
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected version error")
	}
	if err := r.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Fatal("expected length error")
	}
	bad = append([]byte{}, blob...)
	bad[8], bad[9], bad[10], bad[11] = 0, 0, 0, 0
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected dimension error")
	}
}
