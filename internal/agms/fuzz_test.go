package agms

import "testing"

// FuzzUnmarshalBinary feeds arbitrary bytes to the sketch decoder; it
// must reject garbage with an error, never panic, and accept its own
// output. Mirrors core.FuzzUnmarshalBinary.
func FuzzUnmarshalBinary(f *testing.F) {
	s := MustNew(3, 8, 1)
	s.Update(3, 5)
	blob, _ := s.MarshalBinary()
	f.Add(blob)
	f.Add(blob[:20])
	f.Add([]byte("SKAGgarbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Sketch
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything accepted must be a structurally sound sketch.
		s1, s2 := r.Dims()
		if s1 <= 0 || s2 <= 0 || len(r.counters) != s1*s2 {
			t.Fatalf("accepted sketch with bad layout s1=%d s2=%d", s1, s2)
		}
		// Re-marshalling an accepted sketch must succeed and re-decode.
		blob2, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var r2 Sketch
		if err := r2.UnmarshalBinary(blob2); err != nil {
			t.Fatalf("self-output rejected: %v", err)
		}
	})
}
