package agms_test

import (
	"fmt"

	"skimsketch/internal/agms"
)

// Basic AGMS sketching: the baseline the skimmed sketch improves on.
func ExampleJoinEstimate() {
	f := agms.MustNew(16, 5, 7)
	g := agms.MustNew(16, 5, 7) // same dims+seed ⇒ join pair
	f.Update(3, 12)
	g.Update(3, 4)
	est, err := agms.JoinEstimate(f, g)
	if err != nil {
		panic(err)
	}
	fmt.Println(est)
	// Output: 48
}

// Self-join size (F2) estimation, ESTSJSIZE of Section 2.2.
func ExampleSketch_SelfJoinEstimate() {
	s := agms.MustNew(16, 5, 9)
	s.Update(1, 3)
	fmt.Println(s.SelfJoinEstimate())
	// Output: 9
}
