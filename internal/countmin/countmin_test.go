package countmin

import (
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, 1); err == nil {
		t.Fatal("expected error for d=0")
	}
	if _, err := New(3, 0, 1); err == nil {
		t.Fatal("expected error for b=0")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 0, 0)
}

func TestPointQueryNeverUnderestimatesInsertOnly(t *testing.T) {
	const m, n = 1 << 10, 20000
	g, _ := workload.NewZipf(m, 1.0, 7)
	f := stream.NewFreqVector()
	s := MustNew(5, 256, 3)
	for _, u := range workload.MakeStream(g, n) {
		f.Update(u.Value, u.Weight)
		s.Update(u.Value, u.Weight)
	}
	for v := uint64(0); v < m; v += 3 {
		if est := s.PointQuery(v); est < f.Get(v) {
			t.Fatalf("value %d: estimate %d below true %d (one-sided guarantee broken)", v, est, f.Get(v))
		}
	}
}

func TestPointQueryErrorBound(t *testing.T) {
	const m, n = 1 << 10, 20000
	g, _ := workload.NewZipf(m, 1.0, 9)
	f := stream.NewFreqVector()
	s := MustNew(5, 512, 5)
	for _, u := range workload.MakeStream(g, n) {
		f.Update(u.Value, u.Weight)
		s.Update(u.Value, u.Weight)
	}
	bound := int64(4 * n / 512) // a few multiples of n/b
	for v := uint64(0); v < m; v += 3 {
		if est := s.PointQuery(v); est-f.Get(v) > bound {
			t.Fatalf("value %d: overestimate %d exceeds bound", v, est-f.Get(v))
		}
	}
}

func TestDeletesSwitchToMedian(t *testing.T) {
	s := MustNew(5, 64, 1)
	s.Update(3, 10)
	s.Update(3, -4)
	if got := s.PointQuery(3); got != 6 {
		t.Fatalf("PointQuery after delete = %d, want 6", got)
	}
	if s.NetCount() != 6 {
		t.Fatalf("NetCount = %d", s.NetCount())
	}
}

func TestInnerProductUpperBounds(t *testing.T) {
	const m, n = 1 << 10, 20000
	gf, _ := workload.NewZipf(m, 1.0, 11)
	gg, _ := workload.NewZipf(m, 1.0, 12)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	f := MustNew(5, 256, 9)
	g := MustNew(5, 256, 9)
	for _, u := range workload.MakeStream(gf, n) {
		fv.Update(u.Value, u.Weight)
		f.Update(u.Value, u.Weight)
	}
	for _, u := range workload.MakeStream(gg, n) {
		gv.Update(u.Value, u.Weight)
		g.Update(u.Value, u.Weight)
	}
	exact := fv.InnerProduct(gv)
	est, err := InnerProduct(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if est < exact {
		t.Fatalf("CM inner product %d must upper-bound exact %d on insert-only streams", est, exact)
	}
	// And it should not be wildly loose at this width.
	if float64(est) > 3*float64(exact) {
		t.Fatalf("CM inner product %d too loose vs exact %d", est, exact)
	}
}

func TestInnerProductIncompatible(t *testing.T) {
	a := MustNew(3, 8, 1)
	b := MustNew(3, 8, 2)
	if _, err := InnerProduct(a, b); err == nil {
		t.Fatal("expected pairing error")
	}
}

func TestHeavyHitters(t *testing.T) {
	s := MustNew(5, 256, 21)
	s.Update(7, 1000)
	s.Update(9, 900)
	u := workload.NewUniform(1024, 1)
	for i := 0; i < 2000; i++ {
		s.Update(u.Next(), 1)
	}
	hh := s.HeavyHitters(1024, 500)
	if _, ok := hh[7]; !ok {
		t.Fatal("7 must be a heavy hitter")
	}
	if _, ok := hh[9]; !ok {
		t.Fatal("9 must be a heavy hitter")
	}
	if len(hh) > 10 {
		t.Fatalf("%d heavy hitters reported; expected ≈ 2", len(hh))
	}
}

func TestWordsAndCompatible(t *testing.T) {
	s := MustNew(4, 16, 3)
	if s.Words() != 64 {
		t.Fatalf("Words = %d", s.Words())
	}
	if !s.Compatible(MustNew(4, 16, 3)) || s.Compatible(MustNew(4, 16, 4)) {
		t.Fatal("compatibility must track (d, b, seed)")
	}
}
