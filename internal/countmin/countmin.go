// Package countmin implements the Count-Min sketch of Cormode &
// Muthukrishnan, the closest sibling synopsis to the paper's hash sketch:
// the same d × b bucket layout, but with unsigned counting instead of
// ±1 projections. It is included as a comparison synopsis: its point
// queries are one-sided (never underestimates on insert-only streams) and
// its inner-product estimate upper-bounds the true join size, whereas the
// skimmed sketch is unbiased. For streams with deletes, the Count-Median
// variant (median over tables) replaces the minimum.
package countmin

import (
	"fmt"

	"skimsketch/internal/hashfam"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// Sketch is a Count-Min sketch with d tables of b counters.
type Sketch struct {
	d, b     int
	seed     uint64
	counters []int64
	hs       []hashfam.Pairwise
	net      int64
	sawNeg   bool
}

// New returns an empty Count-Min sketch. Sketches with equal (d, b, seed)
// share hash functions and may be used together in InnerProduct.
func New(d, b int, seed uint64) (*Sketch, error) {
	if d <= 0 || b <= 0 {
		return nil, fmt.Errorf("countmin: dimensions must be positive, got d=%d b=%d", d, b)
	}
	ss := hashfam.NewSeedStream(seed)
	hs := make([]hashfam.Pairwise, d)
	for j := range hs {
		hs[j] = hashfam.NewPairwise(ss)
	}
	return &Sketch{d: d, b: b, seed: seed, counters: make([]int64, d*b), hs: hs}, nil
}

// MustNew is New for static configurations.
func MustNew(d, b int, seed uint64) *Sketch {
	s, err := New(d, b, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Update folds one stream element into one counter per table. It
// implements stream.Sink.
func (s *Sketch) Update(value uint64, weight int64) {
	for j := 0; j < s.d; j++ {
		s.counters[j*s.b+s.hs[j].Bucket(value, s.b)] += weight
	}
	s.net += weight
	if weight < 0 {
		s.sawNeg = true
	}
}

// UpdateBatch folds a whole batch of stream elements, one counter per
// table per element. It is bit-for-bit equivalent to calling Update per
// element but hoists the bucket hash and counter row out of the inner
// loop and folds the net/sawNeg tallies once per batch. It implements
// stream.BatchSink.
func (s *Sketch) UpdateBatch(batch []stream.Update) {
	for j := 0; j < s.d; j++ {
		h := s.hs[j]
		row := s.counters[j*s.b : (j+1)*s.b]
		for _, u := range batch {
			row[h.Bucket(u.Value, s.b)] += u.Weight
		}
	}
	for _, u := range batch {
		s.net += u.Weight
		if u.Weight < 0 {
			s.sawNeg = true
		}
	}
}

// Words returns the synopsis size in counter words.
func (s *Sketch) Words() int { return s.d * s.b }

// NetCount returns Σ weights.
func (s *Sketch) NetCount() int64 { return s.net }

// Compatible reports whether two sketches share layout and hashes.
func (s *Sketch) Compatible(o *Sketch) bool {
	return s.d == o.d && s.b == o.b && s.seed == o.seed
}

// PointQuery estimates f_v. On insert-only streams it is the classic
// Count-Min minimum, guaranteeing f̂_v ≥ f_v and f̂_v ≤ f_v + n/b with
// probability 1 − (1/2)^d-ish; once a delete has been seen it switches to
// the Count-Median estimator (median over tables), which remains unbiased
// under general updates but loses the one-sided guarantee.
func (s *Sketch) PointQuery(v uint64) int64 {
	ests := make([]int64, s.d)
	for j := 0; j < s.d; j++ {
		ests[j] = s.counters[j*s.b+s.hs[j].Bucket(v, s.b)]
	}
	if s.sawNeg {
		return stats.MedianInt64(ests)
	}
	min := ests[0]
	for _, e := range ests[1:] {
		if e < min {
			min = e
		}
	}
	return min
}

// InnerProduct estimates Σ_v f_v·g_v as the minimum over tables of the
// bucket-wise product (an upper bound on insert-only streams: every
// colliding pair adds a non-negative cross term).
func InnerProduct(f, g *Sketch) (int64, error) {
	if !f.Compatible(g) {
		return 0, fmt.Errorf("countmin: sketches are not a pair")
	}
	rows := make([]int64, f.d)
	for j := 0; j < f.d; j++ {
		var sum int64
		base := j * f.b
		for k := 0; k < f.b; k++ {
			sum += f.counters[base+k] * g.counters[base+k]
		}
		rows[j] = sum
	}
	if f.sawNeg || g.sawNeg {
		return stats.MedianInt64(rows), nil
	}
	min := rows[0]
	for _, r := range rows[1:] {
		if r < min {
			min = r
		}
	}
	return min, nil
}

// HeavyHitters returns every domain value whose point query is at least
// threshold, scanning [0, domain).
func (s *Sketch) HeavyHitters(domain uint64, threshold int64) map[uint64]int64 {
	out := make(map[uint64]int64)
	for v := uint64(0); v < domain; v++ {
		if est := s.PointQuery(v); est >= threshold {
			out[v] = est
		}
	}
	return out
}
