package countmin

import (
	"strings"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNew(4, 32, 99)
	for i := 0; i < 500; i++ {
		s.Update(uint64(i%61), 1+int64(i%5))
	}
	s.Update(7, -3) // exercise sawNeg
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Sketch
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !s.Compatible(&r) {
		t.Fatal("round-tripped sketch is not compatible with original")
	}
	if r.net != s.net || r.sawNeg != s.sawNeg {
		t.Fatalf("tallies diverge: net %d vs %d, sawNeg %v vs %v", r.net, s.net, r.sawNeg, s.sawNeg)
	}
	for v := uint64(0); v < 61; v++ {
		if got, want := r.PointQuery(v), s.PointQuery(v); got != want {
			t.Fatalf("PointQuery(%d) = %d after round trip, want %d", v, got, want)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	s := MustNew(2, 8, 1)
	blob, _ := s.MarshalBinary()
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"short", blob[:10], "truncated"},
		{"magic", append([]byte("NOPE"), blob[4:]...), "magic"},
		{"version", func() []byte {
			b := append([]byte(nil), blob...)
			b[4] = 0xFF
			return b
		}(), "version"},
		{"length", blob[:len(blob)-8], "bytes"},
		{"sawneg", func() []byte {
			b := append([]byte(nil), blob...)
			b[32] = 7
			return b
		}(), "sawNeg"},
		{"dims", func() []byte {
			b := append([]byte(nil), blob...)
			b[8], b[9], b[10], b[11] = 0, 0, 0, 0
			return b
		}(), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r Sketch
			err := r.UnmarshalBinary(tc.data)
			if err == nil {
				t.Fatal("garbage accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
