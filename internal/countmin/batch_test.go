package countmin

import (
	"testing"
	"testing/quick"

	"skimsketch/internal/stream"
)

// Property: UpdateBatch over any chunking equals the sequential Update
// loop bit-for-bit — counters, net count, the delete-detection flag
// (PointQuery switches estimators on it), and point/inner-product
// estimates.
func TestQuickUpdateBatchEquivalence(t *testing.T) {
	f := func(vals []uint16, weights []int8, sizes []uint8) bool {
		us := make([]stream.Update, len(vals))
		for i, v := range vals {
			w := int64(1)
			if i < len(weights) && weights[i] != 0 {
				w = int64(weights[i])
			}
			us[i] = stream.Update{Value: uint64(v % 256), Weight: w}
		}
		seq := MustNew(5, 64, 31)
		bat := MustNew(5, 64, 31)
		stream.Apply(us, seq)
		i := 0
		for off := 0; off < len(us); {
			n := 1
			if len(sizes) > 0 {
				n = int(sizes[i%len(sizes)]%9) + 1
				i++
			}
			end := off + n
			if end > len(us) {
				end = len(us)
			}
			bat.UpdateBatch(us[off:end])
			off = end
		}
		if seq.NetCount() != bat.NetCount() || seq.sawNeg != bat.sawNeg {
			return false
		}
		for v := uint64(0); v < 256; v++ {
			if seq.PointQuery(v) != bat.PointQuery(v) {
				return false
			}
		}
		other := MustNew(5, 64, 31)
		stream.Apply(us, other)
		ps, err1 := InnerProduct(seq, other)
		pb, err2 := InnerProduct(bat, other)
		return err1 == nil && err2 == nil && ps == pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
