package countmin

import "testing"

func BenchmarkUpdate(b *testing.B) {
	s := MustNew(5, 2048, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(uint64(i&16383), 1)
	}
}

func BenchmarkPointQuery(b *testing.B) {
	s := MustNew(5, 2048, 1)
	for i := 0; i < 100000; i++ {
		s.Update(uint64(i&16383), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PointQuery(uint64(i & 16383))
	}
}

func BenchmarkInnerProduct(b *testing.B) {
	f := MustNew(5, 2048, 1)
	g := MustNew(5, 2048, 1)
	for i := 0; i < 100000; i++ {
		f.Update(uint64(i&16383), 1)
		g.Update(uint64(i&8191), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InnerProduct(f, g); err != nil {
			b.Fatal(err)
		}
	}
}
