package countmin

import "testing"

// FuzzUnmarshalBinary feeds arbitrary bytes to the sketch decoder; it
// must reject garbage with an error, never panic, and accept its own
// output. Mirrors core.FuzzUnmarshalBinary.
func FuzzUnmarshalBinary(f *testing.F) {
	s := MustNew(3, 8, 1)
	s.Update(3, 5)
	s.Update(9, -2)
	blob, _ := s.MarshalBinary()
	f.Add(blob)
	f.Add(blob[:20])
	f.Add([]byte("SKCMgarbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Sketch
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything accepted must be a structurally sound sketch.
		if r.d <= 0 || r.b <= 0 || len(r.counters) != r.d*r.b || len(r.hs) != r.d {
			t.Fatalf("accepted sketch with bad layout d=%d b=%d", r.d, r.b)
		}
		// Re-marshalling an accepted sketch must succeed and re-decode.
		blob2, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var r2 Sketch
		if err := r2.UnmarshalBinary(blob2); err != nil {
			t.Fatalf("self-output rejected: %v", err)
		}
	})
}
