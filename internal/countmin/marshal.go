package countmin

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization mirrors internal/core's: "SKCM" magic, u32
// version, u32 d, u32 b, u64 seed, i64 net, u8 sawNeg, then d·b i64
// counters, little-endian. The pairwise hash families are rebuilt
// deterministically from the seed on load, so only dimensions, seed
// and counters travel.

var sketchMagic = [4]byte{'S', 'K', 'C', 'M'}

const (
	sketchVersion = 1
	headerLen     = 4 + 4 + 4 + 4 + 8 + 8 + 1
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, headerLen+8*len(s.counters))
	buf = append(buf, sketchMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, sketchVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.d))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.b))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.net))
	if s.sawNeg {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, c := range s.counters {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state entirely (including hash families, rebuilt from the
// serialized seed).
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < headerLen {
		return fmt.Errorf("countmin: sketch data truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != sketchMagic {
		return fmt.Errorf("countmin: bad sketch magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != sketchVersion {
		return fmt.Errorf("countmin: unsupported sketch version %d", v)
	}
	d := int(binary.LittleEndian.Uint32(data[8:12]))
	b := int(binary.LittleEndian.Uint32(data[12:16]))
	seed := binary.LittleEndian.Uint64(data[16:24])
	net := int64(binary.LittleEndian.Uint64(data[24:32]))
	sawNegByte := data[32]
	if sawNegByte > 1 {
		return fmt.Errorf("countmin: bad sawNeg flag %d", sawNegByte)
	}
	// Validate the length against the declared dimensions BEFORE
	// allocating: a hostile header could otherwise demand gigabytes.
	// The uint64 product cannot overflow (both factors < 2^32).
	want := headerLen + 8*uint64(uint32(d))*uint64(uint32(b))
	if uint64(len(data)) != want {
		return fmt.Errorf("countmin: sketch data is %d bytes, want %d for %dx%d", len(data), want, d, b)
	}
	fresh, err := New(d, b, seed)
	if err != nil {
		return fmt.Errorf("countmin: unmarshal: %w", err)
	}
	fresh.net = net
	fresh.sawNeg = sawNegByte == 1
	for i := range fresh.counters {
		fresh.counters[i] = int64(binary.LittleEndian.Uint64(data[headerLen+8*i:]))
	}
	*s = *fresh
	return nil
}
