package countmin_test

import (
	"fmt"

	"skimsketch/internal/countmin"
)

// Count-Min point queries never underestimate on insert-only streams —
// the one-sided guarantee the (unbiased) hash sketch trades away.
func ExampleSketch_PointQuery() {
	s := countmin.MustNew(5, 256, 3)
	s.Update(9, 12)
	fmt.Println(s.PointQuery(9) >= 12)
	// Output: true
}
