// Package client is the Go client for SKSP, sketchd's binary streaming
// ingest protocol (internal/wire). A Conn multiplexes concurrent Send
// calls over one persistent TCP connection, assigning every frame a
// monotonically increasing seq under a stable clientID. The server
// dedupes (clientID, seq), which is what makes the client's error
// handling simple and safe:
//
//   - REJECT (the protocol's 429) applied nothing: resend the SAME seq
//     after the jittered-exponential backoff, floored by the server's
//     Retry-After hint.
//   - A dropped connection is indistinguishable from a lost ACK: the
//     client reconnects (under the same backoff policy) and replays
//     every unacknowledged frame in seq order. Frames the server had
//     already applied are answered from its dedupe window without
//     re-applying, so replay never double-counts.
//   - ERROR frames are permanent: the same frame can never succeed, so
//     Send fails without retrying.
package client

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"skimsketch/internal/distributed"
	"skimsketch/internal/stream"
	"skimsketch/internal/wire"
)

// Outcome reports how one logical batch landed.
type Outcome struct {
	// Attempts counts wire attempts observed by this Send: the initial
	// send plus every REJECT-triggered resend. (Transparent replays after
	// a reconnect are part of the same attempt — the client was still
	// waiting on the same frame.)
	Attempts int
	// Rejected429 counts REJECT responses.
	Rejected429 int
	// Applied is the element count acknowledged by the server.
	Applied int64
	// Deduplicated is set when the final ACK came from the server's
	// dedupe window (an earlier transmission had already applied).
	Deduplicated bool
}

// Options configures a Conn.
type Options struct {
	// ClientID identifies this client in the server's dedupe window. It
	// MUST be unique per client incarnation (a restarted client reusing
	// an old ID with restarting seqs would collide with remembered
	// outcomes); empty generates a random one.
	ClientID string
	// Backoff is the shared policy for REJECT resends and reconnects.
	// The zero value retries forever with 100ms..5s jittered delays;
	// set Attempts to bound it.
	Backoff distributed.Backoff
	// DialTimeout bounds each dial attempt. <= 0 defaults to 5s.
	DialTimeout time.Duration
}

// Conn is a persistent SKSP connection. It is safe for concurrent use:
// Send calls pipeline onto one TCP connection and are matched to their
// replies by seq. The first Send dials lazily.
type Conn struct {
	addr string
	opts Options

	mu           sync.Mutex
	nc           net.Conn
	w            *wire.Writer
	gen          int // connection generation, guards stale failure reports
	nextSeq      uint64
	pending      map[uint64]*pendingFrame
	reconnecting bool
	closed       bool
	closedCh     chan struct{}

	wmu sync.Mutex // serializes frame writes+flushes, NEVER held with mu
}

type pendingFrame struct {
	seq    uint64
	tenant string
	groups []stream.Group
	ch     chan result
}

type resultKind int

const (
	rAck resultKind = iota
	rReject
	rError
	rFail
)

type result struct {
	kind       resultKind
	applied    int64
	dup        bool
	retryAfter time.Duration
	msg        string
	err        error
}

// New returns an unconnected Conn for addr. Dialing happens on the
// first Send (or on Ping).
func New(addr string, opts Options) *Conn {
	if opts.ClientID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic("wire client: crypto/rand unavailable: " + err.Error())
		}
		opts.ClientID = "sksp-" + hex.EncodeToString(b[:])
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	return &Conn{
		addr:     addr,
		opts:     opts,
		pending:  make(map[uint64]*pendingFrame),
		closedCh: make(chan struct{}),
	}
}

// ClientID returns the dedupe identity frames are sent under.
func (c *Conn) ClientID() string { return c.opts.ClientID }

// Ping establishes the connection (dial + header exchange) without
// sending data, so startup errors surface before the first batch.
func (c *Conn) Ping(ctx context.Context) error {
	_, err := c.Send(ctx, "", nil)
	return err
}

// Send delivers one logical batch — updates grouped by stream, for one
// tenant ("" = default) — and blocks until the server acknowledges it,
// permanently rejects it, the retry budget is spent, or ctx is done.
// The groups' buffers are owned by the caller again once Send returns.
func (c *Conn) Send(ctx context.Context, tenant string, groups []stream.Group) (Outcome, error) {
	return c.SendTimed(ctx, tenant, groups, nil)
}

// SendTimed is Send with a per-attempt latency hook (for harnesses
// recording one histogram sample per wire attempt).
func (c *Conn) SendTimed(ctx context.Context, tenant string, groups []stream.Group, onAttempt func(time.Duration)) (Outcome, error) {
	var out Outcome
	total := 0
	for i := range groups {
		total += len(groups[i].Updates)
	}
	if total == 0 && groups == nil {
		// Ping path: an empty frame still round-trips an ACK.
		groups = []stream.Group{}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return out, fmt.Errorf("wire client: connection closed")
	}
	c.nextSeq++
	p := &pendingFrame{seq: c.nextSeq, tenant: tenant, groups: groups, ch: make(chan result, 4)}
	c.pending[p.seq] = p
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, p.seq)
		c.mu.Unlock()
	}()

	rejects := 0
	for {
		start := time.Now()
		c.writeFrame(p)
		select {
		case res := <-p.ch:
			if onAttempt != nil {
				onAttempt(time.Since(start))
			}
			out.Attempts++
			switch res.kind {
			case rAck:
				out.Applied = res.applied
				out.Deduplicated = res.dup
				return out, nil
			case rReject:
				out.Rejected429++
				if b := c.opts.Backoff; b.Attempts > 0 && out.Attempts >= b.Attempts {
					return out, fmt.Errorf("wire client: seq %d rejected %d times, retry budget spent", p.seq, out.Rejected429)
				}
				delay := c.opts.Backoff.Delay(rejects)
				rejects++
				if res.retryAfter > delay {
					delay = res.retryAfter
				}
				t := time.NewTimer(delay)
				select {
				case <-ctx.Done():
					t.Stop()
					return out, ctx.Err()
				case <-t.C:
				}
				// Drain a straggler result delivered while sleeping (a
				// duplicate transmission racing the reject), then resend.
				for len(p.ch) > 0 {
					<-p.ch
				}
			case rError:
				return out, fmt.Errorf("wire client: server rejected seq %d permanently: %s", p.seq, res.msg)
			case rFail:
				return out, fmt.Errorf("wire client: %w", res.err)
			}
		case <-ctx.Done():
			return out, ctx.Err()
		}
	}
}

// writeFrame sends p on the live connection, or kicks off a reconnect
// that will replay it. Write errors are routed through connFailed, so
// the caller just waits on p.ch either way.
func (c *Conn) writeFrame(p *pendingFrame) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.nc == nil {
		c.startReconnectLocked()
		c.mu.Unlock()
		return // the reconnect's replay pass will deliver p
	}
	w, gen := c.w, c.gen
	c.mu.Unlock()

	d := wire.Data{ClientID: c.opts.ClientID, Seq: p.seq, Tenant: p.tenant, Groups: p.groups}
	c.wmu.Lock()
	err := w.WriteData(&d)
	if err == nil {
		err = w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.connFailed(gen, err)
	}
}

// startReconnectLocked launches the reconnect goroutine once. Callers
// hold c.mu.
func (c *Conn) startReconnectLocked() {
	if c.reconnecting || c.closed {
		return
	}
	c.reconnecting = true
	go c.reconnectLoop()
}

// reconnectLoop dials under the backoff policy, re-exchanges headers,
// and replays every pending frame in seq order. If the attempt budget
// is spent, every waiting Send fails (and the next Send starts a fresh
// loop).
func (c *Conn) reconnectLoop() {
	for attempt := 0; ; attempt++ {
		if b := c.opts.Backoff; b.Attempts > 0 && attempt >= b.Attempts {
			err := fmt.Errorf("reconnect to %s: retry budget (%d) spent", c.addr, b.Attempts)
			c.mu.Lock()
			c.reconnecting = false
			c.failAllLocked(err)
			c.mu.Unlock()
			return
		}
		if attempt > 0 {
			t := time.NewTimer(c.opts.Backoff.Delay(attempt - 1))
			select {
			case <-c.closedCh:
				t.Stop()
			case <-t.C:
			}
		}
		c.mu.Lock()
		if c.closed {
			c.reconnecting = false
			c.failAllLocked(fmt.Errorf("connection closed"))
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		nc, rd, w, err := c.dial()
		if err != nil {
			continue
		}

		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return
		}
		c.gen++
		gen := c.gen
		c.nc, c.w = nc, w
		replay := make([]*pendingFrame, 0, len(c.pending))
		for _, p := range c.pending {
			replay = append(replay, p)
		}
		c.reconnecting = false
		c.mu.Unlock()
		sort.Slice(replay, func(i, j int) bool { return replay[i].seq < replay[j].seq })

		//sketchlint:ignore ctxleak -- readLoop exits when Close or connFailed closes nc: rd.Next then returns an error and the goroutine falls out; TestCloseUnblocksReadLoop pins this
		go c.readLoop(rd, gen)
		for _, p := range replay {
			d := wire.Data{ClientID: c.opts.ClientID, Seq: p.seq, Tenant: p.tenant, Groups: p.groups}
			c.wmu.Lock()
			err := w.WriteData(&d)
			if err == nil {
				err = w.Flush()
			}
			c.wmu.Unlock()
			if err != nil {
				c.connFailed(gen, err)
				return // connFailed restarted the loop in a new goroutine
			}
		}
		return
	}
}

// dial opens a TCP connection and exchanges SKSP headers.
func (c *Conn) dial() (net.Conn, *wire.Reader, *wire.Writer, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, nil, nil, err
	}
	w := wire.NewWriter(nc)
	if err := w.WriteHeader(); err == nil {
		err = w.Flush()
	} else {
		nc.Close()
		return nil, nil, nil, err
	}
	rd := wire.NewReader(nc)
	nc.SetReadDeadline(time.Now().Add(c.opts.DialTimeout))
	if err := rd.ReadHeader(); err != nil {
		nc.Close()
		return nil, nil, nil, err
	}
	nc.SetReadDeadline(time.Time{})
	return nc, rd, w, nil
}

// readLoop dispatches server frames to their pending Send by seq.
func (c *Conn) readLoop(rd *wire.Reader, gen int) {
	for {
		ft, payload, err := rd.Next()
		if err != nil {
			c.connFailed(gen, err)
			return
		}
		var seq uint64
		var res result
		switch ft {
		case wire.FrameAck:
			a, err := wire.DecodeAck(payload)
			if err != nil {
				c.connFailed(gen, err)
				return
			}
			seq, res = a.Seq, result{kind: rAck, applied: a.Applied, dup: a.Duplicate}
		case wire.FrameReject:
			r, err := wire.DecodeReject(payload)
			if err != nil {
				c.connFailed(gen, err)
				return
			}
			seq, res = r.Seq, result{kind: rReject, retryAfter: time.Duration(r.RetryAfter) * time.Second}
		case wire.FrameError:
			e, err := wire.DecodeError(payload)
			if err != nil {
				c.connFailed(gen, err)
				return
			}
			seq, res = e.Seq, result{kind: rError, msg: e.Msg}
		default:
			c.connFailed(gen, fmt.Errorf("unexpected %d frame from server", ft))
			return
		}
		c.mu.Lock()
		p := c.pending[seq]
		c.mu.Unlock()
		if p != nil {
			select {
			case p.ch <- res:
			default: // duplicate delivery; the Send already has an answer
			}
		}
	}
}

// connFailed tears down generation gen (if still current) and starts a
// reconnect, so every waiting Send rides the replay instead of failing.
func (c *Conn) connFailed(gen int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || gen != c.gen {
		return
	}
	if c.nc != nil {
		c.nc.Close()
		c.nc, c.w = nil, nil
	}
	if len(c.pending) > 0 {
		c.startReconnectLocked()
	}
}

// failAllLocked answers every pending Send with a failure. Callers hold
// c.mu.
func (c *Conn) failAllLocked(err error) {
	for _, p := range c.pending {
		select {
		case p.ch <- result{kind: rFail, err: err}:
		default:
		}
	}
}

// Close tears the connection down and fails outstanding Sends. Further
// Sends error immediately.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.closedCh)
	if c.nc != nil {
		c.nc.Close()
		c.nc, c.w = nil, nil
	}
	c.failAllLocked(fmt.Errorf("connection closed"))
	return nil
}

// Batcher accumulates updates by stream and ships them as one SKSP
// frame per Flush. It is not safe for concurrent use; give each
// producer goroutine its own Batcher over the shared Conn.
type Batcher struct {
	C      *Conn
	Tenant string

	groups []stream.Group
	index  map[string]int
	count  int
}

// Add buffers one update and returns the buffered element count (the
// caller flushes at its preferred batch size).
func (b *Batcher) Add(streamName string, value uint64, weight int64) int {
	if b.index == nil {
		b.index = make(map[string]int)
	}
	i, ok := b.index[streamName]
	if !ok {
		i = len(b.groups)
		b.groups = append(b.groups, stream.Group{Name: streamName})
		b.index[streamName] = i
	}
	b.groups[i].Updates = append(b.groups[i].Updates, stream.Update{Value: value, Weight: weight})
	b.count++
	return b.count
}

// Pending returns the buffered element count.
func (b *Batcher) Pending() int { return b.count }

// Flush sends the buffered updates (no-op when empty) and resets the
// buffers for reuse.
func (b *Batcher) Flush(ctx context.Context) (Outcome, error) {
	if b.count == 0 {
		return Outcome{}, nil
	}
	out, err := b.C.Send(ctx, b.Tenant, b.groups)
	if err == nil {
		for i := range b.groups {
			b.groups[i].Updates = b.groups[i].Updates[:0]
		}
		b.count = 0
	}
	return out, err
}
