package client

import (
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skimsketch/internal/distributed"
	"skimsketch/internal/stream"
	"skimsketch/internal/wire"
)

// fastBackoff keeps the retry/reconnect machinery honest without
// slowing the test suite: deterministic (Jitter 0) millisecond delays.
func fastBackoff() distributed.Backoff {
	return distributed.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Jitter: 0}
}

// fakeServer is a scripted SKSP endpoint: it performs the header
// exchange, then hands every DATA frame to handle along with the
// 0-based connection number. handle returning false drops the
// connection mid-conversation (simulating a crash or network cut).
type fakeServer struct {
	t  *testing.T
	ln net.Listener
	wg sync.WaitGroup

	handle func(connNo int, d *wire.Data, w *wire.Writer) bool

	mu    sync.Mutex
	conns int
}

func newFakeServer(t *testing.T, handle func(connNo int, d *wire.Data, w *wire.Writer) bool) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &fakeServer{t: t, ln: ln, handle: handle}
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *fakeServer) addr() string { return s.ln.Addr().String() }

func (s *fakeServer) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns
}

func (s *fakeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		connNo := s.conns
		s.conns++
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer nc.Close()
			s.serveConn(connNo, nc)
		}()
	}
}

func (s *fakeServer) serveConn(connNo int, nc net.Conn) {
	rd := wire.NewReader(nc)
	w := wire.NewWriter(nc)
	if err := rd.ReadHeader(); err != nil {
		return
	}
	if err := w.WriteHeader(); err != nil || w.Flush() != nil {
		return
	}
	var d wire.Data
	for {
		ft, payload, err := rd.Next()
		if err != nil {
			return // client closed or dropped
		}
		if ft != wire.FrameData {
			s.t.Errorf("server got frame type %d, want DATA", ft)
			return
		}
		if err := wire.DecodeData(payload, &d); err != nil {
			s.t.Errorf("server decode: %v", err)
			return
		}
		if !s.handle(connNo, &d, w) {
			return
		}
	}
}

// ackAll answers every frame with an ACK of the element count.
func ackAll(_ int, d *wire.Data, w *wire.Writer) bool {
	var n int64
	for _, g := range d.Groups {
		n += int64(len(g.Updates))
	}
	if w.WriteAck(wire.Ack{Seq: d.Seq, Applied: n}) != nil || w.Flush() != nil {
		return false
	}
	return true
}

func twoGroups() []stream.Group {
	return []stream.Group{
		{Name: "F", Updates: []stream.Update{{Value: 1, Weight: 1}, {Value: 2, Weight: -1}}},
		{Name: "G", Updates: []stream.Update{{Value: 3, Weight: 5}}},
	}
}

func TestSendAck(t *testing.T) {
	srv := newFakeServer(t, ackAll)
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	out, err := c.Send(context.Background(), "acme", twoGroups())
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 3 || out.Attempts != 1 || out.Rejected429 != 0 || out.Deduplicated {
		t.Fatalf("outcome %+v", out)
	}
}

func TestPingAndGeneratedClientID(t *testing.T) {
	srv := newFakeServer(t, ackAll)
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.ClientID(), "sksp-") || len(c.ClientID()) != len("sksp-")+16 {
		t.Fatalf("generated clientID %q", c.ClientID())
	}
}

// TestRejectThenAck: the protocol 429. The server rejects the first
// sighting of each seq; the client must back off and resend the SAME
// seq, not a new one.
func TestRejectThenAck(t *testing.T) {
	var mu sync.Mutex
	sightings := make(map[uint64]int)
	srv := newFakeServer(t, func(connNo int, d *wire.Data, w *wire.Writer) bool {
		mu.Lock()
		sightings[d.Seq]++
		n := sightings[d.Seq]
		mu.Unlock()
		if n == 1 {
			return w.WriteReject(wire.Reject{Seq: d.Seq}) == nil && w.Flush() == nil
		}
		return ackAll(connNo, d, w)
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	out, err := c.Send(context.Background(), "", twoGroups())
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 3 || out.Attempts != 2 || out.Rejected429 != 1 {
		t.Fatalf("outcome %+v", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sightings) != 1 {
		t.Fatalf("server saw %d distinct seqs, want 1 (resend must reuse the seq)", len(sightings))
	}
}

// TestRejectRetryAfterFloor: a Retry-After hint above the backoff delay
// floors the sleep — the client must not hammer a server that asked for
// a pause.
func TestRejectRetryAfterFloor(t *testing.T) {
	first := true
	srv := newFakeServer(t, func(connNo int, d *wire.Data, w *wire.Writer) bool {
		if first {
			first = false
			return w.WriteReject(wire.Reject{Seq: d.Seq, RetryAfter: 1}) == nil && w.Flush() == nil
		}
		return ackAll(connNo, d, w)
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	t0 := time.Now()
	if _, err := c.Send(context.Background(), "", twoGroups()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < time.Second {
		t.Fatalf("resend after %v, want >= the 1s Retry-After hint", d)
	}
}

func TestRejectBudgetSpent(t *testing.T) {
	srv := newFakeServer(t, func(_ int, d *wire.Data, w *wire.Writer) bool {
		return w.WriteReject(wire.Reject{Seq: d.Seq}) == nil && w.Flush() == nil
	})
	b := fastBackoff()
	b.Attempts = 3
	c := New(srv.addr(), Options{Backoff: b})
	defer c.Close()

	out, err := c.Send(context.Background(), "", twoGroups())
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err %v, want retry budget spent", err)
	}
	if out.Attempts != 3 || out.Rejected429 != 3 {
		t.Fatalf("outcome %+v, want 3 attempts all rejected", out)
	}
}

func TestErrorFrameIsPermanent(t *testing.T) {
	var frames atomic.Int64
	srv := newFakeServer(t, func(_ int, d *wire.Data, w *wire.Writer) bool {
		frames.Add(1)
		return w.WriteError(wire.ErrorFrame{Seq: d.Seq, Msg: `unknown stream "nope"`}) == nil && w.Flush() == nil
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	_, err := c.Send(context.Background(), "", []stream.Group{{Name: "nope", Updates: []stream.Update{{Value: 1, Weight: 1}}}})
	if err == nil || !strings.Contains(err.Error(), "unknown stream") {
		t.Fatalf("err %v, want the server's message", err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := frames.Load(); n != 1 {
		t.Fatalf("server saw %d frames, want 1 (no retry on permanent error)", n)
	}
}

// TestReconnectReplayExactlyOnce is the tentpole property: the server
// applies a frame and then drops the connection before the ACK escapes.
// The client must reconnect and replay the same seq; the server's
// dedupe window answers it without re-applying, so the batch lands
// exactly once even though it was transmitted twice.
func TestReconnectReplayExactlyOnce(t *testing.T) {
	win := wire.NewWindow(0, 0)
	var applied atomic.Int64
	var dropped atomic.Bool
	srv := newFakeServer(t, func(connNo int, d *wire.Data, w *wire.Writer) bool {
		var n int64
		for _, g := range d.Groups {
			n += int64(len(g.Updates))
		}
		if out, ok := win.Lookup(d.ClientID, d.Seq); ok {
			// Replay of an applied frame: answer from memory, apply nothing.
			return w.WriteAck(wire.Ack{Seq: d.Seq, Applied: out.Applied, Duplicate: true}) == nil && w.Flush() == nil
		}
		applied.Add(n)
		win.Record(d.ClientID, d.Seq, wire.Outcome{Applied: n})
		if !dropped.Swap(true) {
			return false // applied, but the connection dies before the ACK
		}
		return w.WriteAck(wire.Ack{Seq: d.Seq, Applied: n}) == nil && w.Flush() == nil
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	out, err := c.Send(context.Background(), "", twoGroups())
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 3 || !out.Deduplicated {
		t.Fatalf("outcome %+v, want 3 applied via the dedupe window", out)
	}
	if n := applied.Load(); n != 3 {
		t.Fatalf("server applied %d elements, want exactly 3 (no double-apply)", n)
	}
	if srv.connCount() < 2 {
		t.Fatalf("%d connections, want a reconnect", srv.connCount())
	}

	// The connection is live again: a follow-up batch goes straight through.
	out, err = c.Send(context.Background(), "", twoGroups())
	if err != nil || out.Applied != 3 || out.Deduplicated {
		t.Fatalf("post-reconnect send: %+v %v", out, err)
	}
}

// TestReconnectReplaysAllPending: several concurrent Sends are in
// flight when the connection dies; every one must complete after the
// reconnect, and the server must see each seq apply exactly once.
func TestReconnectReplaysAllPending(t *testing.T) {
	const sends = 8
	win := wire.NewWindow(0, 0)
	var mu sync.Mutex
	appliedSeqs := make(map[uint64]int)
	var received atomic.Int64
	srv := newFakeServer(t, func(connNo int, d *wire.Data, w *wire.Writer) bool {
		if out, ok := win.Lookup(d.ClientID, d.Seq); ok {
			return w.WriteAck(wire.Ack{Seq: d.Seq, Applied: out.Applied, Duplicate: true}) == nil && w.Flush() == nil
		}
		var n int64
		for _, g := range d.Groups {
			n += int64(len(g.Updates))
		}
		mu.Lock()
		appliedSeqs[d.Seq]++
		mu.Unlock()
		win.Record(d.ClientID, d.Seq, wire.Outcome{Applied: n})
		// The first connection absorbs frames silently and dies once it has
		// a few in hand; later connections ACK normally.
		if connNo == 0 {
			return received.Add(1) < 3
		}
		return w.WriteAck(wire.Ack{Seq: d.Seq, Applied: n}) == nil && w.Flush() == nil
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, sends)
	outs := make([]Outcome, sends)
	for i := 0; i < sends; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = c.Send(context.Background(), "", []stream.Group{
				{Name: "F", Updates: []stream.Update{{Value: uint64(i), Weight: 1}}},
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < sends; i++ {
		if errs[i] != nil {
			t.Fatalf("send %d: %v", i, errs[i])
		}
		if outs[i].Applied != 1 {
			t.Fatalf("send %d outcome %+v", i, outs[i])
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(appliedSeqs) != sends {
		t.Fatalf("server applied %d distinct seqs, want %d", len(appliedSeqs), sends)
	}
	for seq, n := range appliedSeqs {
		if n != 1 {
			t.Fatalf("seq %d applied %d times", seq, n)
		}
	}
}

func TestDialFailureSpendsBudget(t *testing.T) {
	// A listener that is closed immediately: dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	b := fastBackoff()
	b.Attempts = 2
	c := New(addr, Options{Backoff: b, DialTimeout: 100 * time.Millisecond})
	defer c.Close()
	_, err = c.Send(context.Background(), "", twoGroups())
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err %v, want reconnect budget spent", err)
	}
}

func TestCloseFailsPendingSend(t *testing.T) {
	srv := newFakeServer(t, func(int, *wire.Data, *wire.Writer) bool {
		return true // swallow frames, never answer
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})

	done := make(chan error, 1)
	go func() {
		_, err := c.Send(context.Background(), "", twoGroups())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the frame reach the server
	c.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "closed") {
			t.Fatalf("err %v, want connection closed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send did not return after Close")
	}
	if _, err := c.Send(context.Background(), "", twoGroups()); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}

func TestSendContextCanceled(t *testing.T) {
	srv := newFakeServer(t, func(int, *wire.Data, *wire.Writer) bool {
		return true // never answer
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Send(ctx, "", twoGroups()); err != context.DeadlineExceeded {
		t.Fatalf("err %v, want context.DeadlineExceeded", err)
	}
}

func TestBatcher(t *testing.T) {
	var got wire.Data
	var mu sync.Mutex
	srv := newFakeServer(t, func(connNo int, d *wire.Data, w *wire.Writer) bool {
		mu.Lock()
		got = wire.Data{ClientID: d.ClientID, Seq: d.Seq, Tenant: d.Tenant}
		for _, g := range d.Groups {
			got.Groups = append(got.Groups, stream.Group{
				Name:    g.Name,
				Updates: append([]stream.Update(nil), g.Updates...),
			})
		}
		mu.Unlock()
		return ackAll(connNo, d, w)
	})
	c := New(srv.addr(), Options{Backoff: fastBackoff()})
	defer c.Close()

	b := &Batcher{C: c, Tenant: "acme"}
	if out, err := b.Flush(context.Background()); err != nil || out.Applied != 0 {
		t.Fatalf("empty flush: %+v %v", out, err)
	}
	b.Add("F", 1, 1)
	b.Add("G", 2, -3)
	if n := b.Add("F", 3, 1); n != 3 {
		t.Fatalf("Add count %d, want 3", n)
	}
	if b.Pending() != 3 {
		t.Fatalf("Pending %d", b.Pending())
	}
	out, err := b.Flush(context.Background())
	if err != nil || out.Applied != 3 {
		t.Fatalf("flush: %+v %v", out, err)
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending %d after flush", b.Pending())
	}
	mu.Lock()
	seen := got
	mu.Unlock()
	if seen.Tenant != "acme" || len(seen.Groups) != 2 {
		t.Fatalf("server saw %+v", seen)
	}
	if seen.Groups[0].Name != "F" || len(seen.Groups[0].Updates) != 2 ||
		seen.Groups[1].Name != "G" || len(seen.Groups[1].Updates) != 1 {
		t.Fatalf("grouping wrong: %+v", seen.Groups)
	}
	if seen.Groups[0].Updates[1] != (stream.Update{Value: 3, Weight: 1}) {
		t.Fatalf("per-stream order lost: %+v", seen.Groups[0].Updates)
	}

	// The batcher reuses its buffers across flushes.
	b.Add("F", 9, 2)
	if out, err := b.Flush(context.Background()); err != nil || out.Applied != 1 {
		t.Fatalf("reuse flush: %+v %v", out, err)
	}
}

// TestCloseUnblocksReadLoop pins the liveness contract behind
// reconnectLoop's ctxleak suppression: readLoop selects on no done
// channel — it exits because Close (or a connFailed teardown) closes
// the net.Conn, which errors the rd.Next it blocks in. If this test
// hangs, that suppression is a lie.
func TestCloseUnblocksReadLoop(t *testing.T) {
	srv := newFakeServer(t, ackAll)
	c := New(srv.addr(), Options{Backoff: fastBackoff()})

	nc, rd, _, err := c.dial()
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.nc = nc
	gen := c.gen
	c.mu.Unlock()

	exited := make(chan struct{})
	go func() {
		defer close(exited)
		c.readLoop(rd, gen)
	}()
	select {
	case <-exited:
		t.Fatal("readLoop exited before Close")
	case <-time.After(20 * time.Millisecond):
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("readLoop still blocked after Close")
	}
}
