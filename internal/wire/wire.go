// Package wire implements SKSP, sketchd's binary streaming ingest
// protocol: length-prefixed, CRC-checked frames over a persistent TCP
// connection, carrying tenant- and stream-grouped update batches with a
// per-frame (clientID, seq) identity for idempotent replay.
//
// A connection starts with an 8-byte header in each direction — the
// 4-byte ASCII magic "SKSP" plus a u32 version — then carries frames:
//
//	offset  size  field
//	0       1     frame type (1 DATA, 2 ACK, 3 REJECT, 4 ERROR)
//	1       4     payload length n (u32, ≤ MaxFramePayload)
//	5       4     CRC-32 (IEEE) of the payload
//	9       n     payload
//
// Everything is little-endian, following the SKCP/SKCM envelope
// discipline (docs/FORMATS.md): declared lengths and counts are
// validated against the remaining payload BEFORE any allocation, and
// the CRC must match before a single payload byte is interpreted.
//
// DATA payload (client → server):
//
//	u64 seq · u8 clientID len + bytes · u8 tenant len + bytes (0 ⇒
//	default tenant) · uvarint group count · per group: u8 stream name
//	len + bytes · uvarint update count · per update uvarint value +
//	varint (zigzag) weight.
//
// ACK payload (server → client): u64 seq · u64 applied · u8 flags
// (bit 0: duplicate — the frame was already applied and was NOT
// re-applied). REJECT payload: u64 seq · u32 retry-after seconds (the
// 429 of the protocol: nothing was applied, resend the same frame
// after the hint). ERROR payload: u64 seq · u16 message len + bytes
// (permanent; resending the same frame cannot succeed).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"skimsketch/internal/stream"
)

// Magic is the 4-byte connection-header magic.
const Magic = "SKSP"

// Version is the protocol version spoken by this package.
const Version = 1

// MaxFramePayload bounds a frame's declared payload length; Next
// rejects larger declarations before reading (or allocating) anything.
const MaxFramePayload = 1 << 22

// MaxNameLen bounds clientID, tenant and stream names on the wire
// (they are u8-length-prefixed).
const MaxNameLen = 255

// FrameType discriminates the frame envelope.
type FrameType uint8

const (
	FrameData   FrameType = 1
	FrameAck    FrameType = 2
	FrameReject FrameType = 3
	FrameError  FrameType = 4
)

const headerLen = 8   // magic + version
const envelopeLen = 9 // type + length + crc

// Data is a decoded DATA frame. Successive DecodeData calls into the
// same Data reuse its backing buffers (the Updates slices of Groups all
// alias one internal array), so a steady-state decode loop allocates
// nothing; the contents are valid until the next DecodeData call unless
// ownership is handed off (see sketchd's release contract).
type Data struct {
	ClientID string
	Seq      uint64
	Tenant   string
	Groups   []stream.Group

	buf   []stream.Update   // shared backing array for all groups
	names map[string]string // interning cache for the string fields
}

// Ack acknowledges a DATA frame: Applied elements were admitted.
// Duplicate marks a replay that was answered from the dedupe window
// without re-applying.
type Ack struct {
	Seq       uint64
	Applied   int64
	Duplicate bool
}

// Reject is the protocol's 429: the frame was not applied (not even
// partially) and should be resent, same seq, after RetryAfter seconds.
type Reject struct {
	Seq        uint64
	RetryAfter uint32
}

// ErrorFrame reports a permanent per-frame failure (unknown stream,
// out-of-domain value, malformed frame): replaying the same frame can
// never succeed.
type ErrorFrame struct {
	Seq uint64
	Msg string
}

// Writer frames SKSP messages onto w. It buffers internally; callers
// must Flush after writing (typically once per frame on the client,
// once per read burst on the server). Not safe for concurrent use.
type Writer struct {
	w       *bufio.Writer
	scratch []byte
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteHeader writes the 8-byte connection header. Each side sends it
// once, before any frame.
func (w *Writer) WriteHeader() error {
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	_, err := w.w.Write(hdr[:])
	return err
}

// Flush pushes buffered frames to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// writeFrame emits one envelope around the payload staged in w.scratch.
func (w *Writer) writeFrame(t FrameType) error {
	if len(w.scratch) > MaxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds cap %d", len(w.scratch), MaxFramePayload)
	}
	var env [envelopeLen]byte
	env[0] = byte(t)
	binary.LittleEndian.PutUint32(env[1:], uint32(len(w.scratch)))
	binary.LittleEndian.PutUint32(env[5:], crc32.ChecksumIEEE(w.scratch))
	if _, err := w.w.Write(env[:]); err != nil {
		return err
	}
	_, err := w.w.Write(w.scratch)
	return err
}

func appendName(b []byte, kind, name string) ([]byte, error) {
	if len(name) > MaxNameLen {
		return b, fmt.Errorf("wire: %s %q longer than %d bytes", kind, name, MaxNameLen)
	}
	b = append(b, byte(len(name)))
	return append(b, name...), nil
}

// WriteData frames d. ClientID must be non-empty; an empty Tenant means
// the default tenant.
func (w *Writer) WriteData(d *Data) error {
	if d.ClientID == "" {
		return fmt.Errorf("wire: data frame needs a clientID")
	}
	b := w.scratch[:0]
	b = binary.LittleEndian.AppendUint64(b, d.Seq)
	var err error
	if b, err = appendName(b, "clientID", d.ClientID); err != nil {
		return err
	}
	if b, err = appendName(b, "tenant", d.Tenant); err != nil {
		return err
	}
	b = binary.AppendUvarint(b, uint64(len(d.Groups)))
	for i := range d.Groups {
		g := &d.Groups[i]
		if g.Name == "" {
			return fmt.Errorf("wire: group %d has an empty stream name", i)
		}
		if b, err = appendName(b, "stream", g.Name); err != nil {
			return err
		}
		b = binary.AppendUvarint(b, uint64(len(g.Updates)))
		for _, u := range g.Updates {
			b = binary.AppendUvarint(b, u.Value)
			b = binary.AppendVarint(b, u.Weight)
		}
	}
	w.scratch = b
	return w.writeFrame(FrameData)
}

// WriteAck frames a.
func (w *Writer) WriteAck(a Ack) error {
	b := w.scratch[:0]
	b = binary.LittleEndian.AppendUint64(b, a.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Applied))
	var flags byte
	if a.Duplicate {
		flags |= 1
	}
	w.scratch = append(b, flags)
	return w.writeFrame(FrameAck)
}

// WriteReject frames r.
func (w *Writer) WriteReject(r Reject) error {
	b := w.scratch[:0]
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	w.scratch = binary.LittleEndian.AppendUint32(b, r.RetryAfter)
	return w.writeFrame(FrameReject)
}

// WriteError frames e, truncating the message to MaxNameLen bytes.
func (w *Writer) WriteError(e ErrorFrame) error {
	msg := e.Msg
	if len(msg) > MaxNameLen {
		msg = msg[:MaxNameLen]
	}
	b := w.scratch[:0]
	b = binary.LittleEndian.AppendUint64(b, e.Seq)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
	w.scratch = append(b, msg...)
	return w.writeFrame(FrameError)
}

// Reader de-frames SKSP messages from r. The payload returned by Next
// is valid only until the following Next call. Not safe for concurrent
// use.
type Reader struct {
	r       *bufio.Reader
	payload []byte
}

// NewReader returns a Reader de-framing from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadHeader consumes and validates the 8-byte connection header.
func (r *Reader) ReadHeader() error {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return err
	}
	if string(hdr[:4]) != Magic {
		return fmt.Errorf("wire: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return fmt.Errorf("wire: unsupported version %d (want %d)", v, Version)
	}
	return nil
}

// Next reads one frame and returns its type and CRC-verified payload.
// io.EOF is returned bare at a clean frame boundary; every other
// failure (truncation, oversized declaration, bad CRC, unknown type)
// is a wrapped error.
func (r *Reader) Next() (FrameType, []byte, error) {
	var env [envelopeLen]byte
	if _, err := io.ReadFull(r.r, env[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: truncated frame envelope: %w", err)
	}
	t := FrameType(env[0])
	if t < FrameData || t > FrameError {
		return 0, nil, fmt.Errorf("wire: unknown frame type %d", env[0])
	}
	n := binary.LittleEndian.Uint32(env[1:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("wire: declared payload %d exceeds cap %d", n, MaxFramePayload)
	}
	if cap(r.payload) < int(n) {
		r.payload = make([]byte, n)
	}
	r.payload = r.payload[:n]
	if _, err := io.ReadFull(r.r, r.payload); err != nil {
		return 0, nil, fmt.Errorf("wire: truncated payload (%d declared): %w", n, err)
	}
	if got, want := crc32.ChecksumIEEE(r.payload), binary.LittleEndian.Uint32(env[5:]); got != want {
		return 0, nil, fmt.Errorf("wire: payload CRC %08x, declared %08x", got, want)
	}
	return t, r.payload, nil
}

// cursor is a bounds-checked little-endian payload reader.
type cursor struct {
	b []byte
}

func (c *cursor) u64() (uint64, error) {
	if len(c.b) < 8 {
		return 0, fmt.Errorf("wire: truncated u64")
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if len(c.b) < 4 {
		return 0, fmt.Errorf("wire: truncated u32")
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if len(c.b) < 2 {
		return 0, fmt.Errorf("wire: truncated u16")
	}
	v := binary.LittleEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v, nil
}

func (c *cursor) u8() (byte, error) {
	if len(c.b) < 1 {
		return 0, fmt.Errorf("wire: truncated u8")
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint")
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint")
	}
	c.b = c.b[n:]
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if len(c.b) < n {
		return nil, fmt.Errorf("wire: %d bytes declared, %d remain", n, len(c.b))
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v, nil
}

// intern returns b as a string, reusing a previously-built string for
// the same bytes so a steady-state decode loop does not allocate one
// string per frame for the (few, recurring) client/tenant/stream names.
func (d *Data) intern(b []byte) string {
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	if d.names == nil || len(d.names) >= 4096 {
		d.names = make(map[string]string)
	}
	s := string(b)
	d.names[s] = s
	return s
}

// DecodeData decodes a DATA payload into d, reusing d's buffers.
// The minimum wire sizes of the variable-count sections (2 bytes per
// update, 3 per group) bound the declared counts against the remaining
// payload before anything is allocated or appended.
func DecodeData(payload []byte, d *Data) error {
	c := cursor{payload}
	var err error
	if d.Seq, err = c.u64(); err != nil {
		return err
	}
	n, err := c.u8()
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("wire: empty clientID")
	}
	id, err := c.bytes(int(n))
	if err != nil {
		return err
	}
	d.ClientID = d.intern(id)
	if n, err = c.u8(); err != nil {
		return err
	}
	tb, err := c.bytes(int(n))
	if err != nil {
		return err
	}
	d.Tenant = d.intern(tb)
	groups, err := c.uvarint()
	if err != nil {
		return err
	}
	if groups > uint64(len(c.b))/3+1 {
		return fmt.Errorf("wire: %d groups declared in %d remaining bytes", groups, len(c.b))
	}
	d.Groups = d.Groups[:0]
	d.buf = d.buf[:0]
	// Updates are appended to the shared buffer, which may move as it
	// grows — record [start,end) offsets and slice at the end.
	type span struct {
		name       string
		start, end int
	}
	var stackSpans [8]span
	spans := stackSpans[:0]
	for gi := uint64(0); gi < groups; gi++ {
		if n, err = c.u8(); err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("wire: group %d has an empty stream name", gi)
		}
		nameB, err := c.bytes(int(n))
		if err != nil {
			return err
		}
		count, err := c.uvarint()
		if err != nil {
			return err
		}
		if count > uint64(len(c.b))/2+1 {
			return fmt.Errorf("wire: %d updates declared in %d remaining bytes", count, len(c.b))
		}
		start := len(d.buf)
		for ui := uint64(0); ui < count; ui++ {
			v, err := c.uvarint()
			if err != nil {
				return err
			}
			w, err := c.varint()
			if err != nil {
				return err
			}
			d.buf = append(d.buf, stream.Update{Value: v, Weight: w})
		}
		spans = append(spans, span{d.intern(nameB), start, len(d.buf)})
	}
	if len(c.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after data payload", len(c.b))
	}
	for _, s := range spans {
		d.Groups = append(d.Groups, stream.Group{Name: s.name, Updates: d.buf[s.start:s.end]})
	}
	return nil
}

// DecodeAck decodes an ACK payload.
func DecodeAck(payload []byte) (Ack, error) {
	c := cursor{payload}
	var a Ack
	var err error
	if a.Seq, err = c.u64(); err != nil {
		return a, err
	}
	applied, err := c.u64()
	if err != nil {
		return a, err
	}
	a.Applied = int64(applied)
	flags, err := c.u8()
	if err != nil {
		return a, err
	}
	a.Duplicate = flags&1 != 0
	if len(c.b) != 0 {
		return a, fmt.Errorf("wire: %d trailing bytes after ack payload", len(c.b))
	}
	return a, nil
}

// DecodeReject decodes a REJECT payload.
func DecodeReject(payload []byte) (Reject, error) {
	c := cursor{payload}
	var r Reject
	var err error
	if r.Seq, err = c.u64(); err != nil {
		return r, err
	}
	if r.RetryAfter, err = c.u32(); err != nil {
		return r, err
	}
	if len(c.b) != 0 {
		return r, fmt.Errorf("wire: %d trailing bytes after reject payload", len(c.b))
	}
	return r, nil
}

// DecodeError decodes an ERROR payload.
func DecodeError(payload []byte) (ErrorFrame, error) {
	c := cursor{payload}
	var e ErrorFrame
	var err error
	if e.Seq, err = c.u64(); err != nil {
		return e, err
	}
	n, err := c.u16()
	if err != nil {
		return e, err
	}
	msg, err := c.bytes(int(n))
	if err != nil {
		return e, err
	}
	e.Msg = string(msg)
	if len(c.b) != 0 {
		return e, fmt.Errorf("wire: %d trailing bytes after error payload", len(c.b))
	}
	return e, nil
}
