package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"skimsketch/internal/stream"
)

func testData(seq uint64) *Data {
	return &Data{
		ClientID: "c1",
		Seq:      seq,
		Tenant:   "acme",
		Groups: []stream.Group{
			{Name: "F", Updates: []stream.Update{{Value: 7, Weight: 1}, {Value: 1 << 40, Weight: -3}}},
			{Name: "G", Updates: []stream.Update{{Value: 0, Weight: 1}}},
		},
	}
}

func encodeFrames(t *testing.T, fn func(w *Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := fn(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHeaderRoundTrip(t *testing.T) {
	raw := encodeFrames(t, func(w *Writer) error { return w.WriteHeader() })
	if err := NewReader(bytes.NewReader(raw)).ReadHeader(); err != nil {
		t.Fatal(err)
	}
	// Wrong magic and wrong version are both refused.
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if err := NewReader(bytes.NewReader(bad)).ReadHeader(); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte{}, raw...)
	bad[4] = 99
	if err := NewReader(bytes.NewReader(bad)).ReadHeader(); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestDataRoundTrip(t *testing.T) {
	want := testData(42)
	raw := encodeFrames(t, func(w *Writer) error { return w.WriteData(want) })
	r := NewReader(bytes.NewReader(raw))
	ft, payload, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameData {
		t.Fatalf("frame type %d, want DATA", ft)
	}
	var got Data
	if err := DecodeData(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.ClientID != want.ClientID || got.Seq != want.Seq || got.Tenant != want.Tenant {
		t.Fatalf("identity mismatch: %+v", got)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%d groups, want %d", len(got.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		if got.Groups[i].Name != want.Groups[i].Name {
			t.Fatalf("group %d name %q, want %q", i, got.Groups[i].Name, want.Groups[i].Name)
		}
		if len(got.Groups[i].Updates) != len(want.Groups[i].Updates) {
			t.Fatalf("group %d has %d updates", i, len(got.Groups[i].Updates))
		}
		for j, u := range want.Groups[i].Updates {
			if got.Groups[i].Updates[j] != u {
				t.Fatalf("group %d update %d = %+v, want %+v", i, j, got.Groups[i].Updates[j], u)
			}
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestDataDecodeReusesBuffers pins the zero-steady-state-allocation
// property: decoding into the same Data twice keeps the same backing
// array once capacity has been established.
func TestDataDecodeReusesBuffers(t *testing.T) {
	d1 := testData(1)
	raw := encodeFrames(t, func(w *Writer) error { return w.WriteData(d1) })
	r := NewReader(bytes.NewReader(raw))
	_, payload, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	var dst Data
	if err := DecodeData(payload, &dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeData(payload, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state DecodeData allocates %.1f times per frame, want 0", allocs)
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	raw := encodeFrames(t, func(w *Writer) error {
		if err := w.WriteAck(Ack{Seq: 9, Applied: 128, Duplicate: true}); err != nil {
			return err
		}
		if err := w.WriteReject(Reject{Seq: 10, RetryAfter: 3}); err != nil {
			return err
		}
		return w.WriteError(ErrorFrame{Seq: 11, Msg: "unknown stream \"nope\""})
	})
	r := NewReader(bytes.NewReader(raw))

	ft, p, err := r.Next()
	if err != nil || ft != FrameAck {
		t.Fatalf("frame 1: type %d err %v", ft, err)
	}
	a, err := DecodeAck(p)
	if err != nil || a != (Ack{Seq: 9, Applied: 128, Duplicate: true}) {
		t.Fatalf("ack %+v err %v", a, err)
	}

	ft, p, err = r.Next()
	if err != nil || ft != FrameReject {
		t.Fatalf("frame 2: type %d err %v", ft, err)
	}
	rej, err := DecodeReject(p)
	if err != nil || rej != (Reject{Seq: 10, RetryAfter: 3}) {
		t.Fatalf("reject %+v err %v", rej, err)
	}

	ft, p, err = r.Next()
	if err != nil || ft != FrameError {
		t.Fatalf("frame 3: type %d err %v", ft, err)
	}
	ef, err := DecodeError(p)
	if err != nil || ef.Seq != 11 || !strings.Contains(ef.Msg, "unknown stream") {
		t.Fatalf("error frame %+v err %v", ef, err)
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	raw := encodeFrames(t, func(w *Writer) error { return w.WriteData(testData(5)) })

	// Flip one payload byte: the CRC must catch it.
	flipped := append([]byte{}, raw...)
	flipped[len(flipped)-1] ^= 0x40
	if _, _, err := NewReader(bytes.NewReader(flipped)).Next(); err == nil {
		t.Fatal("corrupted payload passed CRC")
	}

	// Truncate mid-payload.
	if _, _, err := NewReader(bytes.NewReader(raw[:len(raw)-3])).Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated payload: %v, want a non-EOF error", err)
	}

	// Truncate mid-envelope.
	if _, _, err := NewReader(bytes.NewReader(raw[:4])).Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated envelope: %v, want a non-EOF error", err)
	}

	// Unknown frame type.
	bad := append([]byte{}, raw...)
	bad[0] = 200
	if _, _, err := NewReader(bytes.NewReader(bad)).Next(); err == nil {
		t.Fatal("unknown frame type accepted")
	}

	// A declared length beyond the cap is refused before any read.
	var env [9]byte
	env[0] = byte(FrameData)
	binary.LittleEndian.PutUint32(env[1:], MaxFramePayload+1)
	if _, _, err := NewReader(bytes.NewReader(env[:])).Next(); err == nil {
		t.Fatal("oversized declaration accepted")
	}
}

func TestDecodeDataRejectsLyingCounts(t *testing.T) {
	// Hand-build payloads whose declared counts exceed what the remaining
	// bytes could possibly hold; the decoder must refuse BEFORE growing
	// its buffers (the error text proves which check fired).
	base := func() []byte {
		b := binary.LittleEndian.AppendUint64(nil, 1) // seq
		b = append(b, 1, 'c')                         // clientID
		b = append(b, 0)                              // default tenant
		return b
	}

	huge := binary.AppendUvarint(base(), 1<<40) // group count
	if err := DecodeData(huge, &Data{}); err == nil || !strings.Contains(err.Error(), "groups declared") {
		t.Fatalf("lying group count: %v", err)
	}

	b := binary.AppendUvarint(base(), 1) // one group
	b = append(b, 1, 'F')
	b = binary.AppendUvarint(b, 1<<40) // update count
	if err := DecodeData(b, &Data{}); err == nil || !strings.Contains(err.Error(), "updates declared") {
		t.Fatalf("lying update count: %v", err)
	}

	// Empty clientID and empty stream names are refused.
	b = binary.LittleEndian.AppendUint64(nil, 1)
	b = append(b, 0)
	if err := DecodeData(b, &Data{}); err == nil {
		t.Fatal("empty clientID accepted")
	}

	// Trailing garbage after a valid payload is refused.
	d := testData(3)
	raw := encodeFrames(t, func(w *Writer) error { return w.WriteData(d) })
	payload := raw[9:]
	if err := DecodeData(append(append([]byte{}, payload...), 0xFF), &Data{}); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestWindowDedupe(t *testing.T) {
	w := NewWindow(4, 2)
	if _, ok := w.Lookup("a", 1); ok {
		t.Fatal("empty window claims a hit")
	}
	w.Record("a", 1, Outcome{Applied: 10})
	out, ok := w.Lookup("a", 1)
	if !ok || out.Applied != 10 {
		t.Fatalf("lookup after record: %+v %v", out, ok)
	}
	if _, ok := w.Lookup("b", 1); ok {
		t.Fatal("client b sees client a's seq")
	}

	// Per-client FIFO: recording 4 more seqs evicts seq 1.
	for s := uint64(2); s <= 5; s++ {
		w.Record("a", s, Outcome{Applied: int64(s)})
	}
	if _, ok := w.Lookup("a", 1); ok {
		t.Fatal("seq 1 survived a full ring of newer seqs")
	}
	if out, ok := w.Lookup("a", 5); !ok || out.Applied != 5 {
		t.Fatal("newest seq missing")
	}

	// Re-recording an in-window seq refreshes without consuming a slot.
	w.Record("a", 5, Outcome{Applied: 55})
	if out, _ := w.Lookup("a", 5); out.Applied != 55 {
		t.Fatal("refresh did not take")
	}
	if _, ok := w.Lookup("a", 2); !ok {
		t.Fatal("refresh evicted an unrelated seq")
	}

	// Client LRU: with capacity 2, touching a then adding c evicts b.
	w.Record("b", 1, Outcome{})
	w.Lookup("a", 5)
	w.Record("c", 1, Outcome{})
	if w.Clients() != 2 {
		t.Fatalf("%d clients tracked, want 2", w.Clients())
	}
	if _, ok := w.Lookup("b", 1); ok {
		t.Fatal("LRU client b survived")
	}
	if _, ok := w.Lookup("a", 5); !ok {
		t.Fatal("recently-used client a evicted")
	}
}
