package wire

import "sync"

// Outcome is what the dedupe window remembers about an applied frame:
// enough to answer a replay without re-applying it.
type Outcome struct {
	// Applied is the element count acknowledged the first time.
	Applied int64
}

// Window is the bounded (clientID, seq) dedupe memory shared by the
// SKSP listener and the HTTP Idempotency-Key path. Only SUCCESSFUL
// outcomes are recorded: a rejected frame (quota 429) applied nothing,
// so the same seq must be retryable and is deliberately not remembered.
//
// Per client the window keeps the last perClient recorded seqs (FIFO);
// across clients it keeps at most maxClients entries, evicting the
// least-recently-used client. A replay falling outside the window is
// indistinguishable from a fresh frame and will re-apply — the client
// contract is therefore to retry promptly and sequentially (at most
// perClient outstanding frames), which every client in this repository
// observes.
type Window struct {
	mu         sync.Mutex
	perClient  int
	maxClients int
	clock      int64
	clients    map[string]*clientWindow
}

type clientWindow struct {
	seen    map[uint64]Outcome
	ring    []uint64 // recorded seqs in FIFO order
	n       int      // filled slots
	next    int      // ring cursor
	lastUse int64
}

// NewWindow returns a Window remembering the last perClient seqs for up
// to maxClients clients (defaults 4096 and 1024 for values ≤ 0).
func NewWindow(perClient, maxClients int) *Window {
	if perClient <= 0 {
		perClient = 4096
	}
	if maxClients <= 0 {
		maxClients = 1024
	}
	return &Window{
		perClient:  perClient,
		maxClients: maxClients,
		clients:    make(map[string]*clientWindow),
	}
}

// Lookup reports whether (client, seq) was recorded within the window,
// and the remembered outcome if so.
func (w *Window) Lookup(client string, seq uint64) (Outcome, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cw, ok := w.clients[client]
	if !ok {
		return Outcome{}, false
	}
	w.clock++
	cw.lastUse = w.clock
	out, ok := cw.seen[seq]
	return out, ok
}

// Record remembers (client, seq) → out, evicting the client's oldest
// recorded seq beyond the per-client bound and the least-recently-used
// client beyond the client bound.
func (w *Window) Record(client string, seq uint64, out Outcome) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.clock++
	cw, ok := w.clients[client]
	if !ok {
		if len(w.clients) >= w.maxClients {
			w.evictLRULocked()
		}
		cw = &clientWindow{
			seen: make(map[uint64]Outcome),
			ring: make([]uint64, w.perClient),
		}
		w.clients[client] = cw
	}
	cw.lastUse = w.clock
	if _, dup := cw.seen[seq]; dup {
		cw.seen[seq] = out // refresh in place; ring position unchanged
		return
	}
	if cw.n == len(cw.ring) {
		delete(cw.seen, cw.ring[cw.next])
	} else {
		cw.n++
	}
	cw.ring[cw.next] = seq
	cw.next = (cw.next + 1) % len(cw.ring)
	cw.seen[seq] = out
}

// evictLRULocked drops the least-recently-used client. Called with
// w.mu held, only when the client bound is hit, so the linear scan is
// amortized against an entire client lifetime.
func (w *Window) evictLRULocked() {
	var victim string
	var min int64
	first := true
	for name, cw := range w.clients {
		if first || cw.lastUse < min {
			victim, min, first = name, cw.lastUse, false
		}
	}
	if !first {
		delete(w.clients, victim)
	}
}

// Clients reports the number of tracked clients (for stats).
func (w *Window) Clients() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.clients)
}
