package wire

import (
	"bytes"
	"io"
	"testing"

	"skimsketch/internal/stream"
)

// frameBytes encodes frames via fn and returns the raw bytes (no
// connection header), for seeding corpora.
func frameBytes(f *testing.F, fn func(w *Writer) error) []byte {
	f.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := fn(w); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func seedCorpus(f *testing.F) {
	d := &Data{
		ClientID: "fuzz",
		Seq:      7,
		Tenant:   "t",
		Groups: []stream.Group{
			{Name: "F", Updates: []stream.Update{{Value: 3, Weight: 1}, {Value: 1 << 50, Weight: -9}}},
			{Name: "G", Updates: nil},
		},
	}
	f.Add(frameBytes(f, func(w *Writer) error { return w.WriteData(d) }))
	f.Add(frameBytes(f, func(w *Writer) error { return w.WriteAck(Ack{Seq: 1, Applied: 10}) }))
	f.Add(frameBytes(f, func(w *Writer) error { return w.WriteReject(Reject{Seq: 2, RetryAfter: 1}) }))
	f.Add(frameBytes(f, func(w *Writer) error { return w.WriteError(ErrorFrame{Seq: 3, Msg: "boom"}) }))
	f.Add(frameBytes(f, func(w *Writer) error {
		if err := w.WriteData(d); err != nil {
			return err
		}
		return w.WriteAck(Ack{Seq: 7, Applied: 2})
	}))
	f.Add([]byte{})
	f.Add([]byte("SKSPgarbage that is not a frame"))
	f.Add([]byte{1, 255, 255, 255, 255, 0, 0, 0, 0}) // huge declared length
}

// FuzzFrameRoundTrip drives the full de-framing + decode + re-encode
// loop over arbitrary byte streams: whatever the Reader and the payload
// decoders accept must survive a re-encode/re-decode round trip
// unchanged; everything else must fail with an error — never a panic,
// never an over-allocation driven by a lying length.
func FuzzFrameRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := NewReader(bytes.NewReader(raw))
		var d Data
		for i := 0; i < 64; i++ {
			ft, payload, err := r.Next()
			if err != nil {
				return // garbage and truncation end the stream; fine
			}
			switch ft {
			case FrameData:
				if err := DecodeData(payload, &d); err != nil {
					return
				}
				// Round trip: re-encode the decoded frame and decode it
				// again; the result must be identical.
				var buf bytes.Buffer
				w := NewWriter(&buf)
				if err := w.WriteData(&d); err != nil {
					t.Fatalf("re-encode of accepted frame failed: %v", err)
				}
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				ft2, p2, err := NewReader(bytes.NewReader(buf.Bytes())).Next()
				if err != nil || ft2 != FrameData {
					t.Fatalf("re-decode: type %d err %v", ft2, err)
				}
				var d2 Data
				if err := DecodeData(p2, &d2); err != nil {
					t.Fatalf("re-decode of own output failed: %v", err)
				}
				if d2.ClientID != d.ClientID || d2.Seq != d.Seq || d2.Tenant != d.Tenant || len(d2.Groups) != len(d.Groups) {
					t.Fatalf("round trip changed identity: %+v vs %+v", d2, d)
				}
				for gi := range d.Groups {
					if d2.Groups[gi].Name != d.Groups[gi].Name || len(d2.Groups[gi].Updates) != len(d.Groups[gi].Updates) {
						t.Fatalf("round trip changed group %d", gi)
					}
					for ui := range d.Groups[gi].Updates {
						if d2.Groups[gi].Updates[ui] != d.Groups[gi].Updates[ui] {
							t.Fatalf("round trip changed group %d update %d", gi, ui)
						}
					}
				}
			case FrameAck:
				if a, err := DecodeAck(payload); err == nil {
					var buf bytes.Buffer
					w := NewWriter(&buf)
					if w.WriteAck(a) != nil || w.Flush() != nil {
						t.Fatal("re-encode ack failed")
					}
					_, p2, err := NewReader(bytes.NewReader(buf.Bytes())).Next()
					if err != nil {
						t.Fatal(err)
					}
					if a2, err := DecodeAck(p2); err != nil || a2 != a {
						t.Fatalf("ack round trip: %+v vs %+v (%v)", a2, a, err)
					}
				}
			case FrameReject:
				if rej, err := DecodeReject(payload); err == nil && rej.Seq == 0 && rej.RetryAfter == 0 {
					_ = rej // decoded fine; nothing more to check
				}
			case FrameError:
				_, _ = DecodeError(payload)
			}
		}
	})
}

// FuzzFrameDecode hammers the payload decoders directly with garbage
// and truncations of every prefix length: they must never panic and
// never accept a payload with trailing bytes.
func FuzzFrameDecode(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		for cut := 0; cut <= len(raw) && cut <= 64; cut++ {
			p := raw[:len(raw)-cut]
			var d Data
			if err := DecodeData(p, &d); err == nil {
				// An accepted data payload must account for every byte:
				// total updates are bounded by the payload size.
				n := 0
				for _, g := range d.Groups {
					n += len(g.Updates)
				}
				if n > len(p) {
					t.Fatalf("decoded %d updates from %d bytes", n, len(p))
				}
			}
			_, _ = DecodeAck(p)
			_, _ = DecodeReject(p)
			_, _ = DecodeError(p)
		}
		// And the reader itself over the raw stream.
		r := NewReader(bytes.NewReader(raw))
		for {
			_, _, err := r.Next()
			if err != nil {
				if err == io.EOF && len(raw) == 0 {
					// clean boundary
				}
				break
			}
		}
	})
}
