package experiments

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// AblationConfig parameterizes the skim on/off ablation: identical hash
// sketches, identical space, with the only difference being whether dense
// frequencies are skimmed before the bucket-product estimate. This
// isolates the paper's design contribution from the hash-structure
// speedup.
type AblationConfig struct {
	Domain     uint64
	StreamLen  int
	Shift      uint64
	Zipfs      []float64 // skews to sweep
	SpaceWords []int
	Seeds      int
	Tables     int
}

// DefaultAblation sweeps skew at a fixed space grid.
func DefaultAblation() AblationConfig {
	return AblationConfig{
		Domain:     1 << 14,
		StreamLen:  200000,
		Shift:      50,
		Zipfs:      []float64{0.8, 1.0, 1.2, 1.5},
		SpaceWords: []int{1280, 2560, 5120},
		Seeds:      3,
		Tables:     7,
	}
}

// RunAblation produces, per skew, a skim-on and a skim-off series.
func RunAblation(cfg AblationConfig) (Result, error) {
	if cfg.Domain == 0 || cfg.StreamLen <= 0 || cfg.Seeds <= 0 || cfg.Tables <= 0 {
		return Result{}, fmt.Errorf("experiments: ablation config must be positive")
	}
	acc := newSeriesAccumulator()
	var errOnce errCapture

	type trial struct {
		z    float64
		seed int
	}
	var trials []trial
	for _, z := range cfg.Zipfs {
		for s := 0; s < cfg.Seeds; s++ {
			trials = append(trials, trial{z: z, seed: s})
		}
	}

	parallelFor(len(trials), func(i int) {
		tr := trials[i]
		base := int64(tr.seed)*1000 + int64(tr.z*100)
		zf, err := workload.NewZipf(cfg.Domain, tr.z, base+1)
		if err != nil {
			errOnce.set(err)
			return
		}
		zg, err := workload.NewZipf(cfg.Domain, tr.z, base+2)
		if err != nil {
			errOnce.set(err)
			return
		}
		fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
		for j := 0; j < cfg.StreamLen; j++ {
			fv.Update(zf.Next(), 1)
		}
		sg := workload.NewShifted(zg, cfg.Shift)
		for j := 0; j < cfg.StreamLen; j++ {
			gv.Update(sg.Next(), 1)
		}
		exact := float64(fv.InnerProduct(gv))

		for _, space := range cfg.SpaceWords {
			c := core.Config{Tables: cfg.Tables, Buckets: space / cfg.Tables, Seed: uint64(tr.seed)*77 + uint64(space)}
			fs := core.MustNewHashSketch(c)
			gs := core.MustNewHashSketch(c)
			chargeHash(fs, fv)
			chargeHash(gs, gv)

			on, err := core.EstimateJoin(fs, gs, cfg.Domain, nil)
			if err != nil {
				errOnce.set(err)
				return
			}
			off, err := core.EstimateJoin(fs, gs, cfg.Domain, &core.Options{NoSkim: true})
			if err != nil {
				errOnce.set(err)
				return
			}
			acc.add(fmt.Sprintf("Skim z=%.1f", tr.z), space, float64(on.Total), exact)
			acc.add(fmt.Sprintf("NoSkim z=%.1f", tr.z), space, float64(off.Total), exact)
		}
	})
	if err := errOnce.get(); err != nil {
		return Result{}, err
	}

	return Result{
		Name: "Ablation: hash sketch with and without skimming",
		Notes: fmt.Sprintf("domain=%d streamLen=%d shift=%d seeds=%d tables=%d",
			cfg.Domain, cfg.StreamLen, cfg.Shift, cfg.Seeds, cfg.Tables),
		Series: acc.series(),
	}, nil
}
