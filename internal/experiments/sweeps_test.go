package experiments

import "testing"

func TestRunSkewSweepValidation(t *testing.T) {
	if _, err := RunSkewSweep(SkewSweepConfig{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRunSkewSweep(t *testing.T) {
	cfg := SkewSweepConfig{
		Domain:     1 << 10,
		StreamLen:  20000,
		Shift:      20,
		Zipfs:      []float64{0.8, 1.4},
		SpaceWords: 640,
		Seeds:      2,
		AGMSRows:   5,
		SkimTables: 5,
	}
	res, err := RunSkewSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	var agms, skim *Series
	for i := range res.Series {
		switch res.Series[i].Label {
		case "BasicAGMS":
			agms = &res.Series[i]
		case "Skimmed":
			skim = &res.Series[i]
		}
	}
	if agms == nil || skim == nil {
		t.Fatalf("missing series: %+v", res.Series)
	}
	if len(agms.Points) != 2 || len(skim.Points) != 2 {
		t.Fatalf("wrong point counts: %d / %d", len(agms.Points), len(skim.Points))
	}
	// X encoding: 100·z, sorted.
	if agms.Points[0].SpaceWords != 80 || agms.Points[1].SpaceWords != 140 {
		t.Fatalf("x-axis encoding wrong: %+v", agms.Points)
	}
	// At high skew the skimmed estimator must beat AGMS.
	if skim.Points[1].Err >= agms.Points[1].Err {
		t.Fatalf("at z=1.4 skimmed (%.4f) must beat AGMS (%.4f)",
			skim.Points[1].Err, agms.Points[1].Err)
	}
}

func TestRunThresholdSweepValidation(t *testing.T) {
	if _, err := RunThresholdSweep(ThresholdSweepConfig{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRunThresholdSweep(t *testing.T) {
	cfg := ThresholdSweepConfig{
		Domain:      1 << 10,
		StreamLen:   30000,
		Zipf:        1.3,
		Shift:       20,
		SpaceWords:  640,
		Tables:      5,
		Multipliers: []float64{0.5, 1, 16},
		Seeds:       2,
	}
	res, err := RunThresholdSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("got %d series", len(res.Series))
	}
	pts := res.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].SpaceWords != 50 || pts[1].SpaceWords != 100 || pts[2].SpaceWords != 1600 {
		t.Fatalf("x-axis encoding wrong: %+v", pts)
	}
	// A 16x threshold skims nothing dense, so it should not beat the
	// default by much; mostly we assert all errors are finite and sane.
	for _, p := range pts {
		if p.Err < 0 || p.Err > 10 {
			t.Fatalf("error %v out of range", p.Err)
		}
	}
}
