package experiments

import (
	"fmt"

	"skimsketch/internal/agms"
	"skimsketch/internal/core"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// SkewSweepConfig parameterizes the skew sweep: error of both methods as
// the Zipf parameter grows at fixed space, quantifying the paper's
// "improvement ranging from a factor of five to several orders of
// magnitude" as a single curve.
type SkewSweepConfig struct {
	Domain     uint64
	StreamLen  int
	Shift      uint64
	Zipfs      []float64
	SpaceWords int
	Seeds      int
	AGMSRows   int
	SkimTables int
}

// DefaultSkewSweep sweeps z from 0.6 to 1.6 at 5120 words.
func DefaultSkewSweep() SkewSweepConfig {
	return SkewSweepConfig{
		Domain:     1 << 14,
		StreamLen:  250000,
		Shift:      50,
		Zipfs:      []float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6},
		SpaceWords: 5120,
		Seeds:      3,
		AGMSRows:   11,
		SkimTables: 7,
	}
}

// RunSkewSweep produces one AGMS and one skimmed series of mean error
// versus skew. The Point.SpaceWords field carries 100·z so the generic
// table writer can render the sweep (the label records the encoding).
func RunSkewSweep(cfg SkewSweepConfig) (Result, error) {
	if cfg.Domain == 0 || cfg.StreamLen <= 0 || cfg.Seeds <= 0 || len(cfg.Zipfs) == 0 {
		return Result{}, fmt.Errorf("experiments: skew sweep config must be positive and non-empty")
	}
	acc := newSeriesAccumulator()
	var errOnce errCapture

	type trial struct {
		z    float64
		seed int
	}
	var trials []trial
	for _, z := range cfg.Zipfs {
		for s := 0; s < cfg.Seeds; s++ {
			trials = append(trials, trial{z: z, seed: s})
		}
	}
	parallelFor(len(trials), func(i int) {
		tr := trials[i]
		fv, gv, err := shiftedZipfPair(cfg.Domain, tr.z, cfg.Shift, cfg.StreamLen, int64(tr.seed))
		if err != nil {
			errOnce.set(err)
			return
		}
		exact := float64(fv.InnerProduct(gv))
		key := int(tr.z * 100) // sweep axis rendered through SpaceWords
		sketchSeed := uint64(tr.seed)*31 + uint64(key)

		af := agms.MustNew(cfg.SpaceWords/cfg.AGMSRows, cfg.AGMSRows, sketchSeed)
		ag := agms.MustNew(cfg.SpaceWords/cfg.AGMSRows, cfg.AGMSRows, sketchSeed)
		chargeAGMS(af, fv)
		chargeAGMS(ag, gv)
		a, err := agms.JoinEstimate(af, ag)
		if err != nil {
			errOnce.set(err)
			return
		}
		acc.add("BasicAGMS", key, float64(a), exact)

		c := core.Config{Tables: cfg.SkimTables, Buckets: cfg.SpaceWords / cfg.SkimTables, Seed: sketchSeed}
		hf := core.MustNewHashSketch(c)
		hg := core.MustNewHashSketch(c)
		chargeHash(hf, fv)
		chargeHash(hg, gv)
		e, err := core.EstimateJoin(hf, hg, cfg.Domain, nil)
		if err != nil {
			errOnce.set(err)
			return
		}
		acc.add("Skimmed", key, float64(e.Total), exact)
	})
	if err := errOnce.get(); err != nil {
		return Result{}, err
	}
	return Result{
		Name: "Skew sweep: error vs Zipf parameter at fixed space",
		Notes: fmt.Sprintf("x-axis column is 100*z; space=%d words, shift=%d, streamLen=%d, seeds=%d",
			cfg.SpaceWords, cfg.Shift, cfg.StreamLen, cfg.Seeds),
		Series: acc.series(),
	}, nil
}

// ThresholdSweepConfig parameterizes the skim-threshold sensitivity
// ablation: the estimator with T = multiplier · (n/√b) for a range of
// multipliers, testing the Θ(n/√b) choice of Sections 3–4.
type ThresholdSweepConfig struct {
	Domain      uint64
	StreamLen   int
	Zipf        float64
	Shift       uint64
	SpaceWords  int
	Tables      int
	Multipliers []float64 // scale factors on the default threshold
	Seeds       int
}

// DefaultThresholdSweep sweeps multipliers 0.25x–8x around the default.
func DefaultThresholdSweep() ThresholdSweepConfig {
	return ThresholdSweepConfig{
		Domain:      1 << 14,
		StreamLen:   250000,
		Zipf:        1.2,
		Shift:       50,
		SpaceWords:  2560,
		Tables:      7,
		Multipliers: []float64{0.25, 0.5, 1, 2, 4, 8},
		Seeds:       3,
	}
}

// RunThresholdSweep produces one series whose x-axis (SpaceWords column)
// carries 100·multiplier.
func RunThresholdSweep(cfg ThresholdSweepConfig) (Result, error) {
	if cfg.Domain == 0 || cfg.StreamLen <= 0 || cfg.Seeds <= 0 || len(cfg.Multipliers) == 0 {
		return Result{}, fmt.Errorf("experiments: threshold sweep config must be positive and non-empty")
	}
	acc := newSeriesAccumulator()
	var errOnce errCapture

	parallelFor(cfg.Seeds, func(seed int) {
		fv, gv, err := shiftedZipfPair(cfg.Domain, cfg.Zipf, cfg.Shift, cfg.StreamLen, int64(seed))
		if err != nil {
			errOnce.set(err)
			return
		}
		exact := float64(fv.InnerProduct(gv))
		c := core.Config{Tables: cfg.Tables, Buckets: cfg.SpaceWords / cfg.Tables, Seed: uint64(seed) + 71}
		hf := core.MustNewHashSketch(c)
		hg := core.MustNewHashSketch(c)
		chargeHash(hf, fv)
		chargeHash(hg, gv)
		base := hf.DefaultSkimThreshold()
		for _, mul := range cfg.Multipliers {
			thr := int64(float64(base) * mul)
			if thr < 1 {
				thr = 1
			}
			est, err := core.EstimateJoin(hf, hg, cfg.Domain, &core.Options{ThresholdF: thr, ThresholdG: thr})
			if err != nil {
				errOnce.set(err)
				return
			}
			acc.add("Skimmed", int(mul*100), float64(est.Total), exact)
		}
	})
	if err := errOnce.get(); err != nil {
		return Result{}, err
	}
	return Result{
		Name: "Threshold sensitivity: error vs skim-threshold multiplier",
		Notes: fmt.Sprintf("x-axis column is 100*multiplier on T=n/sqrt(b); z=%.1f shift=%d space=%d seeds=%d",
			cfg.Zipf, cfg.Shift, cfg.SpaceWords, cfg.Seeds),
		Series: acc.series(),
	}, nil
}

// shiftedZipfPair materializes the frequency vectors of a Zipf(z) stream
// and its right-shifted partner.
func shiftedZipfPair(domain uint64, z float64, shift uint64, n int, seed int64) (stream.FreqVector, stream.FreqVector, error) {
	zf, err := workload.NewZipf(domain, z, seed*2+1)
	if err != nil {
		return nil, nil, err
	}
	zg, err := workload.NewZipf(domain, z, seed*2+2)
	if err != nil {
		return nil, nil, err
	}
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for i := 0; i < n; i++ {
		fv.Update(zf.Next(), 1)
	}
	sg := workload.NewShifted(zg, shift)
	for i := 0; i < n; i++ {
		gv.Update(sg.Next(), 1)
	}
	return fv, gv, nil
}
