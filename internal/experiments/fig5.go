package experiments

import (
	"fmt"

	"skimsketch/internal/agms"
	"skimsketch/internal/core"
	"skimsketch/internal/partition"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// Fig5Config parameterizes the synthetic-data experiments of Figures 5(a)
// and 5(b): a Zipf(z) stream joined with a right-shifted Zipf(z) stream.
type Fig5Config struct {
	Domain     uint64   // m; the paper uses 2^18
	StreamLen  int      // n per stream; the paper uses 4,000,000
	Zipf       float64  // z; 1.0 for Fig 5(a), 1.5 for Fig 5(b)
	Shifts     []uint64 // shift parameters; {100,200,300} / {30,50}
	SpaceWords []int    // space budgets (total counter words per sketch)
	Seeds      int      // independent repetitions per configuration
	AGMSRows   []int    // s2 grid for basic AGMS shape averaging
	SkimTables []int    // d grid for hash-sketch shape averaging
	// IncludePartitioned adds the Dobra et al. sketch-partitioning
	// baseline, granted the exact frequency vectors as its a-priori
	// statistics (its best case, and exactly the prior knowledge the
	// paper criticizes it for needing).
	IncludePartitioned bool
}

// DefaultFig5a returns a laptop-scale configuration with the paper's
// shape: Zipf 1.0, shifts {100, 200, 300}. Domain and stream length are
// scaled down 16x so the whole figure regenerates in seconds; the
// crossover structure is preserved (see EXPERIMENTS.md). PaperFig5a is
// the full-scale variant.
func DefaultFig5a() Fig5Config {
	return Fig5Config{
		Domain:     1 << 14,
		StreamLen:  250000,
		Zipf:       1.0,
		Shifts:     []uint64{100, 200, 300},
		SpaceWords: []int{640, 1280, 2560, 5120, 10240},
		Seeds:      3,
		AGMSRows:   []int{11, 35, 59},
		SkimTables: []int{5, 7, 9},
	}
}

// DefaultFig5b is the laptop-scale Figure 5(b): Zipf 1.5, shifts {30, 50}.
func DefaultFig5b() Fig5Config {
	c := DefaultFig5a()
	c.Zipf = 1.5
	c.Shifts = []uint64{30, 50}
	return c
}

// PaperFig5a is the full paper-scale Figure 5(a) configuration
// (m = 2^18, n = 4M, 5 seeds, the complete shape grids). Expect minutes
// of runtime.
func PaperFig5a() Fig5Config {
	return Fig5Config{
		Domain:     1 << 18,
		StreamLen:  4000000,
		Zipf:       1.0,
		Shifts:     []uint64{100, 200, 300},
		SpaceWords: []int{1280, 2560, 5120, 10240, 14750},
		Seeds:      5,
		AGMSRows:   []int{11, 23, 35, 47, 59},
		SkimTables: []int{5, 7, 9, 11},
	}
}

// PaperFig5b is the full paper-scale Figure 5(b) configuration.
func PaperFig5b() Fig5Config {
	c := PaperFig5a()
	c.Zipf = 1.5
	c.Shifts = []uint64{30, 50}
	return c
}

// Validate reports configuration errors.
func (c Fig5Config) Validate() error {
	if c.Domain == 0 || c.StreamLen <= 0 || c.Seeds <= 0 {
		return fmt.Errorf("experiments: domain, stream length and seeds must be positive")
	}
	if len(c.Shifts) == 0 || len(c.SpaceWords) == 0 || len(c.AGMSRows) == 0 || len(c.SkimTables) == 0 {
		return fmt.Errorf("experiments: shifts, spaces and shape grids must be non-empty")
	}
	return nil
}

// RunFig5 regenerates one of the paper's figures: for every shift it
// produces one basic-AGMS series and one skimmed-sketch series of mean
// symmetric error versus space.
func RunFig5(cfg Fig5Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	acc := newSeriesAccumulator()

	type trial struct {
		shift uint64
		seed  int
	}
	var trials []trial
	for _, sh := range cfg.Shifts {
		for s := 0; s < cfg.Seeds; s++ {
			trials = append(trials, trial{shift: sh, seed: s})
		}
	}

	var errOnce errCapture
	parallelFor(len(trials), func(i int) {
		tr := trials[i]
		if err := runFig5Trial(cfg, tr.shift, tr.seed, acc); err != nil {
			errOnce.set(err)
		}
	})
	if err := errOnce.get(); err != nil {
		return Result{}, err
	}

	return Result{
		Name: fmt.Sprintf("Basic AGMS versus Skimmed Sketches, Zipf=%.1f", cfg.Zipf),
		Notes: fmt.Sprintf("domain=%d streamLen=%d seeds=%d; error = max(est/J, J/est)-1 averaged over seeds and sketch shapes",
			cfg.Domain, cfg.StreamLen, cfg.Seeds),
		Series: acc.series(),
	}, nil
}

func runFig5Trial(cfg Fig5Config, shift uint64, seed int, acc *seriesAccumulator) error {
	// Data seeds differ per (shift, seed) so repetitions are independent.
	base := int64(seed)*1000 + int64(shift)
	zf, err := workload.NewZipf(cfg.Domain, cfg.Zipf, base+1)
	if err != nil {
		return err
	}
	zg, err := workload.NewZipf(cfg.Domain, cfg.Zipf, base+2)
	if err != nil {
		return err
	}
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for i := 0; i < cfg.StreamLen; i++ {
		fv.Update(zf.Next(), 1)
	}
	sg := workload.NewShifted(zg, shift)
	for i := 0; i < cfg.StreamLen; i++ {
		gv.Update(sg.Next(), 1)
	}
	exact := float64(fv.InnerProduct(gv))

	agmsLabel := fmt.Sprintf("BasicAGMS shift=%d", shift)
	skimLabel := fmt.Sprintf("Skimmed shift=%d", shift)

	for _, space := range cfg.SpaceWords {
		sketchSeed := uint64(seed)*1_000_003 + uint64(shift)*31 + uint64(space)
		for _, sh := range agmsShapes(space, cfg.AGMSRows) {
			fs := agms.MustNew(sh[0], sh[1], sketchSeed)
			gs := agms.MustNew(sh[0], sh[1], sketchSeed)
			chargeAGMS(fs, fv)
			chargeAGMS(gs, gv)
			est, err := agms.JoinEstimate(fs, gs)
			if err != nil {
				return err
			}
			acc.add(agmsLabel, space, float64(est), exact)
		}
		for _, sh := range hashShapes(space, cfg.SkimTables) {
			c := core.Config{Tables: sh[0], Buckets: sh[1], Seed: sketchSeed}
			fs := core.MustNewHashSketch(c)
			gs := core.MustNewHashSketch(c)
			chargeHash(fs, fv)
			chargeHash(gs, gv)
			est, err := core.EstimateJoin(fs, gs, cfg.Domain, nil)
			if err != nil {
				return err
			}
			acc.add(skimLabel, space, float64(est.Total), exact)
		}
		if cfg.IncludePartitioned {
			est, err := runPartitioned(fv, gv, cfg.Domain, space, sketchSeed)
			if err != nil {
				return err
			}
			acc.add(fmt.Sprintf("Partitioned shift=%d", shift), space, float64(est), exact)
		}
	}
	return nil
}

// runPartitioned charges a Dobra-style partitioned pair at the given
// space budget: an eighth of the words (capped at 128) isolate the
// heaviest values exactly, the rest is one AGMS residue pair.
func runPartitioned(fv, gv stream.FreqVector, domain uint64, space int, seed uint64) (int64, error) {
	singles := space / 8
	if singles > 128 {
		singles = 128
	}
	const s2 = 5
	s1 := (space - singles) / s2
	if s1 < 1 {
		s1 = 1
	}
	p, err := partition.NewPair(fv, gv, domain, partition.Config{
		Singletons: singles,
		ResidueS1:  s1,
		ResidueS2:  s2,
		Seed:       seed,
	})
	if err != nil {
		return 0, err
	}
	for v, w := range fv {
		p.UpdateF(v, w)
	}
	for v, w := range gv {
		p.UpdateG(v, w)
	}
	return p.Estimate()
}
