package experiments

import (
	"fmt"
	"io"
	"time"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
	"skimsketch/internal/workload"
)

// The ingest-throughput experiment measures the engine's update path in
// three modes over the same workload: one element at a time (the
// pre-pipeline baseline), synchronous batches (amortized locking and hash
// evaluation), and the concurrent sharded pipeline. Batching is exact —
// all modes must produce bit-for-bit identical query answers, and the run
// fails if they do not — so the only thing that varies is throughput.

// IngestThroughputConfig configures the throughput comparison.
type IngestThroughputConfig struct {
	// Domain is the value domain of both streams.
	Domain uint64
	// StreamLen is the number of updates fed to each stream.
	StreamLen int
	// Zipf is the workload skew.
	Zipf float64
	// Sketch is the engine's synopsis configuration.
	Sketch core.Config
	// Workers, Batch and Queue size the concurrent pipeline mode.
	Workers int
	Batch   int
	Queue   int
	// QueryWorkers parallelizes the answer-time estimation
	// (engine.Options.QueryWorkers); answers are bit-identical for every
	// setting, so the AnswerTime column is the only thing it moves.
	QueryWorkers int
}

// DefaultIngestThroughput returns a configuration that runs in a few
// seconds on a laptop.
func DefaultIngestThroughput() IngestThroughputConfig {
	return IngestThroughputConfig{
		Domain:    1 << 14,
		StreamLen: 200000,
		Zipf:      1.0,
		Sketch:    core.Config{Tables: 7, Buckets: 1024, Seed: 42},
		Workers:   4,
		Batch:     256,
		Queue:     64,
	}
}

// IngestMode is one measured ingestion strategy.
type IngestMode struct {
	Label         string
	Elapsed       time.Duration
	UpdatesPerSec float64
	// Speedup is relative to the sequential baseline.
	Speedup float64
	// Answer is the query estimate after ingestion (identical across
	// modes by the exactness guarantee).
	Answer int64
	// AnswerTime is the wall-clock cost of the post-ingest Answer call
	// (the skimmed-sketch estimation, parallelized by QueryWorkers).
	AnswerTime time.Duration
}

// IngestResult is the completed throughput comparison.
type IngestResult struct {
	Config IngestThroughputConfig
	Modes  []IngestMode
}

// WriteTable renders the result as an aligned text table.
func (r IngestResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# ingest throughput: 2 streams x %d updates, domain %d, zipf %.2f, sketch %dx%d\n",
		r.Config.StreamLen, r.Config.Domain, r.Config.Zipf, r.Config.Sketch.Tables, r.Config.Sketch.Buckets)
	fmt.Fprintf(w, "%-16s  %12s  %14s  %8s  %12s  %12s\n", "mode", "elapsed", "updates/sec", "speedup", "answer", "answer_time")
	for _, m := range r.Modes {
		fmt.Fprintf(w, "%-16s  %12s  %14.0f  %7.2fx  %12d  %12s\n",
			m.Label, m.Elapsed.Round(time.Millisecond), m.UpdatesPerSec, m.Speedup, m.Answer, m.AnswerTime.Round(time.Microsecond))
	}
}

// WriteCSV renders the result as CSV.
func (r IngestResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "mode,elapsed_ns,updates_per_sec,speedup,answer,answer_time_ns"); err != nil {
		return err
	}
	for _, m := range r.Modes {
		if _, err := fmt.Fprintf(w, "%s,%d,%.0f,%.3f,%d,%d\n",
			m.Label, m.Elapsed.Nanoseconds(), m.UpdatesPerSec, m.Speedup, m.Answer, m.AnswerTime.Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}

// ingestEngine builds a fresh engine with streams F and G and one COUNT
// join query, the minimal Figure 1 setup.
func ingestEngine(cfg IngestThroughputConfig) (*engine.Engine, error) {
	e, err := engine.New(engine.Options{SketchConfig: cfg.Sketch, QueryWorkers: cfg.QueryWorkers})
	if err != nil {
		return nil, err
	}
	if err := e.DeclareStream("F", cfg.Domain); err != nil {
		return nil, err
	}
	if err := e.DeclareStream("G", cfg.Domain); err != nil {
		return nil, err
	}
	err = e.RegisterQuery(engine.QuerySpec{
		Name:  "q",
		Agg:   engine.Count,
		Left:  engine.Side{Stream: "F"},
		Right: engine.Side{Stream: "G"},
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// RunIngestThroughput measures the three ingestion modes on identical
// workloads and checks that their answers agree exactly.
func RunIngestThroughput(cfg IngestThroughputConfig) (IngestResult, error) {
	if cfg.StreamLen <= 0 {
		return IngestResult{}, fmt.Errorf("experiments: StreamLen must be positive")
	}
	zf, err := workload.NewZipf(cfg.Domain, cfg.Zipf, 3)
	if err != nil {
		return IngestResult{}, err
	}
	zg, err := workload.NewZipf(cfg.Domain, cfg.Zipf, 4)
	if err != nil {
		return IngestResult{}, err
	}
	fUpdates := workload.MakeStream(zf, cfg.StreamLen)
	gUpdates := workload.MakeStream(zg, cfg.StreamLen)
	total := float64(len(fUpdates) + len(gUpdates))

	res := IngestResult{Config: cfg}

	// Mode 1: the sequential baseline, one Update call per element.
	e, err := ingestEngine(cfg)
	if err != nil {
		return IngestResult{}, err
	}
	start := time.Now()
	for _, u := range fUpdates {
		if err := e.Update("F", u.Value, u.Weight); err != nil {
			return IngestResult{}, err
		}
	}
	for _, u := range gUpdates {
		if err := e.Update("G", u.Value, u.Weight); err != nil {
			return IngestResult{}, err
		}
	}
	elapsed := time.Since(start)
	ansStart := time.Now()
	ans, err := e.Answer("q")
	if err != nil {
		return IngestResult{}, err
	}
	res.Modes = append(res.Modes, IngestMode{
		Label:         "sequential",
		Elapsed:       elapsed,
		UpdatesPerSec: total / elapsed.Seconds(),
		Speedup:       1,
		Answer:        ans.Estimate,
		AnswerTime:    time.Since(ansStart),
	})

	// Modes 2 and 3: synchronous batches, then the concurrent pipeline.
	run := func(label string, pipeline bool) error {
		e, err := ingestEngine(cfg)
		if err != nil {
			return err
		}
		if pipeline {
			err := e.StartIngest(engine.IngestConfig{
				Workers:    cfg.Workers,
				BatchSize:  cfg.Batch,
				QueueDepth: cfg.Queue,
			})
			if err != nil {
				return err
			}
		}
		chunk := cfg.Batch
		if chunk <= 0 {
			chunk = 256
		}
		start := time.Now()
		// Alternate F and G chunks so the pipeline's fan-out is exercised
		// the way a live feed would.
		for off := 0; off < cfg.StreamLen; off += chunk {
			end := off + chunk
			if end > cfg.StreamLen {
				end = cfg.StreamLen
			}
			if err := e.IngestBatch("F", fUpdates[off:end]); err != nil {
				return err
			}
			if err := e.IngestBatch("G", gUpdates[off:end]); err != nil {
				return err
			}
		}
		e.Flush()
		elapsed := time.Since(start)
		if pipeline {
			e.StopIngest()
		}
		ansStart := time.Now()
		ans, err := e.Answer("q")
		if err != nil {
			return err
		}
		res.Modes = append(res.Modes, IngestMode{
			Label:         label,
			Elapsed:       elapsed,
			UpdatesPerSec: total / elapsed.Seconds(),
			Speedup:       res.Modes[0].Elapsed.Seconds() / elapsed.Seconds(),
			Answer:        ans.Estimate,
			AnswerTime:    time.Since(ansStart),
		})
		return nil
	}
	if err := run(fmt.Sprintf("batched-%d", cfg.Batch), false); err != nil {
		return IngestResult{}, err
	}
	if err := run(fmt.Sprintf("pipeline-%dw", cfg.Workers), true); err != nil {
		return IngestResult{}, err
	}

	// Batching is exact: every mode must land on the identical estimate.
	for _, m := range res.Modes[1:] {
		if m.Answer != res.Modes[0].Answer {
			return IngestResult{}, fmt.Errorf("experiments: mode %s answer %d != sequential answer %d (batching must be exact)",
				m.Label, m.Answer, res.Modes[0].Answer)
		}
	}
	return res, nil
}
