// Package experiments reproduces the paper's evaluation (Section 5 plus
// the census experiment of the full version): error-versus-space curves
// for basic AGMS sketching and the skimmed-sketch estimator on Zipfian,
// shifted-Zipfian and census-like workloads, the per-element update-cost
// comparison, and the skim on/off ablation.
//
// Space accounting follows the paper: both methods are charged in counter
// words. Basic AGMS with dimensions s1 × s2 costs s1·s2 words; a hash
// sketch with d tables of b buckets costs d·b words. For each space
// budget the harness averages over a small grid of shape choices
// (the paper's s1 ∈ {50..250}, s2 ∈ {11..59} averaging) and over several
// seeds; the reported error is the paper's symmetric metric
// max(Ĵ/J, J/Ĵ) − 1 with a sanity value of 10 for non-positive estimates.
//
// Sketches are charged from the exact frequency vector rather than by
// replaying every stream element; by sketch linearity the resulting
// synopsis is identical (unit tests in internal/core and internal/agms
// verify streaming ≡ frequency-vector feeding), and it makes the O(words)
// per-element AGMS baseline affordable inside a test suite.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"skimsketch/internal/agms"
	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// Point is one (space, error) measurement.
type Point struct {
	SpaceWords int
	// Err is the mean symmetric error across seeds and shape choices.
	Err float64
	// RelErr is the mean conventional relative error, for context.
	RelErr float64
	// StdDev is the standard deviation of the symmetric error across
	// trials (the paper remarks on basic AGMS's much higher variance).
	StdDev float64
}

// Series is one labelled error-versus-space curve.
type Series struct {
	Label  string
	Points []Point
}

// Result is a completed experiment.
type Result struct {
	Name   string
	Notes  string
	Series []Series
}

// WriteTable renders the result as an aligned text table, one row per
// space budget, one column pair per series — the same rows/series as the
// paper's figures.
func (r Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Name)
	if r.Notes != "" {
		fmt.Fprintf(w, "# %s\n", r.Notes)
	}
	fmt.Fprintf(w, "%-12s", "space(words)")
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %22s", s.Label)
	}
	fmt.Fprintln(w)
	if len(r.Series) == 0 {
		return
	}
	for i := range r.Series[0].Points {
		fmt.Fprintf(w, "%-12d", r.Series[0].Points[i].SpaceWords)
		for _, s := range r.Series {
			fmt.Fprintf(w, "  %14.4f (±%.3f)", s.Points[i].Err, s.Points[i].StdDev)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders the result as CSV: one row per (series, space) point
// with symmetric error, relative error, and standard deviation — the
// machine-readable companion to WriteTable for plotting.
func (r Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "series", "space_words", "sym_error", "rel_error", "stddev"}); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			rec := []string{
				r.Name,
				s.Label,
				strconv.Itoa(p.SpaceWords),
				strconv.FormatFloat(p.Err, 'g', 6, 64),
				strconv.FormatFloat(p.RelErr, 'g', 6, 64),
				strconv.FormatFloat(p.StdDev, 'g', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// seriesAccumulator collects trial errors keyed by (label, space).
type seriesAccumulator struct {
	mu   sync.Mutex
	errs map[string]map[int]*accum
}

type accum struct {
	sym stats.Welford
	rel stats.Welford
}

func newSeriesAccumulator() *seriesAccumulator {
	return &seriesAccumulator{errs: make(map[string]map[int]*accum)}
}

func (a *seriesAccumulator) add(label string, space int, estimate, exact float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	bySpace, ok := a.errs[label]
	if !ok {
		bySpace = make(map[int]*accum)
		a.errs[label] = bySpace
	}
	ac, ok := bySpace[space]
	if !ok {
		ac = &accum{}
		bySpace[space] = ac
	}
	ac.sym.Add(stats.SymmetricError(estimate, exact))
	ac.rel.Add(stats.RelativeError(estimate, exact))
}

// series renders the accumulated errors, with points sorted by space and
// series sorted by label for deterministic output.
func (a *seriesAccumulator) series() []Series {
	a.mu.Lock()
	defer a.mu.Unlock()
	labels := make([]string, 0, len(a.errs))
	for l := range a.errs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]Series, 0, len(labels))
	for _, l := range labels {
		spaces := make([]int, 0, len(a.errs[l]))
		for sp := range a.errs[l] {
			spaces = append(spaces, sp)
		}
		sort.Ints(spaces)
		s := Series{Label: l}
		for _, sp := range spaces {
			ac := a.errs[l][sp]
			s.Points = append(s.Points, Point{
				SpaceWords: sp,
				Err:        ac.sym.Mean(),
				RelErr:     ac.rel.Mean(),
				StdDev:     ac.sym.StdDev(),
			})
		}
		out = append(out, s)
	}
	return out
}

// chargeAGMS feeds a frequency vector into an AGMS sketch.
func chargeAGMS(sk *agms.Sketch, f stream.FreqVector) {
	for v, w := range f {
		sk.Update(v, w)
	}
}

// chargeHash feeds a frequency vector into a hash sketch.
func chargeHash(sk *core.HashSketch, f stream.FreqVector) {
	for v, w := range f {
		sk.Update(v, w)
	}
}

// agmsShapes returns the (s1, s2) grid for a space budget, following the
// paper's averaging over s2 ∈ {11, 23, 35, 47, 59} with s1 = space/s2,
// keeping only shapes that fit.
func agmsShapes(space int, rows []int) [][2]int {
	var out [][2]int
	for _, s2 := range rows {
		s1 := space / s2
		if s1 >= 1 {
			out = append(out, [2]int{s1, s2})
		}
	}
	return out
}

// hashShapes returns the (d, b) grid for a space budget.
func hashShapes(space int, tables []int) [][2]int {
	var out [][2]int
	for _, d := range tables {
		b := space / d
		if b >= 1 {
			out = append(out, [2]int{d, b})
		}
	}
	return out
}

// errCapture records the first error reported from concurrent workers.
type errCapture struct {
	mu  sync.Mutex
	err error
}

func (e *errCapture) set(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
}

func (e *errCapture) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// parallelFor runs fn(i) for i in [0, n) on all cores.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
