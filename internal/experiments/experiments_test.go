package experiments

import (
	"strings"
	"testing"
)

// tinyFig5 keeps experiment tests fast while exercising the full path.
func tinyFig5(zipf float64, shifts []uint64) Fig5Config {
	return Fig5Config{
		Domain:     1 << 10,
		StreamLen:  20000,
		Zipf:       zipf,
		Shifts:     shifts,
		SpaceWords: []int{320, 1280},
		Seeds:      2,
		AGMSRows:   []int{5},
		SkimTables: []int{5},
	}
}

func TestRunFig5Validation(t *testing.T) {
	if _, err := RunFig5(Fig5Config{}); err == nil {
		t.Fatal("expected validation error")
	}
	bad := tinyFig5(1.0, []uint64{10})
	bad.Shifts = nil
	if _, err := RunFig5(bad); err == nil {
		t.Fatal("expected validation error for empty shifts")
	}
}

func TestRunFig5Shape(t *testing.T) {
	res, err := RunFig5(tinyFig5(1.0, []uint64{10, 100}))
	if err != nil {
		t.Fatal(err)
	}
	// Two shifts × two methods = 4 series.
	if len(res.Series) != 4 {
		t.Fatalf("got %d series, want 4: %+v", len(res.Series), res.Series)
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Label, len(s.Points))
		}
		for i, p := range s.Points {
			if p.Err < 0 || p.Err > 10 {
				t.Fatalf("series %q point %d error %v out of range", s.Label, i, p.Err)
			}
		}
		if s.Points[0].SpaceWords != 320 || s.Points[1].SpaceWords != 1280 {
			t.Fatalf("series %q points not sorted by space: %+v", s.Label, s.Points)
		}
	}
}

// TestFig5SkimmedWins: at the larger space budget, the skimmed estimator
// must beat basic AGMS on skewed data — the figure's headline shape.
func TestFig5SkimmedWins(t *testing.T) {
	cfg := tinyFig5(1.2, []uint64{20})
	cfg.Seeds = 3
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var agmsErr, skimErr float64 = -1, -1
	for _, s := range res.Series {
		last := s.Points[len(s.Points)-1].Err
		if strings.HasPrefix(s.Label, "BasicAGMS") {
			agmsErr = last
		}
		if strings.HasPrefix(s.Label, "Skimmed") {
			skimErr = last
		}
	}
	if agmsErr < 0 || skimErr < 0 {
		t.Fatalf("missing series in %+v", res.Series)
	}
	if skimErr >= agmsErr {
		t.Fatalf("skimmed error %.4f must beat AGMS %.4f at the top space budget", skimErr, agmsErr)
	}
}

// TestFig5ErrorGrowsWithShift: larger shifts shrink the join, so both
// methods' errors should not improve as the shift grows (paper: "the
// error typically increases with the shift parameter value").
func TestFig5ErrorGrowsWithShift(t *testing.T) {
	cfg := tinyFig5(1.0, []uint64{5, 400})
	cfg.Seeds = 3
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) float64 {
		for _, s := range res.Series {
			if s.Label == label {
				return s.Points[len(s.Points)-1].Err
			}
		}
		t.Fatalf("missing series %q", label)
		return 0
	}
	if get("Skimmed shift=5") > get("Skimmed shift=400")+0.05 {
		t.Fatalf("skimmed error should not shrink with shift: %v vs %v",
			get("Skimmed shift=5"), get("Skimmed shift=400"))
	}
}

// TestFig5PartitionedSeries: the optional Dobra-style baseline appears
// as its own series and, with exact priors, lands between plain AGMS and
// the skimmed estimator on skewed data (or better — both isolate heavy
// values; the point is it needs the priors).
func TestFig5PartitionedSeries(t *testing.T) {
	cfg := tinyFig5(1.2, []uint64{20})
	cfg.IncludePartitioned = true
	cfg.Seeds = 3
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(res.Series))
	}
	var agmsErr, partErr float64 = -1, -1
	for _, s := range res.Series {
		last := s.Points[len(s.Points)-1].Err
		switch {
		case strings.HasPrefix(s.Label, "BasicAGMS"):
			agmsErr = last
		case strings.HasPrefix(s.Label, "Partitioned"):
			partErr = last
		}
	}
	if partErr < 0 || agmsErr < 0 {
		t.Fatalf("missing series in %+v", res.Series)
	}
	if partErr >= agmsErr {
		t.Fatalf("partitioned with exact priors (%.4f) should beat plain AGMS (%.4f)", partErr, agmsErr)
	}
}

func TestWriteTable(t *testing.T) {
	res, err := RunFig5(tinyFig5(1.0, []uint64{10}))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	out := sb.String()
	if !strings.Contains(out, "space(words)") || !strings.Contains(out, "320") {
		t.Fatalf("table missing headers/rows:\n%s", out)
	}
	if !strings.Contains(out, "BasicAGMS shift=10") || !strings.Contains(out, "Skimmed shift=10") {
		t.Fatalf("table missing series:\n%s", out)
	}
	// Empty result renders without panicking.
	var sb2 strings.Builder
	Result{Name: "empty"}.WriteTable(&sb2)
}

func TestWriteCSV(t *testing.T) {
	res, err := RunFig5(tinyFig5(1.0, []uint64{10}))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 2 series × 2 spaces = 5 lines.
	if len(lines) != 5 {
		t.Fatalf("got %d CSV lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "experiment,series,space_words,sym_error") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(out, "BasicAGMS shift=10,320,") {
		t.Fatalf("missing expected row:\n%s", out)
	}
}

func TestRunCensus(t *testing.T) {
	cfg := DefaultCensus()
	cfg.Records = 20000
	cfg.Seeds = 2
	cfg.SpaceWords = []int{256, 1024}
	res, err := RunCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, s := range res.Series {
		labels[s.Label] = true
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
	}
	for _, want := range []string{"BasicAGMS", "Skimmed", "Sampling"} {
		if !labels[want] {
			t.Fatalf("missing series %q in %v", want, labels)
		}
	}
	// Sketches must beat sampling at the top space budget.
	get := func(label string) float64 {
		for _, s := range res.Series {
			if s.Label == label {
				return s.Points[len(s.Points)-1].Err
			}
		}
		return -1
	}
	if get("Skimmed") > get("Sampling") {
		t.Fatalf("skimmed (%.4f) should beat sampling (%.4f) on the census join",
			get("Skimmed"), get("Sampling"))
	}
}

func TestRunCensusValidation(t *testing.T) {
	if _, err := RunCensus(CensusConfig{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRunUpdateCost(t *testing.T) {
	cfg := DefaultUpdateCost()
	cfg.Elements = 2000
	cfg.SpaceWords = []int{512, 4096}
	res, err := RunUpdateCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	small, big := res.Points[0], res.Points[1]
	// AGMS cost must grow roughly with space (8x here; require ≥ 3x to
	// stay robust under timer noise). Hash-sketch cost must stay flat
	// (allow 2.5x slack).
	if big.AGMSNsPerOp < 3*small.AGMSNsPerOp {
		t.Fatalf("AGMS cost should scale with space: %.1f → %.1f ns", small.AGMSNsPerOp, big.AGMSNsPerOp)
	}
	if big.HashNsPerOp > 2.5*small.HashNsPerOp+200 {
		t.Fatalf("hash-sketch cost should stay flat: %.1f → %.1f ns", small.HashNsPerOp, big.HashNsPerOp)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	if !strings.Contains(sb.String(), "BasicAGMS") {
		t.Fatal("table missing header")
	}
}

func TestRunUpdateCostValidation(t *testing.T) {
	if _, err := RunUpdateCost(UpdateCostConfig{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRunAblation(t *testing.T) {
	cfg := AblationConfig{
		Domain:     1 << 10,
		StreamLen:  20000,
		Shift:      20,
		Zipfs:      []float64{1.3},
		SpaceWords: []int{640},
		Seeds:      2,
		Tables:     5,
	}
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(res.Series))
	}
	var on, off float64 = -1, -1
	for _, s := range res.Series {
		if strings.HasPrefix(s.Label, "Skim") && !strings.HasPrefix(s.Label, "NoSkim") {
			on = s.Points[0].Err
		}
		if strings.HasPrefix(s.Label, "NoSkim") {
			off = s.Points[0].Err
		}
	}
	if on < 0 || off < 0 {
		t.Fatalf("missing series: %+v", res.Series)
	}
	if on > off {
		t.Fatalf("skimming (%.4f) should not hurt versus no-skim (%.4f) at high skew", on, off)
	}
}

func TestRunAblationValidation(t *testing.T) {
	if _, err := RunAblation(AblationConfig{}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestDefaultConfigsValidate: every packaged configuration must pass its
// own validation and keep the documented paper relationships.
func TestDefaultConfigsValidate(t *testing.T) {
	for _, c := range []Fig5Config{DefaultFig5a(), DefaultFig5b(), PaperFig5a(), PaperFig5b()} {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %+v invalid: %v", c, err)
		}
	}
	if DefaultFig5a().Zipf != 1.0 || DefaultFig5b().Zipf != 1.5 {
		t.Fatal("figure skews wrong")
	}
	if PaperFig5a().Domain != 1<<18 || PaperFig5a().StreamLen != 4000000 {
		t.Fatal("paper-scale constants wrong")
	}
	if c := DefaultCensus(); c.Records <= 0 || len(c.SpaceWords) == 0 {
		t.Fatal("census defaults wrong")
	}
	if c := DefaultUpdateCost(); c.Elements <= 0 || c.Tables <= 0 {
		t.Fatal("update-cost defaults wrong")
	}
	if c := DefaultAblation(); len(c.Zipfs) == 0 || c.Seeds <= 0 {
		t.Fatal("ablation defaults wrong")
	}
	if c := DefaultSkewSweep(); len(c.Zipfs) == 0 || c.SpaceWords <= 0 {
		t.Fatal("skew sweep defaults wrong")
	}
	if c := DefaultThresholdSweep(); len(c.Multipliers) == 0 {
		t.Fatal("threshold sweep defaults wrong")
	}
}

func TestShapeGrids(t *testing.T) {
	shapes := agmsShapes(100, []int{11, 200})
	if len(shapes) != 1 || shapes[0] != [2]int{9, 11} {
		t.Fatalf("agmsShapes = %v", shapes)
	}
	hs := hashShapes(100, []int{5, 7})
	if len(hs) != 2 || hs[0] != [2]int{5, 20} || hs[1] != [2]int{7, 14} {
		t.Fatalf("hashShapes = %v", hs)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	seen := make([]bool, 100)
	parallelFor(100, func(i int) { seen[i] = true })
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
	parallelFor(0, func(int) { t.Fatal("must not be called") })
}
