package experiments

import (
	"fmt"
	"math"
	"time"

	"skimsketch/internal/agms"
	"skimsketch/internal/core"
	"skimsketch/internal/dyadic"
	"skimsketch/internal/workload"
)

// UpdateCostConfig parameterizes the per-element processing-time
// comparison backing the paper's complexity claim: maintaining a hash
// sketch costs O(d) per element regardless of space, while basic AGMS
// costs O(s1·s2) — proportional to the synopsis size.
type UpdateCostConfig struct {
	Domain     uint64
	Elements   int // elements timed per measurement
	SpaceWords []int
	Tables     int // d for the hash sketch
	AGMSRows   int // s2 for basic AGMS
	DomainBits int // hierarchy depth for the dyadic variant
	// Repeats takes the minimum over this many timed passes per
	// measurement (default 3), which is robust against scheduler noise
	// on shared machines.
	Repeats int
}

// DefaultUpdateCost returns a configuration that runs in about a second.
func DefaultUpdateCost() UpdateCostConfig {
	return UpdateCostConfig{
		Domain:     1 << 16,
		Elements:   20000,
		SpaceWords: []int{512, 1024, 2048, 4096, 8192},
		Tables:     7,
		AGMSRows:   11,
		DomainBits: 16,
	}
}

// UpdateCostPoint is one measurement: nanoseconds per stream element.
type UpdateCostPoint struct {
	SpaceWords    int
	AGMSNsPerOp   float64
	HashNsPerOp   float64
	DyadicNsPerOp float64
}

// UpdateCostResult is the completed update-cost experiment.
type UpdateCostResult struct {
	Points []UpdateCostPoint
}

// WriteTable renders the measurements.
func (r UpdateCostResult) WriteTable(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "# Per-element update cost (ns/element)\n")
	fmt.Fprintf(w, "%-12s  %14s  %14s  %18s\n", "space(words)", "BasicAGMS", "HashSketch", "DyadicHierarchy")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12d  %14.1f  %14.1f  %18.1f\n", p.SpaceWords, p.AGMSNsPerOp, p.HashNsPerOp, p.DyadicNsPerOp)
	}
}

// RunUpdateCost measures wall-clock per-element maintenance cost of basic
// AGMS, the hash sketch, and the dyadic hierarchy at each space budget.
// The hash-sketch and dyadic costs should stay flat as space grows; the
// AGMS cost should grow linearly with it.
func RunUpdateCost(cfg UpdateCostConfig) (UpdateCostResult, error) {
	if cfg.Elements <= 0 || len(cfg.SpaceWords) == 0 {
		return UpdateCostResult{}, fmt.Errorf("experiments: update-cost config must have elements and spaces")
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	gen, err := workload.NewZipf(cfg.Domain, 1.0, 1)
	if err != nil {
		return UpdateCostResult{}, err
	}
	values := make([]uint64, cfg.Elements)
	for i := range values {
		values[i] = gen.Next()
	}

	var res UpdateCostResult
	for _, space := range cfg.SpaceWords {
		s1 := space / cfg.AGMSRows
		if s1 < 1 {
			s1 = 1
		}
		ag := agms.MustNew(s1, cfg.AGMSRows, 7)
		hs := core.MustNewHashSketch(core.Config{Tables: cfg.Tables, Buckets: space / cfg.Tables, Seed: 7})
		dy := dyadic.MustNew(cfg.DomainBits, core.Config{Tables: cfg.Tables, Buckets: space / cfg.Tables, Seed: 7})

		res.Points = append(res.Points, UpdateCostPoint{
			SpaceWords:    space,
			AGMSNsPerOp:   timePerElement(values, cfg.Repeats, ag.Update),
			HashNsPerOp:   timePerElement(values, cfg.Repeats, hs.Update),
			DyadicNsPerOp: timePerElement(values, cfg.Repeats, dy.Update),
		})
	}
	return res, nil
}

// timePerElement returns the minimum per-element time over `repeats`
// passes; the minimum is the standard noise-robust statistic for
// microbenchmarks on shared machines.
func timePerElement(values []uint64, repeats int, update func(uint64, int64)) float64 {
	best := math.Inf(1)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		for _, v := range values {
			update(v, 1)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(values))
		if ns < best {
			best = ns
		}
	}
	return best
}
