package experiments

import (
	"fmt"

	"skimsketch/internal/agms"
	"skimsketch/internal/core"
	"skimsketch/internal/sampling"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// CensusConfig parameterizes the real-life-data experiment of the paper's
// full version: joining the weekly-wage and weekly-overtime attributes of
// a census-like record stream (see internal/workload for the documented
// synthetic substitution).
type CensusConfig struct {
	Records    int
	SpaceWords []int
	Seeds      int
	AGMSRows   []int
	SkimTables []int
	// IncludeSampling adds a reservoir-sampling series at equal space,
	// demonstrating the paper's claim that sampling underperforms
	// sketches for join estimation.
	IncludeSampling bool
}

// DefaultCensus mirrors the paper's record count and domain with a small
// space grid.
func DefaultCensus() CensusConfig {
	return CensusConfig{
		Records:         workload.CensusDefaultRecords,
		SpaceWords:      []int{256, 512, 1024, 2048},
		Seeds:           5,
		AGMSRows:        []int{11, 23, 35},
		SkimTables:      []int{5, 7},
		IncludeSampling: true,
	}
}

// RunCensus regenerates the census table: error versus space for basic
// AGMS, skimmed sketches, and optionally reservoir sampling on the
// wage ⋈ overtime join.
func RunCensus(cfg CensusConfig) (Result, error) {
	if cfg.Records <= 0 || cfg.Seeds <= 0 || len(cfg.SpaceWords) == 0 {
		return Result{}, fmt.Errorf("experiments: census config must have positive records, seeds and spaces")
	}
	acc := newSeriesAccumulator()
	var errOnce errCapture

	parallelFor(cfg.Seeds, func(seed int) {
		wage, overtime := workload.CensusPair(cfg.Records, int64(seed)+1)
		fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
		stream.Apply(wage, fv)
		stream.Apply(overtime, gv)
		exact := float64(fv.InnerProduct(gv))

		for _, space := range cfg.SpaceWords {
			sketchSeed := uint64(seed)*999_983 + uint64(space)
			for _, sh := range agmsShapes(space, cfg.AGMSRows) {
				fs := agms.MustNew(sh[0], sh[1], sketchSeed)
				gs := agms.MustNew(sh[0], sh[1], sketchSeed)
				chargeAGMS(fs, fv)
				chargeAGMS(gs, gv)
				est, err := agms.JoinEstimate(fs, gs)
				if err != nil {
					errOnce.set(err)
					return
				}
				acc.add("BasicAGMS", space, float64(est), exact)
			}
			for _, sh := range hashShapes(space, cfg.SkimTables) {
				c := core.Config{Tables: sh[0], Buckets: sh[1], Seed: sketchSeed}
				fs := core.MustNewHashSketch(c)
				gs := core.MustNewHashSketch(c)
				chargeHash(fs, fv)
				chargeHash(gs, gv)
				est, err := core.EstimateJoin(fs, gs, workload.CensusDomain, nil)
				if err != nil {
					errOnce.set(err)
					return
				}
				acc.add("Skimmed", space, float64(est.Total), exact)
			}
			if cfg.IncludeSampling {
				// One reservoir per stream, each charged half the space.
				fr, err := sampling.NewReservoir(space/2, int64(sketchSeed))
				if err != nil {
					errOnce.set(err)
					return
				}
				gr, err := sampling.NewReservoir(space/2, int64(sketchSeed)+1)
				if err != nil {
					errOnce.set(err)
					return
				}
				stream.Apply(wage, fr)
				stream.Apply(overtime, gr)
				est, err := sampling.JoinEstimate(fr, gr)
				if err != nil {
					errOnce.set(err)
					return
				}
				acc.add("Sampling", space, float64(est), exact)
			}
		}
	})
	if err := errOnce.get(); err != nil {
		return Result{}, err
	}

	return Result{
		Name: "Census-like data: wage ⋈ overtime",
		Notes: fmt.Sprintf("records=%d domain=%d seeds=%d; synthetic CPS substitute (see DESIGN.md)",
			cfg.Records, workload.CensusDomain, cfg.Seeds),
		Series: acc.series(),
	}, nil
}
