package topk

import (
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func cfg(d, b int, seed uint64) core.Config { return core.Config{Tables: d, Buckets: b, Seed: seed} }

func TestNewValidation(t *testing.T) {
	if _, err := New(0, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := New(3, cfg(0, 8, 1)); err == nil {
		t.Fatal("expected error for bad sketch config")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, cfg(1, 1, 1))
}

func TestTracksPlantedHeavyHitters(t *testing.T) {
	tr := MustNew(3, cfg(7, 256, 5))
	heavy := map[uint64]int64{10: 5000, 200: 3000, 999: 2000}
	for v, w := range heavy {
		for i := int64(0); i < w; i++ {
			tr.Update(v, 1)
		}
	}
	u := workload.NewUniform(4096, 1)
	for i := 0; i < 5000; i++ {
		tr.Update(u.Next(), 1)
	}
	top := tr.Top()
	if len(top) != 3 {
		t.Fatalf("got %d entries, want 3", len(top))
	}
	if top[0].Value != 10 || top[1].Value != 200 || top[2].Value != 999 {
		t.Fatalf("wrong order: %+v", top)
	}
	for _, e := range top {
		want := heavy[e.Value]
		diff := e.Estimate - want
		if diff < 0 {
			diff = -diff
		}
		if diff > want/5 {
			t.Fatalf("estimate %d for %d too far from %d", e.Estimate, e.Value, want)
		}
	}
}

func TestInterleavedStreamOrder(t *testing.T) {
	// Heavy values arriving interleaved with noise must still win.
	tr := MustNew(2, cfg(5, 128, 9))
	u := workload.NewUniform(1024, 2)
	for i := 0; i < 20000; i++ {
		tr.Update(u.Next(), 1)
		if i%4 == 0 {
			tr.Update(7, 1)
		}
		if i%8 == 0 {
			tr.Update(13, 1)
		}
	}
	top := tr.Top()
	if len(top) != 2 || top[0].Value != 7 || top[1].Value != 13 {
		t.Fatalf("top = %+v, want values 7 then 13", top)
	}
}

func TestDeletesEvictFromTop(t *testing.T) {
	tr := MustNew(2, cfg(5, 64, 3))
	tr.Update(1, 100)
	tr.Update(2, 50)
	if got := len(tr.Top()); got != 2 {
		t.Fatalf("tracked %d, want 2", got)
	}
	tr.Update(1, -100) // net zero
	top := tr.Top()
	if len(top) != 1 || top[0].Value != 2 {
		t.Fatalf("after delete, top = %+v, want only value 2", top)
	}
}

func TestCapacityAndAccessors(t *testing.T) {
	tr := MustNew(2, cfg(3, 32, 7))
	if tr.K() != 2 {
		t.Fatalf("K = %d", tr.K())
	}
	for v := uint64(0); v < 10; v++ {
		tr.Update(v, int64(v+1))
	}
	if got := len(tr.Top()); got != 2 {
		t.Fatalf("tracked %d entries, capacity is 2", got)
	}
	if tr.Sketch().NetCount() != 55 {
		t.Fatalf("sketch net = %d", tr.Sketch().NetCount())
	}
}

func TestHeapPositionsStayConsistent(t *testing.T) {
	tr := MustNew(4, cfg(5, 64, 11))
	// Churn hard: many values overtaking each other.
	for round := 0; round < 50; round++ {
		for v := uint64(0); v < 20; v++ {
			tr.Update(v, int64(v%5)+1)
		}
	}
	for v, i := range tr.pos {
		if i < 0 || i >= len(tr.heap) {
			t.Fatalf("pos[%d] = %d out of heap range", v, i)
		}
		if tr.heap[i].Value != v {
			t.Fatalf("pos map inconsistent: heap[%d].Value = %d, want %d", i, tr.heap[i].Value, v)
		}
	}
}

func TestSinkIntegration(t *testing.T) {
	tr := MustNew(1, cfg(3, 32, 1))
	stream.Apply([]stream.Update{stream.Insert(5), stream.Insert(5)}, tr)
	top := tr.Top()
	if len(top) != 1 || top[0].Value != 5 || top[0].Estimate != 2 {
		t.Fatalf("top = %+v", top)
	}
}
