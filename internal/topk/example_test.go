package topk_test

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/topk"
)

// Online heavy hitters: the tracker maintains the top-k while the
// stream flows, with no end-of-stream scan.
func Example() {
	tr := topk.MustNew(2, core.Config{Tables: 5, Buckets: 64, Seed: 9})
	tr.Update(100, 50)
	tr.Update(200, 30)
	tr.Update(300, 5) // never makes the top 2
	for _, e := range tr.Top() {
		fmt.Printf("value %d ≈ %d\n", e.Value, e.Estimate)
	}
	// Output:
	// value 100 ≈ 50
	// value 200 ≈ 30
}
