// Package topk tracks the k most frequent stream values online with the
// COUNTSKETCH algorithm of Charikar, Chen & Farach-Colton (ICALP 2002) —
// the data structure the paper adapts into SKIMDENSE. A Tracker couples a
// core.HashSketch with a small candidate heap: each arriving value's
// point estimate is compared against the current top-k and the set is
// maintained incrementally, so no domain scan is needed at query time.
package topk

import (
	"container/heap"
	"fmt"
	"sort"

	"skimsketch/internal/core"
)

// Entry is one tracked heavy hitter.
type Entry struct {
	Value    uint64
	Estimate int64
}

// Tracker maintains the approximate top-k values of a stream.
type Tracker struct {
	k      int
	sketch *core.HashSketch
	heap   entryHeap      // min-heap over estimates
	pos    map[uint64]int // value → heap index
}

// New returns a tracker for the k most frequent values using a hash
// sketch with the given configuration.
func New(k int, cfg core.Config) (*Tracker, error) {
	if k <= 0 {
		return nil, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	sk, err := core.NewHashSketch(cfg)
	if err != nil {
		return nil, err
	}
	return &Tracker{k: k, sketch: sk, pos: make(map[uint64]int)}, nil
}

// MustNew is New for static configurations.
func MustNew(k int, cfg core.Config) *Tracker {
	t, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Update folds one stream element and refreshes the candidate set. It
// implements stream.Sink.
func (t *Tracker) Update(value uint64, weight int64) {
	t.sketch.Update(value, weight)
	est := t.sketch.PointEstimate(value)
	if i, ok := t.pos[value]; ok {
		t.heap[i].Estimate = est
		heap.Fix(&t.heap, i)
		t.shedNonPositive()
		return
	}
	if est <= 0 {
		return
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, &heapEntry{tracker: t, Entry: Entry{Value: value, Estimate: est}})
		return
	}
	if est > t.heap[0].Estimate {
		evicted := t.heap[0].Value
		delete(t.pos, evicted)
		t.heap[0] = &heapEntry{tracker: t, Entry: Entry{Value: value, Estimate: est}}
		t.pos[value] = 0
		heap.Fix(&t.heap, 0)
	}
}

// shedNonPositive drops candidates whose estimate fell to ≤ 0 (possible
// under deletes).
func (t *Tracker) shedNonPositive() {
	for len(t.heap) > 0 && t.heap[0].Estimate <= 0 {
		e := heap.Pop(&t.heap).(*heapEntry)
		delete(t.pos, e.Value)
	}
}

// Top returns the tracked entries, most frequent first.
func (t *Tracker) Top() []Entry {
	out := make([]Entry, 0, len(t.heap))
	for _, e := range t.heap {
		// Re-read estimates so the report reflects the final sketch state.
		out = append(out, Entry{Value: e.Value, Estimate: t.sketch.PointEstimate(e.Value)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// K returns the tracker capacity.
func (t *Tracker) K() int { return t.k }

// Sketch exposes the underlying hash sketch (for example to reuse it in a
// join estimate).
func (t *Tracker) Sketch() *core.HashSketch { return t.sketch }

// heapEntry keeps the tracker pointer so swaps can maintain pos.
type heapEntry struct {
	tracker *Tracker
	Entry
}

type entryHeap []*heapEntry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].Estimate < h[j].Estimate }
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].tracker.pos[h[i].Value] = i
	h[j].tracker.pos[h[j].Value] = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*heapEntry)
	e.tracker.pos[e.Value] = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	delete(e.tracker.pos, e.Value)
	return e
}
