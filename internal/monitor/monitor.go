// Package monitor supports the paper's motivating use case — real-time
// anomaly detection over streams ("for many mission-critical tasks such
// as fraud/anomaly detection ... it is important to be able to answer
// queries in real-time") — by re-estimating a join aggregate on a fixed
// update cadence and raising/clearing an alert when the estimate crosses
// high/low watermarks. The two watermarks give hysteresis so estimator
// noise near a single threshold cannot flap the alert state.
package monitor

import (
	"fmt"

	"skimsketch/internal/core"
)

// State is the monitor's alert state.
type State int

const (
	// Normal means the estimate was at or below the low watermark, or
	// has not yet crossed the high one.
	Normal State = iota
	// Alert means the estimate crossed the high watermark and has not
	// yet fallen back to the low one.
	Alert
)

// String names the state.
func (s State) String() string {
	if s == Alert {
		return "ALERT"
	}
	return "normal"
}

// Sample is one periodic estimate.
type Sample struct {
	// At is the total number of updates (both streams) when the sample
	// was taken.
	At int64
	// Estimate is the join-size estimate.
	Estimate int64
	// State is the alert state after applying this sample.
	State State
}

// Config tunes a Monitor.
type Config struct {
	// Domain is the join value domain [0, Domain).
	Domain uint64
	// Every re-estimates after this many updates across both streams.
	Every int64
	// High raises the alert when the estimate reaches it; Low clears the
	// alert when the estimate falls to it or below. Low must not exceed
	// High.
	High, Low int64
	// OnTransition, if set, is called synchronously on every state
	// change with the triggering sample.
	OnTransition func(Sample)
	// HistoryLimit bounds the retained samples (default 256; the oldest
	// are dropped).
	HistoryLimit int
}

// Monitor maintains the sketch pair and the alert state machine.
type Monitor struct {
	cfg     Config
	f, g    *core.HashSketch
	updates int64
	state   State
	history []Sample
}

// New returns a monitor over a fresh sketch pair.
func New(sketchCfg core.Config, cfg Config) (*Monitor, error) {
	if cfg.Domain == 0 {
		return nil, fmt.Errorf("monitor: domain must be positive")
	}
	if cfg.Every <= 0 {
		return nil, fmt.Errorf("monitor: Every must be positive, got %d", cfg.Every)
	}
	if cfg.Low > cfg.High {
		return nil, fmt.Errorf("monitor: Low watermark %d above High %d", cfg.Low, cfg.High)
	}
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = 256
	}
	f, err := core.NewHashSketch(sketchCfg)
	if err != nil {
		return nil, err
	}
	g, err := core.NewHashSketch(sketchCfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg, f: f, g: g}, nil
}

// UpdateF folds one F-stream element and samples on cadence.
func (m *Monitor) UpdateF(value uint64, weight int64) error {
	m.f.Update(value, weight)
	return m.tick()
}

// UpdateG folds one G-stream element and samples on cadence.
func (m *Monitor) UpdateG(value uint64, weight int64) error {
	m.g.Update(value, weight)
	return m.tick()
}

func (m *Monitor) tick() error {
	m.updates++
	if m.updates%m.cfg.Every != 0 {
		return nil
	}
	_, err := m.Sample()
	return err
}

// Sample forces an immediate estimate, records it, and applies the state
// machine. It is also called automatically every cfg.Every updates.
func (m *Monitor) Sample() (Sample, error) {
	est, err := core.EstimateJoin(m.f, m.g, m.cfg.Domain, nil)
	if err != nil {
		return Sample{}, err
	}
	s := Sample{At: m.updates, Estimate: est.Total, State: m.state}
	switch m.state {
	case Normal:
		if est.Total >= m.cfg.High {
			s.State = Alert
		}
	case Alert:
		if est.Total <= m.cfg.Low {
			s.State = Normal
		}
	}
	transition := s.State != m.state
	m.state = s.State
	m.history = append(m.history, s)
	if len(m.history) > m.cfg.HistoryLimit {
		m.history = m.history[len(m.history)-m.cfg.HistoryLimit:]
	}
	if transition && m.cfg.OnTransition != nil {
		m.cfg.OnTransition(s)
	}
	return s, nil
}

// State returns the current alert state.
func (m *Monitor) State() State { return m.state }

// History returns a copy of the retained samples, oldest first.
func (m *Monitor) History() []Sample {
	out := make([]Sample, len(m.history))
	copy(out, m.history)
	return out
}

// Updates returns the total number of updates observed.
func (m *Monitor) Updates() int64 { return m.updates }

// Sketches exposes the underlying pair for composition (e.g. persisting
// via MarshalBinary).
func (m *Monitor) Sketches() (f, g *core.HashSketch) { return m.f, m.g }
