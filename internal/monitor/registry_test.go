package monitor

import (
	"strings"
	"testing"
)

func TestRegistryRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(WatchKey{Tenant: "", Query: "q"}, WatchConfig{High: 1}); err == nil {
		t.Error("empty tenant accepted")
	}
	if err := r.Register(WatchKey{Tenant: "t", Query: ""}, WatchConfig{High: 1}); err == nil {
		t.Error("empty query accepted")
	}
	if err := r.Register(WatchKey{Tenant: "t", Query: "q"}, WatchConfig{High: 5, Low: 9}); err == nil ||
		!strings.Contains(err.Error(), "watermark") {
		t.Errorf("inverted watermarks: %v", err)
	}
	key := WatchKey{Tenant: "t", Query: "q"}
	if err := r.Register(key, WatchConfig{High: 10, Low: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(key, WatchConfig{High: 99, Low: 0}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Restore(key, WatchConfig{High: 1}, State(42)); err == nil {
		t.Error("unknown state accepted")
	}
}

func TestRegistryHysteresis(t *testing.T) {
	r := NewRegistry()
	key := WatchKey{Tenant: "t", Query: "q"}
	if err := r.Register(key, WatchConfig{High: 100, Low: 40}); err != nil {
		t.Fatal(err)
	}
	// estimate, want state, want transition on this observation
	steps := []struct {
		est        int64
		want       State
		transition bool
	}{
		{50, Normal, false}, // between Low and High from Normal: stay
		{100, Alert, true},  // reaching High raises
		{60, Alert, false},  // falling into the band holds the alert
		{41, Alert, false},  // just above Low still holds
		{40, Normal, true},  // reaching Low clears
		{99, Normal, false}, // just under High stays normal
		{500, Alert, true},  // overshoot raises again
		{-10, Normal, true}, // deletions can drive the mass below Low
	}
	for i, s := range steps {
		st, flipped, err := r.Observe(key, s.est)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != s.want || flipped != s.transition {
			t.Fatalf("step %d (est %d): state %v flipped %v, want %v/%v",
				i, s.est, st.State, flipped, s.want, s.transition)
		}
		if st.LastEstimate != s.est {
			t.Fatalf("step %d: LastEstimate %d, want %d", i, st.LastEstimate, s.est)
		}
	}
	st, _ := r.Get(key)
	if st.Evaluations != int64(len(steps)) || st.Transitions != 4 {
		t.Fatalf("counters: %d evaluations %d transitions, want %d/4", st.Evaluations, st.Transitions, len(steps))
	}
}

func TestRegistryRestorePreservesAlert(t *testing.T) {
	r := NewRegistry()
	key := WatchKey{Tenant: "t", Query: "q"}
	if err := r.Restore(key, WatchConfig{High: 10, Low: 2}, Alert); err != nil {
		t.Fatal(err)
	}
	// An in-band estimate right after restore must NOT re-fire the raise
	// transition: the alert predates the restart.
	st, flipped, err := r.Observe(key, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Alert || flipped {
		t.Fatalf("restored alert did not hold: state %v flipped %v", st.State, flipped)
	}
}

func TestRegistryTenantIsolation(t *testing.T) {
	r := NewRegistry()
	a := WatchKey{Tenant: "alice", Query: "q"}
	b := WatchKey{Tenant: "bob", Query: "q"}
	if err := r.Register(a, WatchConfig{High: 10, Low: 0}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(b, WatchConfig{High: 10, Low: 0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Observe(a, 50); err != nil {
		t.Fatal(err)
	}
	stA, _ := r.Get(a)
	stB, _ := r.Get(b)
	if stA.State != Alert || stB.State != Normal {
		t.Fatalf("same query name shared alert state across tenants: alice %v bob %v", stA.State, stB.State)
	}
	if got := r.Tenants(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Tenants() = %v", got)
	}
	if got := r.List("alice"); len(got) != 1 || got[0].Tenant != "alice" {
		t.Fatalf("List(alice) = %+v", got)
	}
	if !r.Remove(a) {
		t.Fatal("Remove existing watch reported false")
	}
	if r.Remove(a) {
		t.Fatal("Remove missing watch reported true")
	}
	if r.Len() != 1 {
		t.Fatalf("Len() = %d after removing alice", r.Len())
	}
	if _, _, err := r.Observe(a, 1); err == nil {
		t.Fatal("Observe on removed watch succeeded")
	}
}

func TestRegistryListSorted(t *testing.T) {
	r := NewRegistry()
	for _, q := range []string{"zeta", "alpha", "mid"} {
		if err := r.Register(WatchKey{Tenant: "t", Query: q}, WatchConfig{High: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got := r.List("t")
	if len(got) != 3 || got[0].Query != "alpha" || got[1].Query != "mid" || got[2].Query != "zeta" {
		t.Fatalf("List not sorted by query: %+v", got)
	}
}
