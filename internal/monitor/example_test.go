package monitor_test

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/monitor"
)

// Watermark alerting on a join estimate: the alert raises when the
// correlation spikes and clears only after it falls through the low
// watermark (hysteresis).
func Example() {
	m, err := monitor.New(
		core.Config{Tables: 5, Buckets: 64, Seed: 3},
		monitor.Config{
			Domain: 256, Every: 1, High: 100, Low: 20,
			OnTransition: func(s monitor.Sample) {
				fmt.Printf("-> %s at estimate %d\n", s.State, s.Estimate)
			},
		})
	if err != nil {
		panic(err)
	}
	m.UpdateG(5, 10) // g_5 = 10
	m.UpdateF(5, 15) // estimate 150: raises
	m.UpdateF(5, -8) // estimate 70: holds (hysteresis)
	m.UpdateF(5, -6) // estimate 10: clears
	// Output:
	// -> ALERT at estimate 150
	// -> normal at estimate 10
}
