package monitor

import (
	"sync/atomic"
	"time"
)

// IngestMetrics is the counter set exported by the batched ingestion
// pipeline (engine workers, sketchd, expdriver). All fields are updated
// with atomics so the hot path never takes a lock; Snapshot assembles a
// consistent-enough view for dashboards and /stats.
type IngestMetrics struct {
	start time.Time

	// UpdatesEnqueued counts stream elements accepted into the pipeline.
	UpdatesEnqueued atomic.Int64
	// UpdatesApplied counts stream elements folded into synopses.
	UpdatesApplied atomic.Int64
	// Batches counts applied batches; together with UpdatesApplied it
	// yields the mean batch fill.
	Batches atomic.Int64
	// QueueDepth is the number of batch items currently sitting in worker
	// queues (a gauge: incremented on enqueue, decremented on apply).
	QueueDepth atomic.Int64
	// Flushes counts pipeline drain barriers (explicit Flush calls plus
	// the implicit quiesce before every query/snapshot/stats read).
	Flushes atomic.Int64
	// Rejected counts ingest admissions (single updates or whole batch
	// requests) refused for backpressure — full ingest queues — instead
	// of being enqueued: the 429 path in sketchd.
	Rejected atomic.Int64
}

// NewIngestMetrics returns a zeroed metric set with the rate clock
// started now.
func NewIngestMetrics() *IngestMetrics {
	return &IngestMetrics{start: time.Now()}
}

// IngestSnapshot is a point-in-time copy of the counters plus derived
// rates.
type IngestSnapshot struct {
	UpdatesEnqueued int64   `json:"updatesEnqueued"`
	UpdatesApplied  int64   `json:"updatesApplied"`
	Batches         int64   `json:"batches"`
	QueueDepth      int64   `json:"queueDepth"`
	Flushes         int64   `json:"flushes"`
	Rejected        int64   `json:"rejected"`
	AvgBatchFill    float64 `json:"avgBatchFill"`
	UpdatesPerSec   float64 `json:"updatesPerSec"`
	ElapsedSeconds  float64 `json:"elapsedSeconds"`
}

// Snapshot returns the current counter values and the derived mean batch
// fill and lifetime updates/sec rate.
func (m *IngestMetrics) Snapshot() IngestSnapshot {
	s := IngestSnapshot{
		UpdatesEnqueued: m.UpdatesEnqueued.Load(),
		UpdatesApplied:  m.UpdatesApplied.Load(),
		Batches:         m.Batches.Load(),
		QueueDepth:      m.QueueDepth.Load(),
		Flushes:         m.Flushes.Load(),
		Rejected:        m.Rejected.Load(),
	}
	if s.Batches > 0 {
		s.AvgBatchFill = float64(s.UpdatesApplied) / float64(s.Batches)
	}
	s.ElapsedSeconds = time.Since(m.start).Seconds()
	if s.ElapsedSeconds > 0 {
		s.UpdatesPerSec = float64(s.UpdatesApplied) / s.ElapsedSeconds
	}
	return s
}
