package monitor

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a tenant-keyed collection of standing threshold watches —
// the scaled-out form of Monitor's alert state machine. Where Monitor
// owns a private sketch pair, a registry watch owns only the hysteresis
// state: the estimate is produced elsewhere (the engine's epoch-keyed
// answer cache, so an unchanged query costs no re-estimation) and fed in
// via Observe. Keys are (tenant, query), so thousands of small tenants
// registering identical query names never share alert state.
type Registry struct {
	mu      sync.Mutex
	watches map[WatchKey]*watchEntry
}

// WatchKey identifies one standing watch: the owning tenant namespace
// and the query name inside it.
type WatchKey struct {
	Tenant string
	Query  string
}

// WatchConfig tunes one watch's hysteresis band. High raises the alert
// when the estimate reaches it; Low clears it when the estimate falls to
// it or below (Low <= High, the same contract as Monitor's Config).
type WatchConfig struct {
	High int64 `json:"high"`
	Low  int64 `json:"low"`
}

func (c WatchConfig) validate() error {
	if c.Low > c.High {
		return fmt.Errorf("monitor: Low watermark %d above High %d", c.Low, c.High)
	}
	return nil
}

// WatchStatus is the externally visible state of one watch.
type WatchStatus struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query"`
	High   int64  `json:"high"`
	Low    int64  `json:"low"`
	// State is the current alert state after the last Observe.
	State State `json:"-"`
	// Evaluations counts Observe calls; Transitions counts state flips.
	Evaluations int64 `json:"evaluations"`
	Transitions int64 `json:"transitions"`
	// LastEstimate is the estimate from the most recent Observe (0 until
	// the first evaluation; Evaluations disambiguates).
	LastEstimate int64 `json:"lastEstimate"`
}

type watchEntry struct {
	cfg    WatchConfig
	status WatchStatus
}

// NewRegistry returns an empty watch registry.
func NewRegistry() *Registry {
	return &Registry{watches: make(map[WatchKey]*watchEntry)}
}

// Register installs a watch. Registering an existing key is an error;
// remove first to re-arm with new watermarks.
func (r *Registry) Register(key WatchKey, cfg WatchConfig) error {
	return r.Restore(key, cfg, Normal)
}

// Restore installs a watch with an explicit starting state — the
// checkpoint-restore path, so an alert raised before a restart does not
// silently reset to normal (and re-fire its raise transition) after it.
func (r *Registry) Restore(key WatchKey, cfg WatchConfig, state State) error {
	if key.Tenant == "" || key.Query == "" {
		return fmt.Errorf("monitor: watch key needs tenant and query, got %+v", key)
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	if state != Normal && state != Alert {
		return fmt.Errorf("monitor: unknown watch state %d", int(state))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.watches[key]; ok {
		return fmt.Errorf("monitor: watch %s/%s already registered", key.Tenant, key.Query)
	}
	r.watches[key] = &watchEntry{cfg: cfg, status: WatchStatus{
		Tenant: key.Tenant, Query: key.Query,
		High: cfg.High, Low: cfg.Low, State: state,
	}}
	return nil
}

// Remove deletes a watch, reporting whether it existed.
func (r *Registry) Remove(key WatchKey) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.watches[key]
	delete(r.watches, key)
	return ok
}

// Observe feeds one fresh estimate into a watch's state machine and
// returns the resulting status plus whether this observation flipped the
// alert state.
func (r *Registry) Observe(key WatchKey, estimate int64) (WatchStatus, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.watches[key]
	if !ok {
		return WatchStatus{}, false, fmt.Errorf("monitor: unknown watch %s/%s", key.Tenant, key.Query)
	}
	next := w.status.State
	switch w.status.State {
	case Normal:
		if estimate >= w.cfg.High {
			next = Alert
		}
	case Alert:
		if estimate <= w.cfg.Low {
			next = Normal
		}
	}
	transition := next != w.status.State
	w.status.State = next
	w.status.Evaluations++
	w.status.LastEstimate = estimate
	if transition {
		w.status.Transitions++
	}
	return w.status, transition, nil
}

// Get returns one watch's status and whether it exists.
func (r *Registry) Get(key WatchKey) (WatchStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.watches[key]
	if !ok {
		return WatchStatus{}, false
	}
	return w.status, true
}

// List returns the watches of one tenant, sorted by query name.
func (r *Registry) List(tenant string) []WatchStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []WatchStatus
	for key, w := range r.watches {
		if key.Tenant == tenant {
			out = append(out, w.status)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// Tenants returns every tenant with at least one watch, sorted.
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	for key := range r.watches {
		seen[key.Tenant] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of registered watches.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.watches)
}
