package monitor

import (
	"testing"

	"skimsketch/internal/core"
)

func sketchCfg() core.Config { return core.Config{Tables: 5, Buckets: 64, Seed: 3} }

func TestNewValidation(t *testing.T) {
	if _, err := New(sketchCfg(), Config{Domain: 0, Every: 1}); err == nil {
		t.Fatal("expected domain error")
	}
	if _, err := New(sketchCfg(), Config{Domain: 16, Every: 0}); err == nil {
		t.Fatal("expected cadence error")
	}
	if _, err := New(sketchCfg(), Config{Domain: 16, Every: 1, High: 5, Low: 9}); err == nil {
		t.Fatal("expected watermark error")
	}
	if _, err := New(core.Config{}, Config{Domain: 16, Every: 1}); err == nil {
		t.Fatal("expected sketch-config error")
	}
}

func TestAlertRaiseAndClearWithHysteresis(t *testing.T) {
	var transitions []Sample
	m, err := New(sketchCfg(), Config{
		Domain: 64, Every: 1, High: 100, Low: 20,
		OnTransition: func(s Sample) { transitions = append(transitions, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// f_7 grows while g_7 = 10: estimate = 10·f_7 (single-value exactness).
	if err := m.UpdateG(7, 10); err != nil {
		t.Fatal(err)
	}
	if m.State() != Normal {
		t.Fatal("should start normal")
	}
	// f_7 = 5 → 50: still below High.
	if err := m.UpdateF(7, 5); err != nil {
		t.Fatal(err)
	}
	if m.State() != Normal {
		t.Fatal("50 < High must stay normal")
	}
	// f_7 = 15 → 150: crosses High.
	if err := m.UpdateF(7, 10); err != nil {
		t.Fatal(err)
	}
	if m.State() != Alert {
		t.Fatal("150 ≥ High must alert")
	}
	// Drop to 50: inside the hysteresis band, alert holds.
	if err := m.UpdateF(7, -10); err != nil {
		t.Fatal(err)
	}
	if m.State() != Alert {
		t.Fatal("50 > Low must hold the alert")
	}
	// Drop to 10: clears.
	if err := m.UpdateF(7, -4); err != nil {
		t.Fatal(err)
	}
	if m.State() != Normal {
		t.Fatal("10 ≤ Low must clear")
	}
	if len(transitions) != 2 || transitions[0].State != Alert || transitions[1].State != Normal {
		t.Fatalf("transitions = %+v", transitions)
	}
}

func TestCadence(t *testing.T) {
	samples := 0
	m, err := New(sketchCfg(), Config{Domain: 64, Every: 10, High: 1 << 60,
		OnTransition: func(Sample) {}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if err := m.UpdateF(uint64(i%16), 1); err != nil {
			t.Fatal(err)
		}
	}
	samples = len(m.History())
	if samples != 3 {
		t.Fatalf("got %d samples for 35 updates at Every=10, want 3", samples)
	}
	if m.Updates() != 35 {
		t.Fatalf("Updates = %d", m.Updates())
	}
}

func TestHistoryBounded(t *testing.T) {
	m, err := New(sketchCfg(), Config{Domain: 64, Every: 1, High: 1 << 60, HistoryLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.UpdateF(1, 1)
	}
	h := m.History()
	if len(h) != 5 {
		t.Fatalf("history length %d, want 5", len(h))
	}
	if h[4].At != 20 {
		t.Fatalf("latest sample At = %d, want 20", h[4].At)
	}
	// History must be a copy.
	h[0].Estimate = -1
	if m.History()[0].Estimate == -1 {
		t.Fatal("History must return a copy")
	}
}

func TestManualSample(t *testing.T) {
	m, err := New(sketchCfg(), Config{Domain: 64, Every: 1000, High: 10})
	if err != nil {
		t.Fatal(err)
	}
	m.UpdateF(3, 4)
	m.UpdateG(3, 4)
	s, err := m.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if s.Estimate != 16 {
		t.Fatalf("estimate = %d, want 16", s.Estimate)
	}
	if s.State != Alert {
		t.Fatal("16 ≥ High must alert")
	}
	f, g := m.Sketches()
	if f.NetCount() != 4 || g.NetCount() != 4 {
		t.Fatal("Sketches must expose the pair")
	}
}

func TestStateString(t *testing.T) {
	if Normal.String() != "normal" || Alert.String() != "ALERT" {
		t.Fatal("state names")
	}
}
