// Package engine implements the stream query-processing architecture of
// the paper's Figure 1: named streams flow in; registered continuous
// queries of the form AGG(F ⋈ G) — COUNT or SUM, with optional selection
// predicates and sliding windows — are maintained as sketch synopses;
// approximate answers are served on demand.
//
// The engine applies synopsis sharing in the spirit of the companion
// paper ("Sketch-Based Multi-Query Processing over Data Streams", Dobra
// et al.): two query sides over the same stream with the same predicate,
// window and sketch configuration share a single synopsis, so the
// per-element work and the memory footprint grow with the number of
// *distinct* synopses, not the number of queries. Reference counts
// garbage-collect synopses when the last query using them is removed.
//
// Every piece of engine state is scoped to a tenant namespace: synopsis
// identity is (tenant, stream, predicate, window, config), and streams,
// predicates, queries, standing watches and the answer cache are all
// keyed by (tenant, name). One engine therefore cheaply hosts thousands
// of independent per-tenant registries — the skimmed-sketch synopses are
// tiny linear summaries — behind a single shared ingest pipeline, with
// per-tenant quotas on synopsis memory and queue share (Quota). The
// un-suffixed Engine methods operate on the DefaultTenant namespace, so
// single-tenant callers are unaffected; multi-tenant callers go through
// the Tenant handle.
//
// All synopses default to one engine-wide sketch configuration (one
// seed), which makes every pair of synopses join-compatible; a query may
// override the configuration for both of its sides at the cost of a
// dedicated synopsis pair.
package engine

import (
	"fmt"
	"sync"

	"skimsketch/internal/core"
	"skimsketch/internal/monitor"
	"skimsketch/internal/stream"
	"skimsketch/internal/window"
)

// Aggregate selects the aggregate operator of a query.
type Aggregate int

const (
	// Count is COUNT(F ⋈ G) = Σ_v f_v·g_v.
	Count Aggregate = iota
	// Sum is SUM over the right side's measure: each right-stream update's
	// weight is interpreted as a measure (SUM-as-weighted-COUNT,
	// Section 2.1 of the paper).
	Sum
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Predicate filters stream elements before they reach a synopsis.
type Predicate func(value uint64, weight int64) bool

// Side describes one input of a join query.
type Side struct {
	// Stream is the declared stream name.
	Stream string
	// Predicate optionally names a registered predicate applied to this
	// side before sketching (predicate pushdown).
	Predicate string
	// WindowLen, if positive, restricts this side to (approximately) its
	// most recent WindowLen elements, tiled into WindowBuckets buckets.
	WindowLen     int64
	WindowBuckets int
}

// QuerySpec registers one continuous query.
type QuerySpec struct {
	Name  string
	Agg   Aggregate
	Left  Side
	Right Side
	// SketchConfig optionally overrides the engine default for this
	// query's pair of synopses. Seed and dimensions apply to both sides.
	SketchConfig *core.Config
}

// Answer is one approximate query result.
type Answer struct {
	Query    string
	Agg      Aggregate
	Estimate int64
	// Detail is the decomposed skimmed-sketch estimate.
	Detail core.Estimate
}

// Options configures an Engine.
type Options struct {
	// SketchConfig is the default synopsis configuration.
	SketchConfig core.Config
	// QueryWorkers parallelizes estimation inside Answer: > 1 uses that
	// many goroutines for the skim scan and the per-table medians, 0 or 1
	// estimates sequentially, < 0 uses one goroutine per CPU. Answers are
	// bit-identical for every setting (core's parallel-skim exactness
	// guarantee), so this trades nothing but CPU for latency.
	QueryWorkers int
	// DefaultQuota is applied to every tenant that has no explicit
	// SetQuota override. The zero value is unlimited.
	DefaultQuota Quota
}

// Engine is the stream query processor. All methods are safe for
// concurrent use; updates are serialized internally unless the batched
// ingestion pipeline is running (StartIngest), in which case batches are
// applied concurrently by shard workers and reads quiesce the pipeline
// first.
type Engine struct {
	mu sync.Mutex
	// applyMu arbitrates synopsis counter access: shard workers hold the
	// read side while applying (their synopsis sets are disjoint, so
	// sharing it is safe), and every reader or inline applier holds the
	// write side — an inverted RWMutex.
	applyMu      sync.RWMutex
	defaults     core.Config
	defaultQuota Quota
	tenants      map[string]*tenantState
	streams      map[nsKey]*streamInfo
	predicates   map[nsKey]Predicate
	synopses     map[synKey]*synEntry
	queries      map[nsKey]*queryState

	// Batched-ingestion state (see ingest.go). nextSynID hands each
	// synopsis its shard-hash identity; routes caches per-(tenant, stream)
	// shard fan-out lists and is dropped whenever the synopsis set or the
	// shard count changes.
	ing          *ingester
	nextSynID    int
	routes       map[nsKey][][]*synEntry
	routesShards int
	metrics      *monitor.IngestMetrics

	// Query-path state (see Answer): the number of estimation workers,
	// the per-(tenant, query) answer cache keyed on the synopsis epochs
	// captured at snapshot time, and its hit/miss counters (engine-wide;
	// each tenant also counts its own). All guarded by e.mu.
	queryWorkers int
	answers      map[nsKey]cachedAnswer
	cacheHits    int64
	cacheMisses  int64

	// watches is the tenant-keyed standing-query registry (watch.go);
	// its own lock nests strictly inside e.mu.
	watches *monitor.Registry
}

// nsKey scopes a name (stream, predicate, query, cached answer) to its
// tenant namespace.
type nsKey struct {
	tenant string
	name   string
}

// cachedAnswer memoizes one query's last computed answer together with
// the update epochs of its two synopses at snapshot time. Any update
// routed to either synopsis bumps that synopsis' epoch, so an epoch
// mismatch is exactly "the cache entry is stale".
type cachedAnswer struct {
	leftEpoch, rightEpoch uint64
	ans                   Answer
}

type streamInfo struct {
	domain uint64
	count  int64 // updates received
}

// synKey identifies a shareable synopsis. The tenant is part of the
// identity: two tenants registering byte-identical sides get two
// independent synopses, never a shared one.
type synKey struct {
	tenant        string
	stream        string
	predicate     string
	windowLen     int64
	windowBuckets int
	cfg           core.Config
}

type synEntry struct {
	key  synKey
	id   int // creation-order identity; shard = id mod workers
	refs int
	pred Predicate // nil means accept all
	// allocWords is the synopsis' word footprint at creation, charged
	// against (and refunded to) its tenant's memory quota.
	allocWords int
	// Exactly one of sketch/win is set.
	sketch *core.HashSketch
	win    *window.Window
	// epoch counts update deliveries to this synopsis. It is written only
	// under the apply lock's ownership discipline (a synopsis belongs to
	// exactly one shard worker; inline appliers hold the exclusive side)
	// and read under the exclusive side, so plain arithmetic is
	// race-free. Answer snapshots it to key the answer cache.
	epoch uint64
}

func (e *synEntry) update(v uint64, w int64) {
	e.epoch++
	if e.pred != nil && !e.pred(v, w) {
		return
	}
	if e.win != nil {
		e.win.Update(v, w)
		return
	}
	e.sketch.Update(v, w)
}

// updateBatch folds a whole batch, delegating to the synopsis' batched
// update when no predicate intervenes. Exactly equivalent to calling
// update once per element in order.
func (e *synEntry) updateBatch(batch []stream.Update) {
	if e.pred == nil {
		e.epoch += uint64(len(batch))
		if e.win != nil {
			e.win.UpdateBatch(batch)
		} else {
			e.sketch.UpdateBatch(batch)
		}
		return
	}
	for _, u := range batch {
		e.update(u.Value, u.Weight)
	}
}

// materialize returns a sketch suitable for estimation. For a plain
// synopsis this is the live sketch itself; use snapshot when the result
// must outlive the apply lock.
func (e *synEntry) materialize() *core.HashSketch {
	if e.win != nil {
		return e.win.Combined()
	}
	return e.sketch
}

// snapshot returns a private copy suitable for estimation after the
// apply lock is released: a window's Combined is already a fresh
// roll-up, a plain synopsis is cloned. Callers hold the exclusive apply
// lock for the duration of the copy only.
func (e *synEntry) snapshot() *core.HashSketch {
	if e.win != nil {
		return e.win.Combined()
	}
	return e.sketch.Clone()
}

func (e *synEntry) words() int {
	if e.win != nil {
		return e.win.Words()
	}
	return e.sketch.Words()
}

type queryState struct {
	spec        QuerySpec
	left, right *synEntry
	domain      uint64
}

// New returns an empty engine.
func New(opts Options) (*Engine, error) {
	if err := opts.SketchConfig.Validate(); err != nil {
		return nil, fmt.Errorf("engine: default sketch config: %w", err)
	}
	if err := opts.DefaultQuota.validate(); err != nil {
		return nil, fmt.Errorf("engine: default quota: %w", err)
	}
	return &Engine{
		defaults:     opts.SketchConfig,
		defaultQuota: opts.DefaultQuota,
		tenants:      make(map[string]*tenantState),
		streams:      make(map[nsKey]*streamInfo),
		predicates:   make(map[nsKey]Predicate),
		synopses:     make(map[synKey]*synEntry),
		queries:      make(map[nsKey]*queryState),
		metrics:      monitor.NewIngestMetrics(),
		queryWorkers: opts.QueryWorkers,
		answers:      make(map[nsKey]cachedAnswer),
		watches:      monitor.NewRegistry(),
	}, nil
}

// DeclareStream registers a stream name with its value domain [0, domain)
// in the default tenant.
func (e *Engine) DeclareStream(name string, domain uint64) error {
	return e.Tenant(DefaultTenant).DeclareStream(name, domain)
}

// RegisterPredicate names a selection predicate for use in query sides of
// the default tenant.
func (e *Engine) RegisterPredicate(name string, p Predicate) error {
	return e.Tenant(DefaultTenant).RegisterPredicate(name, p)
}

// RegisterQuery installs a continuous query in the default tenant.
// Synopses are created (or shared) immediately; elements arriving before
// registration are not reflected in the new synopses.
func (e *Engine) RegisterQuery(spec QuerySpec) error {
	return e.Tenant(DefaultTenant).RegisterQuery(spec)
}

// registerLocked is tenant-scoped query registration with e.mu held
// (shared with Restore).
func (e *Engine) registerLocked(tenant string, spec QuerySpec) error {
	if spec.Name == "" {
		return fmt.Errorf("engine: query name must be non-empty")
	}
	if spec.Agg != Count && spec.Agg != Sum {
		return fmt.Errorf("engine: query %q: unsupported aggregate %v", spec.Name, spec.Agg)
	}
	qk := nsKey{tenant, spec.Name}
	if _, ok := e.queries[qk]; ok {
		return fmt.Errorf("engine: query %q already registered", spec.Name)
	}
	cfg := e.defaults
	if spec.SketchConfig != nil {
		if err := spec.SketchConfig.Validate(); err != nil {
			return fmt.Errorf("engine: query %q: %w", spec.Name, err)
		}
		cfg = *spec.SketchConfig
	}
	lDomain, err := e.sideDomain(tenant, spec.Left)
	if err != nil {
		return fmt.Errorf("engine: query %q: left: %w", spec.Name, err)
	}
	rDomain, err := e.sideDomain(tenant, spec.Right)
	if err != nil {
		return fmt.Errorf("engine: query %q: right: %w", spec.Name, err)
	}
	domain := lDomain
	if rDomain > domain {
		domain = rDomain
	}

	left, err := e.acquireSynopsis(tenant, spec.Left, cfg)
	if err != nil {
		return fmt.Errorf("engine: query %q: left: %w", spec.Name, err)
	}
	right, err := e.acquireSynopsis(tenant, spec.Right, cfg)
	if err != nil {
		e.release(left)
		return fmt.Errorf("engine: query %q: right: %w", spec.Name, err)
	}
	e.queries[qk] = &queryState{spec: spec, left: left, right: right, domain: domain}
	// A fresh synopsis pair restarts at epoch 0; drop any answer cached
	// under this name so it cannot masquerade as current.
	delete(e.answers, qk)
	return nil
}

func (e *Engine) sideDomain(tenant string, s Side) (uint64, error) {
	info, ok := e.streams[nsKey{tenant, s.Stream}]
	if !ok {
		return 0, fmt.Errorf("unknown stream %q", s.Stream)
	}
	return info.domain, nil
}

// acquireSynopsis returns a shared or fresh synopsis for the side,
// charging a fresh one against the tenant's memory quota. Callers hold
// e.mu.
func (e *Engine) acquireSynopsis(tenant string, s Side, cfg core.Config) (*synEntry, error) {
	var pred Predicate
	if s.Predicate != "" {
		p, ok := e.predicates[nsKey{tenant, s.Predicate}]
		if !ok {
			return nil, fmt.Errorf("unknown predicate %q", s.Predicate)
		}
		pred = p
	}
	key := synKey{
		tenant:        tenant,
		stream:        s.Stream,
		predicate:     s.Predicate,
		windowLen:     s.WindowLen,
		windowBuckets: s.WindowBuckets,
		cfg:           cfg,
	}
	if entry, ok := e.synopses[key]; ok {
		entry.refs++
		return entry, nil
	}
	entry := &synEntry{key: key, id: e.nextSynID, refs: 1, pred: pred}
	if s.WindowLen > 0 {
		w, err := window.New(s.WindowLen, s.WindowBuckets, cfg)
		if err != nil {
			return nil, err
		}
		entry.win = w
	} else {
		if s.WindowBuckets != 0 {
			return nil, fmt.Errorf("WindowBuckets set without WindowLen")
		}
		sk, err := core.NewHashSketch(cfg)
		if err != nil {
			return nil, err
		}
		entry.sketch = sk
	}
	entry.allocWords = entry.words()
	ts := e.tenantLocked(tenant)
	if max := ts.quota.MaxSynopsisWords; max > 0 && ts.words+entry.allocWords > max {
		return nil, fmt.Errorf("engine: tenant %q: synopsis memory %d + %d words over quota %d: %w",
			tenant, ts.words, entry.allocWords, max, ErrQuotaExceeded)
	}
	ts.words += entry.allocWords
	e.nextSynID++
	e.routes = nil // the synopsis set is changing
	e.synopses[key] = entry
	return entry, nil
}

func (e *Engine) release(entry *synEntry) {
	entry.refs--
	if entry.refs <= 0 {
		delete(e.synopses, entry.key)
		e.tenantLocked(entry.key.tenant).words -= entry.allocWords
		e.routes = nil
	}
}

// RemoveQuery deregisters a default-tenant query, releasing (and possibly
// freeing) its synopses.
func (e *Engine) RemoveQuery(name string) error {
	return e.Tenant(DefaultTenant).RemoveQuery(name)
}

// Update routes one default-tenant stream element to every synopsis
// attached to the stream. For SUM queries the weight carries the measure;
// for plain COUNT streams use weight ±1.
func (e *Engine) Update(streamName string, value uint64, weight int64) error {
	return e.Tenant(DefaultTenant).Update(streamName, value, weight)
}

// Answer serves the current approximate answer of a registered
// default-tenant query. If the ingestion pipeline is running it is
// drained first, so the answer reflects every batch enqueued before the
// call.
//
// The quiesce/apply lock is held only long enough to clone the two
// synopses and capture their update epochs; the estimation itself — the
// expensive O(domain·tables) skim scan — runs outside every lock, so
// ingestion proceeds concurrently with a long-running Answer. If both
// epochs match a previously computed answer, that answer is returned
// without re-estimating (the per-(tenant, query) answer cache); any
// update routed to either synopsis bumps its epoch and so invalidates
// the entry.
func (e *Engine) Answer(name string) (Answer, error) {
	return e.Tenant(DefaultTenant).Answer(name)
}

func (e *Engine) answerTenant(tenant, name string) (Answer, error) {
	release := e.readQuiesce()
	qk := nsKey{tenant, name}
	q, ok := e.queries[qk]
	if !ok {
		release()
		return Answer{}, fmt.Errorf("engine: unknown query %q", name)
	}
	ts := e.tenantLocked(tenant)
	le, re := q.left.epoch, q.right.epoch
	if c, ok := e.answers[qk]; ok && c.leftEpoch == le && c.rightEpoch == re {
		e.cacheHits++
		ts.cacheHits++
		release()
		return c.ans, nil
	}
	e.cacheMisses++
	ts.cacheMisses++
	fs, gs := q.left.snapshot(), q.right.snapshot()
	domain, workers, agg := q.domain, e.queryWorkers, q.spec.Agg
	release()

	est, err := core.EstimateJoin(fs, gs, domain, &core.Options{Workers: workers})
	if err != nil {
		return Answer{}, fmt.Errorf("engine: query %q: %w", name, err)
	}
	ans := Answer{Query: name, Agg: agg, Estimate: est.Total, Detail: est}

	// Store under e.mu, but only if the query we snapshotted is still the
	// registered one — a concurrent Remove+Register must not resurrect an
	// answer computed over the old synopses.
	e.mu.Lock()
	if cur, ok := e.queries[qk]; ok && cur == q {
		e.answers[qk] = cachedAnswer{leftEpoch: le, rightEpoch: re, ans: ans}
	}
	e.mu.Unlock()
	return ans, nil
}

// QuerySnapshot is a quiesce-consistent view of one query's synopsis
// pair, cloned out of the engine for shipping: the slim, query-side
// state a cluster shard exports to the merger tier (SF-sketch's
// fat/slim split — the fat update-side synopsis stays here, the slim
// linear summary travels). Because sketches are linear, merging the
// Left (resp. Right) snapshots of the same query from every shard
// yields exactly the synopsis a single node would have maintained over
// the union of their streams.
type QuerySnapshot struct {
	Query  string
	Agg    Aggregate
	Domain uint64
	// Left and Right are private clones; mutating them never touches the
	// live synopses.
	Left, Right *core.HashSketch
	// LeftEpoch/RightEpoch are the synopses' update epochs at snapshot
	// time — a cheap staleness token for pullers (an unchanged epoch pair
	// means an unchanged answer).
	LeftEpoch, RightEpoch uint64
}

// QuerySketches snapshots a query's two synopsis sketches. Like Answer
// it drains the ingestion pipeline first and holds the quiesce lock only
// for the clone, so a slow puller never stalls ingestion. Windowed sides
// are rolled up via the window's Combined sketch.
func (t *Tenant) QuerySketches(name string) (QuerySnapshot, error) {
	e := t.e
	release := e.readQuiesce()
	q, ok := e.queries[nsKey{t.name, name}]
	if !ok {
		release()
		return QuerySnapshot{}, fmt.Errorf("engine: unknown query %q", name)
	}
	qs := QuerySnapshot{
		Query:      name,
		Agg:        q.spec.Agg,
		Domain:     q.domain,
		LeftEpoch:  q.left.epoch,
		RightEpoch: q.right.epoch,
		Left:       q.left.snapshot(),
		Right:      q.right.snapshot(),
	}
	release()
	return qs, nil
}

// Stats summarizes the engine state across every tenant.
type Stats struct {
	Streams      int
	Queries      int
	Synopses     int
	SynopsisRefs int // total query-side references; > Synopses means sharing
	TotalWords   int
	// UpdateCounts is keyed by bare stream name for the default tenant
	// (unchanged from the single-tenant engine) and by "tenant/stream"
	// for every other tenant.
	UpdateCounts map[string]int64
	// QueryWorkers is the configured estimation parallelism (Options).
	QueryWorkers int
	// AnswerCacheHits/Misses count Answer calls served from the epoch-
	// keyed answer cache versus freshly estimated, summed over tenants.
	AnswerCacheHits   int64
	AnswerCacheMisses int64
	// Watches is the number of standing watches across all tenants.
	Watches int
	// Tenants breaks the same figures down per tenant namespace.
	Tenants map[string]TenantStats
}

// Stats reports synopsis sharing and memory usage. Like Answer, it
// drains the ingestion pipeline first.
func (e *Engine) Stats() Stats {
	defer e.readQuiesce()()
	st := Stats{
		Streams:           len(e.streams),
		Queries:           len(e.queries),
		Synopses:          len(e.synopses),
		UpdateCounts:      make(map[string]int64, len(e.streams)),
		QueryWorkers:      e.queryWorkers,
		AnswerCacheHits:   e.cacheHits,
		AnswerCacheMisses: e.cacheMisses,
		Watches:           e.watches.Len(),
		Tenants:           make(map[string]TenantStats),
	}
	for key, info := range e.streams {
		name := key.name
		if key.tenant != DefaultTenant {
			name = key.tenant + "/" + key.name
		}
		st.UpdateCounts[name] = info.count
	}
	for _, entry := range e.synopses {
		st.SynopsisRefs += entry.refs
		st.TotalWords += entry.words()
	}
	for name := range e.tenantNamesLocked() {
		st.Tenants[name] = e.tenantStatsLocked(name)
	}
	return st
}

// Queries returns the default tenant's registered query names, sorted.
func (e *Engine) Queries() []string {
	return e.Tenant(DefaultTenant).Queries()
}

// Streams returns the default tenant's declared stream names, sorted.
func (e *Engine) Streams() []string {
	return e.Tenant(DefaultTenant).Streams()
}

// tenantNamesLocked is the set of tenants with any state: an explicit
// quota/counter record, or a stream, predicate, query or watch scoped to
// them. Callers hold e.mu.
func (e *Engine) tenantNamesLocked() map[string]struct{} {
	names := make(map[string]struct{}, len(e.tenants))
	for name := range e.tenants {
		names[name] = struct{}{}
	}
	for key := range e.streams {
		names[key.tenant] = struct{}{}
	}
	for key := range e.predicates {
		names[key.tenant] = struct{}{}
	}
	for _, t := range e.watches.Tenants() {
		names[t] = struct{}{}
	}
	return names
}
