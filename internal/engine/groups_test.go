package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"skimsketch/internal/stream"
)

func sameValueBatch(n int, value uint64) []stream.Update {
	b := make([]stream.Update, n)
	for i := range b {
		b[i] = stream.Update{Value: value, Weight: 1}
	}
	return b
}

// TestIngestGroupsQuotaAtomic is the engine-layer regression test for
// the partial-batch 429 bug: a two-group request whose SUM exceeds the
// queue-share quota — while each group alone fits — must admit NOTHING.
// The pre-fix per-group admission applied the first group and rejected
// the second, so a client retry double-counted the first group.
func TestIngestGroupsQuotaAtomic(t *testing.T) {
	e := mustEngine(t)
	tn := e.Tenant("capped")
	setupTenant(t, tn)
	if err := e.SetQuota("capped", Quota{MaxPendingUpdates: 150}); err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 2, BatchSize: 16, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	defer e.StopIngest()

	groups := []stream.Group{
		{Name: "F", Updates: sameValueBatch(100, 7)},
		{Name: "G", Updates: sameValueBatch(100, 7)},
	}
	err := tn.IngestGroups(groups, nil)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("200-update request against quota 150: want ErrQuotaExceeded, got %v", err)
	}
	e.Flush()
	st := tn.Stats()
	if st.UpdateCounts["F"] != 0 || st.UpdateCounts["G"] != 0 {
		t.Fatalf("rejected request partially applied: F=%d G=%d, want 0/0",
			st.UpdateCounts["F"], st.UpdateCounts["G"])
	}
	if st.Rejected != 200 {
		t.Fatalf("rejected counter %d, want 200 (the whole request)", st.Rejected)
	}
	if st.PendingUpdates != 0 {
		t.Fatalf("pending gauge %d after rejection, want 0", st.PendingUpdates)
	}

	// The retry contract: after the rejection the client resends the WHOLE
	// request; with room it lands exactly once.
	if err := e.SetQuota("capped", Quota{MaxPendingUpdates: 500}); err != nil {
		t.Fatal(err)
	}
	if err := tn.IngestGroups(groups, nil); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	st = tn.Stats()
	if st.UpdateCounts["F"] != 100 || st.UpdateCounts["G"] != 100 {
		t.Fatalf("retried request counts F=%d G=%d, want 100/100",
			st.UpdateCounts["F"], st.UpdateCounts["G"])
	}
	// COUNT(F ⋈ G) with all mass on one value is exactly 100·100.
	ans, err := tn.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 100*100 {
		t.Fatalf("estimate %d, want exactly %d", ans.Estimate, 100*100)
	}
}

// TestIngestGroupsValidationAtomic: a request whose LATER group fails
// validation (unknown stream, out-of-domain value) applies nothing,
// in both the synchronous and the pipelined mode.
func TestIngestGroupsValidationAtomic(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		e := mustEngine(t)
		tn := e.Tenant("v")
		setupTenant(t, tn)
		if pipelined {
			if err := e.StartIngest(IngestConfig{Workers: 2}); err != nil {
				t.Fatal(err)
			}
		}
		err := tn.IngestGroups([]stream.Group{
			{Name: "F", Updates: sameValueBatch(10, 1)},
			{Name: "missing", Updates: sameValueBatch(1, 1)},
		}, nil)
		if err == nil {
			t.Fatalf("pipelined=%v: unknown stream in second group not rejected", pipelined)
		}
		err = tn.IngestGroups([]stream.Group{
			{Name: "F", Updates: sameValueBatch(10, 1)},
			{Name: "G", Updates: []stream.Update{{Value: 99999, Weight: 1}}},
		}, nil)
		if err == nil {
			t.Fatalf("pipelined=%v: out-of-domain value in second group not rejected", pipelined)
		}
		if pipelined {
			e.Flush()
		}
		st := tn.Stats()
		if st.UpdateCounts["F"] != 0 || st.UpdateCounts["G"] != 0 {
			t.Fatalf("pipelined=%v: invalid request partially applied: %+v", pipelined, st.UpdateCounts)
		}
		if pipelined {
			e.StopIngest()
		}
	}
}

// TestIngestGroupsRelease pins the buffer-ownership contract: release
// fires exactly once, only after every update is folded into every
// synopsis — at which point the caller may overwrite the buffers
// without corrupting what was ingested.
func TestIngestGroupsRelease(t *testing.T) {
	e := mustEngine(t)
	tn := e.Tenant("r")
	setupTenant(t, tn)
	if err := e.StartIngest(IngestConfig{Workers: 2, BatchSize: 8, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	defer e.StopIngest()

	buf := sameValueBatch(64, 7)
	groups := []stream.Group{
		{Name: "F", Updates: buf[:32]},
		{Name: "G", Updates: buf[32:]},
	}
	var calls atomic.Int32
	released := make(chan struct{})
	if err := tn.IngestGroups(groups, func() {
		if calls.Add(1) == 1 {
			close(released)
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("release callback never fired")
	}
	// The engine promised it holds no reference: trashing the buffer must
	// not affect what was ingested.
	for i := range buf {
		buf[i] = stream.Update{Value: 999, Weight: -5}
	}
	e.Flush()
	if got := calls.Load(); got != 1 {
		t.Fatalf("release called %d times, want exactly 1", got)
	}
	ans, err := tn.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 32*32 {
		t.Fatalf("estimate %d, want exactly %d (buffer reuse corrupted ingest?)", ans.Estimate, 32*32)
	}

	// Error path: the engine retains nothing and must NOT call release.
	var badCalls atomic.Int32
	err = tn.IngestGroups([]stream.Group{{Name: "missing", Updates: sameValueBatch(1, 0)}},
		func() { badCalls.Add(1) })
	if err == nil || badCalls.Load() != 0 {
		t.Fatalf("failed request: err=%v releaseCalls=%d, want error and 0 calls", err, badCalls.Load())
	}

	// Empty request: released immediately.
	var emptyCalls atomic.Int32
	if err := tn.IngestGroups(nil, func() { emptyCalls.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if emptyCalls.Load() != 1 {
		t.Fatalf("empty request release calls %d, want 1", emptyCalls.Load())
	}
}

// TestIngestGroupsReleaseSyncAndUnlistened covers the two paths that
// never enqueue: the synchronous (no pipeline) mode, and a stream no
// synopsis listens to.
func TestIngestGroupsReleaseSyncAndUnlistened(t *testing.T) {
	e := mustEngine(t)
	tn := e.Tenant("s")
	setupTenant(t, tn)
	var calls atomic.Int32
	if err := tn.IngestGroups([]stream.Group{
		{Name: "F", Updates: sameValueBatch(5, 1)},
	}, func() { calls.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("sync-mode release calls %d, want 1", calls.Load())
	}

	// A declared stream with no listening synopsis, under a pipeline.
	if err := tn.DeclareStream("idle", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer e.StopIngest()
	released := make(chan struct{})
	if err := tn.IngestGroups([]stream.Group{
		{Name: "idle", Updates: sameValueBatch(9, 3)},
	}, func() { close(released) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("release never fired for unlistened stream")
	}
	e.Flush()
	if got := tn.Stats().UpdateCounts["idle"]; got != 9 {
		t.Fatalf("unlistened stream count %d, want 9", got)
	}
}

// TestIngestGroupsMatchesSequentialUpdates: one multi-group request is
// bit-identical to element-wise Update calls in order.
func TestIngestGroupsMatchesSequentialUpdates(t *testing.T) {
	mk := func() (*Engine, *Tenant) {
		e := mustEngine(t)
		tn := e.Tenant("eq")
		setupTenant(t, tn)
		return e, tn
	}
	e1, t1 := mk()
	_, t2 := mk()

	var fups, gups []stream.Update
	for i := 0; i < 200; i++ {
		fups = append(fups, stream.Update{Value: uint64(i * 13 % 1024), Weight: int64(i%5) - 1})
		gups = append(gups, stream.Update{Value: uint64(i * 7 % 1024), Weight: 1})
	}

	if err := e1.StartIngest(IngestConfig{Workers: 3, BatchSize: 32}); err != nil {
		t.Fatal(err)
	}
	if err := t1.IngestGroups([]stream.Group{
		{Name: "F", Updates: fups},
		{Name: "G", Updates: gups},
	}, nil); err != nil {
		t.Fatal(err)
	}
	e1.Flush()
	e1.StopIngest()

	for _, u := range fups {
		if err := t2.Update("F", u.Value, u.Weight); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range gups {
		if err := t2.Update("G", u.Value, u.Weight); err != nil {
			t.Fatal(err)
		}
	}

	a1, err := t1.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := t2.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if a1.Estimate != a2.Estimate {
		t.Fatalf("grouped ingest estimate %d != sequential %d", a1.Estimate, a2.Estimate)
	}
}
