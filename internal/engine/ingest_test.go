package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// ingestTestEngine builds an engine with streams F and G, a plain COUNT
// query, a predicated query and a windowed query, so batches exercise
// every synopsis flavour (sketch, predicate-filtered sketch, window).
func ingestTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := mustEngine(t)
	if err := e.DeclareStream("F", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("G", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPredicate("small", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []QuerySpec{
		{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}},
		{Name: "qp", Agg: Count, Left: Side{Stream: "F", Predicate: "small"}, Right: Side{Stream: "G"}},
		{Name: "qw", Agg: Count, Left: Side{Stream: "F", WindowLen: 4000, WindowBuckets: 4}, Right: Side{Stream: "G"}},
	} {
		if err := e.RegisterQuery(spec); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// ingestWorkload draws a deterministic pair of update streams.
func ingestWorkload(t *testing.T, n int) (fs, gs []stream.Update) {
	t.Helper()
	zf, err := workload.NewZipf(1024, 1.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	zg, err := workload.NewZipf(1024, 1.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	return workload.MakeStream(zf, n), workload.MakeStream(zg, n)
}

// answers collects every query's estimate.
func answers(t *testing.T, e *Engine) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, q := range e.Queries() {
		a, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		out[q] = a.Estimate
	}
	return out
}

// TestIngestBatchSequentialEquivalence pins the exactness guarantee at
// the engine level: per-element Update, synchronous IngestBatch, and the
// concurrent pipeline must all produce identical answers for every query
// flavour.
func TestIngestBatchSequentialEquivalence(t *testing.T) {
	const n = 6000
	fs, gs := ingestWorkload(t, n)

	seq := ingestTestEngine(t)
	for _, u := range fs {
		if err := seq.Update("F", u.Value, u.Weight); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range gs {
		if err := seq.Update("G", u.Value, u.Weight); err != nil {
			t.Fatal(err)
		}
	}
	want := answers(t, seq)

	feedBatched := func(e *Engine, chunk int) {
		for off := 0; off < n; off += chunk {
			end := off + chunk
			if end > n {
				end = n
			}
			if err := e.IngestBatch("F", fs[off:end]); err != nil {
				t.Fatal(err)
			}
			if err := e.IngestBatch("G", gs[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}

	sync := ingestTestEngine(t)
	feedBatched(sync, 97) // deliberately not a divisor of n
	if got := answers(t, sync); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("synchronous IngestBatch answers %v != sequential %v", got, want)
	}

	pipe := ingestTestEngine(t)
	if err := pipe.StartIngest(IngestConfig{Workers: 4, BatchSize: 64, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	feedBatched(pipe, 97)
	pipe.Flush()
	got := answers(t, pipe)
	pipe.StopIngest()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("pipeline answers %v != sequential %v", got, want)
	}

	st := pipe.IngestStats()
	if st.UpdatesEnqueued != 2*n || st.UpdatesApplied != 2*n {
		t.Fatalf("ingest counters enqueued=%d applied=%d, want both %d", st.UpdatesEnqueued, st.UpdatesApplied, 2*n)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", st.QueueDepth)
	}
	if st.Batches == 0 || st.AvgBatchFill <= 0 {
		t.Fatalf("batch counters not populated: %+v", st)
	}
}

// TestConcurrentIngestQueryStats hammers the pipeline with concurrent
// producers, queriers, statters and snapshotters under -race, then
// reconciles exactly: every update inserts value 0, so the join estimate
// is exactly nF·nG (a single-value stream is estimated exactly) and any
// lost update would change the product.
func TestConcurrentIngestQueryStats(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 16); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("G", 16); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterQuery(QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 4, BatchSize: 16, QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}

	const (
		producers  = 4
		batches    = 40
		batchElems = 23
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		name := "F"
		if p%2 == 1 {
			name = "G"
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			batch := make([]stream.Update, batchElems)
			for i := range batch {
				batch[i] = stream.Insert(0)
			}
			for b := 0; b < batches; b++ {
				if err := e.IngestBatch(name, batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
	}
	// Concurrent readers: answers, stats and snapshots must all be safe
	// (and torn-free) while the producers run.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					if _, err := e.Answer("q"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					e.Stats()
				case 2:
					var buf bytes.Buffer
					if err := e.Snapshot(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	e.Flush()
	defer e.StopIngest()

	perStream := int64(producers / 2 * batches * batchElems)
	st := e.Stats()
	if st.UpdateCounts["F"] != perStream || st.UpdateCounts["G"] != perStream {
		t.Fatalf("update counts F=%d G=%d, want %d each", st.UpdateCounts["F"], st.UpdateCounts["G"], perStream)
	}
	a, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if want := perStream * perStream; a.Estimate != want {
		t.Fatalf("final estimate %d, want exactly %d (lost or duplicated updates)", a.Estimate, want)
	}
	ist := e.IngestStats()
	if ist.UpdatesApplied != 2*perStream {
		t.Fatalf("applied %d updates, want %d", ist.UpdatesApplied, 2*perStream)
	}
}

// TestSnapshotNeverTorn is the regression test for the snapshot
// consistency contract: two synopses over the same stream must always
// agree on how many batches they have absorbed, even while snapshots race
// with concurrent sharded ingestion. The "all" predicate forces a second,
// distinct synopsis over F, so with >1 worker the two synopses live on
// different shards and every batch is fanned out across workers.
func TestSnapshotNeverTorn(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 16); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPredicate("all", func(uint64, int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []QuerySpec{
		{Name: "q1", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "F"}},
		{Name: "q2", Agg: Count, Left: Side{Stream: "F", Predicate: "all"}, Right: Side{Stream: "F", Predicate: "all"}},
	} {
		if err := e.RegisterQuery(spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.StartIngest(IngestConfig{Workers: 4, BatchSize: 8, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	defer e.StopIngest()

	done := make(chan struct{})
	var producers sync.WaitGroup
	for p := 0; p < 3; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for b := 0; b < 60; b++ {
				// Variable batch sizes so a torn application would show
				// up as a NetCount mismatch, not just a constant offset.
				batch := make([]stream.Update, b%13+1)
				for i := range batch {
					batch[i] = stream.Insert(uint64((b + i) % 16))
				}
				if err := e.IngestBatch("F", batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	go func() { producers.Wait(); close(done) }()

	checked := 0
	for {
		select {
		case <-done:
			if checked == 0 {
				t.Fatal("no snapshots taken while ingesting")
			}
			return
		default:
		}
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		var snap snapshot
		if err := json.NewDecoder(&buf).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		if len(snap.Synopses) != 2 {
			t.Fatalf("expected 2 synopses in snapshot, got %d", len(snap.Synopses))
		}
		nets := make([]int64, 0, 2)
		for _, s := range snap.Synopses {
			var sk core.HashSketch
			if err := sk.UnmarshalBinary(s.Blob); err != nil {
				t.Fatal(err)
			}
			nets = append(nets, sk.NetCount())
		}
		if nets[0] != nets[1] {
			t.Fatalf("torn snapshot: synopsis net counts %d != %d", nets[0], nets[1])
		}
		checked++
	}
}

// TestIngestValidation checks the synchronous-rejection contract: a batch
// with any out-of-domain value (or an unknown stream) is rejected whole.
func TestIngestValidation(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 8); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("nope", []stream.Update{stream.Insert(1)}); err == nil {
		t.Fatal("expected unknown-stream error")
	}
	bad := []stream.Update{stream.Insert(1), stream.Insert(99)}
	if err := e.IngestBatch("F", bad); err == nil {
		t.Fatal("expected out-of-domain error")
	}
	if got := e.Stats().UpdateCounts["F"]; got != 0 {
		t.Fatalf("rejected batch still counted: %d updates", got)
	}
	// Empty batches are a no-op even for unknown streams' error path.
	if err := e.IngestBatch("F", nil); err != nil {
		t.Fatal(err)
	}
}

// TestStartStopIngest checks the pipeline lifecycle: double-start fails,
// stop drains, stop twice is a no-op, and ingestion keeps working
// synchronously after a stop.
func TestStartStopIngest(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 8); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterQuery(QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "F"}})
	if err != nil {
		t.Fatal(err)
	}
	e.Flush() // no-op without a pipeline
	if err := e.StartIngest(IngestConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{}); err == nil {
		t.Fatal("expected double-start error")
	}
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(3), stream.Insert(3)}); err != nil {
		t.Fatal(err)
	}
	e.StopIngest()
	e.StopIngest() // idempotent
	// Queued work was drained by StopIngest.
	if got := e.IngestStats().UpdatesApplied; got != 2 {
		t.Fatalf("applied %d updates after stop, want 2", got)
	}
	// Synchronous ingestion still works.
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(3)}); err != nil {
		t.Fatal(err)
	}
	a, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != 9 { // f_3 = 3, self join = 9, single value is exact
		t.Fatalf("estimate %d, want 9", a.Estimate)
	}
}
