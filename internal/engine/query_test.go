package engine

import (
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// Tests for the snapshot-then-estimate query path: the epoch-keyed
// answer cache, its invalidation rules, parallel-estimation equivalence,
// and the no-stall guarantee (ingestion proceeds while an Answer is
// estimating outside the locks).

func declareFG(t *testing.T, e *Engine, domain uint64) {
	t.Helper()
	if err := e.DeclareStream("F", domain); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("G", domain); err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}}
	if err := e.RegisterQuery(spec); err != nil {
		t.Fatal(err)
	}
}

func zipfBatch(t *testing.T, domain uint64, n int, seed int64) []stream.Update {
	t.Helper()
	z, err := workload.NewZipf(domain, 1.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return workload.MakeStream(z, n)
}

// A repeated Answer with no intervening updates must be served from the
// cache (identical answer, hit counted); an update to either side must
// invalidate the entry and force a fresh estimate.
func TestAnswerCacheHitAndInvalidation(t *testing.T) {
	e := mustEngine(t)
	declareFG(t, e, 1<<12)
	if err := e.IngestBatch("F", zipfBatch(t, 1<<12, 4000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("G", zipfBatch(t, 1<<12, 4000, 2)); err != nil {
		t.Fatal(err)
	}

	a1, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("cached answer differs: %+v vs %+v", a1, a2)
	}
	st := e.Stats()
	if st.AnswerCacheMisses != 1 || st.AnswerCacheHits != 1 {
		t.Fatalf("after two answers: hits=%d misses=%d, want 1/1", st.AnswerCacheHits, st.AnswerCacheMisses)
	}

	// An update to the LEFT side invalidates.
	if err := e.Update("F", 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Answer("q"); err != nil {
		t.Fatal(err)
	}
	// An update to the RIGHT side invalidates too.
	if err := e.Update("G", 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Answer("q"); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.AnswerCacheMisses != 3 || st.AnswerCacheHits != 1 {
		t.Fatalf("after invalidations: hits=%d misses=%d, want 1/3", st.AnswerCacheHits, st.AnswerCacheMisses)
	}
}

// Removing a query and re-registering the same name over fresh synopses
// must not serve the old query's cached answer, even when the fresh
// synopses reach exactly the epochs the cache entry was keyed on.
func TestAnswerCacheClearedOnReregister(t *testing.T) {
	e := mustEngine(t)
	declareFG(t, e, 1<<10)
	fOld := zipfBatch(t, 1<<10, 3000, 1)
	gOld := zipfBatch(t, 1<<10, 3000, 2)
	if err := e.IngestBatch("F", fOld); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("G", gOld); err != nil {
		t.Fatal(err)
	}
	old, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}

	if err := e.RemoveQuery("q"); err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}}
	if err := e.RegisterQuery(spec); err != nil {
		t.Fatal(err)
	}
	// Feed the SAME number of updates of different content, driving the
	// fresh synopses to the same epochs the stale entry is keyed on.
	for i := range fOld {
		fOld[i].Value = (fOld[i].Value + 17) % (1 << 10)
		gOld[i].Value = (gOld[i].Value + 29) % (1 << 10)
	}
	if err := e.IngestBatch("F", fOld); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("G", gOld); err != nil {
		t.Fatal(err)
	}
	fresh, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Detail == old.Detail {
		t.Fatal("re-registered query served the stale cached answer")
	}
}

// QueryWorkers must not change any answer: an engine estimating with 4
// workers returns bit-identical answers to a sequential engine fed the
// same stream (core's parallel-skim exactness, end to end).
func TestAnswerParallelMatchesSequential(t *testing.T) {
	build := func(workers int) Answer {
		opts := defaultOpts()
		opts.QueryWorkers = workers
		e, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		declareFG(t, e, 1<<14)
		if err := e.IngestBatch("F", zipfBatch(t, 1<<14, 20000, 5)); err != nil {
			t.Fatal(err)
		}
		if err := e.IngestBatch("G", zipfBatch(t, 1<<14, 20000, 6)); err != nil {
			t.Fatal(err)
		}
		a, err := e.Answer("q")
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	seq := build(0)
	for _, w := range []int{2, 4, -1} {
		if par := build(w); par != seq {
			t.Fatalf("workers=%d: answer differs: %+v vs %+v", w, par, seq)
		}
	}
}

// Stats must report the configured estimation parallelism.
func TestStatsReportsQueryWorkers(t *testing.T) {
	opts := defaultOpts()
	opts.QueryWorkers = 4
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.QueryWorkers != 4 {
		t.Fatalf("QueryWorkers = %d, want 4", st.QueryWorkers)
	}
}

// ValidateBatch checks without applying.
func TestValidateBatch(t *testing.T) {
	e := mustEngine(t)
	declareFG(t, e, 16)
	if err := e.ValidateBatch("nope", []stream.Update{{Value: 1, Weight: 1}}); err == nil {
		t.Fatal("expected unknown-stream error")
	}
	if err := e.ValidateBatch("F", []stream.Update{{Value: 99, Weight: 1}}); err == nil {
		t.Fatal("expected out-of-domain error")
	}
	if err := e.ValidateBatch("F", []stream.Update{{Value: 3, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.UpdateCounts["F"] != 0 {
		t.Fatalf("ValidateBatch applied updates: count = %d", st.UpdateCounts["F"])
	}
}

// The no-stall regression: with the pipeline running, a long Answer over
// a large domain must not block ingestion for its whole duration. The
// old implementation held the quiesce locks across the estimate, so the
// concurrent IngestBatch+Flush loop below could not complete a single
// iteration until the answer returned; the snapshot-then-estimate path
// releases the locks after cloning, so iterations proceed. Run with
// -race to also certify the clone hand-off.
func TestIngestProceedsDuringAnswer(t *testing.T) {
	const domain = 1 << 20
	opts := Options{SketchConfig: core.Config{Tables: 5, Buckets: 1024, Seed: 7}}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	declareFG(t, e, domain)
	if err := e.StartIngest(IngestConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	defer e.StopIngest()
	if err := e.IngestBatch("F", zipfBatch(t, domain, 50000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("G", zipfBatch(t, domain, 50000, 2)); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	done := make(chan error, 1)
	go func() {
		_, err := e.Answer("q")
		done <- err
	}()

	small := zipfBatch(t, domain, 64, 3)
	iters := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if iters == 0 {
				t.Fatal("no ingest iteration completed while Answer was estimating: query path stalls the pipeline")
			}
			return
		default:
		}
		if err := e.IngestBatch("F", small); err != nil {
			t.Fatal(err)
		}
		e.Flush()
		iters++
	}
}
