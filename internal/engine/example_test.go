package engine_test

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/engine"
)

// The Figure 1 architecture in miniature: declare streams, register a
// continuous query, push updates, read the approximate answer.
func Example() {
	eng, err := engine.New(engine.Options{
		SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 7},
	})
	if err != nil {
		panic(err)
	}
	eng.DeclareStream("F", 1024)
	eng.DeclareStream("G", 1024)
	eng.RegisterQuery(engine.QuerySpec{
		Name: "overlap", Agg: engine.Count,
		Left:  engine.Side{Stream: "F"},
		Right: engine.Side{Stream: "G"},
	})

	eng.Update("F", 7, 10)
	eng.Update("G", 7, 4)
	eng.Update("G", 9, 100) // non-joining

	ans, err := eng.Answer("overlap")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s(F ⋈ G) ≈ %d\n", ans.Agg, ans.Estimate)
	// Output: COUNT(F ⋈ G) ≈ 40
}
