package engine

import (
	"sync"
	"testing"

	"skimsketch/internal/stream"
)

// Regression tests for the shutdown path: sketchd's graceful exit calls
// Flush and StopIngest unconditionally, so both must be safe no-ops on
// an engine whose pipeline was never started, already stopped, or is
// being stopped concurrently.

func TestStopFlushNeverStartedPipeline(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 8); err != nil {
		t.Fatal(err)
	}
	// None of these may panic or block on an engine started without a
	// pipeline (sketchd without -ingest.workers).
	e.StopIngest()
	e.Flush()
	e.StopIngest()
	if e.IngestSaturated() {
		t.Fatal("a pipeline that does not exist cannot be saturated")
	}
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAfterStopIsNoOp(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 8); err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(1)}); err != nil {
		t.Fatal(err)
	}
	e.StopIngest()
	flushes := e.IngestStats().Flushes
	e.Flush() // must not panic, block, or count as a drain barrier
	e.Flush()
	if got := e.IngestStats().Flushes; got != flushes {
		t.Fatalf("Flush after stop counted barriers: %d -> %d", flushes, got)
	}
}

// TestConcurrentStopStop races StopIngest with itself and with Flush;
// exactly one stop wins and nothing panics. Run with -race.
func TestConcurrentStopStop(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterQuery(QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "F"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 2, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i += 10 {
		batch := make([]stream.Update, 10)
		for j := range batch {
			batch[j] = stream.Insert(uint64((i + j) % 64))
		}
		if err := e.IngestBatch("F", batch); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.StopIngest()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Flush()
		}()
	}
	wg.Wait()
	if got := e.IngestStats().UpdatesApplied; got != n {
		t.Fatalf("applied %d updates, want %d (stop must drain)", got, n)
	}
}

// TestRestartIngestAfterStop: the pipeline can be started again after a
// stop, and the synopses carry over.
func TestRestartIngestAfterStop(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 8); err != nil {
		t.Fatal(err)
	}
	err := e.RegisterQuery(QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "F"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(3)}); err != nil {
		t.Fatal(err)
	}
	e.StopIngest()
	if err := e.StartIngest(IngestConfig{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(3), stream.Insert(3)}); err != nil {
		t.Fatal(err)
	}
	e.StopIngest()
	a, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != 9 { // f_3 = 3 across both pipeline generations
		t.Fatalf("estimate %d, want 9", a.Estimate)
	}
}

// TestIngestSaturated drives the pipeline into saturation with a gated
// predicate: the worker blocks mid-apply, a second batch fills the
// depth-1 queue, and the probe must report it. Releasing the gate drains
// everything and the probe clears.
func TestIngestSaturated(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 8); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("G", 8); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	err := e.RegisterPredicate("gate", func(uint64, int64) bool {
		entered <- struct{}{}
		<-gate
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.RegisterQuery(QuerySpec{
		Name: "q", Agg: Count,
		Left:  Side{Stream: "F", Predicate: "gate"},
		Right: Side{Stream: "G"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 1, BatchSize: 1, QueueDepth: 1}); err != nil {
		t.Fatal(err)
	}
	if e.IngestSaturated() {
		t.Fatal("fresh pipeline reported saturated")
	}
	// First update: dequeued by the worker, which parks in the predicate.
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(1)}); err != nil {
		t.Fatal(err)
	}
	<-entered // the worker is now parked, its queue empty
	// Second update: sits in the depth-1 queue — the pipeline is full.
	if err := e.IngestBatch("F", []stream.Update{stream.Insert(2)}); err != nil {
		t.Fatal(err)
	}
	if !e.IngestSaturated() {
		t.Fatal("full shard queue not reported as saturated")
	}
	e.NoteRejected(1)
	if got := e.IngestStats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	close(gate)
	e.Flush()
	if e.IngestSaturated() {
		t.Fatal("drained pipeline still reported saturated")
	}
	e.StopIngest()
	if got := e.IngestStats().UpdatesApplied; got != 2 {
		t.Fatalf("applied %d updates, want 2", got)
	}
}
