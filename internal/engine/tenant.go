package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// DefaultTenant is the namespace the un-suffixed Engine methods operate
// on. A single-tenant deployment never needs to name it.
const DefaultTenant = "default"

// ErrQuotaExceeded is wrapped by every quota rejection — synopsis memory
// at query registration, queue share at ingest admission — so callers
// can map the whole family to one wire status (sketchd answers 429).
var ErrQuotaExceeded = errors.New("tenant quota exceeded")

// Quota bounds one tenant's resource consumption. Zero fields are
// unlimited.
type Quota struct {
	// MaxSynopsisWords caps the total word footprint of the tenant's
	// synopses, charged at synopsis creation (RegisterQuery) and refunded
	// when the last referencing query is removed.
	MaxSynopsisWords int `json:"maxSynopsisWords,omitempty"`
	// MaxPendingUpdates caps the tenant's share of the ingest pipeline's
	// queues: updates accepted by IngestBatch but not yet folded into
	// synopses. Admission of a batch that would push the tenant past the
	// cap is rejected with ErrQuotaExceeded instead of blocking, so one
	// flooding tenant cannot monopolize the shared queue space.
	MaxPendingUpdates int64 `json:"maxPendingUpdates,omitempty"`
}

func (q Quota) validate() error {
	if q.MaxSynopsisWords < 0 || q.MaxPendingUpdates < 0 {
		return fmt.Errorf("quota fields must be non-negative, got %+v", q)
	}
	return nil
}

// tenantState is the per-tenant accounting record: quota, synopsis-word
// usage, pending queue share, and counters. words and the cache counters
// are guarded by e.mu; pending and rejected are atomics because shard
// workers decrement pending outside every engine lock.
type tenantState struct {
	quota                  Quota
	words                  int // synopsis words charged (e.mu)
	pending                atomic.Int64
	rejected               atomic.Int64
	cacheHits, cacheMisses int64 // e.mu
}

// ValidTenantName reports whether name is usable as a tenant namespace;
// the HTTP layer uses it to refuse unroutable names before touching the
// engine (mutating engine paths validate again themselves).
func ValidTenantName(name string) error { return validTenantName(name) }

// validTenantName rejects names the wire routing cannot represent.
func validTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("engine: tenant name must be non-empty")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("engine: tenant name %q must not contain '/' or whitespace", name)
	}
	return nil
}

// tenantLocked returns (creating if absent) the tenant's state record.
// Callers hold e.mu and have validated the name on every creation path.
func (e *Engine) tenantLocked(name string) *tenantState {
	ts, ok := e.tenants[name]
	if !ok {
		ts = &tenantState{quota: e.defaultQuota}
		e.tenants[name] = ts
	}
	return ts
}

// SetQuota installs (or replaces) a tenant's quota. Lowering a quota
// below current usage is allowed: existing state stays, further growth
// is rejected.
func (e *Engine) SetQuota(tenant string, q Quota) error {
	if err := validTenantName(tenant); err != nil {
		return err
	}
	if err := q.validate(); err != nil {
		return fmt.Errorf("engine: tenant %q: %w", tenant, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tenantLocked(tenant).quota = q
	return nil
}

// TenantNames returns every tenant namespace with any state, sorted.
func (e *Engine) TenantNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	set := e.tenantNamesLocked()
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TenantStats is the per-tenant slice of Stats plus the tenant's quota
// and quota-relevant gauges.
type TenantStats struct {
	Tenant       string
	Streams      int
	Queries      int
	Synopses     int
	SynopsisRefs int
	TotalWords   int
	// UpdateCounts is keyed by the tenant's bare stream names.
	UpdateCounts map[string]int64
	// PendingUpdates is the tenant's current ingest queue share (accepted
	// but not yet applied); Rejected counts updates refused under
	// ErrQuotaExceeded.
	PendingUpdates    int64
	Rejected          int64
	AnswerCacheHits   int64
	AnswerCacheMisses int64
	Watches           int
	Quota             Quota
}

// tenantStatsLocked assembles one tenant's stats. Callers hold the
// quiesced read locks (readQuiesce), so counters are consistent.
func (e *Engine) tenantStatsLocked(tenant string) TenantStats {
	st := TenantStats{
		Tenant:       tenant,
		UpdateCounts: make(map[string]int64),
		Watches:      len(e.watches.List(tenant)),
	}
	if ts, ok := e.tenants[tenant]; ok {
		st.PendingUpdates = ts.pending.Load()
		st.Rejected = ts.rejected.Load()
		st.AnswerCacheHits = ts.cacheHits
		st.AnswerCacheMisses = ts.cacheMisses
		st.Quota = ts.quota
		st.TotalWords = ts.words
	}
	for key, info := range e.streams {
		if key.tenant == tenant {
			st.Streams++
			st.UpdateCounts[key.name] = info.count
		}
	}
	for key := range e.queries {
		if key.tenant == tenant {
			st.Queries++
		}
	}
	for _, entry := range e.synopses {
		if entry.key.tenant == tenant {
			st.Synopses++
			st.SynopsisRefs += entry.refs
		}
	}
	return st
}

// Tenant returns a handle scoped to one tenant namespace. The handle is
// cheap (no state is created until a mutating call) and safe to share.
func (e *Engine) Tenant(name string) *Tenant {
	return &Tenant{e: e, name: name}
}

// Tenant scopes the engine API to one namespace: every method behaves
// exactly like the Engine method of the same name restricted to the
// tenant's streams, predicates, queries, watches and answer cache.
type Tenant struct {
	e    *Engine
	name string
}

// Name returns the tenant namespace this handle is scoped to.
func (t *Tenant) Name() string { return t.name }

// DeclareStream registers a stream name with its value domain
// [0, domain) in this tenant.
func (t *Tenant) DeclareStream(name string, domain uint64) error {
	if err := validTenantName(t.name); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("engine: stream name must be non-empty")
	}
	if domain == 0 {
		return fmt.Errorf("engine: stream %q: domain must be positive", name)
	}
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	key := nsKey{t.name, name}
	if _, ok := e.streams[key]; ok {
		return fmt.Errorf("engine: stream %q already declared", name)
	}
	e.tenantLocked(t.name)
	e.streams[key] = &streamInfo{domain: domain}
	return nil
}

// RegisterPredicate names a selection predicate for use in this tenant's
// query sides.
func (t *Tenant) RegisterPredicate(name string, p Predicate) error {
	if err := validTenantName(t.name); err != nil {
		return err
	}
	if name == "" || p == nil {
		return fmt.Errorf("engine: predicate name and function must be non-empty")
	}
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	key := nsKey{t.name, name}
	if _, ok := e.predicates[key]; ok {
		return fmt.Errorf("engine: predicate %q already registered", name)
	}
	e.tenantLocked(t.name)
	e.predicates[key] = p
	return nil
}

// RegisterQuery installs a continuous query in this tenant. A fresh
// synopsis pair is charged against the tenant's memory quota; rejection
// wraps ErrQuotaExceeded.
func (t *Tenant) RegisterQuery(spec QuerySpec) error {
	if err := validTenantName(t.name); err != nil {
		return err
	}
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	return t.e.registerLocked(t.name, spec)
}

// RemoveQuery deregisters a query, releasing (and possibly freeing) its
// synopses and dropping any standing watch on it.
func (t *Tenant) RemoveQuery(name string) error {
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	qk := nsKey{t.name, name}
	q, ok := e.queries[qk]
	if !ok {
		return fmt.Errorf("engine: unknown query %q", name)
	}
	e.release(q.left)
	e.release(q.right)
	delete(e.queries, qk)
	delete(e.answers, qk)
	e.watches.Remove(watchKey(t.name, name))
	return nil
}

// Update routes one stream element to every synopsis attached to the
// tenant's stream.
func (t *Tenant) Update(streamName string, value uint64, weight int64) error {
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	key := nsKey{t.name, streamName}
	info, ok := e.streams[key]
	if !ok {
		return fmt.Errorf("engine: unknown stream %q", streamName)
	}
	if value >= info.domain {
		return fmt.Errorf("engine: stream %q: value %d outside domain [0,%d)", streamName, value, info.domain)
	}
	info.count++
	e.metrics.UpdatesEnqueued.Add(1)
	// Take the exclusive apply lock so a single update is serialized with
	// both the shard workers and the readers.
	e.applyMu.Lock()
	for _, entry := range e.synopses {
		if entry.key.tenant == t.name && entry.key.stream == streamName {
			entry.update(value, weight)
		}
	}
	e.applyMu.Unlock()
	e.metrics.UpdatesApplied.Add(1)
	return nil
}

// Answer serves the current approximate answer of a query registered in
// this tenant; see Engine.Answer for the locking and caching contract.
func (t *Tenant) Answer(name string) (Answer, error) {
	return t.e.answerTenant(t.name, name)
}

// Stats reports this tenant's registry sizes, counters and quota.
// Like Engine.Stats it drains the ingestion pipeline first.
func (t *Tenant) Stats() TenantStats {
	defer t.e.readQuiesce()()
	return t.e.tenantStatsLocked(t.name)
}

// Queries returns the tenant's registered query names, sorted.
func (t *Tenant) Queries() []string {
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	var names []string
	for key := range e.queries {
		if key.tenant == t.name {
			names = append(names, key.name)
		}
	}
	sort.Strings(names)
	if names == nil {
		names = []string{}
	}
	return names
}

// Streams returns the tenant's declared stream names, sorted.
func (t *Tenant) Streams() []string {
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	var names []string
	for key := range e.streams {
		if key.tenant == t.name {
			names = append(names, key.name)
		}
	}
	sort.Strings(names)
	if names == nil {
		names = []string{}
	}
	return names
}
