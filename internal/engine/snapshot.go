package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"skimsketch/internal/core"
	"skimsketch/internal/monitor"
	"skimsketch/internal/window"
)

// Snapshot/Restore persist the engine — declared streams, registered
// queries, standing watches, tenant quotas, and every synopsis'
// counters — so a stream processor can restart without losing its
// summaries. The container is JSON (sketch blobs are base64-encoded by
// encoding/json); the sketch payloads are the same binary formats used
// everywhere else.
//
// Two snapshot versions exist. Version 1 is the pre-tenant layout: one
// flat set of streams/queries/synopses. Version 2 nests one such slice
// per tenant namespace plus quotas and watches. Snapshot writes version
// 1 whenever the engine state is expressible in it (only the default
// tenant, no quotas, no watches) so single-tenant deployments keep
// byte-identical snapshots across the multi-tenant refactor; Restore
// accepts both, loading a version-1 snapshot into the default tenant
// bit-identically.
//
// Predicates are functions and cannot be serialized: Restore requires
// every predicate named by the snapshot to have been re-registered on
// the receiving engine (under the same tenant) first, and fails
// otherwise.

const (
	snapshotVersionV1 = 1
	snapshotVersionV2 = 2
)

type streamSnap struct {
	Domain uint64 `json:"domain"`
	Count  int64  `json:"count"`
}

type sideSnap struct {
	Stream        string `json:"stream"`
	Predicate     string `json:"predicate,omitempty"`
	WindowLen     int64  `json:"windowLen,omitempty"`
	WindowBuckets int    `json:"windowBuckets,omitempty"`
}

type querySnap struct {
	Name   string       `json:"name"`
	Agg    int          `json:"agg"`
	Left   sideSnap     `json:"left"`
	Right  sideSnap     `json:"right"`
	Config *core.Config `json:"config,omitempty"`
}

type synSnap struct {
	Stream        string      `json:"stream"`
	Predicate     string      `json:"predicate,omitempty"`
	WindowLen     int64       `json:"windowLen,omitempty"`
	WindowBuckets int         `json:"windowBuckets,omitempty"`
	Config        core.Config `json:"config"`
	Blob          []byte      `json:"blob"`
}

type watchSnap struct {
	Query string `json:"query"`
	High  int64  `json:"high"`
	Low   int64  `json:"low"`
	Alert bool   `json:"alert,omitempty"`
}

// tenantSnap is one tenant's slice of a version-2 snapshot — exactly the
// fields a version-1 snapshot holds at its top level, plus the quota and
// the standing watches.
type tenantSnap struct {
	Quota    Quota                 `json:"quota"`
	Streams  map[string]streamSnap `json:"streams"`
	Queries  []querySnap           `json:"queries,omitempty"`
	Synopses []synSnap             `json:"synopses,omitempty"`
	Watches  []watchSnap           `json:"watches,omitempty"`
}

type snapshot struct {
	Version  int         `json:"version"`
	Defaults core.Config `json:"defaults"`
	// Version-1 (single-tenant) body: the default tenant's slice.
	Streams  map[string]streamSnap `json:"streams,omitempty"`
	Queries  []querySnap           `json:"queries,omitempty"`
	Synopses []synSnap             `json:"synopses,omitempty"`
	// Version-2 body: one slice per tenant namespace.
	DefaultQuota *Quota                `json:"defaultQuota,omitempty"`
	Tenants      map[string]tenantSnap `json:"tenants,omitempty"`
}

// v1ExpressibleLocked reports whether the engine state round-trips
// through the version-1 (pre-tenant) snapshot layout: only the default
// tenant exists, with no quota and no watches. Callers hold e.mu.
func (e *Engine) v1ExpressibleLocked() bool {
	if e.defaultQuota != (Quota{}) || e.watches.Len() != 0 {
		return false
	}
	for name, ts := range e.tenants {
		if name != DefaultTenant || ts.quota != (Quota{}) {
			return false
		}
	}
	for key := range e.streams {
		if key.tenant != DefaultTenant {
			return false
		}
	}
	for key := range e.predicates {
		if key.tenant != DefaultTenant {
			return false
		}
	}
	return true
}

// tenantSliceLocked assembles one tenant's streams/queries/synopses/
// watches. Callers hold the quiesced read locks.
func (e *Engine) tenantSliceLocked(tenant string) (tenantSnap, error) {
	slice := tenantSnap{Streams: make(map[string]streamSnap)}
	if ts, ok := e.tenants[tenant]; ok {
		slice.Quota = ts.quota
	}
	for key, info := range e.streams {
		if key.tenant == tenant {
			slice.Streams[key.name] = streamSnap{Domain: info.domain, Count: info.count}
		}
	}
	for key, q := range e.queries {
		if key.tenant != tenant {
			continue
		}
		slice.Queries = append(slice.Queries, querySnap{
			Name:   key.name,
			Agg:    int(q.spec.Agg),
			Left:   sideSnap(q.spec.Left),
			Right:  sideSnap(q.spec.Right),
			Config: q.spec.SketchConfig,
		})
	}
	sort.Slice(slice.Queries, func(i, j int) bool { return slice.Queries[i].Name < slice.Queries[j].Name })
	for key, entry := range e.synopses {
		if key.tenant != tenant {
			continue
		}
		var blob []byte
		var err error
		if entry.win != nil {
			blob, err = entry.win.MarshalBinary()
		} else {
			blob, err = entry.sketch.MarshalBinary()
		}
		if err != nil {
			return tenantSnap{}, fmt.Errorf("engine: snapshot: %w", err)
		}
		slice.Synopses = append(slice.Synopses, synSnap{
			Stream:        key.stream,
			Predicate:     key.predicate,
			WindowLen:     key.windowLen,
			WindowBuckets: key.windowBuckets,
			Config:        key.cfg,
			Blob:          blob,
		})
	}
	for _, w := range e.watches.List(tenant) {
		slice.Watches = append(slice.Watches, watchSnap{
			Query: w.Query, High: w.High, Low: w.Low, Alert: w.State == monitor.Alert,
		})
	}
	return slice, nil
}

// Snapshot writes the engine state to w. With the ingestion pipeline
// running, the pipeline is drained and held quiescent for the duration of
// the write, so the snapshot observes every enqueued batch applied in
// full — never a batch applied to one synopsis but not another.
//
// The output is the version-1 layout when the state is expressible in it
// (single default tenant, no quotas or watches) and version 2 otherwise.
func (e *Engine) Snapshot(w io.Writer) error {
	defer e.readQuiesce()()

	if e.v1ExpressibleLocked() {
		slice, err := e.tenantSliceLocked(DefaultTenant)
		if err != nil {
			return err
		}
		return json.NewEncoder(w).Encode(&snapshot{
			Version:  snapshotVersionV1,
			Defaults: e.defaults,
			Streams:  slice.Streams,
			Queries:  slice.Queries,
			Synopses: slice.Synopses,
		})
	}

	snap := snapshot{
		Version:  snapshotVersionV2,
		Defaults: e.defaults,
		Tenants:  make(map[string]tenantSnap),
	}
	if e.defaultQuota != (Quota{}) {
		q := e.defaultQuota
		snap.DefaultQuota = &q
	}
	for tenant := range e.tenantNamesLocked() {
		slice, err := e.tenantSliceLocked(tenant)
		if err != nil {
			return err
		}
		snap.Tenants[tenant] = slice
	}
	return json.NewEncoder(w).Encode(&snap)
}

// Snapshot writes this tenant's slice of the engine — its streams,
// queries, synopsis counters and watches — as a version-1 (tenant-free)
// snapshot, restorable into any empty tenant via Tenant.Restore.
func (t *Tenant) Snapshot(w io.Writer) error {
	e := t.e
	defer e.readQuiesce()()
	slice, err := e.tenantSliceLocked(t.name)
	if err != nil {
		return err
	}
	snap := snapshot{
		Version:  snapshotVersionV1,
		Defaults: e.defaults,
		Streams:  slice.Streams,
		Queries:  slice.Queries,
		Synopses: slice.Synopses,
	}
	if len(slice.Watches) != 0 {
		return fmt.Errorf("engine: snapshot: tenant %q has standing watches, which the single-tenant layout cannot carry; snapshot the whole engine instead", t.name)
	}
	return json.NewEncoder(w).Encode(&snap)
}

// Restore loads a snapshot into e, which must have no streams or queries
// in any tenant yet (predicates must already be re-registered under
// their tenants). A version-1 snapshot restores into the default tenant
// bit-identically; a version-2 snapshot restores every tenant slice,
// quotas and watches included. On success the engine answers queries
// exactly as the snapshotted engine did.
func (e *Engine) Restore(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("engine: restore: %w", err)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.streams) != 0 || len(e.queries) != 0 {
		return fmt.Errorf("engine: restore requires an empty engine (no streams or queries)")
	}
	e.routes = nil
	// Restored synopses restart at epoch 0: any answers cached before the
	// restore would collide with the fresh epochs, so drop them all.
	e.answers = make(map[nsKey]cachedAnswer)

	switch snap.Version {
	case snapshotVersionV1:
		e.defaults = snap.Defaults
		return e.restoreTenantLocked(DefaultTenant, tenantSnap{
			Streams:  snap.Streams,
			Queries:  snap.Queries,
			Synopses: snap.Synopses,
		})
	case snapshotVersionV2:
		e.defaults = snap.Defaults
		if snap.DefaultQuota != nil {
			if err := snap.DefaultQuota.validate(); err != nil {
				return fmt.Errorf("engine: restore: default quota: %w", err)
			}
			e.defaultQuota = *snap.DefaultQuota
		}
		tenants := make([]string, 0, len(snap.Tenants))
		for tenant := range snap.Tenants {
			tenants = append(tenants, tenant)
		}
		sort.Strings(tenants)
		for _, tenant := range tenants {
			if err := validTenantName(tenant); err != nil {
				return fmt.Errorf("engine: restore: %w", err)
			}
			if err := e.restoreTenantLocked(tenant, snap.Tenants[tenant]); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("engine: restore: unsupported snapshot version %d", snap.Version)
	}
}

// Restore loads a version-1 (single-tenant layout) snapshot into this
// tenant, which must be empty. The snapshot's default sketch config must
// match the engine's, since queries without a per-query override rebuild
// their synopses from it.
func (t *Tenant) Restore(r io.Reader) error {
	if err := validTenantName(t.name); err != nil {
		return err
	}
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("engine: restore: %w", err)
	}
	if snap.Version != snapshotVersionV1 {
		return fmt.Errorf("engine: restore: tenant restore accepts single-tenant (version 1) snapshots, got version %d; POST whole-engine snapshots to the unscoped restore", snap.Version)
	}
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if snap.Defaults != e.defaults {
		return fmt.Errorf("engine: restore: snapshot default sketch config %+v differs from engine's %+v", snap.Defaults, e.defaults)
	}
	for key := range e.streams {
		if key.tenant == t.name {
			return fmt.Errorf("engine: restore requires an empty tenant %q (no streams or queries)", t.name)
		}
	}
	for key := range e.queries {
		if key.tenant == t.name {
			return fmt.Errorf("engine: restore requires an empty tenant %q (no streams or queries)", t.name)
		}
	}
	for key := range e.answers {
		if key.tenant == t.name {
			delete(e.answers, key)
		}
	}
	e.routes = nil
	return e.restoreTenantLocked(t.name, tenantSnap{
		Streams:  snap.Streams,
		Queries:  snap.Queries,
		Synopses: snap.Synopses,
	})
}

// restoreTenantLocked loads one tenant slice: quota first (so synopsis
// rebuilding is charged against the restored quota), then streams,
// queries (rebuilding empty shared synopses), synopsis counters, and
// watches. Callers hold e.mu.
func (e *Engine) restoreTenantLocked(tenant string, slice tenantSnap) error {
	for _, q := range slice.Queries {
		if q.Left.Predicate != "" {
			if _, ok := e.predicates[nsKey{tenant, q.Left.Predicate}]; !ok {
				return fmt.Errorf("engine: restore: predicate %q must be re-registered first", q.Left.Predicate)
			}
		}
		if q.Right.Predicate != "" {
			if _, ok := e.predicates[nsKey{tenant, q.Right.Predicate}]; !ok {
				return fmt.Errorf("engine: restore: predicate %q must be re-registered first", q.Right.Predicate)
			}
		}
	}

	if err := slice.Quota.validate(); err != nil {
		return fmt.Errorf("engine: restore: tenant %q quota: %w", tenant, err)
	}
	if slice.Quota != (Quota{}) {
		e.tenantLocked(tenant).quota = slice.Quota
	} else {
		e.tenantLocked(tenant)
	}
	for name, s := range slice.Streams {
		e.streams[nsKey{tenant, name}] = &streamInfo{domain: s.Domain, count: s.Count}
	}
	// Re-register the queries, rebuilding (empty) shared synopses...
	for _, q := range slice.Queries {
		spec := QuerySpec{
			Name:         q.Name,
			Agg:          Aggregate(q.Agg),
			Left:         Side(q.Left),
			Right:        Side(q.Right),
			SketchConfig: q.Config,
		}
		if err := e.registerLocked(tenant, spec); err != nil {
			return fmt.Errorf("engine: restore: %w", err)
		}
	}
	// ...then overwrite each synopsis' state from its blob.
	for _, s := range slice.Synopses {
		key := synKey{
			tenant:        tenant,
			stream:        s.Stream,
			predicate:     s.Predicate,
			windowLen:     s.WindowLen,
			windowBuckets: s.WindowBuckets,
			cfg:           s.Config,
		}
		entry, ok := e.synopses[key]
		if !ok {
			return fmt.Errorf("engine: restore: snapshot synopsis %+v matches no restored query side", key)
		}
		if entry.win != nil {
			var w window.Window
			if err := w.UnmarshalBinary(s.Blob); err != nil {
				return fmt.Errorf("engine: restore: %w", err)
			}
			*entry.win = w
		} else {
			if err := entry.sketch.UnmarshalBinary(s.Blob); err != nil {
				return fmt.Errorf("engine: restore: %w", err)
			}
		}
	}
	// ...and re-arm the standing watches with their checkpointed state.
	for _, w := range slice.Watches {
		state := monitor.Normal
		if w.Alert {
			state = monitor.Alert
		}
		if _, ok := e.queries[nsKey{tenant, w.Query}]; !ok {
			return fmt.Errorf("engine: restore: watch on unknown query %q", w.Query)
		}
		if err := e.watches.Restore(watchKey(tenant, w.Query), monitor.WatchConfig{High: w.High, Low: w.Low}, state); err != nil {
			return fmt.Errorf("engine: restore: %w", err)
		}
	}
	return nil
}
