package engine

import (
	"encoding/json"
	"fmt"
	"io"

	"skimsketch/internal/core"
	"skimsketch/internal/window"
)

// Snapshot/Restore persist the engine — declared streams, registered
// queries, and every synopsis' counters — so a stream processor can
// restart without losing its summaries. The container is JSON (sketch
// blobs are base64-encoded by encoding/json); the sketch payloads are
// the same binary formats used everywhere else.
//
// Predicates are functions and cannot be serialized: Restore requires
// every predicate named by the snapshot to have been re-registered on
// the receiving engine first, and fails otherwise.

const snapshotVersion = 1

type streamSnap struct {
	Domain uint64 `json:"domain"`
	Count  int64  `json:"count"`
}

type sideSnap struct {
	Stream        string `json:"stream"`
	Predicate     string `json:"predicate,omitempty"`
	WindowLen     int64  `json:"windowLen,omitempty"`
	WindowBuckets int    `json:"windowBuckets,omitempty"`
}

type querySnap struct {
	Name   string       `json:"name"`
	Agg    int          `json:"agg"`
	Left   sideSnap     `json:"left"`
	Right  sideSnap     `json:"right"`
	Config *core.Config `json:"config,omitempty"`
}

type synSnap struct {
	Stream        string      `json:"stream"`
	Predicate     string      `json:"predicate,omitempty"`
	WindowLen     int64       `json:"windowLen,omitempty"`
	WindowBuckets int         `json:"windowBuckets,omitempty"`
	Config        core.Config `json:"config"`
	Blob          []byte      `json:"blob"`
}

type snapshot struct {
	Version  int                   `json:"version"`
	Defaults core.Config           `json:"defaults"`
	Streams  map[string]streamSnap `json:"streams"`
	Queries  []querySnap           `json:"queries"`
	Synopses []synSnap             `json:"synopses"`
}

// Snapshot writes the engine state to w. With the ingestion pipeline
// running, the pipeline is drained and held quiescent for the duration of
// the write, so the snapshot observes every enqueued batch applied in
// full — never a batch applied to one synopsis but not another.
func (e *Engine) Snapshot(w io.Writer) error {
	defer e.readQuiesce()()

	snap := snapshot{
		Version:  snapshotVersion,
		Defaults: e.defaults,
		Streams:  make(map[string]streamSnap, len(e.streams)),
	}
	for name, info := range e.streams {
		snap.Streams[name] = streamSnap{Domain: info.domain, Count: info.count}
	}
	for name, q := range e.queries {
		snap.Queries = append(snap.Queries, querySnap{
			Name:   name,
			Agg:    int(q.spec.Agg),
			Left:   sideSnap(q.spec.Left),
			Right:  sideSnap(q.spec.Right),
			Config: q.spec.SketchConfig,
		})
	}
	for key, entry := range e.synopses {
		var blob []byte
		var err error
		if entry.win != nil {
			blob, err = entry.win.MarshalBinary()
		} else {
			blob, err = entry.sketch.MarshalBinary()
		}
		if err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
		snap.Synopses = append(snap.Synopses, synSnap{
			Stream:        key.stream,
			Predicate:     key.predicate,
			WindowLen:     key.windowLen,
			WindowBuckets: key.windowBuckets,
			Config:        key.cfg,
			Blob:          blob,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// Restore loads a snapshot into e, which must have no streams or queries
// yet (predicates must already be re-registered). On success the engine
// answers queries exactly as the snapshotted engine did.
func (e *Engine) Restore(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("engine: restore: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("engine: restore: unsupported snapshot version %d", snap.Version)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.streams) != 0 || len(e.queries) != 0 {
		return fmt.Errorf("engine: restore requires an empty engine (no streams or queries)")
	}
	e.routes = nil
	// Restored synopses restart at epoch 0: any answers cached before the
	// restore would collide with the fresh epochs, so drop them all.
	e.answers = make(map[string]cachedAnswer)
	for _, q := range snap.Queries {
		if q.Left.Predicate != "" {
			if _, ok := e.predicates[q.Left.Predicate]; !ok {
				return fmt.Errorf("engine: restore: predicate %q must be re-registered first", q.Left.Predicate)
			}
		}
		if q.Right.Predicate != "" {
			if _, ok := e.predicates[q.Right.Predicate]; !ok {
				return fmt.Errorf("engine: restore: predicate %q must be re-registered first", q.Right.Predicate)
			}
		}
	}

	e.defaults = snap.Defaults
	for name, s := range snap.Streams {
		e.streams[name] = &streamInfo{domain: s.Domain, count: s.Count}
	}
	// Re-register the queries, rebuilding (empty) shared synopses...
	for _, q := range snap.Queries {
		spec := QuerySpec{
			Name:         q.Name,
			Agg:          Aggregate(q.Agg),
			Left:         Side(q.Left),
			Right:        Side(q.Right),
			SketchConfig: q.Config,
		}
		if err := e.registerLocked(spec); err != nil {
			return fmt.Errorf("engine: restore: %w", err)
		}
	}
	// ...then overwrite each synopsis' state from its blob.
	for _, s := range snap.Synopses {
		key := synKey{
			stream:        s.Stream,
			predicate:     s.Predicate,
			windowLen:     s.WindowLen,
			windowBuckets: s.WindowBuckets,
			cfg:           s.Config,
		}
		entry, ok := e.synopses[key]
		if !ok {
			return fmt.Errorf("engine: restore: snapshot synopsis %+v matches no restored query side", key)
		}
		if entry.win != nil {
			var w window.Window
			if err := w.UnmarshalBinary(s.Blob); err != nil {
				return fmt.Errorf("engine: restore: %w", err)
			}
			*entry.win = w
		} else {
			if err := entry.sketch.UnmarshalBinary(s.Blob); err != nil {
				return fmt.Errorf("engine: restore: %w", err)
			}
		}
	}
	return nil
}
