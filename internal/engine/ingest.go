package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"skimsketch/internal/monitor"
	"skimsketch/internal/stream"
)

// The batched ingestion pipeline: N shard workers, each owning a disjoint
// subset of the engine's synopses (hash on the synopsis id), fed by
// bounded channels. A batch for stream S is fanned out to every shard
// holding a synopsis over S; the send blocks when a worker queue is full,
// which is the pipeline's backpressure. Because each synopsis belongs to
// exactly one shard, workers never write the same counters and can apply
// concurrently under a shared (read) apply lock; readers take the
// exclusive side, so a query never observes a half-applied batch.
//
// The pipeline is shared by every tenant: batches are routed on
// (tenant, stream) and a tenant's queue share is metered by its pending-
// update count, admission-checked against Quota.MaxPendingUpdates — so
// thousands of small tenants ride one worker pool without one of them
// starving the rest.
//
// Consistency contract: the fan-out of one batch happens atomically under
// ing.fanMu (read side). Readers quiesce by taking ing.fanMu exclusively,
// draining every worker queue with a barrier, and only then reading under
// the exclusive apply lock — so every batch is observed either fully
// applied to all of its stream's synopses or not at all, never torn
// across synopses or tables.

// IngestConfig tunes the concurrent ingestion pipeline.
type IngestConfig struct {
	// Workers is the number of shard workers. <= 0 defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// BatchSize is the maximum number of updates per queued batch; larger
	// IngestBatch calls are split on BatchSize boundaries. <= 0 defaults
	// to 256.
	BatchSize int
	// QueueDepth is each worker's queue capacity in batches; a full queue
	// blocks producers (backpressure). <= 0 defaults to 64.
	QueueDepth int
}

func (c *IngestConfig) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
}

// ingestItem is one unit of worker work: apply batch to entries (all
// owned by the receiving worker's shard). A barrier item instead signals
// the WaitGroup, implementing Flush.
type ingestItem struct {
	entries []*synEntry
	batch   []stream.Update
	// count is the number of elements this item accounts for in the
	// applied-updates metric and the owner tenant's pending gauge; only
	// one shard of a fan-out carries it, so elements are counted once
	// however many synopses they reach.
	count int
	// tenant is the pending-gauge owner for count-carrying items.
	tenant  *tenantState
	barrier *sync.WaitGroup
	// done, when non-nil, is the refcount of an IngestGroups request with
	// a release callback; the worker drops one reference after the item's
	// batch has been folded into every entry.
	done *groupDone
}

// groupDone refcounts one IngestGroups request across the items it fans
// out to. refs starts at 1 (the creator's reference, dropped when the
// fan-out finishes enqueueing) and each queued item holds one more, so
// release fires exactly once, after every chunk of every group has been
// applied — at which point the engine no longer references the caller's
// update buffers and they may be reused.
type groupDone struct {
	refs    atomic.Int64
	release func()
}

func newGroupDone(release func()) *groupDone {
	d := &groupDone{release: release}
	d.refs.Store(1)
	return d
}

func (d *groupDone) add() { d.refs.Add(1) }

func (d *groupDone) done() {
	if d.refs.Add(-1) == 0 {
		d.release()
	}
}

type ingester struct {
	cfg   IngestConfig
	chans []chan ingestItem
	wg    sync.WaitGroup

	// fanMu makes the fan-out of one batch atomic with respect to
	// barriers: producers hold the read side across all shard sends;
	// Flush/quiesce/Stop hold the write side. closed is guarded by fanMu.
	fanMu  sync.RWMutex
	closed bool
}

// StartIngest launches the concurrent ingestion pipeline. Subsequent
// IngestBatch calls enqueue to the shard workers instead of applying
// synchronously. It fails if a pipeline is already running.
func (e *Engine) StartIngest(cfg IngestConfig) error {
	cfg.applyDefaults()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ing != nil {
		return fmt.Errorf("engine: ingest pipeline already running")
	}
	ing := &ingester{cfg: cfg, chans: make([]chan ingestItem, cfg.Workers)}
	for i := range ing.chans {
		ing.chans[i] = make(chan ingestItem, cfg.QueueDepth)
	}
	ing.wg.Add(cfg.Workers)
	for i := range ing.chans {
		go ing.worker(e, ing.chans[i])
	}
	e.ing = ing
	e.routes = nil // the shard count changed; rebuild routes lazily
	return nil
}

// StopIngest drains and shuts down the pipeline. Queued batches are fully
// applied before it returns; afterwards IngestBatch applies synchronously
// again. It is a no-op if no pipeline is running.
func (e *Engine) StopIngest() {
	e.mu.Lock()
	ing := e.ing
	e.ing = nil
	e.routes = nil
	e.mu.Unlock()
	if ing == nil {
		return
	}
	ing.fanMu.Lock()
	ing.closed = true
	for _, ch := range ing.chans {
		close(ch)
	}
	ing.fanMu.Unlock()
	ing.wg.Wait() // workers drain their queues before exiting
}

// worker applies queued batches to its shard's synopses. The shared
// (read) apply lock lets all workers run concurrently — their synopsis
// sets are disjoint — while excluding readers, which take the write side.
func (ing *ingester) worker(e *Engine, ch chan ingestItem) {
	defer ing.wg.Done()
	for item := range ch {
		if item.barrier != nil {
			item.barrier.Done()
			continue
		}
		e.applyMu.RLock()
		for _, en := range item.entries {
			en.updateBatch(item.batch)
		}
		e.applyMu.RUnlock()
		e.metrics.QueueDepth.Add(-1)
		if item.count > 0 {
			e.metrics.UpdatesApplied.Add(int64(item.count))
			item.tenant.pending.Add(-int64(item.count))
		}
		e.metrics.Batches.Add(1)
		if item.done != nil {
			item.done.done()
		}
	}
}

// barrierLocked drains every worker queue: the barrier items are FIFO
// behind all previously enqueued batches. Callers hold ing.fanMu
// exclusively, so no batch can be half-fanned-out across the barrier.
func (ing *ingester) barrierLocked() {
	var wg sync.WaitGroup
	wg.Add(len(ing.chans))
	for _, ch := range ing.chans {
		ch <- ingestItem{barrier: &wg}
	}
	wg.Wait()
}

// enqueue fans the batch out to the shards named by route, splitting it
// into BatchSize chunks. If the pipeline was stopped between routing and
// enqueueing, it falls back to a synchronous apply (settling the
// tenant's pending gauge itself). done, when non-nil, gains one
// reference per queued item (the worker drops it after applying); the
// synchronous fallback applies inline and so adds none.
func (ing *ingester) enqueue(e *Engine, ts *tenantState, route [][]*synEntry, updates []stream.Update, done *groupDone) {
	ing.fanMu.RLock()
	defer ing.fanMu.RUnlock()
	if ing.closed {
		e.applyMu.Lock()
		for _, entries := range route {
			for _, en := range entries {
				en.updateBatch(updates)
			}
		}
		e.applyMu.Unlock()
		e.metrics.UpdatesApplied.Add(int64(len(updates)))
		ts.pending.Add(-int64(len(updates)))
		e.metrics.Batches.Add(1)
		return
	}
	bs := ing.cfg.BatchSize
	for off := 0; off < len(updates); off += bs {
		end := off + bs
		if end > len(updates) {
			end = len(updates)
		}
		chunk := updates[off:end]
		counted := false
		for shard, entries := range route {
			if len(entries) == 0 {
				continue
			}
			item := ingestItem{entries: entries, batch: chunk}
			if !counted {
				item.count = len(chunk)
				item.tenant = ts
				counted = true
			}
			if done != nil {
				done.add()
				item.done = done
			}
			e.metrics.QueueDepth.Add(1)
			ing.chans[shard] <- item
		}
		if !counted {
			// No synopsis anywhere listens to this stream: nothing will
			// apply the chunk, so settle its pending share immediately
			// (the applied-updates metric keeps its historical meaning of
			// "folded into at least one synopsis").
			ts.pending.Add(-int64(len(chunk)))
		}
	}
}

// ValidateBatch checks that a default-tenant batch could be ingested —
// the stream is declared and every value lies inside its domain —
// without applying anything. Callers staging a multi-stream request can
// validate every group first and only then apply, making the whole
// request atomic.
func (e *Engine) ValidateBatch(streamName string, updates []stream.Update) error {
	return e.Tenant(DefaultTenant).ValidateBatch(streamName, updates)
}

// ValidateBatch is Engine.ValidateBatch scoped to this tenant.
func (t *Tenant) ValidateBatch(streamName string, updates []stream.Update) error {
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	info, ok := e.streams[nsKey{t.name, streamName}]
	if !ok {
		return fmt.Errorf("engine: unknown stream %q", streamName)
	}
	if err := stream.Validate(updates, info.domain); err != nil {
		return fmt.Errorf("engine: stream %q: %w", streamName, err)
	}
	return nil
}

// IngestBatch validates and ingests a batch of default-tenant updates
// for one stream. With a running pipeline (StartIngest) the batch is
// enqueued to the shard workers and applied asynchronously — a following
// Flush, Answer, Snapshot or Stats call observes it; a full queue blocks
// (backpressure). Without a pipeline it applies synchronously before
// returning. In both modes the result is bit-for-bit identical to
// calling Update once per element in order. Validation is synchronous:
// on error the whole batch is rejected and nothing is applied.
func (e *Engine) IngestBatch(streamName string, updates []stream.Update) error {
	return e.Tenant(DefaultTenant).IngestBatch(streamName, updates)
}

// IngestBatch is Engine.IngestBatch scoped to this tenant. On top of the
// validation contract it enforces the tenant's queue-share quota: with a
// running pipeline, a batch that would push the tenant's pending-update
// count past Quota.MaxPendingUpdates is rejected with an error wrapping
// ErrQuotaExceeded, and nothing is applied or enqueued.
func (t *Tenant) IngestBatch(streamName string, updates []stream.Update) error {
	if len(updates) == 0 {
		return nil
	}
	return t.IngestGroups([]stream.Group{{Name: streamName, Updates: updates}}, nil)
}

// IngestGroups validates and ingests a multi-stream request of
// default-tenant update groups; see Tenant.IngestGroups.
func (e *Engine) IngestGroups(groups []stream.Group, release func()) error {
	return e.Tenant(DefaultTenant).IngestGroups(groups, release)
}

// IngestGroups validates and ingests one multi-stream request
// atomically: every group is validated (stream declared, values in
// domain) and the tenant's queue-share quota is checked against the
// request's SUMMED update count before anything is admitted. On error
// nothing has been applied, enqueued, or counted — a quota rejection
// (wrapping ErrQuotaExceeded) therefore really means "retry the whole
// request", never "part of it landed".
//
// release, when non-nil, transfers buffer ownership: on a nil return
// the engine references the groups' Updates slices until every element
// has been folded into every listening synopsis, and then calls release
// exactly once — after which the caller may reuse the buffers. On a
// non-nil return the engine retains nothing and release is never
// called. A nil release keeps IngestBatch's historical contract (the
// caller must not reuse the slices).
func (t *Tenant) IngestGroups(groups []stream.Group, release func()) error {
	total := 0
	for i := range groups {
		total += len(groups[i].Updates)
	}
	if total == 0 {
		if release != nil {
			release()
		}
		return nil
	}
	e := t.e
	e.mu.Lock()
	for i := range groups {
		info, ok := e.streams[nsKey{t.name, groups[i].Name}]
		if !ok {
			e.mu.Unlock()
			return fmt.Errorf("engine: unknown stream %q", groups[i].Name)
		}
		if err := stream.Validate(groups[i].Updates, info.domain); err != nil {
			e.mu.Unlock()
			return fmt.Errorf("engine: stream %q: %w", groups[i].Name, err)
		}
	}
	ing := e.ing
	shards := 1
	if ing != nil {
		shards = len(ing.chans)
	}
	ts := e.tenantLocked(t.name)
	if ing != nil {
		if max := ts.quota.MaxPendingUpdates; max > 0 {
			if pend := ts.pending.Load(); pend+int64(total) > max {
				ts.rejected.Add(int64(total))
				e.metrics.Rejected.Add(int64(total))
				e.mu.Unlock()
				return fmt.Errorf("engine: tenant %q: %d pending + %d batched updates over queue-share quota %d: %w",
					t.name, pend, total, max, ErrQuotaExceeded)
			}
		}
	}
	// Admission is now certain: capture routes and bump counters for every
	// group under the same e.mu hold, so no concurrent request can wedge
	// between the groups of this one.
	var stackRoutes [4][][]*synEntry
	routes := stackRoutes[:0]
	for i := range groups {
		routes = append(routes, e.routeLocked(t.name, groups[i].Name, shards))
		e.streams[nsKey{t.name, groups[i].Name}].count += int64(len(groups[i].Updates))
	}
	e.metrics.UpdatesEnqueued.Add(int64(total))
	if ing == nil {
		// Synchronous path: apply inline under the exclusive apply lock,
		// with e.mu held like Update.
		e.applyMu.Lock()
		for i := range groups {
			for _, en := range routes[i][0] {
				en.updateBatch(groups[i].Updates)
			}
		}
		e.applyMu.Unlock()
		e.metrics.UpdatesApplied.Add(int64(total))
		e.metrics.Batches.Add(int64(len(groups)))
		e.mu.Unlock()
		if release != nil {
			release()
		}
		return nil
	}
	ts.pending.Add(int64(total))
	e.mu.Unlock()
	var done *groupDone
	if release != nil {
		done = newGroupDone(release)
	}
	for i := range groups {
		ing.enqueue(e, ts, routes[i], groups[i].Updates, done)
	}
	if done != nil {
		done.done() // drop the creator reference
	}
	return nil
}

// Flush blocks until every batch enqueued before the call is fully
// applied. It is a no-op without a running pipeline.
func (e *Engine) Flush() {
	e.mu.Lock()
	ing := e.ing
	e.mu.Unlock()
	if ing == nil {
		return
	}
	ing.fanMu.Lock()
	if !ing.closed {
		ing.barrierLocked()
		e.metrics.Flushes.Add(1)
	}
	ing.fanMu.Unlock()
}

// routeLocked returns the per-shard synopsis lists for a tenant's
// stream, computing and caching them on first use. The cache is
// invalidated whenever the synopsis set or the shard count changes.
// Callers hold e.mu.
func (e *Engine) routeLocked(tenant, streamName string, shards int) [][]*synEntry {
	if e.routes == nil || e.routesShards != shards {
		e.routes = make(map[nsKey][][]*synEntry)
		e.routesShards = shards
	}
	key := nsKey{tenant, streamName}
	if r, ok := e.routes[key]; ok {
		return r
	}
	r := make([][]*synEntry, shards)
	for _, en := range e.synopses {
		if en.key.tenant == tenant && en.key.stream == streamName {
			s := en.id % shards
			r[s] = append(r[s], en)
		}
	}
	e.routes[key] = r
	return r
}

// IngestSaturated reports whether the ingestion pipeline is running and
// at least one shard queue is full. It is an admission-control probe for
// load shedding: a server that checks it before enqueueing can return
// 429 instead of blocking on a full queue. The answer is advisory — a
// racing producer can fill (or a worker drain) a queue immediately after
// the probe — so an admitted batch may still block briefly; what the
// probe guarantees is that a saturated pipeline is detected without
// touching the queues.
func (e *Engine) IngestSaturated() bool {
	e.mu.Lock()
	ing := e.ing
	e.mu.Unlock()
	if ing == nil {
		return false
	}
	for _, ch := range ing.chans {
		if len(ch) == cap(ch) {
			return true
		}
	}
	return false
}

// NoteRejected records n stream elements refused for backpressure (the
// caller chose load shedding over blocking). Surfaced via IngestStats.
func (e *Engine) NoteRejected(n int64) {
	e.metrics.Rejected.Add(n)
}

// IngestStats returns the ingestion pipeline counters (updates enqueued
// and applied, batches, mean batch fill, queue depth, flushes,
// backpressure rejections, and the lifetime updates/sec rate).
func (e *Engine) IngestStats() monitor.IngestSnapshot {
	return e.metrics.Snapshot()
}

// readQuiesce drains the pipeline (if running) and acquires the locks a
// consistent read needs: ing.fanMu exclusively (no batch mid-fan-out),
// e.mu (map state), and the exclusive side of applyMu (no worker
// mid-apply). The returned function releases everything.
func (e *Engine) readQuiesce() func() {
	e.mu.Lock()
	ing := e.ing
	e.mu.Unlock()
	if ing != nil {
		ing.fanMu.Lock()
		if !ing.closed {
			ing.barrierLocked()
			e.metrics.Flushes.Add(1)
		}
	}
	e.mu.Lock()
	e.applyMu.Lock()
	return func() {
		e.applyMu.Unlock()
		e.mu.Unlock()
		if ing != nil {
			ing.fanMu.Unlock()
		}
	}
}
