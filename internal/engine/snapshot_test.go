package engine

import (
	"bytes"
	"strings"
	"testing"

	"skimsketch/internal/workload"
)

// buildLoadedEngine populates an engine with streams, predicates,
// queries (plain, predicated, windowed) and traffic.
func buildLoadedEngine(t *testing.T) *Engine {
	t.Helper()
	e := mustEngine(t)
	if err := e.DeclareStream("F", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("G", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	specs := []QuerySpec{
		{Name: "plain", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}},
		{Name: "pred", Agg: Count, Left: Side{Stream: "F", Predicate: "low"}, Right: Side{Stream: "G"}},
		{Name: "win", Agg: Count,
			Left:  Side{Stream: "F", WindowLen: 1000, WindowBuckets: 4},
			Right: Side{Stream: "G"}},
	}
	for _, s := range specs {
		if err := e.RegisterQuery(s); err != nil {
			t.Fatal(err)
		}
	}
	zf, _ := workload.NewZipf(1024, 1.2, 1)
	zg, _ := workload.NewZipf(1024, 1.2, 2)
	for i := 0; i < 5000; i++ {
		if err := e.Update("F", zf.Next(), 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Update("G", zg.Next(), 1); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	orig := buildLoadedEngine(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := mustEngine(t)
	if err := restored.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Every query must answer identically.
	for _, q := range orig.Queries() {
		a, err := orig.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Estimate != b.Estimate {
			t.Fatalf("query %q: restored estimate %d differs from %d", q, b.Estimate, a.Estimate)
		}
	}
	// Stats (counts, sharing, words) must survive.
	so, sr := orig.Stats(), restored.Stats()
	if so.Synopses != sr.Synopses || so.TotalWords != sr.TotalWords ||
		so.UpdateCounts["F"] != sr.UpdateCounts["F"] {
		t.Fatalf("stats diverged: %+v vs %+v", so, sr)
	}

	// The restored engine keeps working: further updates shift answers in
	// both engines identically.
	orig.Update("F", 3, 100)
	restored.Update("F", 3, 100)
	orig.Update("G", 3, 7)
	restored.Update("G", 3, 7)
	a, _ := orig.Answer("plain")
	b, _ := restored.Answer("plain")
	if a.Estimate != b.Estimate {
		t.Fatalf("post-restore divergence: %d vs %d", a.Estimate, b.Estimate)
	}
}

func TestRestoreRequiresPredicates(t *testing.T) {
	orig := buildLoadedEngine(t)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := mustEngine(t) // "low" not registered
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "predicate") {
		t.Fatalf("expected predicate error, got %v", err)
	}
}

func TestRestoreRequiresEmptyEngine(t *testing.T) {
	orig := buildLoadedEngine(t)
	var buf bytes.Buffer
	orig.Snapshot(&buf)
	notEmpty := mustEngine(t)
	notEmpty.DeclareStream("X", 8)
	notEmpty.RegisterPredicate("low", func(uint64, int64) bool { return true })
	if err := notEmpty.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected non-empty-engine error")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	e := mustEngine(t)
	if err := e.Restore(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected JSON error")
	}
	if err := e.Restore(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("expected version error")
	}
}
