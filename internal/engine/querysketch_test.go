package engine

import (
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/distributed"
	"skimsketch/internal/stream"
)

func newSketchTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Options{SketchConfig: core.Config{Tables: 5, Buckets: 128, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("F", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("G", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterQuery(QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}}); err != nil {
		t.Fatal(err)
	}
	return e
}

func blob(t *testing.T, sk *core.HashSketch) string {
	t.Helper()
	b, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestQuerySketchesSnapshotIsPrivate(t *testing.T) {
	e := newSketchTestEngine(t)
	for v := uint64(0); v < 100; v++ {
		if err := e.Update("F", v, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.Update("G", v%10, 1); err != nil {
			t.Fatal(err)
		}
	}
	tn := e.Tenant(DefaultTenant)
	qs, err := tn.QuerySketches("q")
	if err != nil {
		t.Fatal(err)
	}
	if qs.Agg != Count || qs.Domain != 1024 || qs.Query != "q" {
		t.Fatalf("snapshot metadata wrong: %+v", qs)
	}
	if qs.LeftEpoch != 100 || qs.RightEpoch != 100 {
		t.Fatalf("epochs = %d/%d, want 100/100", qs.LeftEpoch, qs.RightEpoch)
	}
	before, err := tn.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot; the live synopses (and answers) must not move.
	qs.Left.Update(7, 1000)
	qs.Right.Update(7, 1000)
	after, err := tn.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if before.Estimate != after.Estimate {
		t.Fatal("mutating a QuerySketches snapshot changed the live answer")
	}

	if _, err := tn.QuerySketches("nope"); err == nil {
		t.Fatal("unknown query must error")
	}
}

// TestQuerySketchesMergeAcrossEngines is the cluster linearity property
// end to end at the engine layer: value-partition one workload across 3
// engines, merge their per-side snapshots, and the estimate over the
// merged pair must equal a single engine's answer over the whole
// workload exactly.
func TestQuerySketchesMergeAcrossEngines(t *testing.T) {
	whole := newSketchTestEngine(t)
	parts := []*Engine{newSketchTestEngine(t), newSketchTestEngine(t), newSketchTestEngine(t)}
	feed := func(streamName string, v uint64, w int64) {
		if err := whole.Update(streamName, v, w); err != nil {
			t.Fatal(err)
		}
		if err := parts[v%3].Update(streamName, v, w); err != nil {
			t.Fatal(err)
		}
	}
	for v := uint64(0); v < 600; v++ {
		feed("F", v%512, 1)
		feed("G", (v*7)%512, int64(1+v%3))
	}

	var lefts, rights []*core.HashSketch
	for _, p := range parts {
		qs, err := p.Tenant(DefaultTenant).QuerySketches("q")
		if err != nil {
			t.Fatal(err)
		}
		lefts = append(lefts, qs.Left)
		rights = append(rights, qs.Right)
	}
	mergedL, err := distributed.Merge(lefts...)
	if err != nil {
		t.Fatal(err)
	}
	mergedR, err := distributed.Merge(rights...)
	if err != nil {
		t.Fatal(err)
	}
	wq, err := whole.Tenant(DefaultTenant).QuerySketches("q")
	if err != nil {
		t.Fatal(err)
	}
	if blob(t, mergedL) != blob(t, wq.Left) || blob(t, mergedR) != blob(t, wq.Right) {
		t.Fatal("merged shard snapshots are not bit-identical to the single-engine synopses")
	}

	est, err := core.EstimateJoin(mergedL, mergedR, wq.Domain, nil)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := whole.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != ans.Estimate {
		t.Fatalf("merged estimate %d != single-engine estimate %d", est.Total, ans.Estimate)
	}
}

// TestQuerySketchesDrainsPipeline: with the concurrent pipeline running,
// a snapshot must reflect every batch enqueued before the call.
func TestQuerySketchesDrainsPipeline(t *testing.T) {
	e := newSketchTestEngine(t)
	if err := e.StartIngest(IngestConfig{Workers: 2, BatchSize: 8, QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	defer e.StopIngest()
	batch := make([]stream.Update, 50)
	for v := range batch {
		batch[v] = stream.Update{Value: uint64(v), Weight: 1}
	}
	if err := e.IngestBatch("F", batch); err != nil {
		t.Fatal(err)
	}
	qs, err := e.Tenant(DefaultTenant).QuerySketches("q")
	if err != nil {
		t.Fatal(err)
	}
	if qs.LeftEpoch != 50 {
		t.Fatalf("left epoch %d, want 50 (pipeline not drained before snapshot)", qs.LeftEpoch)
	}
}
