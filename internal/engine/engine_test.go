package engine

import (
	"sync"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func defaultOpts() Options {
	return Options{SketchConfig: core.Config{Tables: 5, Buckets: 256, Seed: 7}}
}

func mustEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("expected error for empty config")
	}
}

func TestDeclareStreamValidation(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("", 16); err == nil {
		t.Fatal("expected error for empty name")
	}
	if err := e.DeclareStream("F", 0); err == nil {
		t.Fatal("expected error for zero domain")
	}
	if err := e.DeclareStream("F", 16); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("F", 16); err == nil {
		t.Fatal("expected duplicate-stream error")
	}
}

func TestRegisterPredicateValidation(t *testing.T) {
	e := mustEngine(t)
	if err := e.RegisterPredicate("", nil); err == nil {
		t.Fatal("expected error for empty predicate")
	}
	p := func(v uint64, w int64) bool { return true }
	if err := e.RegisterPredicate("p", p); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPredicate("p", p); err == nil {
		t.Fatal("expected duplicate-predicate error")
	}
}

func TestRegisterQueryValidation(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	cases := []QuerySpec{
		{Name: "", Left: Side{Stream: "F"}, Right: Side{Stream: "F"}},
		{Name: "q", Agg: Aggregate(9), Left: Side{Stream: "F"}, Right: Side{Stream: "F"}},
		{Name: "q", Left: Side{Stream: "missing"}, Right: Side{Stream: "F"}},
		{Name: "q", Left: Side{Stream: "F"}, Right: Side{Stream: "missing"}},
		{Name: "q", Left: Side{Stream: "F", Predicate: "missing"}, Right: Side{Stream: "F"}},
		{Name: "q", Left: Side{Stream: "F", WindowBuckets: 3}, Right: Side{Stream: "F"}},
		{Name: "q", Left: Side{Stream: "F", WindowLen: 10, WindowBuckets: 3}, Right: Side{Stream: "F"}},
		{Name: "q", Left: Side{Stream: "F"}, Right: Side{Stream: "F"}, SketchConfig: &core.Config{}},
	}
	for i, spec := range cases {
		if err := e.RegisterQuery(spec); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, spec)
		}
	}
	good := QuerySpec{Name: "q", Left: Side{Stream: "F"}, Right: Side{Stream: "F"}}
	if err := e.RegisterQuery(good); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterQuery(good); err == nil {
		t.Fatal("expected duplicate-query error")
	}
}

func TestUpdateValidation(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 16)
	if err := e.Update("missing", 1, 1); err == nil {
		t.Fatal("expected unknown-stream error")
	}
	if err := e.Update("F", 16, 1); err == nil {
		t.Fatal("expected out-of-domain error")
	}
	if err := e.Update("F", 15, 1); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerUnknownQuery(t *testing.T) {
	e := mustEngine(t)
	if _, err := e.Answer("missing"); err == nil {
		t.Fatal("expected unknown-query error")
	}
}

func TestCountQueryEndToEnd(t *testing.T) {
	e := mustEngine(t)
	const domain = 1 << 10
	e.DeclareStream("F", domain)
	e.DeclareStream("G", domain)
	if err := e.RegisterQuery(QuerySpec{Name: "q", Agg: Count,
		Left: Side{Stream: "F"}, Right: Side{Stream: "G"}}); err != nil {
		t.Fatal(err)
	}
	zf, _ := workload.NewZipf(domain, 1.2, 1)
	zg, _ := workload.NewZipf(domain, 1.2, 2)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for i := 0; i < 20000; i++ {
		v := zf.Next()
		if err := e.Update("F", v, 1); err != nil {
			t.Fatal(err)
		}
		fv.Update(v, 1)
		w := zg.Next()
		if err := e.Update("G", w, 1); err != nil {
			t.Fatal(err)
		}
		gv.Update(w, 1)
	}
	ans, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(fv.InnerProduct(gv))
	if errv := stats.SymmetricError(float64(ans.Estimate), exact); errv > 0.3 {
		t.Fatalf("engine COUNT error %.4f (est %d vs exact %.0f)", errv, ans.Estimate, exact)
	}
	if ans.Agg != Count || ans.Query != "q" {
		t.Fatalf("answer metadata wrong: %+v", ans)
	}
}

func TestSelfJoinQuery(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 64)
	e.RegisterQuery(QuerySpec{Name: "f2", Agg: Count,
		Left: Side{Stream: "F"}, Right: Side{Stream: "F"}})
	for i := 0; i < 9; i++ {
		e.Update("F", 5, 1)
	}
	ans, err := e.Answer("f2")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 81 {
		t.Fatalf("self-join estimate = %d, want 81", ans.Estimate)
	}
	// Both sides share one synopsis.
	st := e.Stats()
	if st.Synopses != 1 || st.SynopsisRefs != 2 {
		t.Fatalf("sharing stats wrong: %+v", st)
	}
}

func TestPredicatePushdown(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 64)
	e.DeclareStream("G", 64)
	e.RegisterPredicate("even", func(v uint64, w int64) bool { return v%2 == 0 })
	e.RegisterQuery(QuerySpec{Name: "q", Agg: Count,
		Left:  Side{Stream: "F", Predicate: "even"},
		Right: Side{Stream: "G"}})
	// Odd F values must be dropped before sketching.
	e.Update("F", 2, 10)
	e.Update("F", 3, 10)
	e.Update("G", 2, 4)
	e.Update("G", 3, 4)
	ans, err := e.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 40 {
		t.Fatalf("estimate = %d, want 40 (only even values join)", ans.Estimate)
	}
}

func TestSumQuery(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("subs", 64)
	e.DeclareStream("sales", 64)
	e.RegisterQuery(QuerySpec{Name: "rev", Agg: Sum,
		Left: Side{Stream: "subs"}, Right: Side{Stream: "sales"}})
	e.Update("subs", 9, 1)
	e.Update("subs", 9, 1)
	e.Update("sales", 9, 250) // measure-weighted
	e.Update("sales", 9, 100)
	e.Update("sales", 3, 999) // non-joining
	ans, err := e.Answer("rev")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 700 {
		t.Fatalf("SUM estimate = %d, want 700", ans.Estimate)
	}
}

func TestSynopsisSharingAcrossQueries(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 64)
	e.DeclareStream("G", 64)
	e.DeclareStream("H", 64)
	e.RegisterQuery(QuerySpec{Name: "fg", Left: Side{Stream: "F"}, Right: Side{Stream: "G"}})
	e.RegisterQuery(QuerySpec{Name: "fh", Left: Side{Stream: "F"}, Right: Side{Stream: "H"}})
	st := e.Stats()
	// F's synopsis is shared: 3 synopses serve 4 query sides.
	if st.Synopses != 3 || st.SynopsisRefs != 4 {
		t.Fatalf("sharing stats wrong: %+v", st)
	}
	if st.Queries != 2 || st.Streams != 3 {
		t.Fatalf("stats wrong: %+v", st)
	}
	// An element on F is visible to both queries.
	e.Update("F", 1, 5)
	e.Update("G", 1, 2)
	e.Update("H", 1, 3)
	fg, _ := e.Answer("fg")
	fh, _ := e.Answer("fh")
	if fg.Estimate != 10 || fh.Estimate != 15 {
		t.Fatalf("estimates %d/%d, want 10/15", fg.Estimate, fh.Estimate)
	}
}

func TestRemoveQueryGarbageCollects(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 64)
	e.DeclareStream("G", 64)
	e.RegisterQuery(QuerySpec{Name: "fg", Left: Side{Stream: "F"}, Right: Side{Stream: "G"}})
	e.RegisterQuery(QuerySpec{Name: "fg2", Left: Side{Stream: "F"}, Right: Side{Stream: "G"}})
	if st := e.Stats(); st.Synopses != 2 || st.SynopsisRefs != 4 {
		t.Fatalf("pre-remove stats: %+v", st)
	}
	if err := e.RemoveQuery("fg"); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Synopses != 2 || st.SynopsisRefs != 2 {
		t.Fatalf("after removing one of two sharers: %+v", st)
	}
	if err := e.RemoveQuery("fg2"); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Synopses != 0 || st.TotalWords != 0 {
		t.Fatalf("after removing all queries: %+v", st)
	}
	if err := e.RemoveQuery("fg"); err == nil {
		t.Fatal("expected unknown-query error")
	}
}

func TestWindowedQuerySide(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 64)
	e.DeclareStream("G", 64)
	if err := e.RegisterQuery(QuerySpec{Name: "w", Agg: Count,
		Left:  Side{Stream: "F", WindowLen: 100, WindowBuckets: 4},
		Right: Side{Stream: "G"}}); err != nil {
		t.Fatal(err)
	}
	// Heavy early F value must expire from the window.
	for i := 0; i < 90; i++ {
		e.Update("F", 7, 1)
	}
	for i := 0; i < 500; i++ {
		e.Update("F", uint64(i%32)+32, 1)
	}
	e.Update("G", 7, 100)
	ans, err := e.Answer("w")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate > 2000 { // would be 9000 without expiry
		// Estimate should be near zero: the 7s are long expired.
		t.Fatalf("windowed estimate %d; expired values must not join", ans.Estimate)
	}
	// Stats must account for the windowed synopsis' bucket words.
	st := e.Stats()
	wantWords := 4*5*256 + 5*256 // windowed F side + plain G side
	if st.TotalWords != wantWords {
		t.Fatalf("TotalWords = %d, want %d", st.TotalWords, wantWords)
	}
}

func TestQueriesAndStreamsListing(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("B", 16)
	e.DeclareStream("A", 16)
	e.RegisterQuery(QuerySpec{Name: "z", Left: Side{Stream: "A"}, Right: Side{Stream: "B"}})
	e.RegisterQuery(QuerySpec{Name: "a", Left: Side{Stream: "A"}, Right: Side{Stream: "B"}})
	qs := e.Queries()
	if len(qs) != 2 || qs[0] != "a" || qs[1] != "z" {
		t.Fatalf("Queries = %v", qs)
	}
	ss := e.Streams()
	if len(ss) != 2 || ss[0] != "A" || ss[1] != "B" {
		t.Fatalf("Streams = %v", ss)
	}
}

func TestPerQuerySketchConfigOverride(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 64)
	e.DeclareStream("G", 64)
	big := core.Config{Tables: 7, Buckets: 512, Seed: 9}
	e.RegisterQuery(QuerySpec{Name: "default", Left: Side{Stream: "F"}, Right: Side{Stream: "G"}})
	e.RegisterQuery(QuerySpec{Name: "big", Left: Side{Stream: "F"}, Right: Side{Stream: "G"}, SketchConfig: &big})
	st := e.Stats()
	// No sharing across different configs: 4 synopses.
	if st.Synopses != 4 {
		t.Fatalf("Synopses = %d, want 4", st.Synopses)
	}
	e.Update("F", 1, 2)
	e.Update("G", 1, 3)
	a, _ := e.Answer("default")
	b, _ := e.Answer("big")
	if a.Estimate != 6 || b.Estimate != 6 {
		t.Fatalf("estimates %d/%d, want 6/6", a.Estimate, b.Estimate)
	}
}

func TestConcurrentUpdatesAndAnswers(t *testing.T) {
	e := mustEngine(t)
	e.DeclareStream("F", 1024)
	e.DeclareStream("G", 1024)
	e.RegisterQuery(QuerySpec{Name: "q", Left: Side{Stream: "F"}, Right: Side{Stream: "G"}})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				e.Update("F", uint64((i*7+p)%1024), 1)
				e.Update("G", uint64((i*13+p)%1024), 1)
				if i%500 == 0 {
					if _, err := e.Answer("q"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	st := e.Stats()
	if st.UpdateCounts["F"] != 8000 || st.UpdateCounts["G"] != 8000 {
		t.Fatalf("update counts: %+v", st.UpdateCounts)
	}
}

func TestAggregateString(t *testing.T) {
	if Count.String() != "COUNT" || Sum.String() != "SUM" {
		t.Fatal("aggregate names")
	}
	if Aggregate(9).String() == "" {
		t.Fatal("unknown aggregate must still print")
	}
}
