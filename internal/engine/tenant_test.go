package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"skimsketch/internal/stream"
	"testing"

	"skimsketch/internal/workload"
)

// setupTenant declares streams F and G and registers query "q" =
// COUNT(F join G) inside one tenant namespace.
func setupTenant(t *testing.T, tn *Tenant) {
	t.Helper()
	for _, s := range []string{"F", "G"} {
		if err := tn.DeclareStream(s, 1024); err != nil {
			t.Fatal(err)
		}
	}
	err := tn.RegisterQuery(QuerySpec{
		Name: "q", Agg: Count,
		Left: Side{Stream: "F"}, Right: Side{Stream: "G"},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// feedTenant pushes n zipfian updates per stream into a tenant; the
// seed differentiates tenants' data.
func feedTenant(t *testing.T, tn *Tenant, n int, seed int64) {
	t.Helper()
	zf, _ := workload.NewZipf(1024, 1.2, seed)
	zg, _ := workload.NewZipf(1024, 1.2, seed+1)
	for i := 0; i < n; i++ {
		if err := tn.Update("F", zf.Next(), 1); err != nil {
			t.Fatal(err)
		}
		if err := tn.Update("G", zg.Next(), 1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantIsolationSameNames is the cross-tenant answer-cache
// regression test: two tenants with byte-identical stream and query
// names but different data must answer differently, and each tenant's
// answers must be served from its OWN cache entry — a tenant-oblivious
// cache key would hand alice's cached estimate to bob.
func TestTenantIsolationSameNames(t *testing.T) {
	e := mustEngine(t)
	alice, bob := e.Tenant("alice"), e.Tenant("bob")
	setupTenant(t, alice)
	setupTenant(t, bob)
	feedTenant(t, alice, 4000, 1)
	feedTenant(t, bob, 50, 99)

	ansA, err := alice.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	ansB, err := bob.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if ansA.Estimate == ansB.Estimate {
		t.Fatalf("tenants with different data answered identically (%d): cache or synopses are shared across tenants", ansA.Estimate)
	}

	// First answers were misses; repeats are hits — counted per tenant.
	if _, err := alice.Answer("q"); err != nil {
		t.Fatal(err)
	}
	stA, stB := alice.Stats(), bob.Stats()
	if stA.AnswerCacheMisses != 1 || stA.AnswerCacheHits != 1 {
		t.Fatalf("alice cache counters: %d misses %d hits, want 1/1", stA.AnswerCacheMisses, stA.AnswerCacheHits)
	}
	if stB.AnswerCacheMisses != 1 || stB.AnswerCacheHits != 0 {
		t.Fatalf("bob cache counters: %d misses %d hits, want 1/0", stB.AnswerCacheMisses, stB.AnswerCacheHits)
	}

	// Updating bob must invalidate bob's cache entry only: alice keeps
	// hitting hers, bob re-estimates.
	if err := bob.Update("F", 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Answer("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Answer("q"); err != nil {
		t.Fatal(err)
	}
	stA, stB = alice.Stats(), bob.Stats()
	if stA.AnswerCacheHits != 2 {
		t.Fatalf("alice cache hits %d after bob's update, want 2 (her entry must survive)", stA.AnswerCacheHits)
	}
	if stB.AnswerCacheMisses != 2 {
		t.Fatalf("bob cache misses %d after his update, want 2 (his entry must invalidate)", stB.AnswerCacheMisses)
	}
}

// TestTenantUpdateIsolation: one tenant's traffic must never reach
// another tenant's synopses, whatever the stream names.
func TestTenantUpdateIsolation(t *testing.T) {
	e := mustEngine(t)
	alice, bob := e.Tenant("alice"), e.Tenant("bob")
	setupTenant(t, alice)
	setupTenant(t, bob)
	feedTenant(t, alice, 1000, 1)

	ansB, err := bob.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if ansB.Estimate != 0 {
		t.Fatalf("bob ingested nothing but estimates %d", ansB.Estimate)
	}
	stB := bob.Stats()
	if stB.UpdateCounts["F"] != 0 || stB.UpdateCounts["G"] != 0 {
		t.Fatalf("bob's update counts polluted by alice's traffic: %+v", stB.UpdateCounts)
	}
}

func TestDefaultTenantBackCompat(t *testing.T) {
	e := mustEngine(t)
	if err := e.DeclareStream("F", 64); err != nil {
		t.Fatal(err)
	}
	// The flat API and the explicit default-tenant handle are the same
	// namespace.
	def := e.Tenant(DefaultTenant)
	if err := def.DeclareStream("F", 64); err == nil {
		t.Fatal("default-tenant handle sees a different namespace than the flat API")
	}
	if err := e.Update("F", 7, 1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.UpdateCounts["F"] != 1 {
		t.Fatalf("default tenant update counts keyed %v, want bare \"F\"", st.UpdateCounts)
	}
	got := def.Streams()
	if len(got) != 1 || got[0] != "F" {
		t.Fatalf("default tenant streams = %v", got)
	}
}

func TestTenantNameValidation(t *testing.T) {
	e := mustEngine(t)
	for _, bad := range []string{"", "a/b", "a b", "a\tb", "a\nb"} {
		if err := e.Tenant(bad).DeclareStream("F", 8); err == nil {
			t.Errorf("tenant name %q accepted", bad)
		}
		if err := e.SetQuota(bad, Quota{}); err == nil {
			t.Errorf("SetQuota accepted tenant name %q", bad)
		}
	}
}

func TestTenantMemoryQuota(t *testing.T) {
	e := mustEngine(t)
	tn := e.Tenant("small")
	if err := e.SetQuota("small", Quota{MaxSynopsisWords: 1}); err != nil {
		t.Fatal(err)
	}
	setupStreams := func() {
		for _, s := range []string{"F", "G"} {
			if err := tn.DeclareStream(s, 64); err != nil {
				t.Fatal(err)
			}
		}
	}
	setupStreams()
	err := tn.RegisterQuery(QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded, got %v", err)
	}
	// A failed registration must not leak charged words or half a query.
	st := tn.Stats()
	if st.Queries != 0 || st.Synopses != 0 || st.TotalWords != 0 {
		t.Fatalf("failed registration leaked state: %+v", st)
	}

	// Raising the quota admits the query; removing it refunds the words
	// so a second registration fits again.
	if err := e.SetQuota("small", Quota{MaxSynopsisWords: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := tn.RegisterQuery(QuerySpec{Name: "q", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}}); err != nil {
		t.Fatal(err)
	}
	used := tn.Stats().TotalWords
	if used == 0 {
		t.Fatal("registered query charged zero words")
	}
	if err := e.SetQuota("small", Quota{MaxSynopsisWords: used}); err != nil {
		t.Fatal(err)
	}
	// Sharing: a second query over the same synopses charges nothing.
	if err := tn.RegisterQuery(QuerySpec{Name: "q2", Agg: Count, Left: Side{Stream: "F"}, Right: Side{Stream: "G"}}); err != nil {
		t.Fatalf("shared-synopsis query rejected under exact quota: %v", err)
	}
	// A query needing fresh synopses does not fit...
	err = tn.RegisterQuery(QuerySpec{Name: "q3", Agg: Count,
		Left: Side{Stream: "F", WindowLen: 100, WindowBuckets: 4}, Right: Side{Stream: "G"}})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want ErrQuotaExceeded for fresh synopsis, got %v", err)
	}
	// ...until removing the old queries refunds their words.
	if err := tn.RemoveQuery("q"); err != nil {
		t.Fatal(err)
	}
	if err := tn.RemoveQuery("q2"); err != nil {
		t.Fatal(err)
	}
	if got := tn.Stats().TotalWords; got != 0 {
		t.Fatalf("words not refunded after removal: %d", got)
	}
}

func TestTenantQueueShareQuota(t *testing.T) {
	e := mustEngine(t)
	capped, free := e.Tenant("capped"), e.Tenant("free")
	setupTenant(t, capped)
	setupTenant(t, free)
	if err := e.SetQuota("capped", Quota{MaxPendingUpdates: 8}); err != nil {
		t.Fatal(err)
	}
	if err := e.StartIngest(IngestConfig{Workers: 2, BatchSize: 4, QueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	defer e.StopIngest()

	big := make([]stream.Update, 100)
	for i := range big {
		big[i] = stream.Update{Value: uint64(i % 64), Weight: 1}
	}
	err := capped.IngestBatch("F", big)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("100-update batch against quota 8: want ErrQuotaExceeded, got %v", err)
	}
	// The shared pipeline still serves the uncapped tenant.
	if err := free.IngestBatch("F", big); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	stC, stF := capped.Stats(), free.Stats()
	if stC.Rejected != 100 {
		t.Fatalf("capped tenant rejected counter %d, want 100", stC.Rejected)
	}
	if stC.UpdateCounts["F"] != 0 {
		t.Fatalf("rejected batch leaked into stream counts: %+v", stC.UpdateCounts)
	}
	if stF.UpdateCounts["F"] != 100 || stF.Rejected != 0 {
		t.Fatalf("free tenant: %+v", stF)
	}
	if stC.PendingUpdates != 0 || stF.PendingUpdates != 0 {
		t.Fatalf("pending gauges not settled after flush: capped %d free %d", stC.PendingUpdates, stF.PendingUpdates)
	}

	// Small batches under the cap are admitted and settle the gauge.
	if err := capped.IngestBatch("F", big[:8]); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if got := capped.Stats().UpdateCounts["F"]; got != 8 {
		t.Fatalf("admitted batch count %d, want 8", got)
	}
}

// TestSnapshotStaysV1ForSingleTenant guards the compatibility contract:
// an engine that never used tenants, quotas or watches keeps writing
// version-1 (pre-tenant layout) snapshots.
func TestSnapshotStaysV1ForSingleTenant(t *testing.T) {
	e := buildLoadedEngine(t)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Version int             `json:"version"`
		Tenants json.RawMessage `json:"tenants"`
		Streams json.RawMessage `json:"streams"`
	}
	if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Version != 1 {
		t.Fatalf("single-tenant snapshot version %d, want 1", probe.Version)
	}
	if len(probe.Tenants) != 0 {
		t.Fatalf("single-tenant snapshot carries a tenants block: %s", probe.Tenants)
	}
	if len(probe.Streams) == 0 {
		t.Fatal("v1 snapshot missing top-level streams")
	}
}

func TestMultiTenantSnapshotRoundTrip(t *testing.T) {
	e := mustEngine(t)
	alice, bob := e.Tenant("alice"), e.Tenant("bob")
	setupTenant(t, alice)
	setupTenant(t, bob)
	if err := alice.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	if err := alice.RegisterQuery(QuerySpec{Name: "pred", Agg: Count,
		Left: Side{Stream: "F", Predicate: "low"}, Right: Side{Stream: "G"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetQuota("bob", Quota{MaxSynopsisWords: 1 << 20, MaxPendingUpdates: 777}); err != nil {
		t.Fatal(err)
	}
	if err := alice.RegisterWatch(WatchSpec{Query: "q", High: 10, Low: 5}); err != nil {
		t.Fatal(err)
	}
	feedTenant(t, alice, 2000, 1)
	feedTenant(t, bob, 300, 9)
	// Drive the watch into alert so the restored state machine has
	// something to preserve.
	if _, err := alice.EvaluateWatches(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Version != 2 {
		t.Fatalf("multi-tenant snapshot version %d, want 2", probe.Version)
	}

	r := mustEngine(t)
	if err := r.Tenant("alice").RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"alice", "bob"} {
		for _, q := range e.Tenant(tenant).Queries() {
			a, err := e.Tenant(tenant).Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := r.Tenant(tenant).Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if a.Estimate != b.Estimate {
				t.Fatalf("tenant %s query %s: %d vs %d", tenant, q, a.Estimate, b.Estimate)
			}
		}
	}
	if got := r.Tenant("bob").Stats().Quota; got != (Quota{MaxSynopsisWords: 1 << 20, MaxPendingUpdates: 777}) {
		t.Fatalf("bob's quota did not survive: %+v", got)
	}
	watches := r.Tenant("alice").Watches()
	if len(watches) != 1 || watches[0].Query != "q" {
		t.Fatalf("alice's watches did not survive: %+v", watches)
	}
	origWatch := e.Tenant("alice").Watches()[0]
	if watches[0].State != origWatch.State {
		t.Fatalf("watch state %v did not survive restore (orig %v)", watches[0].State, origWatch.State)
	}
}

// TestTenantSliceSnapshotRestore moves one tenant between engines (and
// names) via the single-tenant snapshot layout.
func TestTenantSliceSnapshotRestore(t *testing.T) {
	e := mustEngine(t)
	alice := e.Tenant("alice")
	setupTenant(t, alice)
	setupTenant(t, e.Tenant("bob"))
	feedTenant(t, alice, 1500, 4)
	feedTenant(t, e.Tenant("bob"), 100, 8)

	var buf bytes.Buffer
	if err := alice.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	r := mustEngine(t)
	if err := r.Tenant("carol").Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	a, err := alice.Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Tenant("carol").Answer("q")
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatalf("tenant slice moved wrong: %d vs %d", a.Estimate, b.Estimate)
	}
	// Bob must not have traveled along.
	if streams := r.Tenant("bob").Streams(); len(streams) != 0 {
		t.Fatalf("tenant slice snapshot leaked bob's streams: %v", streams)
	}
	// A second restore into the same (now non-empty) tenant must refuse.
	if err := r.Tenant("carol").Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a non-empty tenant succeeded")
	}
}

// TestV1RestoreReplayTailBitIdentical is the pre-tenant compatibility
// contract end to end at the engine layer: a version-1 snapshot
// restores into the default tenant, and replaying a tail of updates
// through the concurrent pipeline yields bit-identical answers to an
// engine that never restarted.
func TestV1RestoreReplayTailBitIdentical(t *testing.T) {
	solid := buildLoadedEngine(t) // never snapshotted
	forked := buildLoadedEngine(t)
	var buf bytes.Buffer
	if err := forked.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"version":1`)) {
		t.Fatalf("expected a version-1 snapshot, got: %.80s", buf.Bytes())
	}

	restored := mustEngine(t)
	if err := restored.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Replay the same tail through BOTH engines' concurrent pipelines.
	for _, e := range []*Engine{solid, restored} {
		if err := e.StartIngest(IngestConfig{Workers: 4, BatchSize: 32, QueueDepth: 8}); err != nil {
			t.Fatal(err)
		}
	}
	zf, _ := workload.NewZipf(1024, 1.1, 77)
	zg, _ := workload.NewZipf(1024, 1.1, 78)
	for i := 0; i < 40; i++ {
		bf := make([]stream.Update, 50)
		bg := make([]stream.Update, 50)
		for j := range bf {
			bf[j] = stream.Update{Value: zf.Next(), Weight: 1}
			bg[j] = stream.Update{Value: zg.Next(), Weight: 1}
		}
		for _, e := range []*Engine{solid, restored} {
			if err := e.IngestBatch("F", bf); err != nil {
				t.Fatal(err)
			}
			if err := e.IngestBatch("G", bg); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range []*Engine{solid, restored} {
		e.StopIngest()
	}
	for _, q := range solid.Queries() {
		a, err := solid.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Estimate != b.Estimate {
			t.Fatalf("query %s: restored+replayed %d != uninterrupted %d", q, b.Estimate, a.Estimate)
		}
	}
	// The restored state must live in the DEFAULT tenant, not some
	// namespace invented during restore.
	if streams := restored.Tenant(DefaultTenant).Streams(); len(streams) != 2 {
		t.Fatalf("v1 restore landed outside the default tenant: %v", streams)
	}
}

func TestWatchHysteresisThroughEngine(t *testing.T) {
	e := mustEngine(t)
	tn := e.Tenant("ops")
	setupTenant(t, tn)
	if err := tn.RegisterWatch(WatchSpec{Query: "q", High: 50, Low: 10}); err != nil {
		t.Fatal(err)
	}
	// Watch on an unknown query is refused.
	if err := tn.RegisterWatch(WatchSpec{Query: "nope", High: 1, Low: 0}); err == nil {
		t.Fatal("watch on unknown query accepted")
	}

	eval := func() bool {
		t.Helper()
		sts, err := tn.EvaluateWatches()
		if err != nil {
			t.Fatal(err)
		}
		if len(sts) != 1 {
			t.Fatalf("want 1 watch status, got %d", len(sts))
		}
		return sts[0].State == 1 // monitor.Alert
	}
	if eval() {
		t.Fatal("empty engine already in alert")
	}
	// Drive the self-join mass over High.
	for i := 0; i < 20; i++ {
		tn.Update("F", 1, 1)
		tn.Update("G", 1, 1)
	}
	if !eval() {
		t.Fatal("estimate over High did not raise the alert")
	}
	// Hysteresis: staying between Low and High holds the alert.
	if !eval() {
		t.Fatal("alert dropped without falling to Low")
	}
	// RemoveQuery drops the watch with the query.
	if err := tn.RemoveQuery("q"); err != nil {
		t.Fatal(err)
	}
	if got := tn.Watches(); len(got) != 0 {
		t.Fatalf("watch survived its query: %+v", got)
	}
}

func TestEngineStatsAggregatesTenants(t *testing.T) {
	e := mustEngine(t)
	setupTenant(t, e.Tenant(DefaultTenant))
	setupTenant(t, e.Tenant("acme"))
	feedTenant(t, e.Tenant("acme"), 10, 3)
	st := e.Stats()
	if st.Streams != 4 || st.Queries != 2 {
		t.Fatalf("global stats did not aggregate tenants: %+v", st)
	}
	if st.UpdateCounts["acme/F"] != 10 {
		t.Fatalf("non-default tenant stream not keyed tenant/stream: %v", st.UpdateCounts)
	}
	if _, ok := st.Tenants["acme"]; !ok {
		t.Fatalf("per-tenant breakdown missing acme: %v", st.Tenants)
	}
	if got := st.Tenants["acme"].UpdateCounts["F"]; got != 10 {
		t.Fatalf("acme slice update counts: %v", st.Tenants["acme"].UpdateCounts)
	}
}
