package engine

import (
	"fmt"

	"skimsketch/internal/monitor"
)

// Standing watches: per-tenant threshold alerts over registered queries
// ("alert when the estimated join size crosses High; clear when it falls
// back to Low"). The alert state machines live in a tenant-keyed
// monitor.Registry, so two tenants watching identically named queries
// never share state. Evaluation goes through Answer and therefore
// through the epoch-keyed answer cache: a tick over thousands of watches
// whose synopses have not changed costs thousands of cache hits, not
// thousands of O(domain) estimations — the incremental evaluation the
// cache was built for.

// WatchSpec registers one standing watch on a query of this tenant.
type WatchSpec struct {
	// Query names a query already registered in the same tenant.
	Query string
	// High raises the alert when the estimate reaches it; Low clears the
	// alert when the estimate falls to it or below (hysteresis).
	High, Low int64
}

func watchKey(tenant, query string) monitor.WatchKey {
	return monitor.WatchKey{Tenant: tenant, Query: query}
}

// RegisterWatch installs a standing watch on one of the tenant's
// registered queries. Removing the query removes the watch.
func (t *Tenant) RegisterWatch(spec WatchSpec) error {
	if err := validTenantName(t.name); err != nil {
		return err
	}
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.queries[nsKey{t.name, spec.Query}]; !ok {
		return fmt.Errorf("engine: watch: unknown query %q", spec.Query)
	}
	return e.watches.Register(watchKey(t.name, spec.Query), monitor.WatchConfig{High: spec.High, Low: spec.Low})
}

// RemoveWatch drops a standing watch (the query stays registered).
func (t *Tenant) RemoveWatch(query string) error {
	if !t.e.watches.Remove(watchKey(t.name, query)) {
		return fmt.Errorf("engine: watch: no watch on query %q", query)
	}
	return nil
}

// Watches lists the tenant's standing watches without evaluating them.
func (t *Tenant) Watches() []monitor.WatchStatus {
	return t.e.watches.List(t.name)
}

// EvaluateWatches answers every watched query of the tenant and feeds
// the estimates through the alert state machines, returning the
// resulting statuses sorted by query name. Unchanged queries are served
// from the answer cache, so an idle tick is cheap.
func (t *Tenant) EvaluateWatches() ([]monitor.WatchStatus, error) {
	watches := t.e.watches.List(t.name)
	out := make([]monitor.WatchStatus, 0, len(watches))
	for _, w := range watches {
		ans, err := t.Answer(w.Query)
		if err != nil {
			// RemoveQuery drops the watch with the query under e.mu, so an
			// Answer error here normally means the watch vanished between
			// List and Answer — skip it. A watch that still exists without
			// its query is a real fault and is surfaced.
			if _, ok := t.e.watches.Get(watchKey(t.name, w.Query)); !ok {
				continue
			}
			return nil, fmt.Errorf("engine: watch %q: %w", w.Query, err)
		}
		st, _, err := t.e.watches.Observe(watchKey(t.name, w.Query), ans.Estimate)
		if err != nil {
			continue // removed between Answer and Observe
		}
		out = append(out, st)
	}
	return out, nil
}

// EvaluateAllWatches runs EvaluateWatches for every tenant with at least
// one watch — the periodic tick behind sketchd's -watch.interval.
func (e *Engine) EvaluateAllWatches() ([]monitor.WatchStatus, error) {
	var out []monitor.WatchStatus
	for _, tenant := range e.watches.Tenants() {
		sts, err := e.Tenant(tenant).EvaluateWatches()
		if err != nil {
			return out, err
		}
		out = append(out, sts...)
	}
	return out, nil
}
