package loadtest

import (
	"context"
	"testing"
	"time"

	"skimsketch/internal/stats"
)

// syntheticSurface builds a TrialFunc whose throughput is a known
// function of the knobs, counting trials as it goes.
func syntheticSurface(score func(workers, batch, queue int) float64, trials *int) TrialFunc {
	return func(_ context.Context, cfg Config) (*Result, error) {
		*trials++
		tp := score(cfg.Workers, cfg.Batch, cfg.QueueDepth)
		var h stats.Histogram
		h.Record(1000)
		return &Result{
			Config:  cfg,
			Elapsed: time.Second,
			Ingest:  SideResult{Updates: int64(tp), Requests: 1, Hist: &h},
		}, nil
	}
}

func autotuneBase() Config {
	return Config{
		BaseURL: "http://fake", Streams: []string{"F"},
		Workers: 4, Batch: 256, QueueDepth: 64,
		Duration: time.Second,
	}
}

// TestAutotuneClimbsToOptimum: on a unimodal surface peaked away from
// the defaults, coordinate descent finds a strictly better config.
func TestAutotuneClimbsToOptimum(t *testing.T) {
	// Peak at workers=16, batch=1024: throughput decays with distance in
	// doubling steps from the peak.
	score := func(w, b, q int) float64 {
		dist := func(v, peak int) float64 {
			d := 0.0
			for v < peak {
				v *= 2
				d++
			}
			for v > peak {
				v /= 2
				d++
			}
			return d
		}
		return 1e6 / (1 + dist(w, 16) + dist(b, 1024))
	}
	var trials int
	res, err := Autotune(context.Background(), AutotuneOptions{Base: autotuneBase()},
		syntheticSurface(score, &trials), time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Workers != 16 || res.Best.Batch != 1024 {
		t.Fatalf("converged to workers=%d batch=%d, want 16/1024 (trials: %+v)",
			res.Best.Workers, res.Best.Batch, res.Trials)
	}
	base := res.Trials[0]
	if base.Workers != 4 || base.Batch != 256 {
		t.Fatalf("first trial %+v is not the base config", base)
	}
	if res.Best.Throughput <= base.Throughput {
		t.Fatalf("best %v not better than base %v", res.Best.Throughput, base.Throughput)
	}
	if trials != len(res.Trials) {
		t.Fatalf("curve has %d entries for %d live trials (memo leak)", len(res.Trials), trials)
	}
}

// TestAutotuneNeverWorseThanDefaults is the acceptance property: on a
// surface where every move hurts, the search keeps the base config.
func TestAutotuneNeverWorseThanDefaults(t *testing.T) {
	base := autotuneBase()
	score := func(w, b, q int) float64 {
		if w == base.Workers && b == base.Batch && q == base.QueueDepth {
			return 1e6
		}
		return 1e3
	}
	var trials int
	res, err := Autotune(context.Background(), AutotuneOptions{Base: base},
		syntheticSurface(score, &trials), time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Workers != base.Workers || res.Best.Batch != base.Batch || res.Best.QueueDepth != base.QueueDepth {
		t.Fatalf("moved off the optimum base: %+v", res.Best)
	}
	if res.Best.Throughput != 1e6 {
		t.Fatalf("best throughput %v, want the base's 1e6", res.Best.Throughput)
	}
}

// TestAutotuneMemoizes: revisited configurations are served from the
// memo, not re-measured — the curve has no duplicate points.
func TestAutotuneMemoizes(t *testing.T) {
	var trials int
	res, err := Autotune(context.Background(), AutotuneOptions{Base: autotuneBase(), MaxSweeps: 6},
		syntheticSurface(func(w, b, q int) float64 { return float64(w) }, &trials), time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[4]int]bool{}
	for _, tr := range res.Trials {
		k := [4]int{tr.Workers, tr.Batch, tr.QueueDepth, tr.QueryWorkers}
		if seen[k] {
			t.Fatalf("config %v measured twice", k)
		}
		seen[k] = true
	}
}

// TestAutotuneIgnoresErroringTrials: a config whose trial saw permanent
// errors never becomes the incumbent, however fast it claims to be.
func TestAutotuneIgnoresErroringTrials(t *testing.T) {
	base := autotuneBase()
	run := func(_ context.Context, cfg Config) (*Result, error) {
		var h stats.Histogram
		h.Record(1000)
		r := &Result{Config: cfg, Elapsed: time.Second, Ingest: SideResult{Requests: 1, Hist: &h}}
		if cfg.Workers == base.Workers && cfg.Batch == base.Batch && cfg.QueueDepth == base.QueueDepth {
			r.Ingest.Updates = 1000
		} else {
			r.Ingest.Updates = 1_000_000 // tempting...
			r.Ingest.Errors = 7          // ...but broken
		}
		return r, nil
	}
	res, err := Autotune(context.Background(), AutotuneOptions{Base: base}, run, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Errors != 0 || res.Best.Throughput != 1000 {
		t.Fatalf("an erroring trial won: %+v", res.Best)
	}
}
