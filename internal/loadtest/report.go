package loadtest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"skimsketch/internal/stats"
)

// BenchSchema identifies the BENCH_*.json layout; bump on breaking
// change and keep docs/FORMATS.md in lockstep.
const BenchSchema = "skimsketch-bench/1"

// LatencySummary is the percentile block of a report. Every figure
// derives from ONE merged histogram (stats.MergeHistograms over the
// per-worker histograms); per-worker percentiles are never averaged.
// Durations are monotonic-clock nanoseconds.
type LatencySummary struct {
	Unit   string  `json:"unit"` // always "ns"
	Count  int64   `json:"count"`
	MeanNs float64 `json:"meanNs"`
	MinNs  int64   `json:"minNs"`
	MaxNs  int64   `json:"maxNs"`
	P50Ns  int64   `json:"p50Ns"`
	P95Ns  int64   `json:"p95Ns"`
	P99Ns  int64   `json:"p99Ns"`
	P999Ns int64   `json:"p999Ns"`
}

// SummarizeLatency builds the percentile block from a merged histogram.
func SummarizeLatency(h *stats.Histogram) LatencySummary {
	return LatencySummary{
		Unit:   "ns",
		Count:  h.Count(),
		MeanNs: h.Mean(),
		MinNs:  h.Min(),
		MaxNs:  h.Max(),
		P50Ns:  stats.Quantile(h, 0.50),
		P95Ns:  stats.Quantile(h, 0.95),
		P99Ns:  stats.Quantile(h, 0.99),
		P999Ns: stats.Quantile(h, 0.999),
	}
}

// ConfigEcho is the run configuration echoed into a report so a BENCH
// file is self-describing (same box, same knobs → comparable curve).
type ConfigEcho struct {
	BaseURL      string   `json:"baseURL"`
	Streams      []string `json:"streams"`
	Shape        string   `json:"shape"`
	Domain       uint64   `json:"domain"`
	Seed         int64    `json:"seed"`
	Rate         float64  `json:"rate"`
	Burst        int      `json:"burst"`
	Workers      int      `json:"workers"`
	Batch        int      `json:"batch"`
	QueueDepth   int      `json:"queueDepth"`
	QueryWorkers int      `json:"queryWorkers"`
	QueryName    string   `json:"queryName,omitempty"`
	Tenants      int      `json:"tenants,omitempty"`
	Proto        string   `json:"proto,omitempty"`
}

func echoConfig(c Config) ConfigEcho {
	return ConfigEcho{
		BaseURL: c.BaseURL, Streams: c.Streams, Shape: c.Shape,
		Domain: c.Domain, Seed: c.Seed, Rate: c.Rate, Burst: c.Burst,
		Workers: c.Workers, Batch: c.Batch, QueueDepth: c.QueueDepth,
		QueryWorkers: c.QueryWorkers, QueryName: c.QueryName,
		Tenants: c.Tenants, Proto: c.Proto,
	}
}

// ServerEcho is the server-side view embedded in an ingest report: the
// engine's exact counters over the run plus its own monotonic-clock
// /update latency, fetched from /stats after a flush. It is the
// reconciliation anchor: updatesSent == updatesApplied + (what the
// server shed), and requests == updateLatencyCount.
type ServerEcho struct {
	UpdatesEnqueued     int64   `json:"updatesEnqueued"`
	UpdatesApplied      int64   `json:"updatesApplied"`
	RejectedRequests    int64   `json:"rejectedRequests"`
	UpdateLatencyCount  int64   `json:"updateLatencyCount"`
	UpdateLatencyP99Ns  int64   `json:"updateLatencyP99Ns"`
	UpdateLatencyMeanNs float64 `json:"updateLatencyMeanNs"`
}

// BenchReport is one BENCH_*.json document. Kind "ingest" measures the
// /update path (Updates > 0), kind "query" the /answer path.
type BenchReport struct {
	Schema      string     `json:"schema"`
	Kind        string     `json:"kind"` // "ingest" or "query"
	GeneratedAt string     `json:"generatedAt"`
	GitSHA      string     `json:"gitSHA,omitempty"`
	Config      ConfigEcho `json:"config"`

	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// Requests counts HTTP attempts; Updates counts acknowledged stream
	// elements (0 for kind "query").
	Requests    int64 `json:"requests"`
	Updates     int64 `json:"updates"`
	Rejected429 int64 `json:"rejected429"`
	Retries     int64 `json:"retries"`
	Errors      int64 `json:"errors"`
	Shed        int64 `json:"shed"`
	// ThroughputPerSec is updates/sec for ingest, requests/sec for
	// query.
	ThroughputPerSec float64        `json:"throughputPerSec"`
	Latency          LatencySummary `json:"latency"`
	// Server is present on ingest reports (the query path has no
	// server-side histogram yet).
	Server *ServerEcho `json:"server,omitempty"`
	// Tenants carries the per-tenant reconciliation rows of a
	// multi-tenant ingest run; Validate requires every row's client and
	// server update counts to match exactly.
	Tenants []TenantRecon `json:"tenants,omitempty"`
}

// buildReport assembles one side of a Result into a report.
func buildReport(kind string, res *Result, now time.Time) *BenchReport {
	side := res.Ingest
	if kind == "query" {
		side = res.Query
	}
	r := &BenchReport{
		Schema:      BenchSchema,
		Kind:        kind,
		GeneratedAt: now.UTC().Format(time.RFC3339),
		GitSHA:      GitSHA(),
		Config:      echoConfig(res.Config),

		ElapsedSeconds: res.Elapsed.Seconds(),
		Requests:       side.Requests,
		Updates:        side.Updates,
		Rejected429:    side.Rejected429,
		Retries:        side.Retries,
		Errors:         side.Errors,
		Shed:           side.Shed,
		Latency:        SummarizeLatency(side.Hist),
	}
	if res.Elapsed > 0 {
		if kind == "ingest" {
			r.ThroughputPerSec = float64(side.Updates) / res.Elapsed.Seconds()
		} else {
			r.ThroughputPerSec = float64(side.Requests) / res.Elapsed.Seconds()
		}
	}
	if kind == "ingest" {
		r.Tenants = res.Tenants
		r.Server = &ServerEcho{
			UpdatesEnqueued:     res.Server.Ingest.UpdatesEnqueued,
			UpdatesApplied:      res.Server.Ingest.UpdatesApplied,
			RejectedRequests:    res.Server.Ingest.Rejected,
			UpdateLatencyCount:  res.Server.UpdateLatency.Count,
			UpdateLatencyP99Ns:  res.Server.UpdateLatency.P99Ns,
			UpdateLatencyMeanNs: res.Server.UpdateLatency.MeanNs,
		}
	}
	return r
}

// IngestReport builds the BENCH_ingest.json document for a run.
func IngestReport(res *Result, now time.Time) *BenchReport { return buildReport("ingest", res, now) }

// QueryReport builds the BENCH_query.json document for a run.
func QueryReport(res *Result, now time.Time) *BenchReport { return buildReport("query", res, now) }

// Validate checks a report against the documented schema: identity
// fields, non-negative counters, percentile ordering, and the
// latency-count/request-count identity. It is what the deterministic
// harness test and `loadgen -validate` run.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, BenchSchema)
	}
	if r.Kind != "ingest" && r.Kind != "query" {
		return fmt.Errorf("bench: unknown kind %q", r.Kind)
	}
	if _, err := time.Parse(time.RFC3339, r.GeneratedAt); err != nil {
		return fmt.Errorf("bench: bad generatedAt: %w", err)
	}
	if r.ElapsedSeconds <= 0 {
		return fmt.Errorf("bench: elapsedSeconds %v not positive", r.ElapsedSeconds)
	}
	for name, v := range map[string]int64{
		"requests": r.Requests, "updates": r.Updates,
		"rejected429": r.Rejected429, "retries": r.Retries,
		"errors": r.Errors, "shed": r.Shed,
	} {
		if v < 0 {
			return fmt.Errorf("bench: negative %s %d", name, v)
		}
	}
	if r.ThroughputPerSec < 0 {
		return fmt.Errorf("bench: negative throughput")
	}
	l := r.Latency
	if l.Unit != "ns" {
		return fmt.Errorf("bench: latency unit %q, want ns", l.Unit)
	}
	if l.Count != r.Requests {
		return fmt.Errorf("bench: latency count %d != requests %d (a sample was dropped or double-counted)", l.Count, r.Requests)
	}
	if !(l.MinNs <= l.P50Ns && l.P50Ns <= l.P95Ns && l.P95Ns <= l.P99Ns && l.P99Ns <= l.P999Ns && l.P999Ns <= l.MaxNs) {
		return fmt.Errorf("bench: percentiles not monotone: min %d p50 %d p95 %d p99 %d p999 %d max %d",
			l.MinNs, l.P50Ns, l.P95Ns, l.P99Ns, l.P999Ns, l.MaxNs)
	}
	if r.Kind == "ingest" && r.Server == nil {
		return fmt.Errorf("bench: ingest report missing server echo")
	}
	// Multi-tenant runs must reconcile exactly, tenant by tenant: every
	// acknowledged update appears in its own tenant's counters and only
	// there. (A cross-tenant routing bug shows up as paired mismatches.)
	var tenantUpdates int64
	for _, t := range r.Tenants {
		if t.UpdatesSent != t.ServerUpdates {
			return fmt.Errorf("bench: tenant %s: client acked %d updates but server counted %d",
				t.Tenant, t.UpdatesSent, t.ServerUpdates)
		}
		if t.ServerRejected < 0 {
			return fmt.Errorf("bench: tenant %s: negative rejected delta %d", t.Tenant, t.ServerRejected)
		}
		tenantUpdates += t.UpdatesSent
	}
	if len(r.Tenants) > 0 && r.Kind == "ingest" && tenantUpdates != r.Updates {
		return fmt.Errorf("bench: per-tenant updates sum to %d but the run acked %d", tenantUpdates, r.Updates)
	}
	return nil
}

// WriteReport writes the report as indented JSON (trailing newline,
// diff-friendly) to path.
func WriteReport(path string, r *BenchReport) error {
	return writeJSONFile(path, r)
}

// writeJSONFile renders v as indented JSON with a trailing newline.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads and parses one BENCH_*.json file (it does not
// validate; callers chain .Validate()).
func ReadReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &r, nil
}

// GitSHA best-effort resolves the repo HEAD for report provenance;
// empty when git or the repo is unavailable (reports stay valid).
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
