package loadtest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDefaultClientHasTimeouts is the configuration half of the
// hung-server regression: a Client with a nil HTTP field must NOT fall
// back to http.DefaultClient (which has no timeout of any kind).
func TestDefaultClientHasTimeouts(t *testing.T) {
	c := &Client{BaseURL: "http://example.invalid"}
	hc := c.httpClient()
	if hc == http.DefaultClient {
		t.Fatal("nil Client.HTTP fell back to http.DefaultClient, which never times out")
	}
	if hc.Timeout <= 0 {
		t.Fatalf("default client Timeout = %v, want > 0", hc.Timeout)
	}
	tr, ok := hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport with explicit deadlines", hc.Transport)
	}
	if tr.ResponseHeaderTimeout <= 0 {
		t.Fatalf("ResponseHeaderTimeout = %v, want > 0", tr.ResponseHeaderTimeout)
	}
	if tr.DialContext == nil {
		t.Fatal("default transport has no DialContext with a connect timeout")
	}
	// Explicitly configured clients are untouched.
	own := &http.Client{}
	if (&Client{HTTP: own}).httpClient() != own {
		t.Fatal("an explicit HTTP client was not used")
	}
}

// TestDefaultClientUnwedgesFromStallingServer is the behavioral half: a
// server that accepts the request and then never responds must fail the
// call once the (here: shortened) default-shaped client times out,
// instead of blocking the worker forever — which is exactly what the
// old http.DefaultClient fallback did.
func TestDefaultClientUnwedgesFromStallingServer(t *testing.T) {
	// Hold the response until the test ends or the (timed-out) client
	// hangs up. The handler must observe the disconnect: srv.Close
	// blocks until every in-flight handler returns, so a bare <-stall
	// would deadlock the shutdown it is deferred after.
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(stall) // LIFO: unblock any straggler before srv.Close waits

	c := &Client{BaseURL: srv.URL, HTTP: newDefaultHTTPClient(100 * time.Millisecond)}
	done := make(chan error, 1)
	go func() {
		_, err := c.Stats(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("request against a stalled server returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request wedged on a stalled server; client timeout did not fire")
	}
}
