// Package loadtest is the end-to-end load harness behind cmd/loadgen:
// an open-loop generator that drives a live sketchd over HTTP with a
// token-bucket rate model, bounded queue depth, concurrent ingest
// workers honoring the server's 429/Retry-After backpressure contract,
// an optional mixed query stream, and — centrally — latency percentiles
// computed by merging per-worker log-bucketed histograms
// (internal/stats.Histogram), never by averaging per-worker
// percentiles. Results are emitted as BENCH_*.json reports
// (docs/FORMATS.md) so the repo's speed trajectory is measurable across
// PRs, and Autotune closes the loop by searching the client knobs
// against short live trials.
package loadtest

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"skimsketch/internal/distributed"
	"skimsketch/internal/stats"
)

// Update is one wire update; Weight is a pointer for the same reason
// sketchd's decoder uses one (an explicit 0 must survive the trip).
type Update struct {
	Stream string `json:"stream"`
	Value  uint64 `json:"value"`
	Weight *int64 `json:"weight,omitempty"`
}

// Client is a sketchd HTTP client for the harness: JSON helpers for
// setup, and a batch-update path with the 429/Retry-After backoff
// contract built in. Client is goroutine-safe; per-worker measurement
// state lives in the workers, not here.
type Client struct {
	// BaseURL is the sketchd root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Tenant scopes every request to one tenant namespace via the
	// /t/{tenant}/ path prefix; empty uses the flat (default-tenant) API,
	// byte-identical to the pre-tenant client.
	Tenant string
	// HTTP is the underlying client; nil uses the package's default
	// client, which — unlike http.DefaultClient — carries connect and
	// whole-request timeouts so a hung sketchd fails the request instead
	// of wedging the harness forever.
	HTTP *http.Client
	// Backoff paces 429 retries. The zero value is the distributed
	// package's default jittered-exponential policy; the Retry-After
	// hint from the server acts as a floor on every delay.
	Backoff distributed.Backoff
	// Idem, when non-nil, stamps every /update batch with an
	// Idempotency-Key header so a retry after a lost response (connection
	// reset mid-reply, proxy timeout) is answered from the server's
	// dedupe window instead of applying the batch twice. A pointer so
	// ForTenant's value copies share one sequence.
	Idem *IdemSource
}

// IdemSource mints Idempotency-Key values ("clientID:seq") for /update
// batches. One source per logical client process; safe for concurrent
// use from many workers and shared across ForTenant copies.
type IdemSource struct {
	clientID string
	seq      atomic.Uint64
}

// NewIdemSource returns a key source. An empty clientID gets a random
// one, unique per process incarnation — a restarted harness must not
// collide with its predecessor's live window entries.
func NewIdemSource(clientID string) *IdemSource {
	if clientID == "" {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			panic("loadtest: crypto/rand unavailable: " + err.Error())
		}
		clientID = "loadgen-" + hex.EncodeToString(b[:])
	}
	return &IdemSource{clientID: clientID}
}

// Next mints the key for one logical batch. Callers compute it once
// before the retry loop and reuse it on every attempt — that identity
// across attempts is the whole point.
func (s *IdemSource) Next() string {
	return s.clientID + ":" + strconv.FormatUint(s.seq.Add(1), 10)
}

// defaultRequestTimeout bounds one whole HTTP exchange (dial through
// body read) on the default client. It is comfortably above the slowest
// expected /answer and the 30s Retry-After cap does not pass through it
// (the retry loop sleeps BETWEEN requests, outside this budget).
const defaultRequestTimeout = 60 * time.Second

// newDefaultHTTPClient builds the harness's default transport: explicit
// connect, header and whole-request deadlines. The old fallback was
// http.DefaultClient, which has NO timeout of any kind — one sketchd
// that accepted a connection and then hung (wedged worker, stopped
// process under SIGSTOP, dead NAT entry) blocked a harness worker
// forever and with it the whole run's shutdown join.
func newDefaultHTTPClient(requestTimeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: requestTimeout,
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			ResponseHeaderTimeout: requestTimeout,
			MaxIdleConnsPerHost:   64,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// defaultHTTPClient is shared by every Client with a nil HTTP field so
// connection pools are reused across tenant-scoped copies.
var defaultHTTPClient = newDefaultHTTPClient(defaultRequestTimeout)

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// ForTenant returns a copy of the client scoped to one tenant (sharing
// the transport and backoff policy).
func (c *Client) ForTenant(tenant string) *Client {
	cc := *c
	cc.Tenant = tenant
	return &cc
}

// url resolves an API path against the base URL and the tenant scope.
func (c *Client) url(path string) string {
	if c.Tenant != "" {
		return c.BaseURL + "/t/" + c.Tenant + path
	}
	return c.BaseURL + path
}

// postJSON POSTs v to path and decodes the JSON response into out (when
// non-nil). Non-2xx statuses become errors carrying the body.
func (c *Client) postJSON(ctx context.Context, path string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("loadtest: POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// getJSON GETs path and decodes the JSON response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("loadtest: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// DeclareStream declares a stream (idempotence is the caller's concern;
// sketchd rejects redeclaration).
func (c *Client) DeclareStream(ctx context.Context, name string, domain uint64) error {
	return c.postJSON(ctx, "/streams", map[string]any{"name": name, "domain": domain}, nil)
}

// RegisterCountQuery registers a COUNT join query between two streams.
func (c *Client) RegisterCountQuery(ctx context.Context, name, left, right string) error {
	return c.postJSON(ctx, "/queries", map[string]any{
		"name": name, "agg": "COUNT",
		"left":  map[string]any{"stream": left},
		"right": map[string]any{"stream": right},
	}, nil)
}

// Flush drains the server's ingest pipeline.
func (c *Client) Flush(ctx context.Context) error {
	return c.postJSON(ctx, "/flush", map[string]any{}, nil)
}

// WaitReady polls /healthz until it reports ready or ctx expires — the
// boot barrier before a measured run.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		var status struct {
			Status string `json:"status"`
		}
		err := c.getJSON(ctx, "/healthz", &status)
		if err == nil && status.Status == "ready" {
			return nil
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("status %q", status.Status)
			}
			return fmt.Errorf("loadtest: server not ready: %w (last: %w)", ctx.Err(), err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// SendOutcome is the accounting for one SendUpdates call: how many
// request attempts it took, how many were shed with 429, and the
// per-attempt latencies recorded into the worker's histogram.
type SendOutcome struct {
	// Attempts is the number of HTTP requests made (1 + retries).
	Attempts int64
	// Rejected429 is the number of attempts answered with 429; each such
	// attempt applied nothing server-side (the server sheds before
	// parsing), so retrying cannot double-count.
	Rejected429 int64
	// Applied is the update count the final 2xx response acknowledged.
	Applied int64
	// Deduplicated reports that the final 2xx was answered from the
	// server's idempotency window: an earlier attempt had already applied
	// the batch and its response was lost in transit.
	Deduplicated bool
}

// SendUpdates POSTs one batch to /update, retrying 429 responses under
// the client's Backoff with the server's Retry-After hint as a floor on
// each delay. Every attempt's latency (monotonic clock, request sent to
// response read) is recorded into hist when non-nil. The server's 429
// path rejects before anything is applied, so the retry loop neither
// loses updates (it keeps trying until acceptance, its attempt budget,
// or ctx) nor double-counts them (only the final 2xx applies).
func (c *Client) SendUpdates(ctx context.Context, batch []Update, hist *stats.Histogram) (SendOutcome, error) {
	var out SendOutcome
	body, err := json.Marshal(batch)
	if err != nil {
		return out, err
	}
	// The key is minted once per logical batch, BEFORE the retry loop:
	// every attempt carries the same identity, so the server can tell a
	// replay (response lost) from a new batch.
	var idemKey string
	if c.Idem != nil {
		idemKey = c.Idem.Next()
	}
	attempt := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/update"), bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		t0 := time.Now()
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		data, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if hist != nil {
			hist.Record(int64(time.Since(t0)))
		}
		out.Attempts++
		if resp.StatusCode == http.StatusTooManyRequests {
			out.Rejected429++
			return &retryAfterError{delay: parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())}
		}
		if resp.StatusCode/100 != 2 {
			return &permanentError{fmt.Errorf("loadtest: /update: %s: %s", resp.Status, bytes.TrimSpace(data))}
		}
		if readErr != nil {
			return &permanentError{readErr}
		}
		var ack struct {
			Applied      int64 `json:"applied"`
			Deduplicated bool  `json:"deduplicated"`
		}
		if err := json.Unmarshal(data, &ack); err != nil {
			return &permanentError{err}
		}
		out.Applied = ack.Applied
		out.Deduplicated = ack.Deduplicated
		return nil
	}
	err = c.retryWithHint(ctx, attempt)
	return out, err
}

// retryAfterError marks a retryable 429 carrying the server's hint.
type retryAfterError struct{ delay time.Duration }

func (e *retryAfterError) Error() string { return "server backpressure (429)" }

// permanentError marks failures retrying cannot fix (4xx validation
// errors, malformed responses); the retry loop stops immediately.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// maxRetryAfter caps how long a server hint can stall a worker: a
// misconfigured (or adversarial) Retry-After of an hour must not wedge
// the harness, whose own backoff tops out in seconds.
const maxRetryAfter = distributed.MaxRetryAfter

// parseRetryAfter reads a Retry-After hint in either RFC 9110 form —
// delay-seconds ("120") or an HTTP-date, evaluated against now — capped
// at maxRetryAfter. The parsing lives in the distributed package now so
// the harness, the wire client, and the cluster merger all read the
// header identically.
func parseRetryAfter(v string, now time.Time) time.Duration {
	return distributed.ParseRetryAfter(v, now)
}

// retryWithHint extends distributed.Backoff's jittered-exponential
// retry with the HTTP contract: permanent errors abort immediately, and
// a 429's Retry-After hint floors the next delay. The floor composes
// with (rather than replaces) the exponential growth, so a crowd of
// workers all told "retry after 1s" still decorrelates via jitter.
func (c *Client) retryWithHint(ctx context.Context, f func(context.Context) error) error {
	b := c.Backoff
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("loadtest: canceled after %d attempts: %w (last: %w)", attempt, err, last)
			}
			return err
		}
		last = f(ctx)
		if last == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(last, &perm) {
			return perm.err
		}
		if b.Attempts > 0 && attempt+1 >= b.Attempts {
			return fmt.Errorf("loadtest: giving up after %d attempts: %w", attempt+1, last)
		}
		delay := b.Delay(attempt)
		var ra *retryAfterError
		if errors.As(last, &ra) && ra.delay > delay {
			delay = ra.delay
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("loadtest: canceled after %d attempts: %w (last: %w)", attempt+1, ctx.Err(), last)
		case <-t.C:
		}
	}
}

// ServerStats is the subset of GET /stats the harness reconciles
// against: the engine's exact ingest counters and the server-side
// monotonic-clock /update latency histogram summary.
type ServerStats struct {
	Ingest struct {
		UpdatesEnqueued int64 `json:"updatesEnqueued"`
		UpdatesApplied  int64 `json:"updatesApplied"`
		Rejected        int64 `json:"rejected"`
	} `json:"ingest"`
	UpdateLatency struct {
		Count  int64   `json:"count"`
		MeanNs float64 `json:"meanNs"`
		MaxNs  int64   `json:"maxNs"`
		P99Ns  int64   `json:"p99Ns"`
	} `json:"updateLatency"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// Stats fetches the reconciliation subset of /stats.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	var st ServerStats
	if err := c.getJSON(ctx, "/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// TenantServerStats is the reconciliation subset of a tenant-scoped
// GET /t/{tenant}/stats: the tenant's exact per-stream enqueue counters
// plus its quota gauges.
type TenantServerStats struct {
	UpdateCounts   map[string]int64 `json:"updateCounts"`
	PendingUpdates int64            `json:"pendingUpdates"`
	Rejected       int64            `json:"rejected"`
}

// TotalUpdates sums the tenant's per-stream update counters.
func (s *TenantServerStats) TotalUpdates() int64 {
	var n int64
	for _, c := range s.UpdateCounts {
		n += c
	}
	return n
}

// TenantStats fetches the reconciliation subset of the scoped tenant's
// /stats (callers use a ForTenant client).
func (c *Client) TenantStats(ctx context.Context) (*TenantServerStats, error) {
	var st TenantServerStats
	if err := c.getJSON(ctx, "/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Answer runs one /answer request, recording its latency into hist.
func (c *Client) Answer(ctx context.Context, query string, hist *stats.Histogram) error {
	t0 := time.Now()
	err := c.getJSON(ctx, "/answer?query="+query, nil)
	if hist != nil {
		hist.Record(int64(time.Since(t0)))
	}
	return err
}
