package loadtest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestParseRetryAfter covers both RFC 9110 Retry-After forms. The
// HTTP-date cases are the regression: the old parser only understood
// delay-seconds, so a date hint silently became "retry immediately".
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"zero seconds", "0", 0},
		{"delay seconds", "2", 2 * time.Second},
		{"negative seconds", "-5", 0},
		{"seconds capped", "3600", maxRetryAfter},
		{"http date future", now.Add(3 * time.Second).Format(http.TimeFormat), 3 * time.Second},
		{"http date past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http date capped", now.Add(time.Hour).Format(http.TimeFormat), maxRetryAfter},
		{"rfc850 date", now.Add(4 * time.Second).Format("Monday, 02-Jan-06 15:04:05 MST"), 4 * time.Second},
		{"ansi c date", now.Add(5 * time.Second).Format(time.ANSIC), 5 * time.Second},
		{"garbage", "soon", 0},
		{"float seconds", "1.5", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.v, now); got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

// TestRetryAfterDateFloorsBackoff drives the full retry loop: a server
// that 429s once with an HTTP-date Retry-After ~1s out must hold the
// client back at least that long — the pre-fix client parsed the date
// to 0 and re-sent immediately.
func TestRetryAfterDateFloorsBackoff(t *testing.T) {
	var mu sync.Mutex
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := len(times)
		times = append(times, time.Now())
		mu.Unlock()
		if n == 0 {
			w.Header().Set("Retry-After", time.Now().Add(1100*time.Millisecond).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"applied": 1})
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: fastBackoff()}
	out, err := c.SendUpdates(context.Background(), []Update{{Stream: "F", Value: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attempts != 2 || out.Rejected429 != 1 {
		t.Fatalf("attempts=%d rejected=%d, want 2/1", out.Attempts, out.Rejected429)
	}
	mu.Lock()
	gap := times[1].Sub(times[0])
	mu.Unlock()
	// The date floor rounds down to whole-second HTTP-date resolution,
	// so ~1.1s requested ⇒ at least ~100ms observed even in the worst
	// truncation case; the pre-fix client retried in ~1ms.
	if gap < 100*time.Millisecond {
		t.Fatalf("retry after %v; HTTP-date Retry-After was not honored as a floor", gap)
	}
}

// TestIdemSourceKeys checks the key format and that ForTenant copies
// share one sequence — two tenant-scoped clients must never mint the
// same key.
func TestIdemSourceKeys(t *testing.T) {
	s := NewIdemSource("h1")
	if got := s.Next(); got != "h1:1" {
		t.Fatalf("first key %q, want h1:1", got)
	}
	base := &Client{BaseURL: "http://x", Idem: s}
	a, b := base.ForTenant("t0"), base.ForTenant("t1")
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		for _, c := range []*Client{a, b} {
			k := c.Idem.Next()
			if seen[k] {
				t.Fatalf("duplicate key %q across tenant copies", k)
			}
			seen[k] = true
		}
	}
	if NewIdemSource("").clientID == NewIdemSource("").clientID {
		t.Fatal("two generated client IDs collided")
	}
}

// TestSendUpdatesIdempotencyHeader: every attempt of one logical batch
// carries the SAME key (that identity across retries is the fix), and
// distinct batches carry distinct keys.
func TestSendUpdatesIdempotencyHeader(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		n := len(keys)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"applied": 1, "deduplicated": n == 2})
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: fastBackoff(), Idem: NewIdemSource("h")}
	out, err := c.SendUpdates(context.Background(), []Update{{Stream: "F", Value: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Deduplicated {
		t.Fatal("deduplicated flag from the ack was not surfaced")
	}
	if _, err := c.SendUpdates(context.Background(), []Update{{Stream: "F", Value: 2}}, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 3 {
		t.Fatalf("saw %d requests, want 3", len(keys))
	}
	if keys[0] != "h:1" || keys[1] != "h:1" {
		t.Fatalf("retry changed the key: %q then %q", keys[0], keys[1])
	}
	if keys[2] != "h:2" {
		t.Fatalf("second batch key %q, want h:2", keys[2])
	}
}

// TestToGroups checks the JSON-batch → engine-group conversion used by
// the SKSP sender: first-appearance group order, per-stream update
// order, and the nil-Weight = insert default.
func TestToGroups(t *testing.T) {
	w := int64(-2)
	groups := toGroups([]Update{
		{Stream: "G", Value: 7},
		{Stream: "F", Value: 1},
		{Stream: "G", Value: 9, Weight: &w},
	})
	if len(groups) != 2 || groups[0].Name != "G" || groups[1].Name != "F" {
		t.Fatalf("group order wrong: %+v", groups)
	}
	g := groups[0].Updates
	if len(g) != 2 || g[0].Value != 7 || g[0].Weight != 1 || g[1].Value != 9 || g[1].Weight != -2 {
		t.Fatalf("G updates wrong: %+v", g)
	}
	if len(groups[1].Updates) != 1 || groups[1].Updates[0].Weight != 1 {
		t.Fatalf("F updates wrong: %+v", groups[1].Updates)
	}
	if toGroups(nil) != nil && len(toGroups(nil)) != 0 {
		t.Fatal("empty batch should yield no groups")
	}
}

// TestConfigProtoValidation: skimp demands a stream address, unknown
// protocols are rejected, empty defaults to json.
func TestConfigProtoValidation(t *testing.T) {
	base := Config{BaseURL: "http://x", Streams: []string{"F"}, Duration: time.Second}

	c := base
	if err := c.applyDefaults(); err != nil || c.Proto != ProtoJSON {
		t.Fatalf("default proto = %q, err %v; want json, nil", c.Proto, err)
	}
	c = base
	c.Proto = ProtoSkimp
	if err := c.applyDefaults(); err == nil {
		t.Fatal("skimp without StreamAddr must fail")
	}
	c = base
	c.Proto = ProtoSkimp
	c.StreamAddr = "127.0.0.1:1"
	if err := c.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	c = base
	c.Proto = "grpc"
	if err := c.applyDefaults(); err == nil {
		t.Fatal("unknown proto must fail")
	}
}
