package loadtest

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"skimsketch/internal/stats"
)

// sampleResult builds a result with internally consistent accounting.
func sampleResult() *Result {
	var ih, qh stats.Histogram
	for i := int64(1); i <= 100; i++ {
		ih.Record(i * 10_000)
	}
	for i := int64(1); i <= 40; i++ {
		qh.Record(i * 50_000)
	}
	res := &Result{
		Config: Config{
			BaseURL: "http://127.0.0.1:0", Streams: []string{"F", "G"},
			Shape: "zipf:1.0", Domain: 1 << 16, Seed: 42,
			Workers: 4, Batch: 256, QueueDepth: 64,
			QueryWorkers: 2, QueryName: "q",
		},
		Elapsed: 2 * time.Second,
		Ingest: SideResult{
			Requests: 100, Updates: 24_000, Rejected429: 3, Retries: 3, Hist: &ih,
		},
		Query: SideResult{Requests: 40, Hist: &qh},
	}
	res.Server.Ingest.UpdatesApplied = 24_000
	res.Server.Ingest.Rejected = 3
	res.Server.UpdateLatency.Count = 100
	return res
}

// TestReportRoundTrip: build → write → read → validate, for both kinds.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	res := sampleResult()
	for _, tc := range []struct {
		name string
		rep  *BenchReport
	}{
		{"BENCH_ingest.json", IngestReport(res, now)},
		{"BENCH_query.json", QueryReport(res, now)},
	} {
		if err := tc.rep.Validate(); err != nil {
			t.Fatalf("%s: fresh report invalid: %v", tc.name, err)
		}
		path := filepath.Join(dir, tc.name)
		if err := WriteReport(path, tc.rep); err != nil {
			t.Fatal(err)
		}
		back, err := ReadReport(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: reread report invalid: %v", tc.name, err)
		}
		if back.Schema != BenchSchema || back.Kind != tc.rep.Kind {
			t.Fatalf("%s: identity fields lost: %+v", tc.name, back)
		}
	}
	// Throughput semantics: updates/sec for ingest, requests/sec for query.
	if got := IngestReport(res, now).ThroughputPerSec; got != 12_000 {
		t.Fatalf("ingest throughput %v, want 12000", got)
	}
	if got := QueryReport(res, now).ThroughputPerSec; got != 20 {
		t.Fatalf("query throughput %v, want 20", got)
	}
}

// TestReportValidateRejects: each schema violation is caught with a
// message naming the field.
func TestReportValidateRejects(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name    string
		mutate  func(*BenchReport)
		errWant string
	}{
		{"schema", func(r *BenchReport) { r.Schema = "other/9" }, "schema"},
		{"kind", func(r *BenchReport) { r.Kind = "mystery" }, "kind"},
		{"timestamp", func(r *BenchReport) { r.GeneratedAt = "yesterday" }, "generatedAt"},
		{"elapsed", func(r *BenchReport) { r.ElapsedSeconds = 0 }, "elapsed"},
		{"negativeCount", func(r *BenchReport) { r.Retries = -1 }, "negative"},
		{"latencyUnit", func(r *BenchReport) { r.Latency.Unit = "ms" }, "unit"},
		{"latencyCount", func(r *BenchReport) { r.Latency.Count++ }, "latency count"},
		{"percentileOrder", func(r *BenchReport) { r.Latency.P95Ns = r.Latency.P99Ns + 1 }, "monotone"},
		{"serverEcho", func(r *BenchReport) { r.Server = nil }, "server"},
	}
	for _, tc := range cases {
		r := IngestReport(sampleResult(), now)
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: mutation accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errWant) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errWant)
		}
	}
}

// TestSummarizeLatencyUsesMergedHistogram: the report's percentiles are
// the merged histogram's — feeding the same samples through two workers
// or one must summarize identically.
func TestSummarizeLatencyUsesMergedHistogram(t *testing.T) {
	var one, a, b stats.Histogram
	for i := int64(0); i < 1000; i++ {
		v := (i * i) % 1_000_000
		one.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := stats.MergeHistograms(&a, &b)
	if SummarizeLatency(merged) != SummarizeLatency(&one) {
		t.Fatal("merged summary differs from single-stream summary")
	}
}

// TestValidateUnwrapsParseError: the generatedAt failure wraps the
// time.Parse error with %w so callers can errors.As it.
func TestValidateUnwrapsParseError(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	r := IngestReport(sampleResult(), now)
	r.GeneratedAt = "yesterday"
	err := r.Validate()
	if err == nil {
		t.Fatal("bad generatedAt accepted")
	}
	var pe *time.ParseError
	if !errors.As(err, &pe) {
		t.Errorf("error %q does not unwrap to *time.ParseError", err)
	}
}
