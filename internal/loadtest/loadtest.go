package loadtest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skimsketch/internal/stats"
	"skimsketch/internal/workload"
)

// Config tunes one harness run. The zero value is not runnable; see
// (*Config).applyDefaults for what the knobs default to.
type Config struct {
	// BaseURL is the sketchd root URL.
	BaseURL string `json:"baseURL"`
	// Streams are the target stream names; batches round-robin across
	// them. They must already be declared (Run does not declare streams:
	// setup belongs to the caller, which knows whether the server is
	// fresh).
	Streams []string `json:"streams"`
	// Shape is the key distribution (workload.ParseShape syntax) and
	// Domain its value range; Seed makes the stream reproducible.
	Shape  string `json:"shape"`
	Domain uint64 `json:"domain"`
	Seed   int64  `json:"seed"`

	// Rate is the open-loop arrival rate in updates/sec fed through a
	// token bucket; 0 means unpaced (generate as fast as the queue
	// accepts). Burst is the bucket capacity in updates (default: one
	// batch).
	Rate  float64 `json:"rate"`
	Burst int     `json:"burst"`

	// Workers is the number of concurrent ingest workers, Batch the
	// updates per request, QueueDepth the bounded buffer (in batches)
	// between the arrival process and the workers. When the queue is
	// full the arrival process sheds the batch client-side (open loop:
	// arrivals never slow down, the shed count is reported).
	Workers    int `json:"workers"`
	Batch      int `json:"batch"`
	QueueDepth int `json:"queueDepth"`

	// Duration bounds the run in time; TotalUpdates bounds it in volume.
	// Whichever is reached first stops the arrival process (0 disables
	// that bound; at least one must be set).
	Duration     time.Duration `json:"duration"`
	TotalUpdates int64         `json:"totalUpdates"`

	// QueryWorkers (with QueryName) adds a mixed closed-loop query
	// stream against /answer for the run's duration.
	QueryWorkers int    `json:"queryWorkers"`
	QueryName    string `json:"queryName"`

	// Client carries the HTTP transport and 429 backoff policy.
	Client Client `json:"-"`
}

func (c *Config) applyDefaults() error {
	if c.BaseURL == "" && c.Client.BaseURL == "" {
		return fmt.Errorf("loadtest: BaseURL required")
	}
	if c.Client.BaseURL == "" {
		c.Client.BaseURL = c.BaseURL
	}
	if c.BaseURL == "" {
		c.BaseURL = c.Client.BaseURL
	}
	if len(c.Streams) == 0 {
		return fmt.Errorf("loadtest: at least one target stream required")
	}
	if c.Shape == "" {
		c.Shape = "zipf:1.0"
	}
	if c.Domain == 0 {
		c.Domain = 1 << 16
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Burst <= 0 {
		c.Burst = c.Batch
	}
	if c.Duration <= 0 && c.TotalUpdates <= 0 {
		return fmt.Errorf("loadtest: set Duration or TotalUpdates")
	}
	if c.QueryWorkers > 0 && c.QueryName == "" {
		return fmt.Errorf("loadtest: QueryWorkers requires QueryName")
	}
	return nil
}

// SideResult aggregates one side (ingest or query) of a run. The
// histogram is the merge of every worker's histogram — the only
// percentile source the harness offers.
type SideResult struct {
	// Requests counts HTTP attempts (for ingest: including 429'd ones).
	Requests int64
	// Updates counts stream elements acknowledged by 2xx responses
	// (ingest side) — zero on the query side.
	Updates int64
	// Rejected429 counts attempts answered 429.
	Rejected429 int64
	// Retries counts re-sends after a 429 (Requests includes them).
	Retries int64
	// Errors counts requests that failed permanently.
	Errors int64
	// Shed counts updates dropped client-side because the bounded queue
	// was full when they arrived (open-loop overflow).
	Shed int64
	// Hist is the merged latency histogram across workers (monotonic
	// nanoseconds per HTTP attempt).
	Hist *stats.Histogram
}

// Result is one harness run's measurements plus the server's own view.
type Result struct {
	Config  Config
	Elapsed time.Duration
	Ingest  SideResult
	Query   SideResult
	// Server is /stats fetched after a flush: the reconciliation
	// anchor. Counters are deltas over the run (a pre-run /stats is
	// subtracted), so a warm server reconciles too.
	Server ServerStats
}

// tokenBucket paces the arrival process on the monotonic clock.
type tokenBucket struct {
	rate   float64 // tokens per second (0 = unlimited)
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take blocks until n tokens are available (or ctx is done), then
// spends them. With rate 0 it returns immediately.
func (tb *tokenBucket) take(ctx context.Context, n int) error {
	if tb.rate <= 0 {
		return nil
	}
	for {
		now := time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		tb.last = now
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		if tb.tokens >= float64(n) {
			tb.tokens -= float64(n)
			return nil
		}
		wait := time.Duration((float64(n) - tb.tokens) / tb.rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// workerTally is one ingest worker's private accounting; merged after
// the run (never averaged).
type workerTally struct {
	hist                                               stats.Histogram
	requests, updates, rejected429, retries, errorsCnt int64
}

// Run executes one load-harness run against a live sketchd: an arrival
// goroutine paces batches through the token bucket into a bounded
// queue, Workers ingest workers drain it honoring the 429 contract, and
// (optionally) QueryWorkers hammer /answer. It then flushes the server
// and fetches /stats so callers can reconcile exact counts. Run does
// not declare streams or queries — do setup first, then Run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	gen, err := workload.ParseShape(cfg.Shape, cfg.Domain, cfg.Seed)
	if err != nil {
		return nil, err
	}
	client := cfg.Client

	// Pre-run server counters: subtracted from the post-run fetch so the
	// reported Server view covers exactly this run.
	pre, err := client.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadtest: pre-run /stats: %w", err)
	}

	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	queue := make(chan []Update, cfg.QueueDepth)
	var shed atomic.Int64
	start := time.Now()

	// Arrival process: open loop. Batches are generated at the token-
	// bucket rate regardless of how the workers are doing; a full queue
	// sheds (counts and drops) instead of slowing arrivals, so server
	// slowness shows up as shed load and queue-depth latency, not as a
	// silently reduced offered rate.
	var genWG sync.WaitGroup
	genWG.Add(1)
	go func() {
		defer genWG.Done()
		defer close(queue)
		tb := newTokenBucket(cfg.Rate, cfg.Burst)
		var produced int64
		for s := 0; ; s = (s + 1) % len(cfg.Streams) {
			if cfg.TotalUpdates > 0 && produced >= cfg.TotalUpdates {
				return
			}
			n := int64(cfg.Batch)
			if cfg.TotalUpdates > 0 && cfg.TotalUpdates-produced < n {
				n = cfg.TotalUpdates - produced
			}
			batch := make([]Update, n)
			for i := range batch {
				batch[i] = Update{Stream: cfg.Streams[s], Value: gen.Next()}
			}
			if err := tb.take(runCtx, len(batch)); err != nil {
				return
			}
			if runCtx.Err() != nil {
				return
			}
			produced += n
			select {
			case queue <- batch:
			default:
				shed.Add(n) // open loop: arrivals never block
			}
		}
	}()

	// Ingest workers.
	tallies := make([]*workerTally, cfg.Workers)
	var workWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		tally := &workerTally{}
		tallies[w] = tally
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			for batch := range queue {
				// Deliveries use ctx, not runCtx: when the duration
				// expires mid-flight, in-queue batches still finish so
				// accounting reconciles exactly.
				out, err := client.SendUpdates(ctx, batch, &tally.hist)
				tally.requests += out.Attempts
				tally.rejected429 += out.Rejected429
				if out.Attempts > 1 {
					tally.retries += out.Attempts - 1
				}
				if err != nil {
					tally.errorsCnt++
					continue
				}
				tally.updates += out.Applied
			}
		}()
	}

	// Optional mixed query stream: closed-loop workers issuing /answer
	// back to back until the ingest side finishes.
	qTallies := make([]*workerTally, cfg.QueryWorkers)
	var qWG sync.WaitGroup
	qCtx, qCancel := context.WithCancel(ctx)
	for w := 0; w < cfg.QueryWorkers; w++ {
		tally := &workerTally{}
		qTallies[w] = tally
		qWG.Add(1)
		go func() {
			defer qWG.Done()
			for qCtx.Err() == nil {
				t0 := time.Now()
				err := client.Answer(qCtx, cfg.QueryName, nil)
				if qCtx.Err() != nil {
					return // canceled mid-request: neither counted nor recorded
				}
				// Timed here, not inside Answer, so the histogram count
				// always equals the request count.
				tally.hist.Record(int64(time.Since(t0)))
				tally.requests++
				if err != nil {
					tally.errorsCnt++
				}
			}
		}()
	}

	genWG.Wait()
	workWG.Wait()
	qCancel()
	qWG.Wait()
	elapsed := time.Since(start)

	// Flush so every accepted update is folded in, then reconcile.
	if err := client.Flush(ctx); err != nil {
		return nil, fmt.Errorf("loadtest: post-run flush: %w", err)
	}
	post, err := client.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadtest: post-run /stats: %w", err)
	}
	server := *post
	server.Ingest.UpdatesEnqueued -= pre.Ingest.UpdatesEnqueued
	server.Ingest.UpdatesApplied -= pre.Ingest.UpdatesApplied
	server.Ingest.Rejected -= pre.Ingest.Rejected
	server.UpdateLatency.Count -= pre.UpdateLatency.Count

	res := &Result{Config: cfg, Elapsed: elapsed, Server: server}
	res.Ingest = mergeTallies(tallies)
	res.Ingest.Shed = shed.Load()
	res.Query = mergeTallies(qTallies)
	return res, nil
}

// mergeTallies folds per-worker tallies into one SideResult; the
// histograms merge bucket-wise (stats.MergeHistograms), which is what
// makes the global percentiles exact rather than averaged nonsense.
func mergeTallies(tallies []*workerTally) SideResult {
	var out SideResult
	hists := make([]*stats.Histogram, 0, len(tallies))
	for _, t := range tallies {
		if t == nil {
			continue
		}
		out.Requests += t.requests
		out.Updates += t.updates
		out.Rejected429 += t.rejected429
		out.Retries += t.retries
		out.Errors += t.errorsCnt
		hists = append(hists, &t.hist)
	}
	out.Hist = stats.MergeHistograms(hists...)
	return out
}
