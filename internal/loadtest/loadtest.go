package loadtest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	wclient "skimsketch/internal/wire/client"
	"skimsketch/internal/workload"
)

// Ingest protocols the harness can drive. Setup, flush, and /stats
// reconciliation always ride HTTP — only the hot batch path switches.
const (
	// ProtoJSON is the JSON-over-HTTP /update path (the default).
	ProtoJSON = "json"
	// ProtoSkimp is the SKSP binary streaming protocol (docs/FORMATS.md):
	// persistent connections, length-prefixed CRC'd frames, idempotent
	// replay. Requires Config.StreamAddr.
	ProtoSkimp = "skimp"
)

// Config tunes one harness run. The zero value is not runnable; see
// (*Config).applyDefaults for what the knobs default to.
type Config struct {
	// BaseURL is the sketchd root URL.
	BaseURL string `json:"baseURL"`
	// Streams are the target stream names; batches round-robin across
	// them. They must already be declared (Run does not declare streams:
	// setup belongs to the caller, which knows whether the server is
	// fresh).
	Streams []string `json:"streams"`
	// Shape is the key distribution (workload.ParseShape syntax) and
	// Domain its value range; Seed makes the stream reproducible.
	Shape  string `json:"shape"`
	Domain uint64 `json:"domain"`
	Seed   int64  `json:"seed"`

	// Tenants fans the run out across this many tenant namespaces
	// (TenantNames). Each batch's tenant is drawn from the same seeded
	// workload shape as the values (offset seed), so the per-tenant load
	// split is reproducible and — with a skewed shape — deliberately
	// unequal, like real multi-tenant traffic. 0 or 1 keeps the whole
	// run on the flat default-tenant API, byte-identical to the
	// pre-tenant harness. Streams and queries must already be declared
	// per tenant (cmd/loadgen -declare does this).
	Tenants int `json:"tenants,omitempty"`

	// Rate is the open-loop arrival rate in updates/sec fed through a
	// token bucket; 0 means unpaced (generate as fast as the queue
	// accepts). Burst is the bucket capacity in updates (default: one
	// batch).
	Rate  float64 `json:"rate"`
	Burst int     `json:"burst"`

	// Workers is the number of concurrent ingest workers, Batch the
	// updates per request, QueueDepth the bounded buffer (in batches)
	// between the arrival process and the workers. When the queue is
	// full the arrival process sheds the batch client-side (open loop:
	// arrivals never slow down, the shed count is reported).
	Workers    int `json:"workers"`
	Batch      int `json:"batch"`
	QueueDepth int `json:"queueDepth"`

	// Duration bounds the run in time; TotalUpdates bounds it in volume.
	// Whichever is reached first stops the arrival process (0 disables
	// that bound; at least one must be set).
	Duration     time.Duration `json:"duration"`
	TotalUpdates int64         `json:"totalUpdates"`

	// QueryWorkers (with QueryName) adds a mixed closed-loop query
	// stream against /answer for the run's duration.
	QueryWorkers int    `json:"queryWorkers"`
	QueryName    string `json:"queryName"`

	// Proto selects the ingest wire protocol: ProtoJSON (default) or
	// ProtoSkimp. StreamAddr is the sketchd -listen.stream host:port,
	// required for ProtoSkimp.
	Proto      string `json:"proto,omitempty"`
	StreamAddr string `json:"streamAddr,omitempty"`

	// Client carries the HTTP transport and 429 backoff policy.
	Client Client `json:"-"`
}

func (c *Config) applyDefaults() error {
	if c.BaseURL == "" && c.Client.BaseURL == "" {
		return fmt.Errorf("loadtest: BaseURL required")
	}
	if c.Client.BaseURL == "" {
		c.Client.BaseURL = c.BaseURL
	}
	if c.BaseURL == "" {
		c.BaseURL = c.Client.BaseURL
	}
	if len(c.Streams) == 0 {
		return fmt.Errorf("loadtest: at least one target stream required")
	}
	if c.Shape == "" {
		c.Shape = "zipf:1.0"
	}
	if c.Domain == 0 {
		c.Domain = 1 << 16
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Burst <= 0 {
		c.Burst = c.Batch
	}
	if c.Duration <= 0 && c.TotalUpdates <= 0 {
		return fmt.Errorf("loadtest: set Duration or TotalUpdates")
	}
	if c.QueryWorkers > 0 && c.QueryName == "" {
		return fmt.Errorf("loadtest: QueryWorkers requires QueryName")
	}
	switch c.Proto {
	case "":
		c.Proto = ProtoJSON
	case ProtoJSON:
	case ProtoSkimp:
		if c.StreamAddr == "" {
			return fmt.Errorf("loadtest: proto %q requires StreamAddr", ProtoSkimp)
		}
	default:
		return fmt.Errorf("loadtest: unknown proto %q (want %q or %q)", c.Proto, ProtoJSON, ProtoSkimp)
	}
	return nil
}

// batchSender abstracts the ingest hot path over the two wire
// protocols. Send delivers one batch for the tenant index (0 on
// single-tenant runs), recording every attempt's latency into hist, and
// returns the unified accounting the workers tally.
type batchSender interface {
	Send(ctx context.Context, tenant int, updates []Update, hist *stats.Histogram) (SendOutcome, error)
	Close() error
}

// jsonSender drives /update with one tenant-scoped HTTP client each.
type jsonSender struct{ clients []*Client }

func (s *jsonSender) Send(ctx context.Context, tenant int, updates []Update, hist *stats.Histogram) (SendOutcome, error) {
	return s.clients[tenant].SendUpdates(ctx, updates, hist)
}

func (s *jsonSender) Close() error { return nil }

// skimpSender drives the SKSP binary protocol through one shared
// persistent connection; Sends from all workers pipeline onto it and
// are matched to replies by seq, which is the protocol's whole
// throughput story — no per-batch connection or HTTP framing.
type skimpSender struct {
	conn *wclient.Conn
	// tenants maps the worker's tenant index to a namespace; nil means
	// single-tenant (empty name = server default).
	tenants []string
}

func (s *skimpSender) Send(ctx context.Context, tenant int, updates []Update, hist *stats.Histogram) (SendOutcome, error) {
	name := ""
	if s.tenants != nil {
		name = s.tenants[tenant]
	}
	var onAttempt func(time.Duration)
	if hist != nil {
		onAttempt = func(d time.Duration) { hist.Record(int64(d)) }
	}
	out, err := s.conn.SendTimed(ctx, name, toGroups(updates), onAttempt)
	return SendOutcome{
		Attempts:     int64(out.Attempts),
		Rejected429:  int64(out.Rejected429),
		Applied:      out.Applied,
		Deduplicated: out.Deduplicated,
	}, err
}

func (s *skimpSender) Close() error { return s.conn.Close() }

// toGroups converts a wire batch to the engine's grouped form, one
// group per distinct stream in first-appearance order, preserving
// update order within each stream (same contract as sketchd's own
// /update grouping). A nil Weight means insert (+1), like the JSON
// decoder.
func toGroups(updates []Update) []stream.Group {
	byStream := make(map[string]int, 4)
	groups := make([]stream.Group, 0, 4)
	for _, u := range updates {
		i, ok := byStream[u.Stream]
		if !ok {
			i = len(groups)
			byStream[u.Stream] = i
			groups = append(groups, stream.Group{Name: u.Stream})
		}
		w := int64(1)
		if u.Weight != nil {
			w = *u.Weight
		}
		groups[i].Updates = append(groups[i].Updates, stream.Update{Value: u.Value, Weight: w})
	}
	return groups
}

// SideResult aggregates one side (ingest or query) of a run. The
// histogram is the merge of every worker's histogram — the only
// percentile source the harness offers.
type SideResult struct {
	// Requests counts HTTP attempts (for ingest: including 429'd ones).
	Requests int64
	// Updates counts stream elements acknowledged by 2xx responses
	// (ingest side) — zero on the query side.
	Updates int64
	// Rejected429 counts attempts answered 429.
	Rejected429 int64
	// Retries counts re-sends after a 429 (Requests includes them).
	Retries int64
	// Errors counts requests that failed permanently.
	Errors int64
	// Shed counts updates dropped client-side because the bounded queue
	// was full when they arrived (open-loop overflow).
	Shed int64
	// Hist is the merged latency histogram across workers (monotonic
	// nanoseconds per HTTP attempt).
	Hist *stats.Histogram
}

// Result is one harness run's measurements plus the server's own view.
type Result struct {
	Config  Config
	Elapsed time.Duration
	Ingest  SideResult
	Query   SideResult
	// Server is /stats fetched after a flush: the reconciliation
	// anchor. Counters are deltas over the run (a pre-run /stats is
	// subtracted), so a warm server reconciles too.
	Server ServerStats
	// Tenants is the per-tenant reconciliation (multi-tenant runs only):
	// one row per tenant, client-acknowledged updates against the
	// tenant's own /stats counter deltas.
	Tenants []TenantRecon
}

// TenantRecon reconciles one tenant's slice of a run exactly: every
// update the client got a 2xx for must appear in that tenant's server
// counters, and no other tenant's. UpdatesSent == ServerUpdates is the
// isolation identity BenchReport.Validate enforces.
type TenantRecon struct {
	Tenant string `json:"tenant"`
	// UpdatesSent counts this tenant's updates acknowledged by 2xx.
	UpdatesSent int64 `json:"updatesSent"`
	// ServerUpdates is the tenant's /stats updateCounts delta over the
	// run (summed across its streams).
	ServerUpdates int64 `json:"serverUpdates"`
	// ServerRejected is the tenant's quota-rejection counter delta.
	ServerRejected int64 `json:"serverRejected"`
}

// TenantNames yields the harness's tenant namespaces for a fan-out of
// n: "t0".."t{n-1}". nil for n <= 1 (single-tenant, flat API).
func TenantNames(n int) []string {
	if n <= 1 {
		return nil
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	return names
}

// tokenBucket paces the arrival process on the monotonic clock.
type tokenBucket struct {
	rate   float64 // tokens per second (0 = unlimited)
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take blocks until n tokens are available (or ctx is done), then
// spends them. With rate 0 it returns immediately.
func (tb *tokenBucket) take(ctx context.Context, n int) error {
	if tb.rate <= 0 {
		return nil
	}
	for {
		now := time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		tb.last = now
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		if tb.tokens >= float64(n) {
			tb.tokens -= float64(n)
			return nil
		}
		wait := time.Duration((float64(n) - tb.tokens) / tb.rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// workerTally is one ingest worker's private accounting; merged after
// the run (never averaged).
type workerTally struct {
	hist                                               stats.Histogram
	requests, updates, rejected429, retries, errorsCnt int64
	// byTenant is the per-tenant slice of updates (indexed like the
	// run's tenant list; nil on single-tenant runs).
	byTenant []int64
}

// tenantBatch is one queued batch tagged with its target tenant index
// (always 0 on single-tenant runs).
type tenantBatch struct {
	tenant  int
	updates []Update
}

// Run executes one load-harness run against a live sketchd: an arrival
// goroutine paces batches through the token bucket into a bounded
// queue, Workers ingest workers drain it honoring the 429 contract, and
// (optionally) QueryWorkers hammer /answer. It then flushes the server
// and fetches /stats so callers can reconcile exact counts. Run does
// not declare streams or queries — do setup first, then Run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	gen, err := workload.ParseShape(cfg.Shape, cfg.Domain, cfg.Seed)
	if err != nil {
		return nil, err
	}
	client := cfg.Client

	// Multi-tenant fan-out: one scoped client per tenant, plus a second
	// seeded generator (offset seed, domain = tenant count) choosing each
	// batch's tenant — the same shape as the values, so a zipfian run
	// skews its tenant split zipfianly too, reproducibly.
	tenants := TenantNames(cfg.Tenants)
	sendClients := []*Client{&client}
	var tgen workload.Generator
	if len(tenants) > 0 {
		sendClients = make([]*Client, len(tenants))
		for i, name := range tenants {
			sendClients[i] = client.ForTenant(name)
		}
		tgen, err = workload.ParseShape(cfg.Shape, uint64(len(tenants)), cfg.Seed+1)
		if err != nil {
			return nil, err
		}
	}

	// The hot-path sender: HTTP /update by default, or one shared SKSP
	// connection all workers pipeline onto. Setup and reconciliation
	// below stay on HTTP either way, so the /stats identities hold
	// regardless of protocol.
	var sender batchSender = &jsonSender{clients: sendClients}
	if cfg.Proto == ProtoSkimp {
		sender = &skimpSender{
			conn:    wclient.New(cfg.StreamAddr, wclient.Options{Backoff: cfg.Client.Backoff}),
			tenants: tenants,
		}
	}
	defer sender.Close()

	// Pre-run server counters: subtracted from the post-run fetch so the
	// reported Server view covers exactly this run.
	pre, err := client.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadtest: pre-run /stats: %w", err)
	}
	preTenant := make([]*TenantServerStats, len(tenants))
	for i, c := range sendClients {
		if len(tenants) == 0 {
			break
		}
		if preTenant[i], err = c.TenantStats(ctx); err != nil {
			return nil, fmt.Errorf("loadtest: pre-run tenant %s /stats: %w", tenants[i], err)
		}
	}

	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	queue := make(chan tenantBatch, cfg.QueueDepth)
	var shed atomic.Int64
	start := time.Now()

	// Arrival process: open loop. Batches are generated at the token-
	// bucket rate regardless of how the workers are doing; a full queue
	// sheds (counts and drops) instead of slowing arrivals, so server
	// slowness shows up as shed load and queue-depth latency, not as a
	// silently reduced offered rate.
	var genWG sync.WaitGroup
	genWG.Add(1)
	go func() {
		defer genWG.Done()
		defer close(queue)
		tb := newTokenBucket(cfg.Rate, cfg.Burst)
		var produced int64
		for s := 0; ; s = (s + 1) % len(cfg.Streams) {
			if cfg.TotalUpdates > 0 && produced >= cfg.TotalUpdates {
				return
			}
			n := int64(cfg.Batch)
			if cfg.TotalUpdates > 0 && cfg.TotalUpdates-produced < n {
				n = cfg.TotalUpdates - produced
			}
			batch := make([]Update, n)
			for i := range batch {
				batch[i] = Update{Stream: cfg.Streams[s], Value: gen.Next()}
			}
			tenant := 0
			if tgen != nil {
				tenant = int(tgen.Next())
			}
			if err := tb.take(runCtx, len(batch)); err != nil {
				return
			}
			if runCtx.Err() != nil {
				return
			}
			produced += n
			select {
			case queue <- tenantBatch{tenant: tenant, updates: batch}:
			default:
				shed.Add(n) // open loop: arrivals never block
			}
		}
	}()

	// Ingest workers.
	tallies := make([]*workerTally, cfg.Workers)
	var workWG sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		tally := &workerTally{byTenant: make([]int64, len(tenants))}
		tallies[w] = tally
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			for item := range queue {
				// Deliveries use ctx, not runCtx: when the duration
				// expires mid-flight, in-queue batches still finish so
				// accounting reconciles exactly.
				out, err := sender.Send(ctx, item.tenant, item.updates, &tally.hist)
				tally.requests += out.Attempts
				tally.rejected429 += out.Rejected429
				if out.Attempts > 1 {
					tally.retries += out.Attempts - 1
				}
				if err != nil {
					tally.errorsCnt++
					continue
				}
				tally.updates += out.Applied
				if len(tally.byTenant) > 0 {
					tally.byTenant[item.tenant] += out.Applied
				}
			}
		}()
	}

	// Optional mixed query stream: closed-loop workers issuing /answer
	// back to back until the ingest side finishes.
	qTallies := make([]*workerTally, cfg.QueryWorkers)
	var qWG sync.WaitGroup
	qCtx, qCancel := context.WithCancel(ctx)
	for w := 0; w < cfg.QueryWorkers; w++ {
		tally := &workerTally{}
		qTallies[w] = tally
		qWG.Add(1)
		go func() {
			defer qWG.Done()
			for qCtx.Err() == nil {
				t0 := time.Now()
				err := client.Answer(qCtx, cfg.QueryName, nil)
				if qCtx.Err() != nil {
					return // canceled mid-request: neither counted nor recorded
				}
				// Timed here, not inside Answer, so the histogram count
				// always equals the request count.
				tally.hist.Record(int64(time.Since(t0)))
				tally.requests++
				if err != nil {
					tally.errorsCnt++
				}
			}
		}()
	}

	genWG.Wait()
	workWG.Wait()
	qCancel()
	qWG.Wait()
	elapsed := time.Since(start)

	// Flush so every accepted update is folded in, then reconcile.
	if err := client.Flush(ctx); err != nil {
		return nil, fmt.Errorf("loadtest: post-run flush: %w", err)
	}
	post, err := client.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadtest: post-run /stats: %w", err)
	}
	server := *post
	server.Ingest.UpdatesEnqueued -= pre.Ingest.UpdatesEnqueued
	server.Ingest.UpdatesApplied -= pre.Ingest.UpdatesApplied
	server.Ingest.Rejected -= pre.Ingest.Rejected
	server.UpdateLatency.Count -= pre.UpdateLatency.Count

	res := &Result{Config: cfg, Elapsed: elapsed, Server: server}
	res.Ingest = mergeTallies(tallies)
	res.Ingest.Shed = shed.Load()
	res.Query = mergeTallies(qTallies)

	// Per-tenant reconciliation: each tenant's client-acknowledged
	// updates against its own /stats deltas. These are the rows
	// BenchReport.Validate checks for exact equality — a cross-tenant
	// routing bug would surface here as a mismatch on both tenants.
	for i, name := range tenants {
		postT, err := sendClients[i].TenantStats(ctx)
		if err != nil {
			return nil, fmt.Errorf("loadtest: post-run tenant %s /stats: %w", name, err)
		}
		var acked int64
		for _, t := range tallies {
			acked += t.byTenant[i]
		}
		res.Tenants = append(res.Tenants, TenantRecon{
			Tenant:         name,
			UpdatesSent:    acked,
			ServerUpdates:  postT.TotalUpdates() - preTenant[i].TotalUpdates(),
			ServerRejected: postT.Rejected - preTenant[i].Rejected,
		})
	}
	return res, nil
}

// mergeTallies folds per-worker tallies into one SideResult; the
// histograms merge bucket-wise (stats.MergeHistograms), which is what
// makes the global percentiles exact rather than averaged nonsense.
func mergeTallies(tallies []*workerTally) SideResult {
	var out SideResult
	hists := make([]*stats.Histogram, 0, len(tallies))
	for _, t := range tallies {
		if t == nil {
			continue
		}
		out.Requests += t.requests
		out.Updates += t.updates
		out.Rejected429 += t.rejected429
		out.Retries += t.retries
		out.Errors += t.errorsCnt
		hists = append(hists, &t.hist)
	}
	out.Hist = stats.MergeHistograms(hists...)
	return out
}
