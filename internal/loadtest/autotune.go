package loadtest

import (
	"context"
	"fmt"
	"time"
)

// Autotune searches the harness's client-side knobs — ingest workers,
// batch size, queue depth, and (when a query stream is configured)
// query workers — for the configuration with the highest measured
// ingest throughput against a live server, by coordinate descent over
// short trials: one knob moves at a time (halved or doubled, clamped to
// its range), a move is kept only when it beats the incumbent by more
// than Epsilon, and the search stops after a full sweep with no move or
// MaxSweeps sweeps. The very first trial is the base configuration, and
// the incumbent only ever improves, so the result is never slower than
// the defaults it started from — the property the acceptance test pins.

// knobRange clamps one searched dimension.
type knobRange struct{ min, max int }

var knobRanges = map[string]knobRange{
	"workers":      {1, 64},
	"batch":        {1, 8192},
	"queue":        {1, 1024},
	"queryWorkers": {1, 32},
}

// Trial is one measured configuration — a point on the autotune curve.
type Trial struct {
	Workers      int     `json:"workers"`
	Batch        int     `json:"batch"`
	QueueDepth   int     `json:"queueDepth"`
	QueryWorkers int     `json:"queryWorkers"`
	Throughput   float64 `json:"throughputUpdatesPerSec"`
	P99Ns        int64   `json:"p99Ns"`
	Errors       int64   `json:"errors"`
}

// AutotuneResult is the search outcome: the best configuration found
// and the full measured curve in trial order.
type AutotuneResult struct {
	Schema      string  `json:"schema"` // "skimsketch-autotune/1"
	GeneratedAt string  `json:"generatedAt"`
	GitSHA      string  `json:"gitSHA,omitempty"`
	Best        Trial   `json:"best"`
	Trials      []Trial `json:"trials"`
}

// AutotuneSchema identifies BENCH_autotune.json documents.
const AutotuneSchema = "skimsketch-autotune/1"

// AutotuneOptions tunes the search itself.
type AutotuneOptions struct {
	// Base is the starting configuration; its Duration/TotalUpdates
	// bound each trial (keep trials short — a second or two).
	Base Config
	// MaxSweeps bounds the number of coordinate sweeps (<= 0: 4).
	MaxSweeps int
	// Epsilon is the minimum relative improvement to accept a move
	// (<= 0: 0.03, i.e. 3% — below harness noise there is no signal).
	Epsilon float64
}

// TrialFunc runs one trial; production passes Run, tests inject a
// synthetic surface.
type TrialFunc func(context.Context, Config) (*Result, error)

// Autotune performs the coordinate-descent search. now stamps the
// result (injected so callers control the clock).
func Autotune(ctx context.Context, opts AutotuneOptions, run TrialFunc, now time.Time) (*AutotuneResult, error) {
	if run == nil {
		run = Run
	}
	base := opts.Base
	if err := base.applyDefaults(); err != nil {
		return nil, err
	}
	maxSweeps := opts.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 4
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = 0.03
	}

	res := &AutotuneResult{
		Schema:      AutotuneSchema,
		GeneratedAt: now.UTC().Format(time.RFC3339),
		GitSHA:      GitSHA(),
	}
	// seen memoizes measured configurations: coordinate descent revisits
	// neighbors, and a live trial is the expensive part.
	type key [4]int
	seen := map[key]Trial{}

	measure := func(workers, batch, queue, qworkers int) (Trial, error) {
		k := key{workers, batch, queue, qworkers}
		if t, ok := seen[k]; ok {
			return t, nil
		}
		cfg := base
		cfg.Workers, cfg.Batch, cfg.QueueDepth, cfg.QueryWorkers = workers, batch, queue, qworkers
		r, err := run(ctx, cfg)
		if err != nil {
			return Trial{}, fmt.Errorf("loadtest: trial %v: %w", k, err)
		}
		t := Trial{
			Workers: workers, Batch: batch, QueueDepth: queue, QueryWorkers: qworkers,
			P99Ns:  SummarizeLatency(r.Ingest.Hist).P99Ns,
			Errors: r.Ingest.Errors,
		}
		if r.Elapsed > 0 {
			t.Throughput = float64(r.Ingest.Updates) / r.Elapsed.Seconds()
		}
		seen[k] = t
		res.Trials = append(res.Trials, t)
		return t, nil
	}

	best, err := measure(base.Workers, base.Batch, base.QueueDepth, base.QueryWorkers)
	if err != nil {
		return nil, err
	}
	res.Best = best

	// dims addresses the incumbent's knobs by index so one sweep loop
	// serves all of them.
	type dim struct {
		name string
		get  func(Trial) int
		set  func(*Trial, int)
	}
	dims := []dim{
		{"workers", func(t Trial) int { return t.Workers }, func(t *Trial, v int) { t.Workers = v }},
		{"batch", func(t Trial) int { return t.Batch }, func(t *Trial, v int) { t.Batch = v }},
		{"queue", func(t Trial) int { return t.QueueDepth }, func(t *Trial, v int) { t.QueueDepth = v }},
	}
	if base.QueryWorkers > 0 {
		dims = append(dims, dim{"queryWorkers", func(t Trial) int { return t.QueryWorkers }, func(t *Trial, v int) { t.QueryWorkers = v }})
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		moved := false
		for _, d := range dims {
			cur := d.get(res.Best)
			rng := knobRanges[d.name]
			for _, cand := range []int{cur / 2, cur * 2} {
				if cand < rng.min {
					cand = rng.min
				}
				if cand > rng.max {
					cand = rng.max
				}
				if cand == cur {
					continue
				}
				probe := res.Best
				d.set(&probe, cand)
				t, err := measure(probe.Workers, probe.Batch, probe.QueueDepth, probe.QueryWorkers)
				if err != nil {
					return nil, err
				}
				if t.Errors == 0 && t.Throughput > res.Best.Throughput*(1+eps) {
					res.Best = t
					moved = true
					cur = cand
				}
			}
		}
		if !moved {
			break
		}
	}
	return res, nil
}

// WriteAutotuneResult writes the search outcome as indented JSON.
func WriteAutotuneResult(path string, r *AutotuneResult) error {
	return writeJSONFile(path, r)
}

// BestConfig applies the winning trial's knobs onto cfg.
func (r *AutotuneResult) BestConfig(cfg Config) Config {
	cfg.Workers = r.Best.Workers
	cfg.Batch = r.Best.Batch
	cfg.QueueDepth = r.Best.QueueDepth
	cfg.QueryWorkers = r.Best.QueryWorkers
	return cfg
}
