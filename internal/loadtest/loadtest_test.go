package loadtest

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skimsketch/internal/distributed"
	"skimsketch/internal/stats"
)

// fakeSketchd mimics the sketchd HTTP surface the harness touches, with
// a programmable 429 pattern: every rejectEvery-th /update request is
// shed (0 = never), exactly like the real server — before anything is
// applied, with a Retry-After hint.
type fakeSketchd struct {
	mu          sync.Mutex
	rejectEvery int64
	retryAfter  string

	requests int64 // /update requests seen (= server latency count)
	applied  int64 // updates folded in
	rejected int64 // 429 responses issued
}

func (f *fakeSketchd) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.requests++
		if f.rejectEvery > 0 && f.requests%f.rejectEvery == 0 {
			f.rejected++
			ra := f.retryAfter
			if ra == "" {
				ra = "0"
			}
			w.Header().Set("Retry-After", ra)
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "full"})
			return
		}
		var batch []Update
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		f.applied += int64(len(batch))
		json.NewEncoder(w).Encode(map[string]int{"applied": len(batch)})
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
	})
	mux.HandleFunc("/answer", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"estimate": 1.0})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"ingest": map[string]any{
				"updatesEnqueued": f.applied,
				"updatesApplied":  f.applied,
				"rejected":        f.rejected,
			},
			"updateLatency": map[string]any{"count": f.requests, "meanNs": 1000.0, "maxNs": 2000, "p99Ns": 1500},
			"uptimeSeconds": 1.0,
		})
	})
	return mux
}

func (f *fakeSketchd) snapshot() (requests, applied, rejected int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests, f.applied, f.rejected
}

// fastBackoff keeps retry sleeps microscopic in tests.
func fastBackoff() distributed.Backoff {
	return distributed.Backoff{
		Base: 100 * time.Microsecond, Max: time.Millisecond,
		Rand: rand.New(rand.NewSource(1)),
	}
}

// TestRunReconcilesAgainstFake: every update the harness reports
// accepted was applied exactly once, every 429 it observed was a
// server-side rejection, and its request count matches the server's
// latency-histogram count — the accounting identity the real
// reconciliation test (cmd/sketchd) re-checks against a live engine.
func TestRunReconcilesAgainstFake(t *testing.T) {
	fake := &fakeSketchd{rejectEvery: 5}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Streams:      []string{"F", "G"},
		Shape:        "uniform",
		Domain:       1024,
		Seed:         7,
		Workers:      3,
		Batch:        50,
		QueueDepth:   16,
		TotalUpdates: 5000,
		Client:       Client{Backoff: fastBackoff()},
	})
	if err != nil {
		t.Fatal(err)
	}
	requests, applied, rejected := fake.snapshot()
	if res.Ingest.Errors != 0 {
		t.Fatalf("unexpected permanent errors: %d", res.Ingest.Errors)
	}
	if res.Ingest.Updates != applied {
		t.Fatalf("client accepted %d updates, server applied %d", res.Ingest.Updates, applied)
	}
	if res.Ingest.Rejected429 != rejected {
		t.Fatalf("client saw %d rejections, server issued %d", res.Ingest.Rejected429, rejected)
	}
	if res.Ingest.Requests != requests {
		t.Fatalf("client made %d requests, server counted %d", res.Ingest.Requests, requests)
	}
	if res.Ingest.Hist.Count() != res.Ingest.Requests {
		t.Fatalf("histogram holds %d samples for %d requests", res.Ingest.Hist.Count(), res.Ingest.Requests)
	}
	// Open loop: generated = delivered + shed; deliveries were 5000 - shed.
	if got := res.Ingest.Updates + res.Ingest.Shed; got != 5000 {
		t.Fatalf("accepted %d + shed %d = %d, want 5000", res.Ingest.Updates, res.Ingest.Shed, got)
	}
	if rejected == 0 {
		t.Fatal("fake never rejected; the 429 path was not exercised")
	}
	// The server echo in the result is the per-run delta.
	if res.Server.Ingest.UpdatesApplied != applied || res.Server.UpdateLatency.Count != requests {
		t.Fatalf("server echo %+v does not match fake counters", res.Server)
	}
}

// TestSendUpdatesRetries429: a burst of 429s delays but never drops or
// duplicates a batch — the jittered backoff retries until acceptance.
func TestSendUpdatesRetries429(t *testing.T) {
	fake := &fakeSketchd{rejectEvery: 1} // reject every request...
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()
	// ...until the pattern disarms after 3 rejections.
	go func() {
		for {
			fake.mu.Lock()
			if fake.rejected >= 3 {
				fake.rejectEvery = 0
				fake.mu.Unlock()
				return
			}
			fake.mu.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	c := &Client{BaseURL: ts.URL, Backoff: fastBackoff()}
	var hist stats.Histogram
	batch := []Update{{Stream: "F", Value: 1}, {Stream: "F", Value: 2}}
	out, err := c.SendUpdates(context.Background(), batch, &hist)
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied != 2 {
		t.Fatalf("applied %d, want 2", out.Applied)
	}
	if out.Rejected429 < 3 {
		t.Fatalf("saw %d rejections, want >= 3", out.Rejected429)
	}
	if out.Attempts != out.Rejected429+1 {
		t.Fatalf("attempts %d != rejections %d + 1 success", out.Attempts, out.Rejected429)
	}
	if hist.Count() != out.Attempts {
		t.Fatalf("histogram %d samples for %d attempts", hist.Count(), out.Attempts)
	}
	if _, applied, _ := fake.snapshot(); applied != 2 {
		t.Fatalf("server applied %d, want exactly 2 (no double count)", applied)
	}
}

// TestSendUpdatesPermanentError: a 400 aborts immediately instead of
// retrying a request that can never succeed.
func TestSendUpdatesPermanentError(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown stream"})
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, Backoff: fastBackoff()}
	if _, err := c.SendUpdates(context.Background(), []Update{{Stream: "nope", Value: 1}}, nil); err == nil {
		t.Fatal("expected error")
	}
	if n := requests.Load(); n != 1 {
		t.Fatalf("made %d requests, want 1 (no retry on 4xx)", n)
	}
}

// TestTokenBucketPacing: a rate-limited run accepts roughly rate×time
// updates, far below what the unpaced fake could absorb.
func TestTokenBucketPacing(t *testing.T) {
	fake := &fakeSketchd{}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()
	cfg := Config{
		BaseURL:  ts.URL,
		Streams:  []string{"F"},
		Shape:    "uniform",
		Domain:   64,
		Workers:  2,
		Batch:    10,
		Rate:     2000, // updates/sec
		Burst:    10,
		Duration: 300 * time.Millisecond,
		Client:   Client{Backoff: fastBackoff()},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Generous bounds — CI boxes stall — but far below the >100k updates
	// an unpaced 300ms run pushes through this fake.
	if res.Ingest.Updates > 3000 {
		t.Fatalf("rate 2000/s for 300ms accepted %d updates; token bucket not pacing", res.Ingest.Updates)
	}
	if res.Ingest.Updates == 0 {
		t.Fatal("rate-limited run accepted nothing")
	}
}

// TestMixedQueryStream: query workers measure /answer with their own
// merged histogram, independent of the ingest side.
func TestMixedQueryStream(t *testing.T) {
	fake := &fakeSketchd{}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Streams:      []string{"F"},
		Shape:        "zipf",
		Domain:       256,
		Workers:      1,
		Batch:        20,
		TotalUpdates: 400,
		QueryWorkers: 2,
		QueryName:    "q",
		Client:       Client{Backoff: fastBackoff()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Requests == 0 {
		t.Fatal("no query requests issued")
	}
	if res.Query.Hist.Count() != res.Query.Requests {
		t.Fatalf("query histogram %d samples for %d requests", res.Query.Hist.Count(), res.Query.Requests)
	}
	if res.Query.Errors != 0 {
		t.Fatalf("query errors: %d", res.Query.Errors)
	}
}

// TestConfigValidation: unrunnable configs fail fast with a reason.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                    // no URL
		{BaseURL: "http://x"}, // no streams
		{BaseURL: "http://x", Streams: []string{"F"}},                                         // no bound
		{BaseURL: "http://x", Streams: []string{"F"}, Duration: time.Second, QueryWorkers: 1}, // query without name
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
