package stats

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzHistogramRoundTrip drives UnmarshalBinary with arbitrary bytes
// (it must reject garbage cleanly, never panic or over-allocate) and,
// when a blob is accepted, pins the round-trip law: re-marshaling the
// decoded histogram reproduces an equivalent blob and the decoded
// summary fields are internally consistent.
func FuzzHistogramRoundTrip(f *testing.F) {
	// Seed corpus: an empty histogram, a populated one, and a tail-heavy
	// one whose min/max live in the extreme buckets.
	var empty Histogram
	if blob, err := empty.MarshalBinary(); err == nil {
		f.Add(blob)
	}
	var pop Histogram
	for i := int64(0); i < 500; i++ {
		pop.Record(i * i % 100_000)
	}
	if blob, err := pop.MarshalBinary(); err == nil {
		f.Add(blob)
	}
	var tail Histogram
	tail.Record(0)
	tail.Record(1_000_000_000_000)
	if blob, err := tail.MarshalBinary(); err == nil {
		f.Add(blob)
	}
	f.Add([]byte("SKLH garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Histogram
		if err := h.UnmarshalBinary(data); err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted blobs must describe a consistent histogram...
		var total int64
		for _, c := range h.counts {
			total += int64(c)
		}
		if total != h.Count() {
			t.Fatalf("accepted blob: bucket total %d != count %d", total, h.Count())
		}
		if h.Count() > 0 && h.Min() > h.Max() {
			t.Fatalf("accepted blob: min %d > max %d", h.Min(), h.Max())
		}
		if q := Quantile(&h, 0.99); q < h.Min() || q > h.Max() {
			if h.Count() > 0 {
				t.Fatalf("accepted blob: p99 %d outside [%d, %d]", q, h.Min(), h.Max())
			}
		}
		// ...and round-trip losslessly.
		blob, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted blob failed: %v", err)
		}
		var back Histogram
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatalf("re-unmarshal of canonical blob failed: %v", err)
		}
		if !reflect.DeepEqual(back, h) {
			t.Fatal("round trip changed the histogram")
		}
		blob2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatal("canonical re-marshal is not byte-stable")
		}
	})
}
