package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (latencies in nanoseconds, queue waits, batch sizes — anything whose
// interesting range spans orders of magnitude). Its purpose in this
// codebase is percentile aggregation across workers that is actually
// correct: every Histogram shares one fixed global bucket layout, so
// Merge is exact bucket-wise addition and a quantile of the merged
// histogram equals the quantile of the concatenated sample streams (to
// bucket resolution). Averaging per-worker percentiles — the tempting
// shortcut — is simply wrong for any non-uniform load split, and the
// tests in histogram_test.go keep a counter-example pinned.
//
// Layout: values 0..15 get exact unit buckets; above that, each
// power-of-two range is split into 16 sub-buckets (4 mantissa bits), so
// the relative bucket width — and therefore the worst-case quantile
// error — is bounded by 1/16 ≈ 6.25%. The layout tiles the entire
// non-negative int64 range: every sample has a bucket, there is no
// overflow case (2^62 ns ≈ 146 years).
//
// The zero value is ready to use. Histogram is not goroutine-safe; the
// intended pattern is one Histogram per worker, merged after the fact.
type Histogram struct {
	counts [numBuckets]uint64
	count  int64 // total samples
	sum    int64 // exact sum, for Mean
	min    int64 // exact, valid when count > 0
	max    int64 // exact, valid when count > 0
}

const (
	// histMantissaBits sub-bucket resolution: 16 sub-buckets per
	// power-of-two range.
	histMantissaBits = 4
	histSubBuckets   = 1 << histMantissaBits

	// Values in [0, histSubBuckets) are their own bucket; above, the
	// bucket index is derived from the bit length. A non-negative int64
	// has a top set bit between histMantissaBits and 62, giving
	// (63 - histMantissaBits) log ranges that cover the whole range.
	numBuckets = histSubBuckets + (63-histMantissaBits)*histSubBuckets
)

// bucketIndex maps a non-negative sample to its bucket.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1 // in [histMantissaBits, 62]
	sub := int(v>>(uint(msb)-histMantissaBits)) & (histSubBuckets - 1)
	return histSubBuckets + (msb-histMantissaBits)*histSubBuckets + sub
}

// bucketBounds returns the [lo, hi) value range of bucket i; the final
// bucket's hi is math.MaxInt64 and that bucket is inclusive of it.
// Exposed to tests as the boundary invariant: buckets tile the
// non-negative int64 range exactly, in order, with no gaps or overlaps.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSubBuckets {
		return int64(i), int64(i) + 1
	}
	rangeIdx := (i - histSubBuckets) / histSubBuckets // power-of-two range
	sub := (i - histSubBuckets) % histSubBuckets
	msb := rangeIdx + histMantissaBits
	width := int64(1) << (uint(msb) - histMantissaBits)
	lo = (int64(1) << uint(msb)) + int64(sub)*width
	if i == numBuckets-1 {
		// lo + width is 2^63, one past int64; the last bucket closes at
		// MaxInt64 inclusive.
		return lo, math.MaxInt64
	}
	return lo, lo + width
}

// Record adds one sample. Negative samples are clamped to 0 (a
// monotonic-clock latency can mathematically never be negative, but a
// clamped zero is more useful than a panic if a caller subtracts
// timestamps in the wrong order).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the exact mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the exact minimum sample (0 with no samples).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum sample (0 with no samples).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Merge adds other's samples into h, bucket by bucket — exact because
// every Histogram shares the fixed global layout. After the merge a
// quantile of h is the quantile of both sample streams concatenated.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// MergeHistograms merges hs into one fresh Histogram (nil entries are
// skipped). This is the only sanctioned way to get global percentiles
// from per-worker measurements.
func MergeHistograms(hs ...*Histogram) *Histogram {
	out := &Histogram{}
	for _, h := range hs {
		out.Merge(h)
	}
	return out
}

// Quantile returns the q-quantile (q in [0, 1]) of h's samples: the
// representative value of the bucket holding the sample of rank
// ⌈q·count⌉ (rank 1 for q = 0). With no samples it returns 0. The exact
// tracked Min/Max tighten the two ends: q = 0 reports Min and q = 1
// reports Max exactly; interior quantiles carry the ≤ 1/16 relative
// bucket error.
func Quantile(h *Histogram, q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += int64(c)
		if cum >= rank {
			lo, hi := bucketBounds(i)
			// Clamp the representative into the observed range so a
			// quantile can never exceed the exact Max or undercut Min.
			rep := lo + (hi-lo)/2
			if rep > h.max {
				rep = h.max
			}
			if rep < h.min {
				rep = h.min
			}
			return rep
		}
	}
	return h.Max() // unreachable: cum reaches count
}

// Binary format SKLH (see docs/FORMATS.md): magic "SKLH", u32 version,
// u32 bucket count (must equal the fixed layout's), i64 count/sum/min/
// max, then the non-zero buckets as (u32 index, u64 count) pairs — the
// histogram is sparse in practice, so this is far smaller than the full
// bucket array.

const (
	histMagic   = "SKLH"
	histVersion = 1
)

// MarshalBinary encodes h in the SKLH format.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	nonzero := 0
	for _, c := range h.counts {
		if c != 0 {
			nonzero++
		}
	}
	buf := make([]byte, 0, 4+4+4+4*8+4+nonzero*12)
	buf = append(buf, histMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, histVersion)
	buf = binary.LittleEndian.AppendUint32(buf, numBuckets)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.count))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.sum))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.Min()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.Max()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nonzero))
	for i, c := range h.counts {
		if c != 0 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
			buf = binary.LittleEndian.AppendUint64(buf, c)
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes an SKLH blob, validating structure before
// allocating or trusting anything (the fuzz-hardened house invariant):
// magic, version, layout size, entry count against the blob length,
// strictly increasing in-range bucket indexes, and the header count
// equal to the bucket total.
func (h *Histogram) UnmarshalBinary(data []byte) error {
	const headerLen = 4 + 4 + 4 + 4*8 + 4
	if len(data) < headerLen {
		return fmt.Errorf("stats: SKLH blob too short (%d bytes)", len(data))
	}
	if string(data[:4]) != histMagic {
		return fmt.Errorf("stats: bad histogram magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != histVersion {
		return fmt.Errorf("stats: unsupported histogram version %d", v)
	}
	if nb := binary.LittleEndian.Uint32(data[8:]); nb != numBuckets {
		return fmt.Errorf("stats: histogram layout has %d buckets, want %d", nb, numBuckets)
	}
	count := int64(binary.LittleEndian.Uint64(data[12:]))
	sum := int64(binary.LittleEndian.Uint64(data[20:]))
	minV := int64(binary.LittleEndian.Uint64(data[28:]))
	maxV := int64(binary.LittleEndian.Uint64(data[36:]))
	entries := binary.LittleEndian.Uint32(data[44:])
	if int64(len(data)-headerLen) != int64(entries)*12 {
		return fmt.Errorf("stats: SKLH blob length %d does not match %d entries", len(data), entries)
	}
	if count < 0 {
		return fmt.Errorf("stats: negative histogram count %d", count)
	}
	if count > 0 && (minV < 0 || minV > maxV) {
		return fmt.Errorf("stats: histogram min/max %d/%d invalid", minV, maxV)
	}
	var nh Histogram
	var total uint64
	prev := -1
	for e := 0; e < int(entries); e++ {
		off := headerLen + e*12
		idx := int(binary.LittleEndian.Uint32(data[off:]))
		c := binary.LittleEndian.Uint64(data[off+4:])
		if idx <= prev || idx >= numBuckets {
			return fmt.Errorf("stats: histogram bucket index %d out of order or range", idx)
		}
		if c == 0 {
			return fmt.Errorf("stats: explicit zero-count bucket %d", idx)
		}
		if c > uint64(count)-total { // also rejects total overflow
			return fmt.Errorf("stats: bucket counts exceed header count %d", count)
		}
		prev = idx
		nh.counts[idx] = c
		total += c
	}
	if int64(total) != count {
		return fmt.Errorf("stats: bucket total %d != header count %d", total, count)
	}
	if count == 0 && (sum != 0 || minV != 0 || maxV != 0) {
		return fmt.Errorf("stats: empty histogram with non-zero summary fields")
	}
	if count > 0 {
		// min and max must land in the extreme non-zero buckets.
		first, last := -1, -1
		for i, c := range nh.counts {
			if c != 0 {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if bucketIndex(minV) != first || bucketIndex(maxV) != last {
			return fmt.Errorf("stats: histogram min/max disagree with bucket contents")
		}
	}
	nh.count = count
	nh.sum = sum
	nh.min = minV
	nh.max = maxV
	*h = nh
	return nil
}
