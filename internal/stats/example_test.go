package stats_test

import (
	"fmt"

	"skimsketch/internal/stats"
)

// The paper's evaluation metric treats over- and under-estimates
// symmetrically, unlike plain relative error.
func ExampleSymmetricError() {
	fmt.Printf("%.2f\n", stats.SymmetricError(200, 100)) // 2x over
	fmt.Printf("%.2f\n", stats.SymmetricError(50, 100))  // 2x under
	fmt.Printf("%.2f\n", stats.SymmetricError(-5, 100))  // nonsense estimate
	// Output:
	// 1.00
	// 1.00
	// 10.00
}
