package stats

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestBucketBoundaryInvariants pins the fixed layout: buckets tile the
// non-negative int64 range in order with no gaps or overlaps, every
// boundary value maps back to its own bucket, and the relative bucket
// width above the exact range is bounded by 1/16.
func TestBucketBoundaryInvariants(t *testing.T) {
	lo0, _ := bucketBounds(0)
	if lo0 != 0 {
		t.Fatalf("first bucket starts at %d, want 0", lo0)
	}
	prevHi := int64(0)
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ended at %d (gap or overlap)", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d has empty range [%d, %d)", i, lo, hi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if i < numBuckets-1 {
			if got := bucketIndex(hi - 1); got != i {
				t.Fatalf("bucketIndex(hi-1=%d) = %d, want %d", hi-1, got, i)
			}
		}
		if lo >= histSubBuckets {
			if width := hi - lo; width > lo/histSubBuckets+1 {
				t.Fatalf("bucket %d width %d exceeds lo/16 (lo=%d)", i, width, lo)
			}
		}
		prevHi = hi
	}
	if prevHi != math.MaxInt64 {
		t.Fatalf("layout ends at %d, want MaxInt64", prevHi)
	}
	// The extreme value lands in the last bucket, not out of range.
	if got := bucketIndex(math.MaxInt64); got != numBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want %d", got, numBuckets-1)
	}
}

// sampleStreams builds nWorkers synthetic per-worker latency streams
// with deliberately unequal sizes and scales — the shape that breaks
// percentile averaging.
func sampleStreams(seed int64, nWorkers int) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	streams := make([][]int64, nWorkers)
	for w := range streams {
		n := 50 + rng.Intn(2000)
		scale := float64(int64(1) << uint(10+rng.Intn(20)))
		for i := 0; i < n; i++ {
			v := int64(rng.ExpFloat64() * scale)
			streams[w] = append(streams[w], v)
		}
	}
	return streams
}

// TestMergeBitIdentity is the tentpole property: merging N per-worker
// histograms is bit-identical — same struct, same marshaled bytes — to
// one histogram fed the concatenated samples, for any interleaving.
func TestMergeBitIdentity(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		streams := sampleStreams(seed, 1+int(seed%7))
		perWorker := make([]*Histogram, len(streams))
		var all Histogram
		for w, s := range streams {
			perWorker[w] = &Histogram{}
			for _, v := range s {
				perWorker[w].Record(v)
				all.Record(v)
			}
		}
		merged := MergeHistograms(perWorker...)
		if !reflect.DeepEqual(*merged, all) {
			t.Fatalf("seed %d: merged histogram differs from concatenated-sample histogram", seed)
		}
		mb, err := merged.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		ab, err := all.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mb, ab) {
			t.Fatalf("seed %d: merged and concatenated marshal to different bytes", seed)
		}
		// Merge order must not matter either.
		for i, j := 0, len(perWorker)-1; i < j; i, j = i+1, j-1 {
			perWorker[i], perWorker[j] = perWorker[j], perWorker[i]
		}
		if rev := MergeHistograms(perWorker...); !reflect.DeepEqual(*rev, all) {
			t.Fatalf("seed %d: merge is order-sensitive", seed)
		}
	}
}

// TestQuantileMonotonicity: q1 ≤ q2 ⇒ Quantile(q1) ≤ Quantile(q2), and
// every quantile stays within [Min, Max].
func TestQuantileMonotonicity(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		var h Histogram
		for _, s := range sampleStreams(seed, 4) {
			for _, v := range s {
				h.Record(v)
			}
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.001 {
			v := Quantile(&h, q)
			if v < prev {
				t.Fatalf("seed %d: Quantile(%v) = %d < previous %d", seed, q, v, prev)
			}
			if v < h.Min() || v > h.Max() {
				t.Fatalf("seed %d: Quantile(%v) = %d outside [%d, %d]", seed, q, v, h.Min(), h.Max())
			}
			prev = v
		}
		if got := Quantile(&h, 0); got != h.Min() {
			t.Fatalf("Quantile(0) = %d, want Min %d", got, h.Min())
		}
		if got := Quantile(&h, 1); got != h.Max() {
			t.Fatalf("Quantile(1) = %d, want Max %d", got, h.Max())
		}
	}
}

// TestQuantileAccuracy: against the exact sorted-sample quantile, the
// histogram quantile errs by at most one bucket width (≤ 1/16 relative
// above the exact range).
func TestQuantileAccuracy(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		var h Histogram
		var samples []int64
		for _, s := range sampleStreams(seed, 3) {
			for _, v := range s {
				h.Record(v)
				samples = append(samples, v)
			}
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
			rank := int(math.Ceil(q * float64(len(samples))))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			got := Quantile(&h, q)
			lo, hi := bucketBounds(bucketIndex(exact))
			if got < lo || (got >= hi && exact < h.Max()) {
				t.Fatalf("seed %d q=%v: Quantile = %d, exact %d lives in bucket [%d, %d)", seed, q, got, exact, lo, hi)
			}
		}
	}
}

// TestAveragedPercentilesAreWrong is a deliberately constructed
// counter-example documenting why this package refuses the naive
// aggregation: with a fast worker handling most requests and a slow
// straggler handling a few, the mean of per-worker p99s lands nowhere
// near the true global p99 — here it overstates tail latency by more
// than 100x. Merge histograms; never average percentiles.
func TestAveragedPercentilesAreWrong(t *testing.T) {
	fast, slow := &Histogram{}, &Histogram{}
	for i := 0; i < 9900; i++ {
		fast.Record(1_000) // 1µs
	}
	for i := 0; i < 100; i++ {
		slow.Record(1_000_000_000) // 1s straggler
	}
	// True global p99 over the concatenated 10000 samples: rank 9900 is
	// still a fast request.
	merged := MergeHistograms(fast, slow)
	truth := Quantile(merged, 0.99)
	if truth >= 2_000 {
		t.Fatalf("true p99 = %dns, expected ~1µs (fast bucket)", truth)
	}
	// The naive aggregate: average the per-worker p99s.
	averaged := (Quantile(fast, 0.99) + Quantile(slow, 0.99)) / 2
	if averaged < 100*truth {
		t.Fatalf("counter-example lost its teeth: averaged p99 %dns vs true %dns", averaged, truth)
	}
}

// TestHistogramMarshalRoundTrip: marshal → unmarshal reproduces the
// histogram exactly, including summary fields, and re-marshals to the
// same bytes.
func TestHistogramMarshalRoundTrip(t *testing.T) {
	hs := []*Histogram{{}} // empty histogram round-trips too
	for seed := int64(1); seed <= 5; seed++ {
		var h Histogram
		for _, s := range sampleStreams(seed, 2) {
			for _, v := range s {
				h.Record(v)
			}
		}
		hs = append(hs, &h)
	}
	for i, h := range hs {
		blob, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Histogram
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(back, *h) {
			t.Fatalf("case %d: round trip changed the histogram", i)
		}
		blob2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("case %d: re-marshal differs", i)
		}
	}
}

// TestHistogramUnmarshalGarbage: corrupted blobs are rejected, never
// accepted into an inconsistent histogram.
func TestHistogramUnmarshalGarbage(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Record(i * 37)
	}
	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:10],
		"truncated": blob[:len(blob)-5],
		"magic":     append([]byte("XXXX"), blob[4:]...),
	}
	// Flip the header count so it disagrees with the bucket totals.
	bad := append([]byte(nil), blob...)
	bad[12] ^= 0xff
	cases["countMismatch"] = bad
	for name, data := range cases {
		var back Histogram
		if err := back.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupted blob accepted", name)
		}
	}
}

// TestRecordClampsNegative: a negative sample (a misordered timestamp
// subtraction) is clamped to 0, not panicked on.
func TestRecordClampsNegative(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

// TestQuantileEmpty: a quantile of nothing is 0, not a panic.
func TestQuantileEmpty(t *testing.T) {
	if got := Quantile(&Histogram{}, 0.5); got != 0 {
		t.Fatalf("Quantile(empty) = %d", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %d", got)
	}
}
