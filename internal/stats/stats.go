// Package stats provides the small numerical toolkit shared by the
// estimators and the experiment harness: exact medians (the boosting step
// of every sketch estimator), the paper's symmetric error metric, and
// streaming mean/variance accumulation for result aggregation.
package stats

import (
	"math"
	"sort"
)

// MedianInt64 returns the median of xs (the lower of the two middle
// elements for even lengths, matching the usual sketch-boosting
// convention of an odd number of independent trials). xs is not modified.
// It panics on an empty slice: a median of nothing is a programming error
// in this codebase, not a recoverable condition.
func MedianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	tmp := make([]int64, len(xs))
	copy(tmp, xs)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[(len(tmp)-1)/2]
}

// MedianFloat64 returns the median of xs with the same conventions as
// MedianInt64.
func MedianFloat64(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	return tmp[(len(tmp)-1)/2]
}

// MeanInt64 returns the arithmetic mean of xs as a float64.
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// ErrorSanityBound is the paper's substitute error when an estimate is
// non-positive or absurdly small ("we simply consider the error to be a
// large constant, say 10").
const ErrorSanityBound = 10.0

// SymmetricError is the paper's evaluation metric (Section 5.1): a
// relative error that penalizes under- and over-estimates equally,
// computed as max(Ĵ/J, J/Ĵ) − 1. A non-positive estimate (or actual)
// yields ErrorSanityBound. An exactly correct estimate yields 0.
func SymmetricError(estimate, actual float64) float64 {
	if actual <= 0 || estimate <= 0 {
		return ErrorSanityBound
	}
	r := estimate / actual
	if r < 1 {
		r = 1 / r
	}
	e := r - 1
	if e > ErrorSanityBound {
		return ErrorSanityBound
	}
	return e
}

// RelativeError is the conventional |Ĵ − J| / J metric, reported alongside
// the symmetric metric in EXPERIMENTS.md for context.
func RelativeError(estimate, actual float64) float64 {
	if actual == 0 {
		if estimate == 0 {
			return 0
		}
		return ErrorSanityBound
	}
	return math.Abs(estimate-actual) / math.Abs(actual)
}

// Welford accumulates a running mean and variance in one pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
