package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianInt64(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2}, // lower middle
		{[]int64{-5, 10, 0}, 0},
		{[]int64{7, 7, 7, 7, 7}, 7},
	}
	for _, c := range cases {
		if got := MedianInt64(c.in); got != c.want {
			t.Fatalf("MedianInt64(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []int64{3, 1, 2}
	MedianInt64(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("median must not reorder its input")
	}
	inf := []float64{3, 1, 2}
	MedianFloat64(inf)
	if inf[0] != 3 {
		t.Fatal("float median must not reorder its input")
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MedianInt64(nil)
}

// Property: the median is an element of the input lying at the correct
// sorted rank.
func TestMedianRankProperty(t *testing.T) {
	f := func(xs []int64) bool {
		if len(xs) == 0 {
			return true
		}
		m := MedianInt64(xs)
		tmp := make([]int64, len(xs))
		copy(tmp, xs)
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		return m == tmp[(len(tmp)-1)/2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianFloat64(t *testing.T) {
	if got := MedianFloat64([]float64{1.5, 0.5, 2.5}); got != 1.5 {
		t.Fatalf("got %v", got)
	}
}

func TestMeanInt64(t *testing.T) {
	if got := MeanInt64([]int64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("got %v", got)
	}
}

func TestSymmetricError(t *testing.T) {
	cases := []struct {
		est, actual, want float64
	}{
		{100, 100, 0},
		{110, 100, 0.1},
		{100, 110, 0.1}, // symmetric
		{200, 100, 1},
		{50, 100, 1},
		{0, 100, ErrorSanityBound},
		{-5, 100, ErrorSanityBound},
		{100, 0, ErrorSanityBound},
		{1e9, 1, ErrorSanityBound}, // capped
	}
	for _, c := range cases {
		got := SymmetricError(c.est, c.actual)
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("SymmetricError(%v,%v) = %v, want %v", c.est, c.actual, got, c.want)
		}
	}
}

// Property: symmetry — the metric treats x/y like y/x.
func TestSymmetricErrorSymmetryProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a)+1, float64(b)+1
		return math.Abs(SymmetricError(x, y)-SymmetricError(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the symmetric metric upper-bounds plain relative error for
// overestimates and penalizes underestimates more than relative error.
func TestSymmetricVsRelative(t *testing.T) {
	if SymmetricError(50, 100) <= RelativeError(50, 100) {
		t.Fatal("underestimates must be penalized at least as much")
	}
	if math.Abs(SymmetricError(150, 100)-RelativeError(150, 100)) > 1e-12 {
		t.Fatal("overestimates coincide with relative error")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("got %v", got)
	}
	if got := RelativeError(5, 0); got != ErrorSanityBound {
		t.Fatalf("got %v", got)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("Variance = %v", w.Variance())
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("StdDev = %v", w.StdDev())
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		xs = append(xs, x)
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	va := 0.0
	for _, x := range xs {
		va += (x - mean) * (x - mean)
	}
	va /= float64(len(xs) - 1)
	if math.Abs(w.Mean()-mean) > 1e-9 || math.Abs(w.Variance()-va) > 1e-6 {
		t.Fatalf("welford (%v,%v) vs direct (%v,%v)", w.Mean(), w.Variance(), mean, va)
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	w.Add(5)
	if w.Variance() != 0 {
		t.Fatal("variance with one sample must be 0")
	}
}
