package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// envelope builds a well-formed SKCP envelope around payload.
func envelope(payload []byte) []byte {
	var buf bytes.Buffer
	if err := Encode(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzCheckpointDecode hammers the SKCP envelope validator with
// corrupted, truncated, and padded files: it must never panic, never
// allocate from an unvalidated length, and only ever return a payload
// whose declared length and CRC both check out.
func FuzzCheckpointDecode(f *testing.F) {
	// Seeds: a valid envelope plus each corruption class Decode guards
	// against, so the fuzzer starts on every branch of the validator.
	valid := envelope([]byte(`{"schema":"skimsketch/checkpoint/1"}`))
	f.Add(valid)
	f.Add(envelope(nil))
	f.Add(valid[:headerSize-1])                 // too short for the header
	f.Add(append([]byte("SKXX"), valid[4:]...)) // bad magic
	badVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVer[4:8], 99)
	f.Add(badVer) // unsupported version
	torn := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(torn) // declared length longer than the file
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<62)
	f.Add(huge) // absurd declared length, must be rejected before any allocation
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xff
	f.Add(badCRC)           // payload bit-flip
	f.Add(append(valid, 0)) // trailing padding

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted: the envelope invariants must actually hold.
		if len(data) < headerSize || string(data[0:4]) != Magic {
			t.Fatalf("accepted %d-byte file with bad framing", len(data))
		}
		if declared := binary.LittleEndian.Uint64(data[8:16]); declared != uint64(len(payload)) {
			t.Fatalf("declared length %d, returned payload %d", declared, len(payload))
		}
		if want := binary.LittleEndian.Uint32(data[16:20]); want != crc32.ChecksumIEEE(payload) {
			t.Fatalf("accepted payload with CRC mismatch")
		}
		// And a round-trip through Encode must reproduce the file.
		if again := envelope(payload); !bytes.Equal(again, data) {
			t.Fatalf("Encode(Decode(x)) != x: %d vs %d bytes", len(again), len(data))
		}
	})
}
