package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func encodeBytes(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 10000)} {
		got, err := Decode(encodeBytes(t, payload))
		if err != nil {
			t.Fatalf("payload len %d: %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload len %d: round trip mismatch", len(payload))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := encodeBytes(t, []byte("the quick brown fox"))
	cases := map[string][]byte{
		"empty":             {},
		"too short":         good[:10],
		"truncated payload": good[:len(good)-3],
		"trailing garbage":  append(append([]byte{}, good...), 0xFF),
	}
	badMagic := append([]byte{}, good...)
	badMagic[0] = 'X'
	cases["bad magic"] = badMagic
	badVersion := append([]byte{}, good...)
	badVersion[4] = 99
	cases["bad version"] = badVersion
	flipped := append([]byte{}, good...)
	flipped[headerSize+2] ^= 0x01
	cases["payload bit flip"] = flipped
	badCRC := append([]byte{}, good...)
	badCRC[16] ^= 0x01
	cases["header CRC flip"] = badCRC

	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted corrupt data", name)
		}
	}
}

func writeString(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func readAll(dst *string) func(io.Reader) error {
	return func(r io.Reader) error {
		b, err := io.ReadAll(r)
		*dst = string(b)
		return err
	}
}

func TestManagerSaveLoad(t *testing.T) {
	m, err := NewManager(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(readAll(new(string))); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	if err := m.Save(writeString("state one")); err != nil {
		t.Fatal(err)
	}
	var got string
	path, err := m.Load(readAll(&got))
	if err != nil || got != "state one" {
		t.Fatalf("Load = %q, %v", got, err)
	}
	if path != m.CurrentPath() {
		t.Fatalf("restored %s, want current slot", path)
	}
}

func TestManagerRotationKeepsPreviousGood(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(writeString("one")); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(writeString("two")); err != nil {
		t.Fatal(err)
	}
	var got string
	if _, err := m.Load(readAll(&got)); err != nil || got != "two" {
		t.Fatalf("Load = %q, %v; want the newest checkpoint", got, err)
	}
	// The demoted checkpoint survives intact in the previous slot.
	data, err := os.ReadFile(m.PreviousPath())
	if err != nil {
		t.Fatal(err)
	}
	payload, err := Decode(data)
	if err != nil || string(payload) != "one" {
		t.Fatalf("previous slot holds %q, %v", payload, err)
	}
}

// TestManagerTornCurrentFallsBack is the torn-checkpoint contract: a
// truncated or corrupted current file is rejected and the previous good
// checkpoint is loaded instead.
func TestManagerTornCurrentFallsBack(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit flip":  func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"emptied":   func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			m, err := NewManager(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Save(writeString("good")); err != nil {
				t.Fatal(err)
			}
			if err := m.Save(writeString("torn")); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(m.CurrentPath())
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(m.CurrentPath(), corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got string
			path, err := m.Load(readAll(&got))
			if err != nil || got != "good" {
				t.Fatalf("Load = %q, %v; want fallback to previous checkpoint", got, err)
			}
			if path != m.PreviousPath() {
				t.Fatalf("restored %s, want previous slot", path)
			}
		})
	}
}

func TestManagerBothCorruptErrors(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(writeString("one")); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(writeString("two")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{m.CurrentPath(), m.PreviousPath()} {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err = m.Load(readAll(new(string)))
	if err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load = %v; want a corruption error, not success or ErrNoCheckpoint", err)
	}
}

// TestManagerCrashBetweenRenames: a crash after demoting current but
// before publishing the new file leaves only the previous slot, which
// Load must pick up.
func TestManagerCrashBetweenRenames(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(writeString("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(m.CurrentPath(), m.PreviousPath()); err != nil {
		t.Fatal(err)
	}
	var got string
	path, err := m.Load(readAll(&got))
	if err != nil || got != "survivor" {
		t.Fatalf("Load = %q, %v", got, err)
	}
	if path != m.PreviousPath() {
		t.Fatalf("restored %s, want previous slot", path)
	}
}

func TestManagerSaveWriteErrorLeavesStateIntact(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(writeString("good")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := m.Save(func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Save = %v, want the producer error", err)
	}
	var got string
	if _, err := m.Load(readAll(&got)); err != nil || got != "good" {
		t.Fatalf("Load after failed Save = %q, %v", got, err)
	}
	if _, err := os.Stat(filepath.Join(m.Dir(), tmpName)); !os.IsNotExist(err) {
		t.Fatal("failed Save left a temp file behind")
	}
}

func TestManagerRestoreErrorIsReported(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(writeString("state")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("restore boom")
	path, err := m.Load(func(io.Reader) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Load = %v, want the restore error", err)
	}
	if path != m.CurrentPath() {
		t.Fatalf("failing restore attributed to %q", path)
	}
	if !strings.Contains(err.Error(), CurrentName) {
		t.Fatalf("error %q does not name the checkpoint file", err)
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(""); err == nil {
		t.Fatal("expected error for empty directory")
	}
}

func TestRunPeriodicSaves(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var saves atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx, time.Millisecond, func(w io.Writer) error {
			saves.Add(1)
			_, err := io.WriteString(w, "tick")
			return err
		}, nil)
	}()
	deadline := time.After(5 * time.Second)
	for saves.Load() < 3 {
		select {
		case <-deadline:
			t.Fatal("periodic saver did not tick")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	var got string
	if _, err := m.Load(readAll(&got)); err != nil || got != "tick" {
		t.Fatalf("Load = %q, %v", got, err)
	}
}

func TestRunReportsSaveErrors(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	errs := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx, time.Millisecond, func(io.Writer) error { return boom }, func(err error) {
			select {
			case errs <- err:
			default:
			}
		})
	}()
	select {
	case err := <-errs:
		if !errors.Is(err, boom) {
			t.Fatalf("reported %v, want boom", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run never reported the save error")
	}
	cancel()
	<-done
}

func TestRunZeroIntervalWaitsForCancel(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx, 0, func(io.Writer) error { t.Error("unexpected save"); return nil }, nil)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run with zero interval did not return on cancel")
	}
}
