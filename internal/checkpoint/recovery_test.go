package checkpoint_test

import (
	"io"
	"os"
	"testing"

	"skimsketch/internal/checkpoint"
	"skimsketch/internal/core"
	"skimsketch/internal/engine"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// Crash-recovery property: because every synopsis is a linear projection
// of the frequency vector, checkpoint → restore → replay-the-tail must
// yield answers bit-identical to an uninterrupted run. These tests pin
// that end to end through the real Manager (real files, real rotation),
// over plain, predicated, and windowed synopses, across several seeds.

// buildEngine assembles an engine with one plain COUNT query, one
// predicated query, and one windowed query over two streams.
func buildEngine(t *testing.T, seed uint64) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 256, Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("F", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareStream("G", 1024); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	queries := []engine.QuerySpec{
		{Name: "plain", Agg: engine.Count,
			Left: engine.Side{Stream: "F"}, Right: engine.Side{Stream: "G"}},
		{Name: "pred", Agg: engine.Count,
			Left: engine.Side{Stream: "F", Predicate: "low"}, Right: engine.Side{Stream: "G"}},
		{Name: "windowed", Agg: engine.Count,
			Left:  engine.Side{Stream: "F"},
			Right: engine.Side{Stream: "G", WindowLen: 400, WindowBuckets: 4}},
	}
	for _, q := range queries {
		if err := e.RegisterQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func makeStreams(t *testing.T, seed uint64, n int) (fs, gs []stream.Update) {
	t.Helper()
	zf, err := workload.NewZipf(1024, 1.1, int64(seed*2+1))
	if err != nil {
		t.Fatal(err)
	}
	zg, err := workload.NewZipf(1024, 1.2, int64(seed*2+2))
	if err != nil {
		t.Fatal(err)
	}
	fs = workload.WithDeletes(workload.MakeStream(zf, n), 0.1, int64(seed+17))
	gs = workload.MakeStream(zg, n)
	return fs, gs
}

func ingest(t *testing.T, e *engine.Engine, fs, gs []stream.Update) {
	t.Helper()
	if err := e.IngestBatch("F", fs); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch("G", gs); err != nil {
		t.Fatal(err)
	}
}

func answers(t *testing.T, e *engine.Engine) map[string]engine.Answer {
	t.Helper()
	out := make(map[string]engine.Answer, 3)
	for _, q := range []string{"plain", "pred", "windowed"} {
		a, err := e.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		out[q] = a
	}
	return out
}

// TestRecoveryBitIdentical: for several seeds, an engine checkpointed
// mid-stream, restored into a fresh engine, and fed the remaining tail
// answers every query bit-identically to the engine that never stopped.
func TestRecoveryBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		m, err := checkpoint.NewManager(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		uninterrupted := buildEngine(t, seed)
		fs, gs := makeStreams(t, seed, 4000)
		cut := 1000 + int(seed)*500 // vary the crash point with the seed

		// Head, then checkpoint (through the real file manager).
		ingest(t, uninterrupted, fs[:cut], gs[:cut])
		if err := m.Save(uninterrupted.Snapshot); err != nil {
			t.Fatal(err)
		}

		// "Crash": a fresh engine restores the checkpoint. Predicates are
		// functions and must be re-registered first, which buildEngine
		// would do — but the restored engine must be empty, so rebuild by
		// hand.
		recovered, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 256, Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		if err := recovered.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
			t.Fatal(err)
		}
		path, err := m.Load(func(r io.Reader) error { return recovered.Restore(r) })
		if err != nil {
			t.Fatal(err)
		}
		if path != m.CurrentPath() {
			t.Fatalf("seed %d: restored %s", seed, path)
		}

		// Replay the tail into both engines.
		ingest(t, uninterrupted, fs[cut:], gs[cut:])
		ingest(t, recovered, fs[cut:], gs[cut:])

		want, got := answers(t, uninterrupted), answers(t, recovered)
		for q, w := range want {
			if g := got[q]; g != w {
				t.Errorf("seed %d, query %s: recovered %+v, uninterrupted %+v", seed, q, g, w)
			}
		}
	}
}

// TestRecoveryThroughConcurrentPipeline: the same property holds when
// both the head (before the checkpoint) and the tail (after restore) go
// through the concurrent batched ingestion pipeline — the mode sketchd
// runs in production.
func TestRecoveryThroughConcurrentPipeline(t *testing.T) {
	const seed = 7
	m, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted := buildEngine(t, seed)
	fs, gs := makeStreams(t, seed, 4000)
	const cut = 2000

	if err := uninterrupted.StartIngest(engine.IngestConfig{Workers: 3, BatchSize: 64}); err != nil {
		t.Fatal(err)
	}
	ingest(t, uninterrupted, fs[:cut], gs[:cut])
	// Snapshot quiesces the pipeline itself — no explicit Flush needed.
	if err := m.Save(uninterrupted.Snapshot); err != nil {
		t.Fatal(err)
	}

	recovered, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 256, Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load(func(r io.Reader) error { return recovered.Restore(r) }); err != nil {
		t.Fatal(err)
	}
	if err := recovered.StartIngest(engine.IngestConfig{Workers: 2, BatchSize: 32}); err != nil {
		t.Fatal(err)
	}

	ingest(t, uninterrupted, fs[cut:], gs[cut:])
	ingest(t, recovered, fs[cut:], gs[cut:])
	want, got := answers(t, uninterrupted), answers(t, recovered)
	uninterrupted.StopIngest()
	recovered.StopIngest()
	for q, w := range want {
		if g := got[q]; g != w {
			t.Errorf("query %s: recovered %+v, uninterrupted %+v", q, g, w)
		}
	}
}

// TestTornCheckpointFallsBackToPreviousState: corrupting the newest
// checkpoint mid-file must not lose the engine — Load rejects it and
// restores the previous good checkpoint, whose answers match the state
// at the earlier save.
func TestTornCheckpointFallsBackToPreviousState(t *testing.T) {
	const seed = 3
	m, err := checkpoint.NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := buildEngine(t, seed)
	fs, gs := makeStreams(t, seed, 3000)

	ingest(t, e, fs[:1500], gs[:1500])
	if err := m.Save(e.Snapshot); err != nil {
		t.Fatal(err)
	}
	wantOld := answers(t, e) // the state the previous checkpoint captured

	ingest(t, e, fs[1500:], gs[1500:])
	if err := m.Save(e.Snapshot); err != nil {
		t.Fatal(err)
	}

	// Tear the newest checkpoint: truncate it mid-payload.
	data, err := os.ReadFile(m.CurrentPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(m.CurrentPath(), data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, err := engine.New(engine.Options{SketchConfig: core.Config{Tables: 5, Buckets: 256, Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.RegisterPredicate("low", func(v uint64, _ int64) bool { return v < 512 }); err != nil {
		t.Fatal(err)
	}
	path, err := m.Load(func(r io.Reader) error { return recovered.Restore(r) })
	if err != nil {
		t.Fatal(err)
	}
	if path != m.PreviousPath() {
		t.Fatalf("restored %s, want the previous checkpoint", path)
	}
	got := answers(t, recovered)
	for q, w := range wantOld {
		if g := got[q]; g != w {
			t.Errorf("query %s: fallback answered %+v, previous state was %+v", q, g, w)
		}
	}
}
