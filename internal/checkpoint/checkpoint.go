// Package checkpoint persists opaque engine state to disk crash-safely.
//
// A checkpoint file is a small binary envelope (magic "SKCP", version,
// payload length, CRC-32) around an arbitrary payload — in practice the
// engine's JSON snapshot, whose sketch blobs are the same binary formats
// used everywhere else (docs/FORMATS.md). Because every sketch in this
// repository is a linear projection of the frequency vector, a restored
// checkpoint plus a replayed stream tail is bit-identical to
// uninterrupted ingestion; the property tests in this package pin that
// down end to end.
//
// Durability discipline (the classic temp+fsync+rename dance):
//
//  1. the envelope is written to a temporary file in the checkpoint
//     directory and fsynced;
//  2. the previous current checkpoint (if any) is renamed to the
//     "previous" slot;
//  3. the temporary file is renamed over the "current" slot;
//  4. the directory is fsynced so both renames are durable.
//
// A crash at any point leaves at least one intact checkpoint on disk:
// Load verifies the envelope (magic, version, declared length, CRC)
// before handing the payload to the caller and falls back to the
// previous slot when the current one is missing, truncated, or corrupt.
package checkpoint

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Envelope constants. All integers little-endian, matching every other
// binary format in this repository.
const (
	// Magic identifies a checkpoint envelope.
	Magic = "SKCP"
	// Version is the current envelope version.
	Version = 1
	// headerSize is magic(4) + version(4) + payload length(8) + CRC-32(4).
	headerSize = 4 + 4 + 8 + 4
)

// File names inside a checkpoint directory.
const (
	// CurrentName is the most recent complete checkpoint.
	CurrentName = "current.ckpt"
	// PreviousName is the checkpoint demoted by the last Save; Load falls
	// back to it when the current file is torn or corrupt.
	PreviousName = "previous.ckpt"
	// tmpName is the in-progress write; never read by Load.
	tmpName = "current.ckpt.tmp"
)

// ErrNoCheckpoint is returned by Load when the directory holds no
// checkpoint at all — a fresh start, not a failure.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// Encode writes payload to w wrapped in the SKCP envelope.
func Encode(w io.Writer, payload []byte) error {
	var hdr [headerSize]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: write payload: %w", err)
	}
	return nil
}

// Decode validates the SKCP envelope in data and returns the payload.
// The declared length is checked against the actual size before anything
// is trusted, so truncated (torn) and padded files are both rejected, as
// is any payload whose CRC does not match.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("checkpoint: file too short for header: %d bytes", len(data))
	}
	if string(data[0:4]) != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	declared := binary.LittleEndian.Uint64(data[8:16])
	if got := uint64(len(data) - headerSize); declared != got {
		return nil, fmt.Errorf("checkpoint: declared payload length %d, file holds %d", declared, got)
	}
	payload := data[headerSize:]
	if want, got := binary.LittleEndian.Uint32(data[16:20]), crc32.ChecksumIEEE(payload); want != got {
		return nil, fmt.Errorf("checkpoint: CRC mismatch: header %08x, payload %08x", want, got)
	}
	return payload, nil
}

// Manager owns one checkpoint directory: Save rotates crash-safe
// checkpoints into it, Load restores the newest intact one. Save and
// Load are serialized internally, so a periodic saver and a final
// shutdown save can share one Manager.
type Manager struct {
	mu  sync.Mutex
	dir string
}

// NewManager creates the checkpoint directory (if needed) and returns a
// Manager over it.
func NewManager(dir string) (*Manager, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.dir }

// CurrentPath returns the path of the current checkpoint slot.
func (m *Manager) CurrentPath() string { return filepath.Join(m.dir, CurrentName) }

// PreviousPath returns the path of the previous checkpoint slot.
func (m *Manager) PreviousPath() string { return filepath.Join(m.dir, PreviousName) }

// Save captures one checkpoint: write produces the payload (for the
// engine, Engine.Snapshot or the server's checkpoint envelope), which is
// buffered, wrapped in the SKCP envelope, written to a temporary file,
// fsynced, and rotated into place. The prior current checkpoint survives
// in the previous slot until the next Save.
func (m *Manager) Save(write func(io.Writer) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()

	var payload bytes.Buffer
	if err := write(&payload); err != nil {
		return fmt.Errorf("checkpoint: produce payload: %w", err)
	}

	tmp := filepath.Join(m.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := Encode(f, payload.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}

	cur, prev := m.CurrentPath(), m.PreviousPath()
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, prev); err != nil {
			return fmt.Errorf("checkpoint: rotate previous: %w", err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("checkpoint: publish: %w", err)
	}
	syncDir(m.dir) // make both renames durable; best-effort on exotic filesystems
	return nil
}

// Load restores the newest intact checkpoint: the current slot first,
// then — if that file is missing, truncated, or fails CRC validation —
// the previous slot. It returns the path actually restored. If neither
// slot exists it returns ErrNoCheckpoint. The restore callback is only
// invoked with a payload whose envelope validated, and only once: if
// restore itself fails, its error is returned without trying the other
// slot (the callback may have partially applied the state).
func (m *Manager) Load(restore func(io.Reader) error) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var firstErr error
	exists := false
	for _, path := range []string{m.CurrentPath(), m.PreviousPath()} {
		data, err := os.ReadFile(path)
		if err != nil {
			if !os.IsNotExist(err) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		exists = true
		payload, err := Decode(data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", path, err)
			}
			continue
		}
		if err := restore(bytes.NewReader(payload)); err != nil {
			return path, fmt.Errorf("checkpoint: restore %s: %w", path, err)
		}
		return path, nil
	}
	if !exists {
		return "", ErrNoCheckpoint
	}
	return "", fmt.Errorf("checkpoint: no intact checkpoint: %w", firstErr)
}

// Run saves a checkpoint every interval until ctx is canceled; the last
// tick is not awaited, so callers that want a final checkpoint on
// shutdown should Save once more after Run returns. Save errors are
// reported through report (which may be nil) and do not stop the loop —
// a transiently full disk should not kill periodic checkpointing.
func (m *Manager) Run(ctx context.Context, interval time.Duration, write func(io.Writer) error, report func(error)) {
	if interval <= 0 {
		<-ctx.Done()
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := m.Save(write); err != nil && report != nil {
				report(err)
			}
		}
	}
}

// syncDir fsyncs a directory so renames inside it are durable. Errors
// are ignored: some filesystems (and all of Windows) reject directory
// fsync, and the fallback behavior — the rename becoming durable a
// little later — is exactly the pre-fsync status quo.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
