package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockScope enforces PR 2's non-blocking-Answer invariant: the
// O(domain·tables) estimation and skim entry points must never be
// called while an engine mutex (or the quiesce lock) is held. Holding
// a lock across a skim scan re-couples query latency to domain size
// for every concurrent ingester — exactly the regression PR 2 removed
// by snapshotting under the lock and estimating outside it.
//
// The analysis is flow-sensitive within a function body: it tracks
// sync.Mutex/RWMutex Lock/RLock–Unlock pairs (including deferred
// unlocks, which hold to the end of the function), calls to helpers
// that acquire locks and return a release closure (the engine's
// readQuiesce pattern), and intra-package calls that transitively
// reach an expensive entry point. Branches are analyzed on a copy of
// the lock state, so a conditional early release does not poison the
// main path. Function literals are analyzed as separate bodies; calls
// inside `go` statements are not attributed to the spawning region.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "flags O(domain) estimation/skim calls made while a mutex or quiesce lock is held",
	Run:  runLockScope,
}

// expensiveEntryPoints names the O(domain)-or-worse estimation surface
// by defining-package path tail and name prefix. Methods and functions
// both match.
var expensiveEntryPoints = []struct{ pkgTail, namePrefix string }{
	{"core", "EstimateJoin"},      // EstimateJoin, EstimateJoinSkimmed
	{"core", "EstSkimJoinSize"},   // historical name, kept for fixtures/forks
	{"core", "SkimDense"},         // SkimDense, SkimDenseSigned, *Parallel
	{"core", "EstimateSelfJoin"},  // full-domain self-join decomposition
	{"core", "DenseValues"},       // O(domain) scan
	{"core", "DenseEnergyFraction"},
	{"dyadic", "Skim"},            // Skim, SkimParallel
	{"dyadic", "EstimateJoin"},    // EstimateJoin, EstimateJoinParallel
	{"dyadic", "CandidateValues"},
}

func isExpensiveEntry(f *types.Func) bool {
	for _, e := range expensiveEntryPoints {
		if strings.HasPrefix(f.Name(), e.namePrefix) && pkgPathTail(f, e.pkgTail) {
			return true
		}
	}
	return false
}

// isMutexMethod reports whether f is sync.(*Mutex) or sync.(*RWMutex)
// Lock/RLock (acquire=true) or Unlock/RUnlock (acquire=false). Embedded
// mutexes resolve to the same method objects, so they are covered.
func isMutexMethod(f *types.Func) (name string, isLock, isUnlock bool) {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch f.Name() {
	case "Lock", "RLock":
		return f.Name(), true, false
	case "Unlock", "RUnlock":
		return f.Name(), false, true
	}
	return "", false, false
}

func runLockScope(pass *Pass) {
	// Pass 1: classify this package's functions — which transitively
	// reach an expensive entry point, and which acquire locks they do
	// not release (the readQuiesce pattern).
	type funcFacts struct {
		decl      *ast.FuncDecl
		callees   map[*types.Func]bool
		expensive bool // calls an expensive entry point directly
		netLocks  int  // direct Lock/RLock minus Unlock/RUnlock, FuncLits excluded
	}
	facts := make(map[*types.Func]*funcFacts)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &funcFacts{decl: fd, callees: make(map[*types.Func]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // separate body; see pass 2
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				if callee == nil {
					return true
				}
				if _, isLock, isUnlock := isMutexMethod(callee); isLock {
					ff.netLocks++
				} else if isUnlock {
					ff.netLocks--
				}
				if isExpensiveEntry(callee) {
					ff.expensive = true
				}
				if callee.Pkg() == pass.Pkg {
					ff.callees[callee] = true
				}
				return true
			})
			facts[obj] = ff
		}
	}

	// Transitive closure of "reaches an expensive entry point" over the
	// intra-package call graph.
	reaches := make(map[*types.Func]bool)
	var visit func(f *types.Func, stack map[*types.Func]bool) bool
	visit = func(f *types.Func, stack map[*types.Func]bool) bool {
		if r, ok := reaches[f]; ok {
			return r
		}
		if stack[f] {
			return false // break recursion cycles
		}
		ff := facts[f]
		if ff == nil {
			return false
		}
		if ff.expensive {
			reaches[f] = true
			return true
		}
		stack[f] = true
		defer delete(stack, f)
		for callee := range ff.callees {
			if visit(callee, stack) {
				reaches[f] = true
				return true
			}
		}
		reaches[f] = false
		return false
	}
	for f := range facts {
		visit(f, make(map[*types.Func]bool))
	}

	acquires := func(f *types.Func) bool {
		ff := facts[f]
		return ff != nil && ff.netLocks > 0
	}

	// Pass 2: flow-sensitive lock-region walk over every body,
	// including function literals (each as its own region).
	w := &lockWalker{pass: pass, reaches: reaches, acquires: acquires}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.walkBody(fd.Body)
			}
		}
	}
}

// lockState is the set of currently-held locks at a program point.
type lockState struct {
	// byRecv maps the receiver expression text of a Lock call
	// ("e.mu") to a hold description, so the matching Unlock can
	// release it.
	byRecv map[string]string
	// byVar maps release-closure variables (release := e.readQuiesce())
	// to a hold description; calling the variable releases it.
	byVar map[types.Object]string
	// untilEnd holds descriptions of locks that cannot be released
	// before the function returns (deferred unlocks, discarded release
	// closures).
	untilEnd []string
}

func newLockState() *lockState {
	return &lockState{byRecv: map[string]string{}, byVar: map[types.Object]string{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.byRecv {
		c.byRecv[k] = v
	}
	for k, v := range s.byVar {
		c.byVar[k] = v
	}
	c.untilEnd = append([]string(nil), s.untilEnd...)
	return c
}

func (s *lockState) held() bool {
	return len(s.byRecv) > 0 || len(s.byVar) > 0 || len(s.untilEnd) > 0
}

// describe names one held lock for diagnostics.
func (s *lockState) describe() string {
	for _, d := range s.untilEnd {
		return d
	}
	for _, d := range s.byRecv {
		return d
	}
	for _, d := range s.byVar {
		return d
	}
	return "a lock"
}

type lockWalker struct {
	pass     *Pass
	reaches  map[*types.Func]bool
	acquires func(*types.Func) bool
}

// walkBody analyzes one function or function-literal body starting
// with no locks held.
func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	w.walkStmts(body.List, newLockState())
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, state *lockState) {
	for _, stmt := range stmts {
		w.walkStmt(stmt, state)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, state *lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.applyCallEffect(call, state, false) {
			return
		}
		w.scan(s, state)
	case *ast.DeferStmt:
		if w.applyCallEffect(s.Call, state, true) {
			return
		}
		// Other deferred calls run at return; locks deferred-unlocked or
		// held-until-end are still held there, so scan conservatively.
		w.scan(s, state)
	case *ast.AssignStmt:
		// release := e.readQuiesce()
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if callee := calleeFunc(w.pass.Info, call); callee != nil && w.acquires(callee) {
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						if obj := w.pass.Info.Defs[id]; obj != nil {
							state.byVar[obj] = "the lock acquired by " + callee.Name()
							return
						}
						if obj := w.pass.Info.Uses[id]; obj != nil {
							state.byVar[obj] = "the lock acquired by " + callee.Name()
							return
						}
					}
					state.untilEnd = append(state.untilEnd, "the lock acquired by "+callee.Name())
					return
				}
			}
		}
		w.scan(s, state)
	case *ast.BlockStmt:
		w.walkStmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		w.scanExpr(s.Cond, state)
		w.walkStmt(s.Body, state.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, state.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, state)
		}
		inner := state.clone()
		w.walkStmt(s.Body, inner)
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, state)
		w.walkStmt(s.Body, state.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, state)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				inner := state.clone()
				for _, e := range cc.List {
					w.scanExpr(e, inner)
				}
				w.walkStmts(cc.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, state.clone())
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				inner := state.clone()
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkStmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, state)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawning
		// goroutine's critical section; its body is analyzed as a
		// separate region by the FuncLit walk in scan.
		w.scanFuncLits(s.Call)
	default:
		w.scan(stmt, state)
	}
}

// applyCallEffect updates the lock state for lock-shaped calls and
// reports whether the call was consumed as a pure lock operation.
// deferred marks calls appearing in a defer statement.
func (w *lockWalker) applyCallEffect(call *ast.CallExpr, state *lockState, deferred bool) bool {
	// e.readQuiesce()() — immediate acquire+release (possibly deferred:
	// then the lock is held from here to the end of the function).
	if inner, ok := ast.Unparen(call.Fun).(*ast.CallExpr); ok {
		if callee := calleeFunc(w.pass.Info, inner); callee != nil && w.acquires(callee) {
			if deferred {
				state.untilEnd = append(state.untilEnd, "the lock acquired by "+callee.Name())
			}
			return true
		}
	}
	callee := calleeFunc(w.pass.Info, call)
	if callee == nil {
		// release() of a stored release closure.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				if _, ok := state.byVar[obj]; ok {
					if deferred {
						// defer release(): held until return.
						state.untilEnd = append(state.untilEnd, state.byVar[obj])
					}
					delete(state.byVar, obj)
					return true
				}
			}
		}
		return false
	}
	if name, isLock, isUnlock := isMutexMethod(callee); isLock || isUnlock {
		recv := ""
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv = types.ExprString(sel.X)
		}
		if isLock {
			state.byRecv[recv] = recv + "." + name
		} else if deferred {
			// defer mu.Unlock(): the lock stays held to the end.
			if d, ok := state.byRecv[recv]; ok {
				state.untilEnd = append(state.untilEnd, d)
			}
			delete(state.byRecv, recv)
		} else {
			delete(state.byRecv, recv)
		}
		return true
	}
	if w.acquires(callee) && !deferred {
		// Discarded release closure: held until the end.
		state.untilEnd = append(state.untilEnd, "the lock acquired by "+callee.Name())
		return true
	}
	return false
}

// scan reports expensive calls inside stmt's subtree, given the
// current lock state, and analyzes any function literals as separate
// regions.
func (w *lockWalker) scan(stmt ast.Stmt, state *lockState) {
	w.scanNode(stmt, state)
}

func (w *lockWalker) scanExpr(e ast.Expr, state *lockState) {
	if e != nil {
		w.scanNode(e, state)
	}
}

func (w *lockWalker) scanNode(n ast.Node, state *lockState) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkBody(fl.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !state.held() {
			return true
		}
		callee := calleeFunc(w.pass.Info, call)
		if callee == nil {
			return true
		}
		if isExpensiveEntry(callee) {
			w.pass.Reportf(call.Pos(), "call to O(domain) entry point %s while %s is held; snapshot under the lock and estimate outside it", callee.Name(), state.describe())
		} else if w.reaches[callee] {
			w.pass.Reportf(call.Pos(), "call to %s, which reaches an O(domain) estimation entry point, while %s is held", callee.Name(), state.describe())
		}
		return true
	})
}

// scanFuncLits analyzes function literals under n as fresh lock
// regions without scanning n itself against the current state.
func (w *lockWalker) scanFuncLits(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkBody(fl.Body)
			return false
		}
		return true
	})
}
