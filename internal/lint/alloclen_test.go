package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestAllocLen(t *testing.T) {
	analysistest.Run(t, lint.AllocLen, "testdata/src/alloclen")
}

// TestAllocLenCleanPatterns covers the validate-before-alloc forms —
// named-constant bounds, remaining-input bounds, constant and
// len()-derived sizes. No want comments: any diagnostic fails the run.
func TestAllocLenCleanPatterns(t *testing.T) {
	analysistest.Run(t, lint.AllocLen, "testdata/src/alloclen_clean")
}
