package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// in one place and by plain load or store in another. Mixing the two
// is a data race the race detector only catches if a test happens to
// interleave both access paths: the plain access tears or is reordered
// against the atomic one. The engine/ingest stats counters are the
// motivating surface — a counter read by /stats while shard workers
// atomically increment it must be atomic.Int64 (or atomically accessed)
// everywhere, including "harmless" resets.
//
// Fields of the atomic.IntN/UintN/Bool/Pointer wrapper types are safe
// by construction and never flagged. The fix for a finding is usually
// to migrate the field to one of those types.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags struct fields accessed both through sync/atomic and by plain load/store",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	type fieldUse struct {
		atomic     []token.Pos
		plain      []token.Pos
		atomicName string // the sync/atomic function used, for the message
	}
	uses := make(map[*types.Var]*fieldUse)
	use := func(field *types.Var) *fieldUse {
		fu := uses[field]
		if fu == nil {
			fu = &fieldUse{}
			uses[field] = fu
		}
		return fu
	}

	// fieldOf resolves a selector expression to the struct field it
	// names, if any.
	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !v.IsField() {
			return nil
		}
		return v
	}

	// atomicArg marks &x.f arguments of sync/atomic calls; it returns
	// the set of selector expressions consumed atomically so the plain
	// walk can skip them.
	consumed := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
				return true
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods of atomic.Int64 etc. are safe types
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				field := fieldOf(un.X)
				if field == nil {
					continue
				}
				fu := use(field)
				fu.atomic = append(fu.atomic, un.Pos())
				fu.atomicName = f.Name()
				consumed[ast.Unparen(un.X)] = true
			}
			return true
		})
	}
	if len(uses) == 0 {
		return // no address-taken atomic accesses in this package
	}

	// Every other selection of those same fields is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if consumed[ast.Expr(sel)] {
				return true
			}
			field := fieldOf(sel)
			if field == nil {
				return true
			}
			if fu, ok := uses[field]; ok && len(fu.atomic) > 0 {
				fu.plain = append(fu.plain, sel.Pos())
			}
			return true
		})
	}

	for field, fu := range uses {
		if len(fu.atomic) == 0 || len(fu.plain) == 0 {
			continue
		}
		for _, pos := range fu.plain {
			pass.Reportf(pos, "field %s is accessed with atomic.%s elsewhere but plainly here; use sync/atomic consistently or migrate the field to an atomic.%s-style type", field.Name(), fu.atomicName, atomicTypeFor(field))
		}
	}
}

// atomicTypeFor suggests the atomic wrapper type matching the field.
func atomicTypeFor(field *types.Var) string {
	if b, ok := field.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64, types.Int:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uint, types.Uintptr:
			return "Uint64"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}
