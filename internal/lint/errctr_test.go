package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestErrCtr(t *testing.T) {
	analysistest.Run(t, lint.ErrCtr, "testdata/src/errctr")
}

// TestErrCtrCleanPatterns covers the sanctioned error contracts —
// errors.Is, Retry-After-paired 429s, %w wrapping. No want comments:
// any diagnostic fails the run.
func TestErrCtrCleanPatterns(t *testing.T) {
	analysistest.Run(t, lint.ErrCtr, "testdata/src/errctr_clean")
}
