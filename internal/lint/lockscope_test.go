package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, lint.LockScope, "testdata/src/lockscope")
}
