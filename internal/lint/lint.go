// Package lint is a small, dependency-free analysis framework plus the
// repo's custom analyzers ("sketchlint"). The engine invariants that
// PRs 1–2 established — non-blocking answers, reproducibly seeded hash
// families, race-free counters, overflow-safe accumulation — live in
// tests, which only catch regressions the tests happen to exercise.
// The analyzers here enforce them mechanically over every package.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature
// (Analyzer, Pass, Diagnostic, testdata fixtures with // want
// comments) but is built entirely on the standard library's go/ast,
// go/types and go/importer, because this module deliberately has no
// third-party dependencies. See docs/LINTING.md for the catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments ("//sketchlint:ignore <name> -- <reason>").
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the package and returns the surviving
// diagnostics: suppressed findings (see below) are dropped, and the
// result is sorted by position for stable output.
//
// A finding is suppressed by a comment of the form
//
//	//sketchlint:ignore <name>[,<name>...] -- <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory: a bare or reasonless directive suppresses
// nothing and is itself reported as a finding (analyzer "directive"),
// so a silent ignore cannot slip through review.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = filterSuppressed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ignorePrefix detects any attempt at a suppression directive, valid
// or not, so malformed ones can be reported rather than silently doing
// nothing (or silently suppressing without a reason).
var ignorePrefix = regexp.MustCompile(`^//\s*sketchlint:ignore\b(.*)$`)

// ignoreDirective matches the required directive form:
// "//sketchlint:ignore name1,name2 -- reason". The reason must be
// non-empty after the "--" separator.
var ignoreDirective = regexp.MustCompile(`^//sketchlint:ignore\s+([A-Za-z0-9_,]+)\s+--\s+(\S.*)$`)

func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file → line → set of suppressed analyzer names ("" means none).
	suppressed := make(map[string]map[int]map[string]bool)
	mark := func(pos token.Position, names []string) {
		lines := suppressed[pos.Filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			suppressed[pos.Filename] = lines
		}
		set := lines[pos.Line]
		if set == nil {
			set = make(map[string]bool)
			lines[pos.Line] = set
		}
		for _, n := range names {
			set[n] = true
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !ignorePrefix.MatchString(c.Text) {
					continue
				}
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					// A directive that names no analyzer or gives no
					// "-- reason" suppresses nothing and is itself a
					// finding: a silent ignore is a future bug's hiding
					// spot.
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "directive",
						Message:  fmt.Sprintf("malformed suppression %q: the required form is //sketchlint:ignore <analyzer>[,<analyzer>] -- <reason>", c.Text),
					})
					continue
				}
				names := strings.Split(m[1], ",")
				pos := pkg.Fset.Position(c.Pos())
				// The directive covers its own line and the next one, so
				// it works both trailing a statement and on its own line
				// above it.
				mark(pos, names)
				pos.Line++
				mark(pos, names)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if set, ok := suppressed[d.Pos.Filename][d.Pos.Line]; ok && set[d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// All returns every sketchlint analyzer in a stable order: the PR-4
// concurrency/determinism suite first, then the wire/stream/quota-era
// ownership and contract analyzers.
func All() []*Analyzer {
	return []*Analyzer{LockScope, DetSeed, AtomicMix, WidenMul, PoolOwn, CtxLeak, AllocLen, ErrCtr}
}

// ByName resolves a comma-separated analyzer selection.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// --- shared type/AST helpers used by several analyzers ---

// calleeFunc resolves the called function or method of a call
// expression, or nil for calls through function values, conversions
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		// Method or qualified package function.
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// pkgPathTail reports whether the function's defining package path ends
// in the given last element (so both "skimsketch/internal/core" and a
// fixture's ".../testdata/src/lockscope/core" count as "core").
func pkgPathTail(f *types.Func, tail string) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == tail || strings.HasSuffix(path, "/"+tail)
}
