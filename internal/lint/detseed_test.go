package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestDetSeed(t *testing.T) {
	analysistest.Run(t, lint.DetSeed, "testdata/src/detseed")
}

// TestDetSeedSkipsNonDeterministicPackages loads a fixture package
// that is not in the deterministic set: its global rand and clock
// reads must produce no findings (the fixture has no want comments,
// so any diagnostic fails the run).
func TestDetSeedSkipsNonDeterministicPackages(t *testing.T) {
	analysistest.Run(t, lint.DetSeed, "testdata/src/detseed_clean")
}
