package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocLen generalizes the validate-before-alloc discipline every
// decoder in this repository follows (docs/FORMATS.md): a length or
// count decoded from wire, checkpoint, or snapshot input is
// attacker-controlled, and passing it to make() before bounding it
// lets a 20-byte frame demand gigabytes — the classic decompression-
// bomb allocation. The SKSP reader checks its declared payload length
// against MaxFramePayload before allocating; the sketch unmarshalers
// check declared dimensions against the actual blob size. This
// analyzer makes that discipline mechanical for every decoder that
// clustering and tiered retention will add.
//
// Within each function it taints values produced by binary decode
// primitives — encoding/binary's Uint16/32/64, Uvarint/Varint and
// ReadUvarint/ReadVarint, and this repo's bounds-checked cursor
// methods (u8/u16/u32/u64/uvarint/varint) — propagates the taint
// through assignments, conversions and arithmetic, and flags any
// make([]T, n) or make(map[K]V, n) whose size argument is tainted,
// unless the tainted value was first compared (in an if/switch
// condition, or against len() of the input) — the dominating bound
// check. Comparing against a named constant is the canonical form;
// any validating comparison clears the taint.
var AllocLen = &Analyzer{
	Name: "alloclen",
	Doc:  "flags make() sizes decoded from input without a dominating bound check",
	Run:  runAllocLen,
}

func runAllocLen(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocFunc(pass, fd.Body)
		}
	}
}

// taintState maps variables to the decode call that tainted them.
type taintState map[types.Object]token.Pos

func checkAllocFunc(pass *Pass, body *ast.BlockStmt) {
	taint := make(taintState)
	walkAllocBlock(pass, body.List, taint)
}

func walkAllocBlock(pass *Pass, stmts []ast.Stmt, taint taintState) {
	for _, s := range stmts {
		walkAllocStmt(pass, s, taint)
	}
}

func copyTaint(t taintState) taintState {
	c := make(taintState, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

func walkAllocStmt(pass *Pass, s ast.Stmt, taint taintState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		walkAllocBlock(pass, s.List, taint)
	case *ast.AssignStmt:
		// RHS first: report tainted makes, compute taint of each value.
		for _, rhs := range s.Rhs {
			checkAllocExpr(pass, rhs, taint)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if pos, tainted := exprTaint(pass, s.Rhs[i], taint); tainted {
					taint[obj] = pos
				} else {
					delete(taint, obj)
				}
			}
		} else if len(s.Rhs) == 1 {
			// Multi-value: v, err := c.uvarint() — taint every LHS if the
			// call is a decode source.
			if pos, tainted := exprTaint(pass, s.Rhs[0], taint); tainted {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						obj := pass.Info.Defs[id]
						if obj == nil {
							obj = pass.Info.Uses[id]
						}
						if obj != nil && !isErrorObj(obj) {
							taint[obj] = pos
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			walkAllocStmt(pass, s.Init, taint)
		}
		// A comparison mentioning a tainted variable is its bound check:
		// the programmer validated it against SOMETHING; the fixture and
		// docs demand a named constant, and review enforces the rest.
		clearCheckedTaint(pass, s.Cond, taint)
		thenT := copyTaint(taint)
		walkAllocBlock(pass, s.Body.List, thenT)
		if s.Else != nil {
			elseT := copyTaint(taint)
			walkAllocStmt(pass, s.Else, elseT)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkAllocStmt(pass, s.Init, taint)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseT := copyTaint(taint)
			for _, cond := range cc.List {
				clearCheckedTaint(pass, cond, caseT)
			}
			walkAllocBlock(pass, cc.Body, caseT)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkAllocStmt(pass, s.Init, taint)
		}
		if s.Cond != nil {
			clearCheckedTaint(pass, s.Cond, taint)
		}
		walkAllocBlock(pass, s.Body.List, taint)
	case *ast.RangeStmt:
		walkAllocBlock(pass, s.Body.List, taint)
	case *ast.ExprStmt:
		checkAllocExpr(pass, s.X, taint)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkAllocExpr(pass, r, taint)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						checkAllocExpr(pass, vs.Values[i], taint)
						if pos, tainted := exprTaint(pass, vs.Values[i], taint); tainted {
							if obj := pass.Info.Defs[name]; obj != nil {
								taint[obj] = pos
							}
						}
					}
				}
			}
		}
	case *ast.GoStmt:
		checkAllocExpr(pass, s.Call, taint)
	case *ast.DeferStmt:
		checkAllocExpr(pass, s.Call, taint)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseT := copyTaint(taint)
			if cc.Comm != nil {
				walkAllocStmt(pass, cc.Comm, caseT)
			}
			walkAllocBlock(pass, cc.Body, caseT)
		}
	case *ast.LabeledStmt:
		walkAllocStmt(pass, s.Stmt, taint)
	case *ast.SendStmt:
		checkAllocExpr(pass, s.Value, taint)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				checkAllocExpr(pass, e, taint)
				return false
			}
			return true
		})
	}
}

// clearCheckedTaint untaints every variable that appears in a
// comparison within cond: the condition is the bound check.
func clearCheckedTaint(pass *Pass, cond ast.Expr, taint taintState) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						delete(taint, obj)
					}
				}
				return true
			})
		}
		return true
	})
}

// checkAllocExpr reports make() calls whose size arguments are tainted,
// recursing through the expression (including function literals, whose
// bodies share the enclosing taint — a decode closure is still a
// decoder).
func checkAllocExpr(pass *Pass, e ast.Expr, taint taintState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		// make(T, n[, cap]): args[1:] are sizes.
		for _, arg := range call.Args[1:] {
			if pos, tainted := exprTaint(pass, arg, taint); tainted {
				pass.Reportf(call.Pos(), "make() size flows from decoded input (decoded at %s) with no dominating bound check; compare it against a named constant (or the remaining input length) before allocating", pass.Fset.Position(pos))
			}
		}
		return true
	})
}

// exprTaint reports whether e's value derives from a decode source:
// either a direct decode call or arithmetic over tainted variables.
func exprTaint(pass *Pass, e ast.Expr, taint taintState) (token.Pos, bool) {
	var pos token.Pos
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil {
				if p, ok := taint[obj]; ok {
					pos, tainted = p, true
					return false
				}
			}
		case *ast.CallExpr:
			if p, ok := decodeSource(pass, n); ok {
				pos, tainted = p, true
				return false
			}
		}
		return true
	})
	return pos, tainted
}

// isErrorObj reports whether obj has type error.
func isErrorObj(obj types.Object) bool {
	return types.Identical(obj.Type(), types.Universe.Lookup("error").Type())
}

// decodeSource reports whether call produces a value decoded from
// input: an encoding/binary read, or a method named like this repo's
// bounds-checked cursor readers.
func decodeSource(pass *Pass, call *ast.CallExpr) (token.Pos, bool) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return token.NoPos, false
	}
	if f.Pkg().Path() == "encoding/binary" {
		switch f.Name() {
		case "Uint16", "Uint32", "Uint64", "Uvarint", "Varint",
			"ReadUvarint", "ReadVarint", "Read":
			return call.Pos(), true
		}
		return token.NoPos, false
	}
	// Repo cursor idiom: small bounds-checked readers named after the
	// wire type they decode.
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return token.NoPos, false
	}
	switch f.Name() {
	case "u8", "u16", "u32", "u64", "uvarint", "varint":
		return call.Pos(), true
	}
	return token.NoPos, false
}
