package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestWidenMul(t *testing.T) {
	analysistest.Run(t, lint.WidenMul, "testdata/src/widenmul")
}
