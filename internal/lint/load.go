package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads the packages matching the `go list` patterns and
// type-checks each from source, resolving imports through compiler
// export data (`go list -deps -export`). Only the matched packages
// themselves are parsed; dependencies — including the standard library
// — are consumed as export data, so loading is fast and needs no
// network. Test files are not analyzed.
func LoadPackages(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
			// Standard-library vendored packages are listed as
			// "vendor/<path>" but imported without the prefix.
			if rest, ok := strings.CutPrefix(p.ImportPath, "vendor/"); ok {
				exports[rest] = p.Export
			}
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
