package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetSeed enforces reproducible seeding in the packages whose output
// must be bit-for-bit deterministic for a fixed seed: the hash-family
// and sketch packages (the skimmed-sketch estimate is only comparable
// across processes if every ξ family derives from the serialized
// seed), and the workload/sampling generators (experiments and the
// golden-stream regression tests pin their exact byte output).
//
// Three classes of nondeterminism are flagged:
//
//  1. top-level math/rand (and math/rand/v2) functions, which draw
//     from the global, externally seedable source — randomness must
//     come through an injected *rand.Rand or an explicit seed;
//  2. time.Now and time.Since, which leak wall-clock state into
//     results;
//  3. ranging over a map with order-dependent effects in the loop
//     body (appending to a slice, sending on a channel, printing, or
//     breaking/returning early) — map iteration order is randomized
//     per run, so such loops must iterate a sorted key slice instead.
//     Commutative aggregation (sums, counter updates, map writes) is
//     not flagged, and neither is the canonical fix: appending keys
//     to a slice that the same function then passes to sort/slices.
var DetSeed = &Analyzer{
	Name: "detseed",
	Doc:  "forbids global math/rand, wall-clock reads and order-dependent map iteration in deterministic packages",
	Run:  runDetSeed,
}

// deterministicPackages names the packages (by package name) whose
// results must be reproducible for a fixed seed.
var deterministicPackages = map[string]bool{
	"hashfam":  true,
	"core":     true,
	"agms":     true,
	"countmin": true,
	"dyadic":   true,
	"workload": true,
	"sampling": true,
}

// allowedGlobalRand are math/rand top-level functions that construct
// or parameterize explicit sources rather than drawing from the
// global one.
var allowedGlobalRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *Rand
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetSeed(pass *Pass) {
	if !deterministicPackages[pass.Pkg.Name()] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkDetCall(pass, call)
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if rng, ok := n.(*ast.RangeStmt); ok {
					checkMapRange(pass, rng, fd.Body)
				}
				return true
			})
		}
	}
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on an injected *rand.Rand are the fix, not the bug
	}
	switch f.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !allowedGlobalRand[f.Name()] {
			pass.Reportf(call.Pos(), "deterministic package %s draws from the global math/rand source via rand.%s; inject a *rand.Rand seeded from the sketch seed instead", pass.Pkg.Name(), f.Name())
		}
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			pass.Reportf(call.Pos(), "deterministic package %s reads the wall clock via time.%s; results must depend only on inputs and the seed", pass.Pkg.Name(), f.Name())
		}
	}
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt, enclosing *ast.BlockStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reason, appended := orderDependent(pass, rng.Body)
	if reason == "" {
		return
	}
	if reason == "append" && appended != nil && sortedInFunc(pass, enclosing, appended) {
		return // the canonical fix: collect keys, then sort them
	}
	pass.Reportf(rng.Pos(), "map iteration with order-dependent effect (%s) in deterministic package %s; iterate sorted keys instead", reason, pass.Pkg.Name())
}

// orderDependent reports why a map-range body's result could depend on
// iteration order ("" if it only performs commutative aggregation),
// and, for appends, the slice variable appended to.
func orderDependent(pass *Pass, body *ast.BlockStmt) (reason string, appended types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					reason = "append"
					if len(n.Args) > 0 {
						if dst, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
							appended = pass.Info.Uses[dst]
						}
					}
					return false
				}
			}
			if f := calleeFunc(pass.Info, n); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				reason = "fmt output"
				return false
			}
		case *ast.SendStmt:
			reason = "channel send"
			return false
		case *ast.BranchStmt:
			// break or goto ends iteration after an order-dependent
			// prefix; continue is order-neutral.
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				reason = "early break"
				return false
			}
		case *ast.ReturnStmt:
			reason = "early return"
			return false
		}
		return true
	})
	return reason, appended
}

// sortedInFunc reports whether the function body passes the given
// slice variable to a sort/slices function, which makes the collection
// order irrelevant.
func sortedInFunc(pass *Pass, body *ast.BlockStmt, slice types.Object) bool {
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.Info.Uses[id] == slice {
					found = true
					return false
				}
				return true
			})
			if found {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
