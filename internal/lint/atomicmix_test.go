package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, lint.AtomicMix, "testdata/src/atomicmix")
}
