package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestCtxLeak(t *testing.T) {
	analysistest.Run(t, lint.CtxLeak, "testdata/src/ctxleak")
}

// TestCtxLeakCleanPatterns covers the stoppable shapes — context
// selects, done channels, WaitGroup joins, stopped tickers, dials with
// deadlines. No want comments: any diagnostic fails the run.
func TestCtxLeakCleanPatterns(t *testing.T) {
	analysistest.Run(t, lint.CtxLeak, "testdata/src/ctxleak_clean")
}
