package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CtxLeak enforces the goroutine-liveness discipline the server's
// lifecycle depends on: sketchd drains its listeners, checkpointer and
// watch ticker on SIGTERM, and the wire client's reconnect loop must
// die with its Conn. A goroutine spawned per loop iteration (per
// accepted connection, per reconnect attempt, per retry) that nobody
// can stop or join outlives the shutdown drain — the "hung node"
// failure mode the ROADMAP's cluster work explicitly guards against.
//
// Flagged:
//
//  1. a `go` statement inside a for/range loop whose function shows no
//     termination evidence: no select on a context.Context.Done() or a
//     done/stop/quit/close channel, no sync.WaitGroup registration
//     (the join path), transitively through one level of same-package
//     calls;
//  2. time.Tick — its ticker can never be stopped;
//  3. time.NewTicker in a function that never calls Stop (directly or
//     deferred) and does not return the ticker;
//  4. net.Dial — a dial without a deadline can hang forever on an
//     unresponsive peer; use net.DialTimeout or a net.Dialer with
//     Timeout/DialContext.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "flags unstoppable goroutines spawned in loops, unstopped tickers, and deadline-less dials",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd.Body)
		}
	}
}

func checkCtxFunc(pass *Pass, body *ast.BlockStmt) {
	checkTickers(pass, body)
	// Find go statements lexically inside loops.
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case *ast.ForStmt:
			walkChildren(n.Body, func(c ast.Node) { walk(c, true) })
			return
		case *ast.RangeStmt:
			walkChildren(n.Body, func(c ast.Node) { walk(c, true) })
			return
		case *ast.GoStmt:
			if inLoop && !stoppable(pass, n, 2) {
				pass.Reportf(n.Pos(), "goroutine started inside a loop with no context/done-channel select or WaitGroup registration; it cannot be stopped or joined on shutdown")
			}
			// Recurse into the spawned function for nested loops.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				walkChildren(fl.Body, func(c ast.Node) { walk(c, false) })
			}
			return
		case *ast.FuncLit:
			walkChildren(n.Body, func(c ast.Node) { walk(c, false) })
			return
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		if n != nil {
			walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
		}
	}
	walkChildren(body, func(c ast.Node) { walk(c, false) })
}

// walkChildren invokes f on each direct child node of n.
func walkChildren(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// checkCall flags the always-wrong calls: time.Tick and net.Dial.
func checkCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Tick" {
			pass.Reportf(call.Pos(), "time.Tick leaks its ticker; use time.NewTicker with a deferred Stop")
		}
	case "net":
		if f.Name() == "Dial" {
			pass.Reportf(call.Pos(), "net.Dial has no deadline and can hang forever; use net.DialTimeout or a net.Dialer with Timeout/DialContext")
		}
	}
}

// checkTickers flags time.NewTicker calls in functions that never call
// Stop and do not pass the ticker onward (return it or hand it to
// another function).
func checkTickers(pass *Pass, body *ast.BlockStmt) {
	var tickers []*ast.CallExpr
	hasStop := false
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := calleeFunc(pass.Info, n); f != nil && f.Pkg() != nil {
				if f.Pkg().Path() == "time" && f.Name() == "NewTicker" {
					tickers = append(tickers, n)
				}
				if f.Name() == "Stop" {
					hasStop = true
				}
			}
		case *ast.ReturnStmt:
			// Returning the ticker (or a struct holding it) hands the
			// Stop obligation to the caller; be permissive.
			for _, r := range n.Results {
				if tickerTyped(pass, r) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && tickerTyped(pass, sel) {
					escapes = true
				}
			}
		}
		return true
	})
	if len(tickers) == 0 || hasStop || escapes {
		return
	}
	for _, t := range tickers {
		pass.Reportf(t.Pos(), "time.NewTicker without a Stop in the same function leaks the ticker goroutine; defer t.Stop()")
	}
}

// tickerType matches type strings mentioning time.Ticker.
var tickerType = regexp.MustCompile(`\btime\.Ticker\b`)

// tickerTyped reports whether e's type mentions time.Ticker.
func tickerTyped(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return tickerType.MatchString(tv.Type.String())
}

// doneChanName matches channel identifiers that conventionally signal
// shutdown.
var doneChanName = regexp.MustCompile(`(?i)(done|stop|quit|clos|exit|shut)`)

// stoppable reports whether the goroutine spawned by g shows evidence
// that it can be stopped (select on ctx.Done()/a done channel) or
// joined (sync.WaitGroup use), searching the spawned function and, up
// to depth, same-package functions it calls.
func stoppable(pass *Pass, g *ast.GoStmt, depth int) bool {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyStoppable(pass, fun.Body, depth)
	default:
		if f := calleeFunc(pass.Info, g.Call); f != nil {
			if body := funcBody(pass, f); body != nil {
				return bodyStoppable(pass, body, depth)
			}
			// A function from another package: assume the author knew
			// what they were doing only for the stdlib; flag otherwise?
			// Be permissive for out-of-package targets we cannot see.
			return f.Pkg() != pass.Pkg
		}
	}
	return false
}

// funcBody finds the body of a same-package function or method.
func funcBody(pass *Pass, f *types.Func) *ast.BlockStmt {
	if f.Pkg() != pass.Pkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Info.Defs[fd.Name] == f {
				return fd.Body
			}
		}
	}
	return nil
}

func bodyStoppable(pass *Pass, body *ast.BlockStmt, depth int) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// <-ch where ch signals shutdown, inside or outside a select.
			if n.Op.String() == "<-" && shutdownChan(pass, n.X) {
				ok = true
				return false
			}
		case *ast.CallExpr:
			f := calleeFunc(pass.Info, n)
			if f == nil {
				return true
			}
			// sync.WaitGroup registration: the spawner can join it.
			if recvNamed(f, "sync", "WaitGroup") && (f.Name() == "Done" || f.Name() == "Add") {
				ok = true
				return false
			}
			// Follow one level of same-package calls.
			if depth > 0 && f.Pkg() == pass.Pkg {
				if b := funcBody(pass, f); b != nil && bodyStoppable(pass, b, depth-1) {
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}

// shutdownChan reports whether e is a ctx.Done() call or a channel
// whose name marks it a shutdown signal.
func shutdownChan(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if f := calleeFunc(pass.Info, call); f != nil && f.Name() == "Done" && recvNamed(f, "context", "Context") {
			return true
		}
		return false
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	if name == "" {
		return false
	}
	if tv, ok := pass.Info.Types[e]; ok {
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return false
		}
	}
	return doneChanName.MatchString(name)
}

// recvNamed reports whether f's receiver (or interface owner) is the
// named type pkg.Name.
func recvNamed(f *types.Func, pkgPath, name string) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
