package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolOwn tracks the ownership of values drawn from a sync.Pool through
// each function, flow-sensitively. The SKSP hot path (cmd/sketchd's
// stream listener) decodes every frame into a pooled *wire.Data and
// hands the buffers to the engine with a release callback; the engine's
// shard workers touch those buffers concurrently until the callback
// fires. The whole scheme is only correct if every code path follows
// the ownership protocol, which the type system cannot see:
//
//   - a value is OWNED from `v := pool.Get()` (or `pool.Get().(*T)`);
//   - `pool.Put(v)` RELEASES it: any later use on the same path is a
//     use-after-Put, and a second Put is a double-Put (two goroutines
//     can then Get the same value);
//   - passing a closure that Puts v into another function TRANSFERS
//     ownership at that call (the release-callback idiom): v must not
//     be touched afterwards. The one sanctioned exception is error-path
//     reclaim — when the transferring call's error result is checked,
//     Puts inside branches conditioned on that error are the caller
//     taking ownership back on the paths where the callee never
//     accepted it (the engine's IngestGroups contract);
//   - an owned value captured by a `go` statement or stored into a
//     field, map, or global escapes single-owner tracking entirely and
//     is flagged unless the site carries an ownership-transfer
//     annotation (`//sketchlint:ignore poolown -- <why the handoff is
//     safe>`).
var PoolOwn = &Analyzer{
	Name: "poolown",
	Doc:  "flags use-after-Put, double-Put, and untracked escapes of sync.Pool values",
	Run:  runPoolOwn,
}

func runPoolOwn(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd.Body)
		}
	}
}

// poolVar is one tracked pool value within a function.
type poolVar struct {
	obj types.Object
	// released is the position of the Put or ownership transfer that
	// ended this path's ownership (token.NoPos while owned).
	released token.Pos
	// how describes the releasing event for diagnostics.
	how string
	// errObj is deferSentinel when the release was a deferred Put
	// (which runs at function exit, so later plain uses are legal).
	errObj types.Object
}

// checkPoolFunc analyzes one function body: find every variable bound
// from a sync.Pool Get, then walk the body in statement order tracking
// ownership.
func checkPoolFunc(pass *Pass, body *ast.BlockStmt) {
	vars := poolGets(pass, body)
	if len(vars) == 0 {
		return
	}
	st := make(map[types.Object]*poolVar, len(vars))
	for _, o := range vars {
		st[o] = &poolVar{obj: o}
	}
	walkPoolBlock(pass, body.List, st, false)
}

// poolGets returns the objects assigned from (*sync.Pool).Get calls
// (possibly through a type assertion) anywhere in the body.
func poolGets(pass *Pass, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			e := ast.Unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			call, ok := e.(*ast.CallExpr)
			if !ok || !isPoolMethod(pass, call, "Get") {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				out = append(out, obj)
			} else if obj := pass.Info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// isPoolMethod reports whether call is pool.<name>(...) on a sync.Pool
// (or *sync.Pool) receiver.
func isPoolMethod(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// walkPoolBlock processes stmts in order, mutating st. inLoop marks
// bodies that may re-execute (a Put there can double-fire).
func walkPoolBlock(pass *Pass, stmts []ast.Stmt, st map[types.Object]*poolVar, inLoop bool) {
	for _, s := range stmts {
		walkPoolStmt(pass, s, st, inLoop)
	}
}

func copyPoolState(st map[types.Object]*poolVar) map[types.Object]*poolVar {
	c := make(map[types.Object]*poolVar, len(st))
	for k, v := range st {
		cv := *v
		c[k] = &cv
	}
	return c
}

// mergePoolState ORs released-ness from a fall-through branch into st:
// if a value may have been released on the branch, later uses on the
// joined path are (possibly) invalid and are reported as such.
func mergePoolState(st, branch map[types.Object]*poolVar) {
	for k, v := range st {
		if b := branch[k]; b != nil && v.released == token.NoPos && b.released != token.NoPos {
			*v = *b
		}
	}
}

// terminates reports whether the statement list always leaves the
// enclosing scope (return / branch out), so its exit state never joins
// the fall-through path.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func walkPoolStmt(pass *Pass, s ast.Stmt, st map[types.Object]*poolVar, inLoop bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		walkPoolBlock(pass, s.List, st, inLoop)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			walkPoolStmt(pass, s.Init, st, inLoop)
		}
		checkPoolExpr(pass, s.Cond, st, inLoop)
		thenSt := copyPoolState(st)
		markErrReclaim(pass, s.Cond, thenSt)
		walkPoolBlock(pass, s.Body.List, thenSt, inLoop)
		if s.Else != nil {
			elseSt := copyPoolState(st)
			walkPoolStmt(pass, s.Else, elseSt, inLoop)
			if !terminates(s.Body.List) {
				mergePoolState(st, thenSt)
			}
			if eb, ok := s.Else.(*ast.BlockStmt); !ok || !terminates(eb.List) {
				mergePoolState(st, elseSt)
			}
		} else if !terminates(s.Body.List) {
			mergePoolState(st, thenSt)
		}
		return
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkPoolStmt(pass, s.Init, st, inLoop)
		}
		if s.Tag != nil {
			checkPoolExpr(pass, s.Tag, st, inLoop)
		}
		// A case conditioned on the transferring call's error result
		// reclaims ownership: the callee rejected the handoff and will
		// never fire the release, so a Put there is the caller's right
		// and duty (the engine IngestGroups contract). When any case of
		// a tagless switch dispatches on an error, every clause —
		// including default, which is just the residual error branch —
		// gets the reclaim.
		errSwitch := false
		if s.Tag == nil {
			for _, c := range s.Body.List {
				for _, cond := range c.(*ast.CaseClause).List {
					if condMentionsError(pass, cond) {
						errSwitch = true
					}
				}
			}
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseSt := copyPoolState(st)
			if errSwitch {
				reclaimTransfers(caseSt)
			} else {
				for _, cond := range cc.List {
					markErrReclaim(pass, cond, caseSt)
				}
			}
			walkPoolBlock(pass, cc.Body, caseSt, inLoop)
			if !terminates(cc.Body) {
				mergePoolState(st, caseSt)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkPoolStmt(pass, s.Init, st, inLoop)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseSt := copyPoolState(st)
			walkPoolBlock(pass, cc.Body, caseSt, inLoop)
			if !terminates(cc.Body) {
				mergePoolState(st, caseSt)
			}
		}
		return
	case *ast.ForStmt:
		if s.Init != nil {
			walkPoolStmt(pass, s.Init, st, inLoop)
		}
		if s.Cond != nil {
			checkPoolExpr(pass, s.Cond, st, inLoop)
		}
		loopSt := copyPoolState(st)
		walkPoolBlock(pass, s.Body.List, loopSt, true)
		mergePoolState(st, loopSt)
		return
	case *ast.RangeStmt:
		checkPoolExpr(pass, s.X, st, inLoop)
		loopSt := copyPoolState(st)
		walkPoolBlock(pass, s.Body.List, loopSt, true)
		mergePoolState(st, loopSt)
		return
	case *ast.AssignStmt:
		// A fresh Get re-establishes ownership (common in loops).
		for i, rhs := range s.Rhs {
			e := ast.Unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			if call, ok := e.(*ast.CallExpr); ok && isPoolMethod(pass, call, "Get") && i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil && st[obj] != nil {
						st[obj] = &poolVar{obj: obj}
						continue
					}
					if obj := pass.Info.Uses[id]; obj != nil && st[obj] != nil {
						st[obj] = &poolVar{obj: obj}
						continue
					}
				}
			}
			// err := ingest(v.buf, func() { pool.Put(v) }) — the
			// release-callback transfer usually happens in an
			// assignment capturing the call's error.
			if call, ok := e.(*ast.CallExpr); ok && handlePoolCall(pass, call, st, inLoop) {
				continue
			}
			checkPoolExpr(pass, rhs, st, inLoop)
		}
		// Storing an owned value into a field, map slot, or package
		// variable escapes single-owner tracking.
		for _, lhs := range s.Lhs {
			for obj, v := range st {
				if v.released != token.NoPos {
					continue
				}
				for i, rhs := range s.Rhs {
					if len(s.Lhs) == len(s.Rhs) && s.Lhs[i] != lhs {
						continue
					}
					if !exprIsObj(pass, rhs, obj) {
						continue
					}
					if escapingLHS(pass, lhs) {
						pass.Reportf(s.Pos(), "pool value %s is stored outside the function (ownership escapes); hand it off explicitly or annotate the transfer", obj.Name())
					}
				}
			}
		}
		return
	case *ast.GoStmt:
		checkPoolGoDefer(pass, s.Call, st, "goroutine")
		return
	case *ast.DeferStmt:
		// defer pool.Put(v) is a release at function exit: treat it as
		// releasing immediately for double-Put purposes (a second Put
		// later in the body will double-fire), but do not flag ordinary
		// later uses — they happen before the deferred call runs.
		if isPoolMethod(pass, s.Call, "Put") && len(s.Call.Args) == 1 {
			if obj := exprObj(pass, s.Call.Args[0]); obj != nil {
				if v := st[obj]; v != nil {
					if v.released != token.NoPos {
						pass.Reportf(s.Pos(), "pool value %s is Put again (%s at %s): double-Put lets two goroutines share one buffer", obj.Name(), v.how, pass.Fset.Position(v.released))
					} else {
						// Deferred release runs last: later reads are fine,
						// but a second Put still double-fires.
						v.released = s.Pos()
						v.how = "deferred Put"
						v.errObj = deferSentinel
					}
				}
			}
			return
		}
		checkPoolGoDefer(pass, s.Call, st, "deferred call")
		return
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if handlePoolCall(pass, call, st, inLoop) {
				return
			}
		}
		checkPoolExpr(pass, s.X, st, inLoop)
		return
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkPoolExpr(pass, r, st, inLoop)
		}
		return
	case *ast.DeclStmt, *ast.EmptyStmt, *ast.BranchStmt:
		return
	case *ast.IncDecStmt:
		checkPoolExpr(pass, s.X, st, inLoop)
		return
	case *ast.SendStmt:
		// Sending an owned value on a channel hands it to an unknown
		// receiver: an escape.
		for obj, v := range st {
			if v.released == token.NoPos && exprIsObj(pass, s.Value, obj) {
				pass.Reportf(s.Pos(), "pool value %s is sent on a channel (ownership escapes); the receiver must own the Put — annotate the transfer if intended", obj.Name())
			}
		}
		checkPoolExpr(pass, s.Chan, st, inLoop)
		return
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseSt := copyPoolState(st)
			if cc.Comm != nil {
				walkPoolStmt(pass, cc.Comm, caseSt, inLoop)
			}
			walkPoolBlock(pass, cc.Body, caseSt, inLoop)
			if !terminates(cc.Body) {
				mergePoolState(st, caseSt)
			}
		}
		return
	case *ast.LabeledStmt:
		walkPoolStmt(pass, s.Stmt, st, inLoop)
		return
	}
	// Anything unhandled: conservatively scan for uses after release.
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			checkPoolExpr(pass, e, st, inLoop)
			return false
		}
		return true
	})
}

// deferSentinel distinguishes a deferred release (plain later uses OK)
// from an inline one. It is never a real types.Object from the checked
// package.
var deferSentinel = types.NewParam(token.NoPos, nil, "deferred", types.Typ[types.Invalid])

// handlePoolCall processes a call statement: Put releases, a call
// receiving a release closure transfers. Returns true if the statement
// was fully handled.
func handlePoolCall(pass *Pass, call *ast.CallExpr, st map[types.Object]*poolVar, inLoop bool) bool {
	if isPoolMethod(pass, call, "Put") && len(call.Args) == 1 {
		obj := exprObj(pass, call.Args[0])
		if obj == nil {
			return false
		}
		v := st[obj]
		if v == nil {
			return false
		}
		if v.released != token.NoPos {
			pass.Reportf(call.Pos(), "pool value %s is Put again (%s at %s): double-Put lets two goroutines share one buffer", obj.Name(), v.how, pass.Fset.Position(v.released))
		} else {
			v.released = call.Pos()
			v.how = "Put"
		}
		return true
	}
	// A call whose argument is a closure that Puts an owned value is an
	// ownership transfer (the release-callback idiom): the value must
	// not be used after this statement, except for error-path reclaim.
	transferred := false
	for _, arg := range call.Args {
		fl, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		for obj, v := range st {
			if v.released != token.NoPos {
				continue
			}
			if closurePuts(pass, fl, obj) {
				v.released = call.Pos()
				v.how = "ownership transfer via release callback"
				transferred = true
			}
		}
	}
	if transferred {
		return true
	}
	return false
}

// closurePuts reports whether the function literal contains pool.Put(obj).
func closurePuts(pass *Pass, fl *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolMethod(pass, call, "Put") || len(call.Args) != 1 {
			return true
		}
		if exprIsObj(pass, call.Args[0], obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkPoolGoDefer flags owned pool values captured by a go/defer call.
func checkPoolGoDefer(pass *Pass, call *ast.CallExpr, st map[types.Object]*poolVar, what string) {
	for obj, v := range st {
		if v.released != token.NoPos {
			continue
		}
		uses := false
		ast.Inspect(call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				uses = true
				return false
			}
			return true
		})
		if uses {
			pass.Reportf(call.Pos(), "pool value %s escapes into a %s while still owned; Put it first or annotate the ownership transfer", obj.Name(), what)
		}
	}
}

// markErrReclaim enables the error-path-reclaim exception: inside a
// case (or if) conditioned on an error value, a Put of a transferred
// value is legal. The analysis is deliberately permissive here: any
// released value whose release was a transfer is un-released inside
// such branches.
func markErrReclaim(pass *Pass, cond ast.Expr, st map[types.Object]*poolVar) {
	if condMentionsError(pass, cond) {
		reclaimTransfers(st)
	}
}

// condMentionsError reports whether cond references an error-typed
// identifier (err != nil, errors.Is(err, ...), ...).
func condMentionsError(pass *Pass, cond ast.Expr) bool {
	mentions := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || obj.Type() == nil {
			return true
		}
		if types.Implements(obj.Type(), errorInterface) {
			mentions = true
			return false
		}
		return true
	})
	return mentions
}

// reclaimTransfers un-releases every value whose release was an
// ownership transfer, for the duration of an error-conditioned branch.
func reclaimTransfers(st map[types.Object]*poolVar) {
	for _, v := range st {
		if v.released != token.NoPos && v.how == "ownership transfer via release callback" {
			v.released = token.NoPos
			v.how = ""
		}
	}
}

// errorInterface is the built-in error interface type.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// checkPoolExpr reports uses of released pool values within e.
func checkPoolExpr(pass *Pass, e ast.Expr, st map[types.Object]*poolVar, inLoop bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies run later; handled at their call
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		v := st[obj]
		if v == nil || v.released == token.NoPos || v.errObj == deferSentinel {
			return true
		}
		pass.Reportf(id.Pos(), "pool value %s used after %s (at %s): the pool may already have handed it to another goroutine", obj.Name(), v.how, pass.Fset.Position(v.released))
		return true
	})
}

// exprObj resolves a bare identifier expression to its object.
func exprObj(pass *Pass, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return pass.Info.Uses[id]
	}
	return nil
}

// exprIsObj reports whether e is exactly the identifier for obj.
func exprIsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	return exprObj(pass, e) == obj
}

// escapingLHS reports whether assigning to lhs stores the value outside
// the current function's scope: a field selector, index expression,
// dereference, or package-level variable.
func escapingLHS(pass *Pass, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if obj := pass.Info.Uses[l]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
				return true
			}
		}
	}
	return false
}
