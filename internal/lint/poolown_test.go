package lint_test

import (
	"testing"

	"skimsketch/internal/lint"
	"skimsketch/internal/lint/analysistest"
)

func TestPoolOwn(t *testing.T) {
	analysistest.Run(t, lint.PoolOwn, "testdata/src/poolown")
}

// TestPoolOwnCleanPatterns exercises the sanctioned ownership shapes —
// Put-on-every-path, deferred Put, and the release-callback transfer
// with error-path reclaim used by the sketchd stream listener. The
// fixture has no want comments, so any diagnostic fails the run.
func TestPoolOwnCleanPatterns(t *testing.T) {
	analysistest.Run(t, lint.PoolOwn, "testdata/src/poolown_clean")
}
