// Clean fixture for the poolown analyzer: the sanctioned ownership
// patterns — Get/use/Put on every path, deferred Put, the
// release-callback transfer with error-path reclaim (the sketchd
// stream listener's exact shape). Nothing here may be flagged.
package poolown_clean

import (
	"errors"
	"sync"
)

type frame struct {
	buf    []byte
	groups []int
}

var pool = sync.Pool{New: func() any { return new(frame) }}

var errQuota = errors.New("quota")

// Straight-line Get/use/Put.
func roundTrip() int {
	f := pool.Get().(*frame)
	n := len(f.buf)
	pool.Put(f)
	return n
}

// Deferred Put: later uses run before the deferred release.
func deferredPut() int {
	f := pool.Get().(*frame)
	defer pool.Put(f)
	return len(f.buf)
}

// Put on an early-exit branch, then use on the fall-through: the
// branch returns, so ownership still holds below it.
func putOnErrorPath(decode func(*frame) error) int {
	f := pool.Get().(*frame)
	if err := decode(f); err != nil {
		pool.Put(f)
		return 0
	}
	n := len(f.buf)
	pool.Put(f)
	return n
}

// The stream-listener shape: copy out what the response needs, hand
// ownership to the engine via the release callback, and reclaim it
// only on the error paths where the callee never accepted the frame.
func handleData(ingest func([]int, func()) error) (int, bool) {
	f := pool.Get().(*frame)
	total := len(f.groups)
	err := ingest(f.groups, func() { pool.Put(f) })
	switch {
	case err == nil:
		return total, true
	case errors.Is(err, errQuota):
		pool.Put(f)
		return 0, false
	default:
		pool.Put(f)
		return 0, false
	}
}

// Error-path reclaim in if form.
func handleDataIf(ingest func([]int, func()) error) int {
	f := pool.Get().(*frame)
	total := len(f.groups)
	if err := ingest(f.groups, func() { pool.Put(f) }); err != nil {
		pool.Put(f)
		return 0
	}
	return total
}

// A loop that Gets a fresh frame each iteration.
func loopFresh(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		f := pool.Get().(*frame)
		total += len(f.buf)
		pool.Put(f)
	}
	return total
}
