// Fixture for the hardened suppression directive. Each function holds
// one errctr finding (a sentinel == comparison); the directives show
// which forms suppress it and which become findings themselves. This
// fixture is exercised programmatically by TestIgnoreDirective rather
// than through want comments, because a directive line is itself a
// comment and cannot also carry a want expectation.
package directive

import "errors"

var ErrBusy = errors.New("busy")

// Suppressed: full form, on the line above the finding.
func suppressedAbove(err error) bool {
	//sketchlint:ignore errctr -- fixture: demonstrates a well-formed suppression
	return err == ErrBusy
}

// Suppressed: full form, trailing the flagged line.
func suppressedTrailing(err error) bool {
	return err == ErrBusy //sketchlint:ignore errctr -- fixture: trailing placement also counts
}

// Reasonless: suppresses nothing, and the directive itself is a
// finding.
func reasonless(err error) bool {
	//sketchlint:ignore errctr
	return err == ErrBusy
}

// Bare: same.
func bare(err error) bool {
	//sketchlint:ignore
	return err == ErrBusy
}

// A space after // is not the directive form Go tools use; it reads as
// prose, so it must not silently suppress either.
func spaced(err error) bool {
	// sketchlint:ignore errctr -- close, but directives take no space after //
	return err == ErrBusy
}

// Naming the wrong analyzer leaves the real finding standing (the
// directive is well-formed, so it is not itself reported).
func wrongName(err error) bool {
	//sketchlint:ignore alloclen -- names an analyzer that never fires here
	return err == ErrBusy
}
