// Clean fixture for the ctxleak analyzer: every goroutine spawned in a
// loop carries termination evidence (context select, done channel, or
// WaitGroup join), tickers are stopped, dials have deadlines.
package ctxleak_clean

import (
	"context"
	"net"
	"sync"
	"time"
)

// Context-checked worker per iteration.
func acceptLoop(ctx context.Context, handle func()) {
	for {
		go func() {
			select {
			case <-ctx.Done():
				return
			default:
			}
			handle()
		}()
	}
}

// Joinable workers: the WaitGroup registration is the stop evidence.
func joinable(wg *sync.WaitGroup, work func()) {
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
}

// A conventional done channel counts.
func stoppableWorkers(stop chan struct{}, work func()) {
	for i := 0; i < 4; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					work()
				}
			}
		}()
	}
}

// Named same-package worker whose body blocks on ctx.Done: the
// analyzer follows the call.
func spawnNamed(ctx context.Context) {
	for i := 0; i < 2; i++ {
		go runWorker(ctx)
	}
}

func runWorker(ctx context.Context) {
	<-ctx.Done()
}

// Ticker with a deferred Stop.
func tickUntil(ctx context.Context, tick func()) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			tick()
		}
	}
}

// Returning the ticker hands the Stop obligation to the caller.
func newWatch() *time.Ticker {
	t := time.NewTicker(time.Second)
	return t
}

// Dial with a deadline.
func dial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// A goroutine outside any loop is the caller's one-shot concern.
func oneShot(work func()) {
	go work()
}
