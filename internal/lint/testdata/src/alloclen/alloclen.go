// Fixture for the alloclen analyzer: allocations sized by values
// decoded straight from wire/checkpoint input with no bound check.
package alloclen

import "encoding/binary"

type cursor struct {
	buf []byte
	off int
}

func (c *cursor) u32() uint32 {
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v
}

// Bad: the declared count sizes the allocation directly — a 20-byte
// frame can demand gigabytes.
func decodeGroups(buf []byte) []uint64 {
	n := binary.LittleEndian.Uint32(buf)
	out := make([]uint64, int(n)) // want `make\(\) size flows from decoded input`
	return out
}

// Bad: map pre-sizing from a decoded count is the same bomb.
func decodeIndex(c *cursor) map[uint32][]byte {
	n := c.u32()
	idx := make(map[uint32][]byte, int(n)) // want `make\(\) size flows from decoded input`
	return idx
}

// Bad: varint-decoded lengths are tainted through the multi-value
// assignment.
func decodeList(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	out := make([]byte, n) // want `make\(\) size flows from decoded input`
	return out
}

// Bad: taint survives arithmetic — scaling the count doesn't bound it.
func decodePadded(c *cursor) []byte {
	n := c.u32()
	total := int(n) * 8
	return make([]byte, total) // want `make\(\) size flows from decoded input`
}
