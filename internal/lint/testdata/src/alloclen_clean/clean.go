// Clean fixture for the alloclen analyzer: the validate-before-alloc
// discipline from docs/FORMATS.md — every decoded size is bounded
// before it reaches make().
package alloclen_clean

import (
	"encoding/binary"
	"errors"
)

const maxFrame = 1 << 20

var errTooBig = errors.New("frame too big")

type cursor struct {
	buf []byte
	off int
}

func (c *cursor) u32() uint32 {
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v
}

// Decoded length bounded against a named constant before allocating.
func decodeFrame(buf []byte) ([]byte, error) {
	n := binary.LittleEndian.Uint32(buf)
	if int(n) > maxFrame {
		return nil, errTooBig
	}
	out := make([]byte, int(n))
	return out, nil
}

// Bounded against the remaining input: a declared length can never
// exceed the bytes actually present.
func decodeBlob(buf []byte) []byte {
	n, k := binary.Uvarint(buf)
	if k <= 0 || int(n) > len(buf[k:]) {
		return nil
	}
	return make([]byte, n)
}

// Cursor-decoded count, checked before sizing the slice.
func decodeGroups(c *cursor) []uint64 {
	n := c.u32()
	if n > maxFrame {
		return nil
	}
	return make([]uint64, n)
}

// Constant and len()-derived sizes are never tainted.
func header() []byte {
	return make([]byte, 16)
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
