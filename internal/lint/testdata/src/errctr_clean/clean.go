// Clean fixture for the errctr analyzer: the sanctioned forms —
// errors.Is for sentinels, Retry-After alongside every 429, %w wraps.
package errctr_clean

import (
	"errors"
	"fmt"
	"io"
	"net/http"
)

var ErrQuotaExceeded = errors.New("quota exceeded")

// errors.Is survives wrapping.
func checkQuota(err error) bool {
	return errors.Is(err, ErrQuotaExceeded)
}

// nil comparisons are idiomatic, and io.EOF is not an Err* sentinel.
func done(err error) bool {
	return err == nil || err == io.EOF
}

// The 429 carries its hint.
func shed(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusTooManyRequests)
}

// Other statuses need no pairing.
func notFound(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNotFound)
}

type Reject struct {
	Code       uint16
	RetryAfter uint32
}

// Keyed literal with the hint, and a positional literal (every field
// set by construction).
func reject() Reject {
	return Reject{Code: 1, RetryAfter: 2}
}

func rejectPositional() Reject {
	return Reject{1, 2}
}

// %w preserves the chain; non-error final verbs are fine.
func wrap(err error) error {
	return fmt.Errorf("ingest failed: %w", err)
}

func describe(n int) error {
	return fmt.Errorf("bad group count %v", n)
}
