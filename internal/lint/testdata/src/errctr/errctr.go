// Fixture for the errctr analyzer: broken error contracts — sentinel
// comparisons that wrapping defeats, 429s with no Retry-After hint,
// and fmt.Errorf chains severed by %v.
package errctr

import (
	"errors"
	"fmt"
	"net/http"
)

var ErrQuotaExceeded = errors.New("quota exceeded")

// Bad: a wrapped ErrQuotaExceeded never compares equal.
func checkQuota(err error) bool {
	return err == ErrQuotaExceeded // want `sentinel error ErrQuotaExceeded compared with ==`
}

// Bad: same bug with != and the sentinel on the left.
func stillQuota(err error) bool {
	if ErrQuotaExceeded != err { // want `sentinel error ErrQuotaExceeded compared with !=`
		return false
	}
	return true
}

// Bad: load-shedding without telling the client when to come back.
func shed(w http.ResponseWriter) {
	w.WriteHeader(http.StatusTooManyRequests) // want `429 written without a Retry-After header`
}

// Bad: http.Error is a WriteHeader in disguise.
func shedError(w http.ResponseWriter) {
	http.Error(w, "slow down", http.StatusTooManyRequests) // want `429 written without a Retry-After header`
}

// Reject mirrors the wire package's binary 429.
type Reject struct {
	Code       uint16
	RetryAfter uint32
}

// Bad: a Reject without its RetryAfter hint strands the client in
// blind backoff.
func reject() Reject {
	return Reject{Code: 1} // want `Reject literal without a RetryAfter hint`
}

// Bad: %v formats the error but severs the errors.Is/As chain.
func wrap(err error) error {
	return fmt.Errorf("ingest failed: %v", err) // want `fmt.Errorf formats the error with %v`
}

// Bad: %s is the same severed chain.
func wrapS(err error) error {
	return fmt.Errorf("decode frame %d: %s", 3, err) // want `fmt.Errorf formats the error with %s`
}
