// Package core is a fixture stand-in for skimsketch/internal/core: the
// lockscope analyzer matches entry points by package-path tail and
// name prefix, so these signatures are all it needs.
package core

// Sketch mimics the hash-sketch synopsis.
type Sketch struct {
	counters []int64
}

// Clone is a cheap snapshot — never flagged.
func (s *Sketch) Clone() *Sketch {
	c := make([]int64, len(s.counters))
	copy(c, s.counters)
	return &Sketch{counters: c}
}

// Update is the cheap per-element fold — never flagged.
func (s *Sketch) Update(v uint64, w int64) {}

// SkimDense is an O(domain) skim scan — an expensive entry point.
func (s *Sketch) SkimDense(domain uint64, threshold int64) map[uint64]int64 {
	return nil
}

// SkimDenseParallel matches the SkimDense prefix too.
func (s *Sketch) SkimDenseParallel(domain uint64, threshold int64, workers int) map[uint64]int64 {
	return nil
}

// EstimateJoin is the O(domain·tables) join estimator — expensive.
func EstimateJoin(f, g *Sketch, domain uint64) int64 { return 0 }

// EstSkimJoinSize is the paper's name for the same estimator.
func EstSkimJoinSize(f, g *Sketch, domain uint64) int64 { return 0 }
