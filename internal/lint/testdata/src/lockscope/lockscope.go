// Fixture for the lockscope analyzer: estimation entry points called
// under engine-style mutexes and quiesce locks.
package lockscope

import (
	"sync"

	"skimsketch/internal/lint/testdata/src/lockscope/core"
)

type engine struct {
	mu      sync.Mutex
	applyMu sync.RWMutex
	left    *core.Sketch
	right   *core.Sketch
	domain  uint64
}

// Bad: estimating between Lock and Unlock.
func (e *engine) answerUnderLock() int64 {
	e.mu.Lock()
	est := core.EstimateJoin(e.left, e.right, e.domain) // want `O\(domain\) entry point EstimateJoin while e\.mu\.Lock is held`
	e.mu.Unlock()
	return est
}

// Bad: a deferred unlock holds the mutex for the whole body.
func (e *engine) answerUnderDeferredLock() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return core.EstSkimJoinSize(e.left, e.right, e.domain) // want `O\(domain\) entry point EstSkimJoinSize`
}

// Bad: the read side of an RWMutex still blocks writers.
func (e *engine) skimUnderRLock() map[uint64]int64 {
	e.applyMu.RLock()
	defer e.applyMu.RUnlock()
	return e.left.SkimDense(e.domain, 10) // want `O\(domain\) entry point SkimDense`
}

// Good: snapshot under the lock, estimate outside it.
func (e *engine) answerSnapshotted() int64 {
	e.mu.Lock()
	fs, gs := e.left.Clone(), e.right.Clone()
	e.mu.Unlock()
	return core.EstimateJoin(fs, gs, e.domain)
}

// estimateBoth reaches an expensive entry point transitively.
func (e *engine) estimateBoth() int64 {
	return core.EstimateJoin(e.left, e.right, e.domain) + int64(len(e.left.SkimDenseParallel(e.domain, 10, 4)))
}

// Bad: the expensive work is one intra-package call away.
func (e *engine) answerViaHelper() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.estimateBoth() // want `call to estimateBoth, which reaches an O\(domain\) estimation entry point`
}

// quiesce acquires locks and hands back their release — the engine's
// readQuiesce pattern.
func (e *engine) quiesce() func() {
	e.mu.Lock()
	e.applyMu.Lock()
	return func() {
		e.applyMu.Unlock()
		e.mu.Unlock()
	}
}

// Good: the release closure runs before estimation; the early-return
// branch releasing under a condition must not poison the main path.
func (e *engine) answerAfterRelease(cached bool) int64 {
	release := e.quiesce()
	if cached {
		release()
		return 0
	}
	fs, gs := e.left.Clone(), e.right.Clone()
	release()
	return core.EstimateJoin(fs, gs, e.domain)
}

// Bad: estimation happens before the release closure is called.
func (e *engine) answerBeforeRelease() int64 {
	release := e.quiesce()
	est := core.EstimateJoin(e.left, e.right, e.domain) // want `O\(domain\) entry point EstimateJoin while the lock acquired by quiesce is held`
	release()
	return est
}

// Bad: deferring the release holds the quiesce lock across the body.
func (e *engine) answerUnderDeferredQuiesce() int64 {
	defer e.quiesce()()
	return core.EstimateJoin(e.left, e.right, e.domain) // want `the lock acquired by quiesce is held`
}

// Updates under the lock are fine: cheap entry points are not flagged.
func (e *engine) ingest(v uint64, w int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.left.Update(v, w)
	e.right.Update(v, w)
}

// Suppressed: an acknowledged, justified exception stays quiet.
func (e *engine) answerSuppressed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	//sketchlint:ignore lockscope -- fixture exercising the suppression directive
	return core.EstimateJoin(e.left, e.right, e.domain)
}
