// Fixture for the detseed analyzer. The package is named "workload",
// one of the deterministic packages, so every nondeterminism class
// must be flagged here.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Bad: draws from the global, externally seedable source.
func globalDraw() int {
	return rand.Intn(10) // want `global math/rand source via rand\.Intn`
}

// Bad: global float draw and global shuffle.
func globalShuffle(xs []int) {
	if rand.Float64() < 0.5 { // want `global math/rand source via rand\.Float64`
		rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source via rand\.Shuffle`
	}
}

// Good: an injected source; rand.New/NewSource construct rather than draw.
func seededDraw(rng *rand.Rand) int {
	return rng.Intn(10)
}

// Good: constructing a source from an explicit seed.
func newGenerator(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Bad: wall-clock reads leak into results.
func stampNow() int64 {
	return time.Now().UnixNano() // want `reads the wall clock via time\.Now`
}

// Bad: time.Since is a disguised time.Now.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `reads the wall clock via time\.Since`
}

// Bad: appending while ranging a map depends on iteration order.
func keysUnsorted(freq map[uint64]int64) []uint64 {
	var out []uint64
	for v := range freq { // want `map iteration with order-dependent effect \(append\)`
		out = append(out, v)
	}
	return out
}

// Bad: first-match-wins over a map is order-dependent.
func anyHeavy(freq map[uint64]int64, threshold int64) (uint64, bool) {
	for v, w := range freq { // want `map iteration with order-dependent effect \(early return\)`
		if w >= threshold {
			return v, true
		}
	}
	return 0, false
}

// Good: commutative aggregation is order-independent.
func totalWeight(freq map[uint64]int64) int64 {
	var sum int64
	for _, w := range freq {
		sum += w
	}
	return sum
}

// Good: the canonical fix — collect keys, sort them, then use them.
// The collecting append is not flagged because the slice is sorted in
// the same function.
func keysSorted(freq map[uint64]int64) []uint64 {
	out := make([]uint64, 0, len(freq))
	for v := range freq {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bad: printing during map iteration emits in random order.
func dump(freq map[uint64]int64) {
	for v, w := range freq { // want `map iteration with order-dependent effect \(fmt output\)`
		fmt.Println(v, w)
	}
}

// Suppressed: the directive on the preceding line quiets the finding.
func suppressedDraw() int {
	//sketchlint:ignore detseed -- fixture exercising the suppression directive
	return rand.Intn(10)
}
