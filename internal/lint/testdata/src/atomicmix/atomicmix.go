// Fixture for the atomicmix analyzer: struct fields accessed through
// sync/atomic in one place and plainly in another.
package atomicmix

import "sync/atomic"

type counters struct {
	// applied is incremented atomically by workers but read and reset
	// plainly — the bug class.
	applied int64
	// enqueued is accessed atomically everywhere — fine.
	enqueued int64
	// plainOnly never sees an atomic access — fine.
	plainOnly int64
	// typed uses the atomic wrapper type — safe by construction.
	typed atomic.Int64
	// ready mixes a 32-bit flag.
	ready uint32
}

func (c *counters) incApplied() {
	atomic.AddInt64(&c.applied, 1)
}

func (c *counters) readApplied() int64 {
	return c.applied // want `field applied is accessed with atomic\.AddInt64 elsewhere but plainly here`
}

func (c *counters) resetApplied() {
	c.applied = 0 // want `field applied is accessed with atomic\.AddInt64 elsewhere but plainly here`
}

func (c *counters) incEnqueued() {
	atomic.AddInt64(&c.enqueued, 1)
}

func (c *counters) readEnqueued() int64 {
	return atomic.LoadInt64(&c.enqueued)
}

func (c *counters) bumpPlain() {
	c.plainOnly++
}

func (c *counters) useTyped() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

func (c *counters) setReady() {
	atomic.StoreUint32(&c.ready, 1)
}

func (c *counters) isReady() bool {
	return c.ready == 1 // want `field ready is accessed with atomic\.StoreUint32 elsewhere but plainly here`
}

// Suppressed: a constructor-time reset acknowledged via the directive.
func newCounters() *counters {
	c := &counters{}
	//sketchlint:ignore atomicmix -- not yet shared, plain store is safe here
	c.applied = 0
	return c
}
