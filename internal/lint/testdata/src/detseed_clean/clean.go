// Fixture for the detseed analyzer: this package is NOT one of the
// deterministic packages, so global randomness and clock reads are
// allowed and nothing here may be flagged.
package server

import (
	"math/rand"
	"time"
)

// Jitter for retry backoff is fine outside the deterministic packages.
func backoff(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base)))
}

func uptimeSince(start time.Time) time.Duration {
	return time.Since(start)
}

func stamp() int64 {
	return time.Now().Unix()
}
