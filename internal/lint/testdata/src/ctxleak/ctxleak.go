// Fixture for the ctxleak analyzer: goroutines spawned per loop
// iteration with no way to stop or join them, plus the always-wrong
// ticker and dial forms.
package ctxleak

import (
	"net"
	"time"
)

// Bad: one goroutine per accepted connection and nothing can stop it —
// the spawned function value is opaque, so no termination evidence.
func acceptLoop(handle func()) {
	for {
		go handle() // want `goroutine started inside a loop with no context/done-channel select or WaitGroup registration`
	}
}

// Bad: per-retry goroutine whose closure never consults a done signal.
func retryLoop(work func() error) {
	for i := 0; i < 5; i++ {
		go func() { // want `goroutine started inside a loop with no context/done-channel select or WaitGroup registration`
			_ = work()
		}()
	}
}

// Bad: the named same-package worker has no select, no done channel,
// no WaitGroup — once spawned per item it can never be drained.
func pump(ch chan int) {
	for v := range ch {
		go sink(v) // want `goroutine started inside a loop with no context/done-channel select or WaitGroup registration`
	}
}

func sink(v int) {
	for {
		_ = v
	}
}

// Bad: time.Tick's ticker can never be stopped.
func pollTick() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick leaks its ticker`
}

// Bad: a ticker that is never stopped leaks its timer goroutine.
func watchForever(tick func()) {
	t := time.NewTicker(time.Second) // want `time.NewTicker without a Stop in the same function`
	for range t.C {
		tick()
	}
}

// Bad: a dial with no deadline hangs forever on a black-holed peer.
func dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `net.Dial has no deadline and can hang forever`
}
