// Fixture for the poolown analyzer: sync.Pool ownership violations in
// the style of the SKSP decode-buffer pool.
package poolown

import "sync"

type frame struct {
	buf    []byte
	groups []int
}

var pool = sync.Pool{New: func() any { return new(frame) }}

type server struct {
	pool  sync.Pool
	stash *frame
	out   chan *frame
}

// Bad: reading a frame after returning it to the pool.
func useAfterPut() int {
	f := pool.Get().(*frame)
	pool.Put(f)
	return len(f.buf) // want `pool value f used after Put`
}

// Bad: double Put hands the same buffer to two goroutines.
func doublePut() {
	f := pool.Get().(*frame)
	pool.Put(f)
	pool.Put(f) // want `pool value f is Put again`
}

// Bad: an owned pool value captured by a goroutine outlives the
// function's ownership scope.
func escapeGoroutine() {
	f := pool.Get().(*frame)
	go func() { // want `pool value f escapes into a goroutine`
		_ = f.buf
	}()
}

// Bad: storing an owned pool value in a field escapes single-owner
// tracking.
func (s *server) stashIt() {
	f := s.pool.Get().(*frame)
	s.stash = f // want `pool value f is stored outside the function`
}

// Bad: sending an owned value on a channel hands it to an unknown
// receiver.
func (s *server) sendIt() {
	f := s.pool.Get().(*frame)
	s.out <- f // want `pool value f is sent on a channel`
}

// Bad: touching the frame after the release callback transferred
// ownership — the callee may already have recycled it.
func useAfterTransfer(ingest func([]int, func()) error) int {
	f := pool.Get().(*frame)
	_ = ingest(f.groups, func() { pool.Put(f) })
	return len(f.buf) // want `pool value f used after ownership transfer`
}

// Bad: an unconditional Put after the transfer double-releases on the
// success path (the callee owns the frame and will fire the release
// itself).
func putAfterSuccessfulTransfer(ingest func([]int, func()) error) {
	f := pool.Get().(*frame)
	_ = ingest(f.groups, func() { pool.Put(f) })
	pool.Put(f) // want `pool value f is Put again`
}

// Bad: a second Put after a branch that already may have Put.
func maybeDoublePut(cond bool) {
	f := pool.Get().(*frame)
	if cond {
		pool.Put(f)
	}
	pool.Put(f) // want `pool value f is Put again`
}
