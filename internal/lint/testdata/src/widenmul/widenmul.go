// Fixture for the widenmul analyzer: integer products widened only
// after the multiply.
package widenmul

// Bad: the product wraps in int before the conversion widens it.
func selfJoinTerm(freq int, count int) int64 {
	return int64(freq * count) // want `product is computed in int and only then widened to int64`
}

// Good: widen the operands first.
func selfJoinTermWide(freq int, count int) int64 {
	return int64(freq) * int64(count)
}

// Bad: uint32 buckets overflow at 2^32 long before uint64 does.
func bucketProduct(rows, cols uint32) uint64 {
	return uint64(rows * cols) // want `product is computed in uint32 and only then widened to uint64`
}

// Bad: len products are int-typed and overflow on 32-bit platforms.
func crossSize(fs, gs []uint64) int64 {
	return int64(len(fs) * len(gs)) // want `product is computed in int and only then widened to int64`
}

// Bad: the float conversion happens after the integer multiply wraps.
func scale(a, b int) float64 {
	return float64(a * b) // want `product is computed in int and only then widened to float64`
}

// Good: constant products are folded and overflow-checked by the compiler.
func constProduct() int64 {
	return int64(1 << 10 * 3)
}

// Good: already computed in a 64-bit type.
func wideProduct(a, b int64) int64 {
	return int64(a * b)
}

// Good: a non-multiply operand is not the analyzer's business.
func sumWiden(a, b int) int64 {
	return int64(a + b)
}

// Suppressed: a justified narrow multiply stays quiet.
func suppressed(a, b int) int64 {
	//sketchlint:ignore widenmul -- a and b are bounded by small table dimensions
	return int64(a * b)
}
