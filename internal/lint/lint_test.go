package lint_test

import (
	"strings"
	"testing"

	"skimsketch/internal/lint"
)

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("All() has %d analyzers, want 4", len(all))
	}
	names := make([]string, 0, len(all))
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		names = append(names, a.Name)
	}
	got := strings.Join(names, ",")
	if got != "lockscope,detseed,atomicmix,widenmul" {
		t.Fatalf("analyzer order = %s", got)
	}

	two, err := lint.ByName("widenmul, lockscope")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "widenmul" || two[1].Name != "lockscope" {
		t.Fatalf("ByName selection = %v", two)
	}

	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestLoadPackagesTypeChecks loads a real repo package through the
// export-data loader and sanity-checks the type information that every
// analyzer depends on.
func TestLoadPackagesTypeChecks(t *testing.T) {
	pkgs, err := lint.LoadPackages("skimsketch/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types.Name() != "stats" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 || len(pkg.Info.Defs) == 0 {
		t.Fatal("loaded package has no syntax or type info")
	}
	if pkg.Types.Scope().Lookup("MedianInt64") == nil {
		t.Fatal("MedianInt64 not found in package scope")
	}
}

func TestLoadPackagesBadPattern(t *testing.T) {
	if _, err := lint.LoadPackages("skimsketch/internal/doesnotexist"); err == nil {
		t.Fatal("LoadPackages accepted a nonexistent package")
	}
}
