package lint_test

import (
	"strings"
	"testing"

	"skimsketch/internal/lint"
)

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("All() has %d analyzers, want 8", len(all))
	}
	names := make([]string, 0, len(all))
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		names = append(names, a.Name)
	}
	got := strings.Join(names, ",")
	if got != "lockscope,detseed,atomicmix,widenmul,poolown,ctxleak,alloclen,errctr" {
		t.Fatalf("analyzer order = %s", got)
	}

	two, err := lint.ByName("widenmul, lockscope")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "widenmul" || two[1].Name != "lockscope" {
		t.Fatalf("ByName selection = %v", two)
	}

	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestIgnoreDirective pins the hardened suppression contract: only the
// full form "//sketchlint:ignore <analyzer>[,<analyzer>] -- <reason>"
// suppresses a finding, and any attempt at the directive that omits
// the analyzer name or the reason suppresses nothing and is reported
// as a finding itself (analyzer "directive").
func TestIgnoreDirective(t *testing.T) {
	pkgs, err := lint.LoadPackages("./testdata/src/directive")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags := lint.Run(pkgs[0], []*lint.Analyzer{lint.ErrCtr})

	var directive, errctr int
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive++
			if !strings.Contains(d.Message, "malformed suppression") {
				t.Errorf("directive finding message = %q", d.Message)
			}
		case "errctr":
			errctr++
		default:
			t.Errorf("unexpected analyzer in %s", d)
		}
	}
	// reasonless, bare and spaced each yield a directive finding; their
	// three comparisons plus wrongName's survive unsuppressed; the two
	// well-formed directives suppress theirs.
	if directive != 3 {
		t.Errorf("directive findings = %d, want 3:\n%v", directive, diags)
	}
	if errctr != 4 {
		t.Errorf("surviving errctr findings = %d, want 4:\n%v", errctr, diags)
	}
}

// TestLoadPackagesTypeChecks loads a real repo package through the
// export-data loader and sanity-checks the type information that every
// analyzer depends on.
func TestLoadPackagesTypeChecks(t *testing.T) {
	pkgs, err := lint.LoadPackages("skimsketch/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types.Name() != "stats" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 || len(pkg.Info.Defs) == 0 {
		t.Fatal("loaded package has no syntax or type info")
	}
	if pkg.Types.Scope().Lookup("MedianInt64") == nil {
		t.Fatal("MedianInt64 not found in package scope")
	}
}

func TestLoadPackagesBadPattern(t *testing.T) {
	if _, err := lint.LoadPackages("skimsketch/internal/doesnotexist"); err == nil {
		t.Fatal("LoadPackages accepted a nonexistent package")
	}
}
