package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WidenMul flags integer products that are widened only after the
// multiply: int64(a*b) where a and b are narrower (or
// platform-dependent) integers. Frequency counts in the self-join and
// subjoin accumulation paths are ints; their product is taken in the
// narrow type — overflowing silently on 32-bit platforms or for large
// counts — and the int64 conversion then launders the wrapped value.
// The fix is to widen the operands first: int64(a)*int64(b).
//
// Constant-folded products and products already computed in a 64-bit
// type are not flagged.
var WidenMul = &Analyzer{
	Name: "widenmul",
	Doc:  "flags int×int products widened to a 64-bit type only after the multiply",
	Run:  runWidenMul,
}

func runWidenMul(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			// A conversion expression: the "callee" must be a type
			// name denoting a 64-bit numeric type.
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := tv.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			switch dst.Kind() {
			case types.Int64, types.Uint64, types.Float64:
			default:
				return true
			}
			mul, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr)
			if !ok || mul.Op != token.MUL {
				return true
			}
			opTV, ok := pass.Info.Types[mul]
			if !ok {
				return true
			}
			if opTV.Value != nil {
				return true // constant-folded, checked by the compiler
			}
			src, ok := opTV.Type.Underlying().(*types.Basic)
			if !ok || src.Info()&types.IsInteger == 0 {
				return true
			}
			if !narrowerThan64(src.Kind()) {
				return true
			}
			pass.Reportf(call.Pos(), "product is computed in %s and only then widened to %s; convert the operands first (%s(a)*%s(b)) so the multiply cannot overflow", src.Name(), dst.Name(), dst.Name(), dst.Name())
			return true
		})
	}
}

// narrowerThan64 reports whether the integer kind can overflow a
// product that would fit in 64 bits. int and uint count: they are
// 32-bit on 32-bit platforms, and treating them as wide bakes in a
// portability bug.
func narrowerThan64(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uintptr:
		return true
	}
	return false
}
