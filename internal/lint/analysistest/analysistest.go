// Package analysistest runs a lint.Analyzer over fixture packages
// under a testdata tree and checks its diagnostics against
// expectations written in the fixtures as comments:
//
//	rand.Intn(10) // want `global math/rand`
//
// Each `// want` comment carries one or more double-quoted or
// backquoted regular expressions that must each match a diagnostic
// reported on that line; diagnostics not matched by any expectation,
// and expectations not matched by any diagnostic, fail the test. It is
// the stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"skimsketch/internal/lint"
)

// Run loads every package under root (a testdata/src/<case> directory,
// relative to the test's working directory), applies the analyzer, and
// compares diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, root string) {
	t.Helper()
	patterns, err := packageDirs(root)
	if err != nil {
		t.Fatalf("scanning %s: %v", root, err)
	}
	if len(patterns) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	pkgs, err := lint.LoadPackages(patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	var diags []lint.Diagnostic
	wants := make(map[string][]*expectation) // filename → expectations
	for _, pkg := range pkgs {
		diags = append(diags, lint.Run(pkg, []*lint.Analyzer{a})...)
		for _, file := range pkg.Files {
			name := pkg.Fset.Position(file.Pos()).Filename
			exps, err := collectWants(pkg, file)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			wants[name] = exps
		}
	}

	for _, d := range diags {
		matched := false
		for _, exp := range wants[d.Pos.Filename] {
			if exp.line == d.Pos.Line && !exp.used && exp.re.MatchString(d.Message) {
				exp.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for name, exps := range wants {
		for _, exp := range exps {
			if !exp.used {
				t.Errorf("%s:%d: no diagnostic matching %q", name, exp.line, exp.re)
			}
		}
	}
}

type expectation struct {
	line int
	re   *regexp.Regexp
	used bool
}

// wantArg matches one quoted or backquoted expectation string.
var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(pkg *lint.Package, file *ast.File) ([]*expectation, error) {
	var exps []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			line := pkg.Fset.Position(c.Pos()).Line
			args := wantArg.FindAllString(rest, -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("line %d: malformed want comment %q", line, c.Text)
			}
			for _, arg := range args {
				var pattern string
				if strings.HasPrefix(arg, "`") {
					pattern = strings.Trim(arg, "`")
				} else {
					p, err := strconv.Unquote(arg)
					if err != nil {
						return nil, fmt.Errorf("line %d: bad want string %s: %w", line, arg, err)
					}
					pattern = p
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad want regexp %q: %w", line, pattern, err)
				}
				exps = append(exps, &expectation{line: line, re: re})
			}
		}
	}
	return exps, nil
}

// packageDirs returns every directory under root containing .go files,
// as ./-prefixed patterns for the go tool (testdata is excluded from
// wildcard patterns, so fixture packages must be named explicitly).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					dirs = append(dirs, "./"+filepath.ToSlash(path))
					break
				}
			}
		}
		return nil
	})
	return dirs, err
}
