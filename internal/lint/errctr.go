package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrCtr enforces the error contracts the retry/backpressure machinery
// is built on. The whole 429 story — atomic admission, Retry-After
// floors, exactly-once replay — only composes if every layer honors
// three conventions:
//
//  1. sentinel errors travel wrapped: ErrQuotaExceeded crosses three
//     packages inside fmt.Errorf("...: %w", ...) chains, so comparing
//     with == instead of errors.Is silently stops matching the moment
//     anyone adds context. Any ==/!= against a declared Err* variable
//     is flagged (err == nil and io.EOF stay idiomatic).
//  2. every 429 carries its hint: an http.StatusTooManyRequests
//     WriteHeader without a Retry-After header in the same function
//     strands well-behaved clients in blind exponential backoff, and a
//     wire.Reject composite literal without a RetryAfter field is the
//     same bug on the binary protocol.
//  3. error context wraps: fmt.Errorf whose final verb formats an
//     error with %v or %s severs the chain errors.Is/As walks; use %w.
var ErrCtr = &Analyzer{
	Name: "errctr",
	Doc:  "flags == on Err* sentinels, 429s without Retry-After, and fmt.Errorf %v on errors",
	Run:  runErrCtr,
}

func runErrCtr(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRetryAfterPairing(pass, fd.Body)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.CompositeLit:
				checkRejectLiteral(pass, n)
			}
			return true
		})
	}
}

// checkSentinelCompare flags err == ErrSomething / err != ErrSomething.
func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		sentinel, other := pair[0], pair[1]
		name, obj := sentinelErr(pass, sentinel)
		if obj == nil {
			continue
		}
		// The other side must be an error too (don't flag comparisons of
		// unrelated values that happen to sit next to a sentinel name).
		tv, ok := pass.Info.Types[other]
		if !ok || tv.Type == nil || !types.Implements(tv.Type, errorInterface) {
			continue
		}
		pass.Reportf(be.Pos(), "sentinel error %s compared with %s; wrapped errors never match — use errors.Is(err, %s)", name, be.Op, name)
		return
	}
}

// sentinelErr reports whether e denotes a declared error variable whose
// name begins with "Err" (the sentinel convention).
func sentinelErr(pass *Pass, e ast.Expr) (string, types.Object) {
	var id *ast.Ident
	display := ""
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id, display = x, x.Name
	case *ast.SelectorExpr:
		id = x.Sel
		if pkg, ok := x.X.(*ast.Ident); ok {
			display = pkg.Name + "." + x.Sel.Name
		} else {
			display = x.Sel.Name
		}
	default:
		return "", nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return "", nil
	}
	v, ok := obj.(*types.Var)
	if !ok || !strings.HasPrefix(obj.Name(), "Err") || len(obj.Name()) < 4 {
		return "", nil
	}
	if !types.Implements(v.Type(), errorInterface) {
		return "", nil
	}
	// Only package-level sentinels count; a local err variable named
	// ErrX would be bizarre, but fields are excluded deliberately.
	if v.Parent() == nil {
		return "", nil
	}
	return display, obj
}

// checkRetryAfterPairing flags functions that write an HTTP 429 status
// without setting a Retry-After header anywhere in the same function.
func checkRetryAfterPairing(pass *Pass, body *ast.BlockStmt) {
	var writes429 []token.Pos
	hasRetryAfter := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// w.Header().Set("Retry-After", ...) — any call with the literal
		// "Retry-After" string counts (Set, Add, helpers).
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && lit.Kind == token.STRING &&
				strings.EqualFold(strings.Trim(lit.Value, "`\""), "Retry-After") {
				hasRetryAfter = true
			}
		}
		// http.Error / w.WriteHeader with a 429 status.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
			if is429(pass, call.Args[0]) {
				writes429 = append(writes429, call.Pos())
			}
		}
		if f := calleeFunc(pass.Info, call); f != nil && f.Pkg() != nil &&
			f.Pkg().Path() == "net/http" && f.Name() == "Error" && len(call.Args) == 3 {
			if is429(pass, call.Args[2]) {
				writes429 = append(writes429, call.Pos())
			}
		}
		return true
	})
	if hasRetryAfter {
		return
	}
	for _, pos := range writes429 {
		pass.Reportf(pos, "429 written without a Retry-After header in the same function; clients are left guessing the backoff (see the sketchd load-shed contract)")
	}
}

// is429 reports whether e is the constant 429 (or
// http.StatusTooManyRequests).
func is429(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 429
}

// checkRejectLiteral flags wire.Reject{...} composite literals that
// leave RetryAfter zero: the binary protocol's 429 must carry its hint
// just like the HTTP one.
func checkRejectLiteral(pass *Pass, cl *ast.CompositeLit) {
	tv, ok := pass.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Reject" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	hasField := false
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "RetryAfter" {
			hasField = true
		}
	}
	if !hasField {
		return
	}
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "RetryAfter" {
				// Present — even an explicit 0 is a decision, not an
				// omission; the zero check below only catches absence.
				return
			}
		} else {
			// Positional literal: every field is set.
			return
		}
	}
	pass.Reportf(cl.Pos(), "Reject literal without a RetryAfter hint; the binary 429 must tell the client when to resend")
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// with a non-wrapping verb in final position — the "...: %v" idiom that
// should be "...: %w".
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" || f.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format := strings.Trim(lit.Value, "`\"")
	verbs := formatVerbs(format)
	if len(verbs) != len(call.Args)-1 {
		return // indexed or starred verbs; don't guess
	}
	last := len(verbs) - 1
	if verbs[last] != 'v' && verbs[last] != 's' {
		return
	}
	argTV, ok := pass.Info.Types[call.Args[last+1]]
	if !ok || argTV.Type == nil || !types.Implements(argTV.Type, errorInterface) {
		return
	}
	pass.Reportf(call.Pos(), "fmt.Errorf formats the error with %%%c, severing the chain errors.Is/As walks; wrap it with %%w", verbs[last])
}

// formatVerbs extracts the verb letters of a format string, in order,
// skipping %%.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' || format[i] == '*' {
			return nil // indexed/starred args: bail out
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
