package query

import (
	"fmt"
	"math"

	"skimsketch/internal/hashfam"
	"skimsketch/internal/stats"
)

// MultiChain generalizes Chain to an arbitrary-length chain join
//
//	COUNT(R₀(a₁) ⋈ S₁(a₁,a₂) ⋈ S₂(a₂,a₃) ⋈ … ⋈ R_k(a_k))
//
// over k join attributes: k+1 streams, where the two end streams carry
// one attribute each and every interior stream carries a consecutive
// pair. Each cell of the s1 × s2 boosting array holds one atomic sketch
// per stream built from one ξ family per join attribute (Dobra et al.,
// SIGMOD 2002): the end sketches use ξ_1 (resp. ξ_k) and interior sketch
// i uses ξ_i·ξ_{i+1}, so the product of all k+1 atomic sketches is an
// unbiased chain-size estimator (every ξ appears exactly twice).
//
// As with all AGMS-style multi-join estimators, the variance grows with
// the chain length; the boosting array must be sized accordingly.
type MultiChain struct {
	attrs  int // k ≥ 1 join attributes → k+1 streams
	s1, s2 int
	// sketches[m][i] is stream m's atomic sketch in cell i.
	sketches [][]int64
	// xis[a][i] is attribute a's ξ family in cell i.
	xis [][]hashfam.FourWise
}

// NewMultiChain returns an empty chain estimator over `attrs` join
// attributes (attrs = 1 is a plain binary join; attrs = 2 matches Chain).
func NewMultiChain(attrs, s1, s2 int, seed uint64) (*MultiChain, error) {
	if attrs < 1 {
		return nil, fmt.Errorf("query: chain needs at least one join attribute, got %d", attrs)
	}
	if s1 <= 0 || s2 <= 0 {
		return nil, fmt.Errorf("query: chain dimensions must be positive, got s1=%d s2=%d", s1, s2)
	}
	ss := hashfam.NewSeedStream(seed)
	n := s1 * s2
	mc := &MultiChain{
		attrs:    attrs,
		s1:       s1,
		s2:       s2,
		sketches: make([][]int64, attrs+1),
		xis:      make([][]hashfam.FourWise, attrs),
	}
	for m := range mc.sketches {
		mc.sketches[m] = make([]int64, n)
	}
	for a := range mc.xis {
		fams := make([]hashfam.FourWise, n)
		for i := range fams {
			fams[i] = hashfam.NewFourWise(ss)
		}
		mc.xis[a] = fams
	}
	return mc, nil
}

// Streams returns the number of streams (attrs + 1).
func (c *MultiChain) Streams() int { return c.attrs + 1 }

// Words returns the synopsis size in counter words.
func (c *MultiChain) Words() int { return (c.attrs + 1) * c.s1 * c.s2 }

// UpdateEnd folds one element of an end stream: stream 0 (value is join
// attribute a₁) or stream attrs (value is a_k).
func (c *MultiChain) UpdateEnd(streamIdx int, value uint64, weight int64) error {
	switch streamIdx {
	case 0:
		for i := range c.sketches[0] {
			c.sketches[0][i] += weight * c.xis[0][i].Sign(value)
		}
	case c.attrs:
		last := c.attrs - 1
		for i := range c.sketches[c.attrs] {
			c.sketches[c.attrs][i] += weight * c.xis[last][i].Sign(value)
		}
	default:
		return fmt.Errorf("query: stream %d is not an end stream (0 or %d)", streamIdx, c.attrs)
	}
	return nil
}

// UpdateInterior folds one element of interior stream m ∈ [1, attrs−1]
// with join attribute values (left = a_m, right = a_{m+1}).
func (c *MultiChain) UpdateInterior(streamIdx int, left, right uint64, weight int64) error {
	if streamIdx < 1 || streamIdx > c.attrs-1 {
		return fmt.Errorf("query: stream %d is not interior (1..%d)", streamIdx, c.attrs-1)
	}
	l, r := c.xis[streamIdx-1], c.xis[streamIdx]
	sk := c.sketches[streamIdx]
	for i := range sk {
		sk[i] += weight * l[i].Sign(left) * r[i].Sign(right)
	}
	return nil
}

// Estimate returns the boosted chain-size estimate: the median over s2
// rows of the mean over s1 columns of the per-cell product of all
// stream sketches.
func (c *MultiChain) Estimate() int64 {
	rows := make([]float64, c.s2)
	for q := 0; q < c.s2; q++ {
		sum := 0.0
		for j := 0; j < c.s1; j++ {
			i := q*c.s1 + j
			prod := 1.0
			for m := range c.sketches {
				prod *= float64(c.sketches[m][i])
			}
			sum += prod
		}
		rows[q] = sum / float64(c.s1)
	}
	return int64(math.Round(stats.MedianFloat64(rows)))
}
