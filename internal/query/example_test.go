package query_test

import (
	"fmt"

	"skimsketch/internal/core"
	"skimsketch/internal/query"
)

// SUM over a join: measures ride on the update weights.
func ExampleSumEstimator() {
	s, err := query.NewSumEstimator(256, core.Config{Tables: 5, Buckets: 64, Seed: 3})
	if err != nil {
		panic(err)
	}
	s.UpdateFact(42)        // a subscriber to product 42
	s.UpdateFact(42)        // another
	s.UpdateMeasure(42, 99) // a sale worth 99
	est, err := s.Estimate()
	if err != nil {
		panic(err)
	}
	fmt.Println("SUM ≈", est.Total)
	// Output: SUM ≈ 198
}

// A two-join chain aggregate COUNT(R ⋈ S ⋈ T).
func ExampleChain() {
	c := query.MustNewChain(8, 5, 9)
	c.UpdateR(1, 2)    // r_1 = 2
	c.UpdateS(1, 5, 3) // s_{1,5} = 3
	c.UpdateT(5, 4)    // t_5 = 4
	fmt.Println(c.Estimate())
	// Output: 24
}
