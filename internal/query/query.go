// Package query lifts the sketch machinery to the query classes the
// paper claims beyond plain binary-join COUNT (Sections 1–2):
//
//   - SUM aggregates: SUM_M(F ⋈ G) is a COUNT over a derived stream in
//     which each G element is repeated "measure" times, i.e. a weighted
//     sketch update (SumEstimator);
//   - selection predicates: elements failing the predicate are dropped
//     before reaching the synopsis (Filtered);
//   - multi-join aggregates: COUNT(R ⋈_A S ⋈_B T) via the two-dimensional
//     atomic sketches of Dobra, Garofalakis, Gehrke & Rastogi (SIGMOD
//     2002), with one ξ family per join attribute (Chain).
package query

import (
	"fmt"
	"math"

	"skimsketch/internal/core"
	"skimsketch/internal/hashfam"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// SumEstimator estimates SUM_M(F ⋈ G) = Σ_v f_v · m_v, where m_v is the
// total measure of G elements with join value v. F-side elements are
// counted; G-side elements carry their measure as the update weight.
type SumEstimator struct {
	f, g   *core.HashSketch
	domain uint64
}

// NewSumEstimator builds the paired sketches over [0, domain).
func NewSumEstimator(domain uint64, cfg core.Config) (*SumEstimator, error) {
	if domain == 0 {
		return nil, fmt.Errorf("query: domain must be positive")
	}
	f, err := core.NewHashSketch(cfg)
	if err != nil {
		return nil, err
	}
	g, err := core.NewHashSketch(cfg)
	if err != nil {
		return nil, err
	}
	return &SumEstimator{f: f, g: g, domain: domain}, nil
}

// UpdateFact records one F-side element (count semantics). A deletion is
// weight −1 via UpdateFactWeighted.
func (s *SumEstimator) UpdateFact(value uint64) { s.f.Update(value, 1) }

// UpdateFactWeighted records an F-side element with an explicit weight.
func (s *SumEstimator) UpdateFactWeighted(value uint64, weight int64) { s.f.Update(value, weight) }

// UpdateMeasure records one G-side element with its measure; deleting an
// element re-issues it with the negated measure.
func (s *SumEstimator) UpdateMeasure(value uint64, measure int64) { s.g.Update(value, measure) }

// Estimate runs the skimmed-sketch estimator on the weighted sketches.
func (s *SumEstimator) Estimate() (core.Estimate, error) {
	return core.EstimateJoin(s.f, s.g, s.domain, nil)
}

// ExactSum computes the reference answer from raw updates: facts carry
// join values, measures carry (value, measure) pairs.
func ExactSum(facts []stream.Update, measures []stream.Update) int64 {
	f, m := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(facts, f)
	stream.Apply(measures, m)
	return f.InnerProduct(m)
}

// Filtered wraps a sink with a selection predicate, implementing the
// paper's predicate pushdown: "we simply drop from the streams, elements
// that do not satisfy the predicates (prior to updating the synopses)".
type Filtered struct {
	Sink stream.Sink
	Pred func(value uint64, weight int64) bool
}

// Update implements stream.Sink.
func (f Filtered) Update(value uint64, weight int64) {
	if f.Pred(value, weight) {
		f.Sink.Update(value, weight)
	}
}

// Chain estimates the two-join chain aggregate
// COUNT(R(A) ⋈_A S(A, B) ⋈_B T(B)) = Σ_{a,b} r_a · s_{a,b} · t_b with an
// s1 × s2 array of atomic sketch triples sharing per-attribute ξ
// families: X_R = Σ_a r_a ξ₁(a), X_S = Σ_{a,b} s_{a,b} ξ₁(a)ξ₂(b),
// X_T = Σ_b t_b ξ₂(b), and E[X_R·X_S·X_T] equals the chain size.
type Chain struct {
	s1, s2     int
	xr, xs, xt []int64
	xi1, xi2   []hashfam.FourWise
}

// NewChain returns an empty chain-sketch array.
func NewChain(s1, s2 int, seed uint64) (*Chain, error) {
	if s1 <= 0 || s2 <= 0 {
		return nil, fmt.Errorf("query: chain dimensions must be positive, got s1=%d s2=%d", s1, s2)
	}
	ss := hashfam.NewSeedStream(seed)
	n := s1 * s2
	c := &Chain{
		s1: s1, s2: s2,
		xr: make([]int64, n), xs: make([]int64, n), xt: make([]int64, n),
		xi1: make([]hashfam.FourWise, n), xi2: make([]hashfam.FourWise, n),
	}
	for i := 0; i < n; i++ {
		c.xi1[i] = hashfam.NewFourWise(ss)
		c.xi2[i] = hashfam.NewFourWise(ss)
	}
	return c, nil
}

// MustNewChain is NewChain for static configurations.
func MustNewChain(s1, s2 int, seed uint64) *Chain {
	c, err := NewChain(s1, s2, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// UpdateR folds one R-stream element with join value a.
func (c *Chain) UpdateR(a uint64, w int64) {
	for i := range c.xr {
		c.xr[i] += w * c.xi1[i].Sign(a)
	}
}

// UpdateS folds one S-stream element with join values (a, b).
func (c *Chain) UpdateS(a, b uint64, w int64) {
	for i := range c.xs {
		c.xs[i] += w * c.xi1[i].Sign(a) * c.xi2[i].Sign(b)
	}
}

// UpdateT folds one T-stream element with join value b.
func (c *Chain) UpdateT(b uint64, w int64) {
	for i := range c.xt {
		c.xt[i] += w * c.xi2[i].Sign(b)
	}
}

// Estimate returns the boosted chain-size estimate: median over s2 rows
// of the mean over s1 columns of X_R·X_S·X_T.
func (c *Chain) Estimate() int64 {
	rows := make([]float64, c.s2)
	for q := 0; q < c.s2; q++ {
		sum := 0.0
		for j := 0; j < c.s1; j++ {
			i := q*c.s1 + j
			sum += float64(c.xr[i]) * float64(c.xs[i]) * float64(c.xt[i])
		}
		rows[q] = sum / float64(c.s1)
	}
	return int64(math.Round(stats.MedianFloat64(rows)))
}

// Words returns the synopsis size in counter words (three per cell).
func (c *Chain) Words() int { return 3 * c.s1 * c.s2 }

// SPair is one S-stream element for ExactChain.
type SPair struct {
	A, B   uint64
	Weight int64
}

// ExactChain computes the reference chain size Σ_{a,b} r_a·s_{a,b}·t_b.
func ExactChain(r []stream.Update, s []SPair, t []stream.Update) int64 {
	rf, tf := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(r, rf)
	stream.Apply(t, tf)
	var total int64
	for _, p := range s {
		total += rf.Get(p.A) * p.Weight * tf.Get(p.B)
	}
	return total
}
