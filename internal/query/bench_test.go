package query

import "testing"

func BenchmarkChainUpdateS(b *testing.B) {
	c := MustNewChain(64, 7, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.UpdateS(uint64(i&255), uint64(i&127), 1)
	}
}

func BenchmarkChainEstimate(b *testing.B) {
	c := MustNewChain(64, 7, 1)
	for i := 0; i < 10000; i++ {
		c.UpdateR(uint64(i&255), 1)
		c.UpdateS(uint64(i&255), uint64(i&127), 1)
		c.UpdateT(uint64(i&127), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Estimate()
	}
}
