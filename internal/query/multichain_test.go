package query

import (
	"testing"

	"skimsketch/internal/stats"
	"skimsketch/internal/workload"
)

func TestNewMultiChainValidation(t *testing.T) {
	if _, err := NewMultiChain(0, 4, 3, 1); err == nil {
		t.Fatal("expected attrs error")
	}
	if _, err := NewMultiChain(2, 0, 3, 1); err == nil {
		t.Fatal("expected dims error")
	}
}

func TestMultiChainShape(t *testing.T) {
	c, err := NewMultiChain(3, 4, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Streams() != 4 {
		t.Fatalf("Streams = %d", c.Streams())
	}
	if c.Words() != 4*4*5 {
		t.Fatalf("Words = %d", c.Words())
	}
}

func TestMultiChainStreamIndexValidation(t *testing.T) {
	c, _ := NewMultiChain(3, 2, 2, 1)
	if err := c.UpdateEnd(1, 5, 1); err == nil {
		t.Fatal("stream 1 is interior")
	}
	if err := c.UpdateInterior(0, 1, 2, 1); err == nil {
		t.Fatal("stream 0 is an end")
	}
	if err := c.UpdateInterior(3, 1, 2, 1); err == nil {
		t.Fatal("stream 3 is an end")
	}
	if err := c.UpdateEnd(0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateEnd(3, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateInterior(2, 1, 2, 1); err != nil {
		t.Fatal(err)
	}
}

// TestMultiChainExactSingleValues: with one value per attribute, every
// ξ appears squared and the estimate is exact.
func TestMultiChainExactSingleValues(t *testing.T) {
	// 3 attributes, 4 streams: R0(a)=2, S1(a,b)=3, S2(b,c)=4, R3(c)=5.
	c, _ := NewMultiChain(3, 4, 5, 9)
	if err := c.UpdateEnd(0, 10, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateInterior(1, 10, 20, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateInterior(2, 20, 30, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateEnd(3, 30, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.Estimate(); got != 2*3*4*5 {
		t.Fatalf("estimate = %d, want 120", got)
	}
}

// TestMultiChainMatchesChain: with 2 attributes the generalized
// estimator must agree in expectation with the dedicated Chain; here we
// compare both against the exact answer on a small workload.
func TestMultiChainMatchesChain(t *testing.T) {
	const m = 32
	mc, _ := NewMultiChain(2, 256, 9, 31)
	ch := MustNewChain(256, 9, 31)

	rg, _ := workload.NewZipf(m, 1.0, 1)
	ag, _ := workload.NewZipf(m, 1.0, 2)
	bg, _ := workload.NewZipf(m, 1.0, 3)
	tg, _ := workload.NewZipf(m, 1.0, 4)

	var r, tt []int64
	r = make([]int64, m)
	tt = make([]int64, m)
	s := map[[2]uint64]int64{}
	for i := 0; i < 3000; i++ {
		rv := rg.Next()
		r[rv]++
		mc.UpdateEnd(0, rv, 1)
		ch.UpdateR(rv, 1)

		a, b := ag.Next(), bg.Next()
		s[[2]uint64{a, b}]++
		mc.UpdateInterior(1, a, b, 1)
		ch.UpdateS(a, b, 1)

		tv := tg.Next()
		tt[tv]++
		mc.UpdateEnd(2, tv, 1)
		ch.UpdateT(tv, 1)
	}
	var exact int64
	for k, w := range s {
		exact += r[k[0]] * w * tt[k[1]]
	}
	em := stats.SymmetricError(float64(mc.Estimate()), float64(exact))
	ec := stats.SymmetricError(float64(ch.Estimate()), float64(exact))
	if em > 2 || ec > 2 {
		t.Fatalf("errors too large: multichain %.3f, chain %.3f (exact %d)", em, ec, exact)
	}
}

// TestMultiChainThreeWayAccuracy: a 3-attribute (4-stream) chain join
// estimated within a loose band.
func TestMultiChainThreeWayAccuracy(t *testing.T) {
	const m = 16
	c, _ := NewMultiChain(3, 512, 9, 7)
	g := func(seed int64) *workload.Zipf {
		z, _ := workload.NewZipf(m, 0.8, seed)
		return z
	}
	r0, s1a, s1b, s2a, s2b, r3 := g(1), g(2), g(3), g(4), g(5), g(6)

	rf := make([]int64, m)
	tf := make([]int64, m)
	sp1 := map[[2]uint64]int64{}
	sp2 := map[[2]uint64]int64{}
	for i := 0; i < 2000; i++ {
		v := r0.Next()
		rf[v]++
		c.UpdateEnd(0, v, 1)
		a, b := s1a.Next(), s1b.Next()
		sp1[[2]uint64{a, b}]++
		c.UpdateInterior(1, a, b, 1)
		x, y := s2a.Next(), s2b.Next()
		sp2[[2]uint64{x, y}]++
		c.UpdateInterior(2, x, y, 1)
		w := r3.Next()
		tf[w]++
		c.UpdateEnd(3, w, 1)
	}
	// Exact chain: Σ r(a)·s1(a,b)·s2(b,c)·t(c), folded left to right.
	left := make([]int64, m) // left[b] = Σ_a r(a)·s1(a,b)
	for k, w := range sp1 {
		left[k[1]] += rf[k[0]] * w
	}
	var exact int64
	for k, w := range sp2 {
		exact += left[k[0]] * w * tf[k[1]]
	}
	if exact == 0 {
		t.Skip("degenerate workload")
	}
	got := c.Estimate()
	if e := stats.SymmetricError(float64(got), float64(exact)); e > 3 {
		t.Fatalf("3-way chain error %.3f (est %d vs exact %d)", e, got, exact)
	}
}

func TestMultiChainDeleteInvariance(t *testing.T) {
	a, _ := NewMultiChain(2, 8, 3, 2)
	b, _ := NewMultiChain(2, 8, 3, 2)
	a.UpdateEnd(0, 1, 1)
	a.UpdateInterior(1, 1, 2, 1)
	a.UpdateEnd(2, 2, 1)
	b.UpdateEnd(0, 1, 1)
	b.UpdateEnd(0, 7, 2)
	b.UpdateEnd(0, 7, -2)
	b.UpdateInterior(1, 1, 2, 1)
	b.UpdateInterior(1, 9, 9, 5)
	b.UpdateInterior(1, 9, 9, -5)
	b.UpdateEnd(2, 2, 1)
	if a.Estimate() != b.Estimate() {
		t.Fatal("delete noise must not change the estimate")
	}
}
