package query

import (
	"math"
	"testing"

	"skimsketch/internal/core"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func cfg(d, b int, seed uint64) core.Config { return core.Config{Tables: d, Buckets: b, Seed: seed} }

func TestNewSumEstimatorValidation(t *testing.T) {
	if _, err := NewSumEstimator(0, cfg(3, 8, 1)); err == nil {
		t.Fatal("expected error for zero domain")
	}
	if _, err := NewSumEstimator(16, cfg(0, 8, 1)); err == nil {
		t.Fatal("expected error for bad config")
	}
}

func TestSumExactTiny(t *testing.T) {
	s, err := NewSumEstimator(64, cfg(5, 32, 3))
	if err != nil {
		t.Fatal(err)
	}
	// F: value 5 appears 3 times. G: value 5 carries measures 10 and 7.
	for i := 0; i < 3; i++ {
		s.UpdateFact(5)
	}
	s.UpdateMeasure(5, 10)
	s.UpdateMeasure(5, 7)
	s.UpdateMeasure(9, 100) // non-joining value
	// Exact SUM = 3 × (10 + 7) = 51.
	est, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 51 {
		t.Fatalf("SUM estimate = %d, want 51", est.Total)
	}
}

func TestSumMeasureDeletion(t *testing.T) {
	s, _ := NewSumEstimator(64, cfg(5, 32, 3))
	s.UpdateFact(5)
	s.UpdateMeasure(5, 10)
	s.UpdateMeasure(5, -10) // retract
	est, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 0 {
		t.Fatalf("SUM after retraction = %d, want 0", est.Total)
	}
}

func TestSumAccuracySkewed(t *testing.T) {
	const m, n = 1 << 10, 20000
	s, _ := NewSumEstimator(m, cfg(7, 256, 17))
	zf, _ := workload.NewZipf(m, 1.2, 3)
	zg, _ := workload.NewZipf(m, 1.2, 4)
	var facts, measures []stream.Update
	for i := 0; i < n; i++ {
		v := zf.Next()
		facts = append(facts, stream.Insert(v))
		s.UpdateFact(v)
	}
	mg := workload.NewUniform(20, 7)
	for i := 0; i < n; i++ {
		v := zg.Next()
		measure := int64(mg.Next()) + 1
		measures = append(measures, stream.Update{Value: v, Weight: measure})
		s.UpdateMeasure(v, measure)
	}
	exact := ExactSum(facts, measures)
	est, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.SymmetricError(float64(est.Total), float64(exact)); e > 0.3 {
		t.Fatalf("SUM error %.4f too large (est %d vs exact %d)", e, est.Total, exact)
	}
}

func TestUpdateFactWeighted(t *testing.T) {
	s, _ := NewSumEstimator(16, cfg(3, 16, 1))
	s.UpdateFactWeighted(2, 4)
	s.UpdateMeasure(2, 5)
	est, err := s.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 20 {
		t.Fatalf("Total = %d, want 20", est.Total)
	}
}

func TestFilteredSink(t *testing.T) {
	fv := stream.NewFreqVector()
	sink := Filtered{Sink: fv, Pred: func(v uint64, w int64) bool { return v%2 == 0 }}
	stream.Apply([]stream.Update{stream.Insert(2), stream.Insert(3), stream.Insert(4)}, sink)
	if fv.Get(2) != 1 || fv.Get(4) != 1 || fv.Get(3) != 0 {
		t.Fatalf("predicate not applied: %v", fv)
	}
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(0, 3, 1); err == nil {
		t.Fatal("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from MustNewChain")
		}
	}()
	MustNewChain(-1, 1, 1)
}

func TestChainExactSingleValues(t *testing.T) {
	// One value per stream: X products are exact (ξ² = 1).
	c := MustNewChain(4, 5, 9)
	c.UpdateR(3, 4)    // r_3 = 4
	c.UpdateS(3, 8, 2) // s_{3,8} = 2
	c.UpdateT(8, 5)    // t_8 = 5
	if got := c.Estimate(); got != 40 {
		t.Fatalf("chain estimate = %d, want 40", got)
	}
	if c.Words() != 3*4*5 {
		t.Fatalf("Words = %d", c.Words())
	}
}

func TestChainNonJoiningIsZeroInExpectation(t *testing.T) {
	// r and t use disjoint attribute values from s: the exact chain is 0
	// and the estimate should be near 0 relative to stream size.
	c := MustNewChain(64, 7, 13)
	c.UpdateR(1, 50)
	c.UpdateS(2, 3, 50) // a=2 never joins r's a=1
	c.UpdateT(3, 50)
	got := c.Estimate()
	if math.Abs(float64(got)) > 50*50*50/4 {
		t.Fatalf("chain estimate %d too far from 0 for a non-joining chain", got)
	}
}

func TestChainAccuracy(t *testing.T) {
	const m = 64
	rgen, _ := workload.NewZipf(m, 1.0, 5)
	tgen, _ := workload.NewZipf(m, 1.0, 6)
	agen, _ := workload.NewZipf(m, 1.0, 7)
	bgen, _ := workload.NewZipf(m, 1.0, 8)

	var r, tt []stream.Update
	var s []SPair
	c := MustNewChain(256, 9, 31)
	for i := 0; i < 4000; i++ {
		rv := rgen.Next()
		r = append(r, stream.Insert(rv))
		c.UpdateR(rv, 1)

		tv := tgen.Next()
		tt = append(tt, stream.Insert(tv))
		c.UpdateT(tv, 1)

		a, b := agen.Next(), bgen.Next()
		s = append(s, SPair{A: a, B: b, Weight: 1})
		c.UpdateS(a, b, 1)
	}
	exact := ExactChain(r, s, tt)
	got := c.Estimate()
	if e := stats.SymmetricError(float64(got), float64(exact)); e > 1.5 {
		t.Fatalf("chain error %.3f too large (est %d vs exact %d)", e, got, exact)
	}
}

func TestExactChainBruteForce(t *testing.T) {
	r := []stream.Update{stream.Insert(1), stream.Insert(1), stream.Insert(2)}
	s := []SPair{{A: 1, B: 5, Weight: 2}, {A: 2, B: 6, Weight: 1}, {A: 9, B: 5, Weight: 3}}
	tt := []stream.Update{stream.Insert(5), stream.Insert(5), stream.Insert(6)}
	// r_1=2, r_2=1; t_5=2, t_6=1.
	// Contributions: (1,5): 2·2·2 = 8; (2,6): 1·1·1 = 1; (9,5): r_9=0.
	if got := ExactChain(r, s, tt); got != 9 {
		t.Fatalf("ExactChain = %d, want 9", got)
	}
}

func TestChainDeleteInvariance(t *testing.T) {
	a := MustNewChain(8, 3, 2)
	b := MustNewChain(8, 3, 2)
	a.UpdateR(1, 1)
	a.UpdateS(1, 2, 1)
	a.UpdateT(2, 1)
	b.UpdateR(1, 1)
	b.UpdateR(9, 1)
	b.UpdateR(9, -1)
	b.UpdateS(1, 2, 1)
	b.UpdateS(4, 4, 2)
	b.UpdateS(4, 4, -2)
	b.UpdateT(2, 1)
	if a.Estimate() != b.Estimate() {
		t.Fatal("insert/delete noise must not change the chain estimate")
	}
}
