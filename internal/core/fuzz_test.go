package core

import "testing"

// FuzzUnmarshalBinary feeds arbitrary bytes to the sketch decoder; it
// must reject garbage with an error, never panic, and accept its own
// output.
func FuzzUnmarshalBinary(f *testing.F) {
	s := MustNewHashSketch(Config{Tables: 3, Buckets: 8, Seed: 1})
	s.Update(3, 5)
	blob, _ := s.MarshalBinary()
	f.Add(blob)
	f.Add(blob[:20])
	f.Add([]byte("SKHSgarbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r HashSketch
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything accepted must be a structurally sound sketch.
		cfg := r.Config()
		if cfg.Tables <= 0 || cfg.Buckets <= 0 {
			t.Fatalf("accepted sketch with bad config %+v", cfg)
		}
		// Re-marshalling an accepted sketch must succeed and re-decode.
		blob2, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var r2 HashSketch
		if err := r2.UnmarshalBinary(blob2); err != nil {
			t.Fatalf("self-output rejected: %v", err)
		}
	})
}
