package core

import (
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 64, 77))
	z, _ := workload.NewZipf(512, 1.2, 3)
	stream.Apply(workload.MakeStream(z, 5000), s)
	s.Update(3, -17)

	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r HashSketch
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if r.Config() != s.Config() || r.NetCount() != s.NetCount() || r.GrossCount() != s.GrossCount() {
		t.Fatal("metadata must round-trip")
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 64; k++ {
			if r.Counter(j, k) != s.Counter(j, k) {
				t.Fatal("counters must round-trip")
			}
		}
	}
	// The restored sketch must keep estimating identically (hash families
	// rebuilt from seed).
	for v := uint64(0); v < 512; v += 17 {
		if r.PointEstimate(v) != s.PointEstimate(v) {
			t.Fatal("restored sketch estimates differ")
		}
	}
	// And accept further updates.
	r.Update(9, 1)
	s.Update(9, 1)
	if r.PointEstimate(9) != s.PointEstimate(9) {
		t.Fatal("restored sketch must continue identically")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 8, 1))
	blob, _ := s.MarshalBinary()

	var r HashSketch
	if err := r.UnmarshalBinary(blob[:10]); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 'X'
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected magic error")
	}
	bad = append([]byte{}, blob...)
	bad[4] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected version error")
	}
	if err := r.UnmarshalBinary(append(blob, 0)); err == nil {
		t.Fatal("expected length error")
	}
	// Corrupt dimensions to zero.
	bad = append([]byte{}, blob...)
	bad[8], bad[9], bad[10], bad[11] = 0, 0, 0, 0
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("expected config error")
	}
}

// TestUnmarshalHostileDimensions: a header declaring huge dimensions
// with a short body must be rejected by the length check BEFORE any
// allocation happens (found by FuzzUnmarshalBinary).
func TestUnmarshalHostileDimensions(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 8, 1))
	blob, _ := s.MarshalBinary()
	hostile := append([]byte{}, blob...)
	// tables := 2^27, buckets unchanged: would demand ~8 GB of counters.
	hostile[8], hostile[9], hostile[10], hostile[11] = 0, 0, 0, 8
	var r HashSketch
	if err := r.UnmarshalBinary(hostile); err == nil {
		t.Fatal("expected length error for hostile dimensions")
	}
}

// TestMarshalJoinAcrossProcesses simulates the deployment pattern: two
// sites sketch their local streams, ship the blobs, and the coordinator
// estimates the join.
func TestMarshalJoinAcrossProcesses(t *testing.T) {
	c := cfg(7, 256, 2024)
	const domain = 1 << 10
	zf, _ := workload.NewZipf(domain, 1.3, 5)
	zg, _ := workload.NewZipf(domain, 1.3, 6)

	// "Site F" and "site G".
	sf := MustNewHashSketch(c)
	sg := MustNewHashSketch(c)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	for _, u := range workload.MakeStream(zf, 20000) {
		sf.Update(u.Value, u.Weight)
		fv.Update(u.Value, u.Weight)
	}
	for _, u := range workload.MakeStream(zg, 20000) {
		sg.Update(u.Value, u.Weight)
		gv.Update(u.Value, u.Weight)
	}
	fBlob, _ := sf.MarshalBinary()
	gBlob, _ := sg.MarshalBinary()

	// "Coordinator".
	var f, g HashSketch
	if err := f.UnmarshalBinary(fBlob); err != nil {
		t.Fatal(err)
	}
	if err := g.UnmarshalBinary(gBlob); err != nil {
		t.Fatal(err)
	}
	want, err := EstimateJoin(sf, sg, domain, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateJoin(&f, &g, domain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total {
		t.Fatalf("shipped estimate %d differs from local %d", got.Total, want.Total)
	}
}
