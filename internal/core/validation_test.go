package core

import (
	"math"
	"testing"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// Statistical conformance tests: beyond spot accuracy checks, these
// verify the two quantitative predictions of the analysis — the
// estimator is unbiased, and the bucket structure cuts the variance by a
// factor of b (Section 4.3's self-join-sizes-over-b error terms).

// joinTrial runs one single-table (d = 1, no median) bucket-product
// estimate so the raw estimator distribution is visible.
func joinTrial(fv, gv stream.FreqVector, b int, seed uint64) float64 {
	c := Config{Tables: 1, Buckets: b, Seed: seed}
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	for v, w := range fv {
		f.Update(v, w)
	}
	for v, w := range gv {
		g.Update(v, w)
	}
	return float64(sparseSparseWorkers(f, g, 1))
}

// TestSparseSparseUnbiased: the mean of many independent single-table
// bucket-product estimates converges to the exact join size.
func TestSparseSparseUnbiased(t *testing.T) {
	const m, n = 512, 5000
	zf, _ := workload.NewZipf(m, 1.0, 3)
	zg, _ := workload.NewZipf(m, 1.0, 4)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(workload.MakeStream(zf, n), fv)
	stream.Apply(workload.MakeStream(zg, n), gv)
	exact := float64(fv.InnerProduct(gv))

	var w stats.Welford
	for seed := uint64(0); seed < 120; seed++ {
		w.Add(joinTrial(fv, gv, 16, seed))
	}
	// Standard error of the mean = sd/sqrt(trials); require the mean to
	// sit within ~4 standard errors of the exact value.
	sem := w.StdDev() / math.Sqrt(float64(w.N()))
	if diff := math.Abs(w.Mean() - exact); diff > 4*sem+0.02*exact {
		t.Fatalf("mean estimate %.0f vs exact %.0f (|diff| %.0f > 4·SEM %.0f): bias suspected",
			w.Mean(), exact, diff, 4*sem)
	}
}

// TestVarianceShrinksWithBuckets: quadrupling b should cut the variance
// of the single-table estimator by roughly 4x (we accept ≥ 2x to stay
// robust at modest trial counts).
func TestVarianceShrinksWithBuckets(t *testing.T) {
	const m, n = 512, 5000
	zf, _ := workload.NewZipf(m, 1.1, 7)
	zg, _ := workload.NewZipf(m, 1.1, 8)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(workload.MakeStream(zf, n), fv)
	stream.Apply(workload.MakeStream(zg, n), gv)

	variance := func(b int) float64 {
		var w stats.Welford
		for seed := uint64(0); seed < 100; seed++ {
			w.Add(joinTrial(fv, gv, b, 1000+seed))
		}
		return w.Variance()
	}
	v8, v32 := variance(8), variance(32)
	if v8 <= 0 || v32 <= 0 {
		t.Skip("degenerate variance sample")
	}
	if ratio := v8 / v32; ratio < 2 {
		t.Fatalf("variance ratio 8→32 buckets = %.2f, want ≥ 2 (theory: ≈ 4)", ratio)
	}
}

// TestMedianBoostingTightensTails: d is the confidence knob — at the
// same per-table width b, the median over 7 tables must have a smaller
// worst-case error across seeds than a single table (the paper's
// probability boost from d = O(log 1/δ)). Note this intentionally does
// NOT hold space constant: at equal space, widening one table reduces
// variance as much as medianing does, and which wins is data-dependent;
// the theorem is about failure probability at fixed per-table variance.
func TestMedianBoostingTightensTails(t *testing.T) {
	const m, n = 512, 5000
	zf, _ := workload.NewZipf(m, 1.2, 11)
	zg, _ := workload.NewZipf(m, 1.2, 12)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(workload.MakeStream(zf, n), fv)
	stream.Apply(workload.MakeStream(zg, n), gv)
	exact := float64(fv.InnerProduct(gv))

	worst := func(d, b int) float64 {
		w := 0.0
		for seed := uint64(0); seed < 40; seed++ {
			c := Config{Tables: d, Buckets: b, Seed: 500 + seed}
			f := MustNewHashSketch(c)
			g := MustNewHashSketch(c)
			for v, wt := range fv {
				f.Update(v, wt)
			}
			for v, wt := range gv {
				g.Update(v, wt)
			}
			e := stats.SymmetricError(float64(sparseSparseWorkers(f, g, 1)), exact)
			if e > w {
				w = e
			}
		}
		return w
	}
	// Same per-table width: 1×16 vs 7×16.
	w1, w7 := worst(1, 16), worst(7, 16)
	if w7 >= w1 {
		t.Fatalf("worst error with 7-table median (%.3f) should beat single table (%.3f)", w7, w1)
	}
}

// TestEstimateOnEmptySketches: everything degrades gracefully at zero.
func TestEstimateOnEmptySketches(t *testing.T) {
	c := cfg(3, 8, 1)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	est, err := EstimateJoin(f, g, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 0 || est.DenseCountF != 0 {
		t.Fatalf("empty join estimate %+v", est)
	}
	if f.PointEstimate(5) != 0 || f.SelfJoinEstimate() != 0 {
		t.Fatal("empty sketch estimates must be zero")
	}
}

// TestLargeWeightsNoOverflow: weights near the documented envelope (|w|
// up to ~2^31 per value, counters summing below 2^62) estimate exactly
// for single values.
func TestLargeWeightsNoOverflow(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 8, 1))
	const big = int64(1) << 31
	s.Update(3, big)
	if got := s.PointEstimate(3); got != big {
		t.Fatalf("estimate %d, want %d", got, big)
	}
	g := MustNewHashSketch(cfg(3, 8, 1))
	g.Update(3, 1000)
	est, err := EstimateJoin(s, g, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != big*1000 {
		t.Fatalf("join %d, want %d", est.Total, big*1000)
	}
}
