package core

import (
	"testing"
	"testing/quick"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// Property tests pinning the exactness discipline of the parallel query
// path: partitioning the skim scan and the per-table medians across
// goroutines must be bit-for-bit invisible — identical dense vectors,
// identical residual counters, identical decomposed estimates — for
// arbitrary streams, thresholds and worker counts, exactly as PR 1's
// tests pinned UpdateBatch ≡ sequential Update.

func sketchesEqual(a, b *HashSketch) bool {
	if a.NetCount() != b.NetCount() || a.GrossCount() != b.GrossCount() {
		return false
	}
	for j := 0; j < a.cfg.Tables; j++ {
		for k := 0; k < a.cfg.Buckets; k++ {
			if a.Counter(j, k) != b.Counter(j, k) {
				return false
			}
		}
	}
	return true
}

func densesEqual(a, b stream.FreqVector) bool {
	if len(a) != len(b) {
		return false
	}
	for v, w := range a {
		if b[v] != w {
			return false
		}
	}
	return true
}

// Property: the parallel skim extracts the identical dense vector and
// leaves identical residual counters, for any stream, any positive
// threshold, any worker count (including counts exceeding the domain),
// signed and unsigned.
func TestQuickParallelSkimEquivalence(t *testing.T) {
	c := cfg(5, 32, 21)
	f := func(vals []uint16, weights []int8, thrRaw uint8, workersRaw uint8, signed bool) bool {
		s := MustNewHashSketch(c)
		stream.Apply(miniStream(vals, weights), s)
		thr := int64(thrRaw%64) + 1
		workers := int(workersRaw%9) + 2 // 2..10 goroutines
		seq, par := s.Clone(), s.Clone()
		var seqDense, parDense stream.FreqVector
		var err1, err2 error
		if signed {
			seqDense, err1 = seq.SkimDenseSigned(512, thr)
			parDense, err2 = par.SkimDenseSignedParallel(512, thr, workers)
		} else {
			seqDense, err1 = seq.SkimDense(512, thr)
			parDense, err2 = par.SkimDenseParallel(512, thr, workers)
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return densesEqual(seqDense, parDense) && sketchesEqual(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: EstimateJoin with Workers set produces the exact decomposed
// estimate of the sequential run — Total, all four components, thresholds
// and dense counts — with and without skimming.
func TestQuickEstimateJoinWorkersEquivalence(t *testing.T) {
	c := cfg(5, 32, 33)
	f := func(v1 []uint16, w1 []int8, v2 []uint16, w2 []int8, workersRaw uint8) bool {
		fs, gs := MustNewHashSketch(c), MustNewHashSketch(c)
		stream.Apply(miniStream(v1, w1), fs)
		stream.Apply(miniStream(v2, w2), gs)
		workers := int(workersRaw%7) + 2
		seq, err1 := EstimateJoin(fs, gs, 512, nil)
		par, err2 := EstimateJoin(fs, gs, 512, &Options{Workers: workers})
		if err1 != nil || err2 != nil || seq != par {
			return false
		}
		rawSeq, err1 := EstimateJoin(fs, gs, 512, &Options{NoSkim: true})
		rawPar, err2 := EstimateJoin(fs, gs, 512, &Options{NoSkim: true, Workers: workers})
		return err1 == nil && err2 == nil && rawSeq == rawPar
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scratch-buffer median used by the parallel scan agrees
// with stats.MedianInt64 on every input.
func TestQuickMedianScratchMatchesStats(t *testing.T) {
	f := func(raw []int64) bool {
		if len(raw) == 0 {
			return true
		}
		scratch := make([]int64, len(raw))
		return medianScratch(raw, scratch) == stats.MedianInt64(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSkimDenseParallelValidation(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 16, 1))
	if _, err := s.SkimDenseParallel(64, 0, 4); err == nil {
		t.Fatal("expected error for non-positive threshold")
	}
	if _, err := s.SkimDenseSignedParallel(64, -3, 4); err == nil {
		t.Fatal("expected error for negative threshold")
	}
}

// Worker resolution: 0 and 1 are sequential, explicit counts pass
// through, negative selects per-CPU (at least one).
func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0); got != 1 {
		t.Fatalf("resolveWorkers(0) = %d, want 1", got)
	}
	if got := resolveWorkers(1); got != 1 {
		t.Fatalf("resolveWorkers(1) = %d, want 1", got)
	}
	if got := resolveWorkers(6); got != 6 {
		t.Fatalf("resolveWorkers(6) = %d, want 6", got)
	}
	if got := resolveWorkers(-1); got < 1 {
		t.Fatalf("resolveWorkers(-1) = %d, want >= 1", got)
	}
}

// A directed (non-quick) check at a domain large enough to give every
// worker several chunks, so the range-partition arithmetic (remainder
// distribution, final range end) is exercised beyond the tiny quick
// domains.
func TestParallelSkimLargeDomainIdentical(t *testing.T) {
	const domain = 1 << 16
	s := MustNewHashSketch(cfg(7, 256, 5))
	for i := 0; i < 50000; i++ {
		s.Update(uint64(i*2654435761)%domain, 1+int64(i%3))
	}
	thr := s.DefaultSkimThreshold()
	for _, workers := range []int{2, 3, 7, 16} {
		seq, par := s.Clone(), s.Clone()
		seqDense, err := seq.SkimDense(domain, thr)
		if err != nil {
			t.Fatal(err)
		}
		parDense, err := par.SkimDenseParallel(domain, thr, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !densesEqual(seqDense, parDense) {
			t.Fatalf("workers=%d: dense vectors differ (%d vs %d entries)", workers, len(seqDense), len(parDense))
		}
		if !sketchesEqual(seq, par) {
			t.Fatalf("workers=%d: residual counters differ", workers)
		}
	}
}
