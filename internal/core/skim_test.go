package core

import (
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

// buildSkewed returns a sketch plus exact frequencies for a stream with a
// handful of planted heavy values over a mostly-light domain.
func buildSkewed(t *testing.T, c Config, domain uint64, heavy map[uint64]int64, lightN int, seed int64) (*HashSketch, stream.FreqVector) {
	t.Helper()
	s := MustNewHashSketch(c)
	f := stream.NewFreqVector()
	for v, w := range heavy {
		s.Update(v, w)
		f.Update(v, w)
	}
	g := workload.NewUniform(domain, seed)
	for i := 0; i < lightN; i++ {
		v := g.Next()
		s.Update(v, 1)
		f.Update(v, 1)
	}
	return s, f
}

func TestSkimDenseRejectsBadThreshold(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 8, 1))
	if _, err := s.SkimDense(16, 0); err == nil {
		t.Fatal("expected error for threshold 0")
	}
	if _, err := s.SkimValues([]uint64{1}, -5); err == nil {
		t.Fatal("expected error for negative threshold")
	}
}

func TestSkimDenseExtractsHeavyValues(t *testing.T) {
	const domain = 1 << 10
	heavy := map[uint64]int64{3: 5000, 500: 3000, 900: 2500}
	s, _ := buildSkewed(t, cfg(7, 256, 11), domain, heavy, 4000, 1)

	dense, err := s.SkimDense(domain, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range heavy {
		got, ok := dense[v]
		if !ok {
			t.Fatalf("heavy value %d (f=%d) not extracted", v, w)
		}
		diff := got - w
		if diff < 0 {
			diff = -diff
		}
		// Point-estimate error bound is ≈ n/√b ≈ 18500/16 ≈ 1150, but the
		// heavy values dominate F2; allow a loose band.
		if diff > 1200 {
			t.Fatalf("extracted estimate %d for value %d too far from %d", got, v, w)
		}
	}
}

// TestSkimResidualSmall: after skimming, the point estimate of a
// previously heavy value must be far below its original frequency —
// Theorem 4's residual bound in spirit.
func TestSkimResidualSmall(t *testing.T) {
	const domain = 1 << 10
	heavy := map[uint64]int64{3: 5000, 500: 3000}
	s, _ := buildSkewed(t, cfg(7, 256, 13), domain, heavy, 4000, 2)

	if _, err := s.SkimDense(domain, 1000); err != nil {
		t.Fatal(err)
	}
	for v := range heavy {
		res := s.PointEstimate(v)
		if res < 0 {
			res = -res
		}
		if res > 1200 {
			t.Fatalf("residual estimate %d for skimmed value %d too large", res, v)
		}
	}
}

func TestSkimExtractsNegativeDense(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 64, 3))
	s.Update(7, -500)
	// The one-sided default must NOT extract a negative frequency...
	c := s.Clone()
	dense, err := c.SkimDense(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) != 0 {
		t.Fatalf("one-sided skim extracted %v", dense)
	}
	// ...but the signed variant must.
	dense, err = s.SkimDenseSigned(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dense[7] != -500 {
		t.Fatalf("dense[7] = %d, want -500", dense[7])
	}
	if _, err := s.SkimDenseSigned(16, 0); err == nil {
		t.Fatal("expected threshold error")
	}
}

// TestUnskimRestoresExactly: skim followed by unskim is the identity on
// the counters.
func TestUnskimRestoresExactly(t *testing.T) {
	const domain = 512
	heavy := map[uint64]int64{1: 900, 100: 700}
	s, _ := buildSkewed(t, cfg(5, 128, 17), domain, heavy, 2000, 3)
	before := s.Clone()

	dense, err := s.SkimDense(domain, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) == 0 {
		t.Fatal("expected extractions")
	}
	s.Unskim(dense)
	for j := 0; j < 5; j++ {
		for k := 0; k < 128; k++ {
			if s.Counter(j, k) != before.Counter(j, k) {
				t.Fatal("Unskim must restore the pre-skim counters exactly")
			}
		}
	}
}

// TestSkimValuesMatchesDomainScan: skimming an explicit candidate list
// covering the domain is identical to the domain scan.
func TestSkimValuesMatchesDomainScan(t *testing.T) {
	const domain = 512
	heavy := map[uint64]int64{5: 900, 300: 800}
	s1, _ := buildSkewed(t, cfg(5, 128, 19), domain, heavy, 2000, 4)
	s2 := s1.Clone()

	d1, err := s1.SkimDense(domain, 300)
	if err != nil {
		t.Fatal(err)
	}
	candidates := make([]uint64, domain)
	for i := range candidates {
		candidates[i] = uint64(i)
	}
	// Include duplicates to exercise the dedup path.
	candidates = append(candidates, 5, 300)
	d2, err := s2.SkimValues(candidates, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("dense sets differ in size: %d vs %d", len(d1), len(d2))
	}
	for v, w := range d1 {
		if d2[v] != w {
			t.Fatalf("dense sets differ at %d: %d vs %d", v, d2[v], w)
		}
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 128; k++ {
			if s1.Counter(j, k) != s2.Counter(j, k) {
				t.Fatal("skimmed counters must agree")
			}
		}
	}
}

// TestSubtractExported: the exported Subtract is the exact inverse of
// Unskim (the dyadic skimmer depends on it to keep levels consistent).
func TestSubtractExported(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 16, 5))
	s.Update(4, 100)
	s.Update(9, 50)
	before := s.Clone()
	dense := stream.FreqVector{4: 80, 9: 50}
	s.Subtract(dense)
	if got := s.PointEstimate(4); got != 20 {
		t.Fatalf("estimate after subtract = %d, want 20", got)
	}
	s.Unskim(dense)
	for j := 0; j < 3; j++ {
		for k := 0; k < 16; k++ {
			if s.Counter(j, k) != before.Counter(j, k) {
				t.Fatal("Subtract then Unskim must be the identity")
			}
		}
	}
}

// TestSkimNothingBelowThreshold: a uniform light stream yields no dense
// values at a high threshold, and skimming is then a no-op on counters.
func TestSkimNothingBelowThreshold(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 128, 23))
	g := workload.NewUniform(1024, 9)
	for i := 0; i < 2000; i++ {
		s.Update(g.Next(), 1)
	}
	before := s.Clone()
	dense, err := s.SkimDense(1024, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) != 0 {
		t.Fatalf("extracted %d values from a light stream", len(dense))
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 128; k++ {
			if s.Counter(j, k) != before.Counter(j, k) {
				t.Fatal("empty skim must not change counters")
			}
		}
	}
}
