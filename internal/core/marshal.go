package core

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization for checkpointing and shipping sketches between
// processes. Because every hash family is derived deterministically from
// the Config seed, only the configuration, the counters and the stream
// counts need to travel; UnmarshalBinary rebuilds the families. The
// format is little-endian: 4-byte magic "SKHS", u32 version, u32 tables,
// u32 buckets, u64 seed, i64 net, i64 gross, then tables·buckets i64
// counters.

var hashSketchMagic = [4]byte{'S', 'K', 'H', 'S'}

const hashSketchVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *HashSketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 40+8*len(s.counters))
	buf = append(buf, hashSketchMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, hashSketchVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.cfg.Tables))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.cfg.Buckets))
	buf = binary.LittleEndian.AppendUint64(buf, s.cfg.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.net))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.gross))
	for _, c := range s.counters {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state entirely (including hash families, rebuilt from the
// serialized seed).
func (s *HashSketch) UnmarshalBinary(data []byte) error {
	if len(data) < 36 {
		return fmt.Errorf("core: sketch data truncated (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != hashSketchMagic {
		return fmt.Errorf("core: bad sketch magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != hashSketchVersion {
		return fmt.Errorf("core: unsupported sketch version %d", v)
	}
	cfg := Config{
		Tables:  int(binary.LittleEndian.Uint32(data[8:12])),
		Buckets: int(binary.LittleEndian.Uint32(data[12:16])),
		Seed:    binary.LittleEndian.Uint64(data[16:24]),
	}
	// Validate the length against the declared dimensions BEFORE
	// allocating: a hostile header could otherwise demand gigabytes.
	// The uint64 product cannot overflow (both factors < 2^32).
	want := 40 + 8*uint64(uint32(cfg.Tables))*uint64(uint32(cfg.Buckets))
	if uint64(len(data)) != want {
		return fmt.Errorf("core: sketch data is %d bytes, want %d for %dx%d", len(data), want, cfg.Tables, cfg.Buckets)
	}
	fresh, err := NewHashSketch(cfg)
	if err != nil {
		return fmt.Errorf("core: unmarshal: %w", err)
	}
	fresh.net = int64(binary.LittleEndian.Uint64(data[24:32]))
	fresh.gross = int64(binary.LittleEndian.Uint64(data[32:40]))
	for i := range fresh.counters {
		fresh.counters[i] = int64(binary.LittleEndian.Uint64(data[40+8*i:]))
	}
	*s = *fresh
	return nil
}
