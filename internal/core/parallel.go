package core

import (
	"runtime"
	"sync"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// Parallel variants of the query-time estimation procedures. Every
// function here is bit-for-bit equivalent to its sequential counterpart:
// the SKIMDENSE extraction test reads counters without mutating them (the
// subtraction happens once, after the scan), so partitioning the domain
// across workers changes nothing but wall-clock time; the per-table rows
// of the subjoin estimators are independent, so computing them
// concurrently feeds the exact same slice to the median. Property tests
// in parallel_test.go pin the equivalence for arbitrary streams, domains,
// thresholds and worker counts.

// resolveWorkers maps a Workers knob to a goroutine count: n > 1 is taken
// as-is, n in {0, 1} means sequential (the backward-compatible zero
// value), and n < 0 selects one worker per available CPU.
func resolveWorkers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return 1
	}
	return n
}

// SkimDenseParallel is SkimDense with the domain scan partitioned into
// disjoint contiguous value ranges across workers goroutines (workers ≤ 1
// degenerates to the sequential scan; workers < 0 uses one per CPU). The
// returned dense vector and the skimmed counters are identical to
// SkimDense's for every input.
func (s *HashSketch) SkimDenseParallel(domain uint64, threshold int64, workers int) (stream.FreqVector, error) {
	return s.skimDenseParallel(domain, threshold, false, workers)
}

// SkimDenseSignedParallel is SkimDenseSigned with the parallel scan of
// SkimDenseParallel.
func (s *HashSketch) SkimDenseSignedParallel(domain uint64, threshold int64, workers int) (stream.FreqVector, error) {
	return s.skimDenseParallel(domain, threshold, true, workers)
}

func (s *HashSketch) skimDenseParallel(domain uint64, threshold int64, signed bool, workers int) (stream.FreqVector, error) {
	if threshold <= 0 {
		return nil, errSkimThreshold(threshold)
	}
	w := resolveWorkers(workers)
	if uint64(w) > domain {
		w = int(domain)
	}
	if w <= 1 {
		dense := stream.NewFreqVector()
		s.scanDense(0, domain, threshold, signed, dense)
		s.subtract(dense)
		return dense, nil
	}
	// Each worker scans a contiguous range into its own vector; ranges are
	// disjoint, so the merge is a plain union and the combined vector is
	// exactly the sequential scan's.
	parts := make([]stream.FreqVector, w)
	chunk, rem := domain/uint64(w), domain%uint64(w)
	var wg sync.WaitGroup
	lo := uint64(0)
	for i := 0; i < w; i++ {
		size := chunk
		if uint64(i) < rem {
			size++
		}
		hi := lo + size
		parts[i] = stream.NewFreqVector()
		wg.Add(1)
		go func(lo, hi uint64, out stream.FreqVector) {
			defer wg.Done()
			s.scanDense(lo, hi, threshold, signed, out)
		}(lo, hi, parts[i])
		lo = hi
	}
	wg.Wait()
	dense := parts[0]
	for _, p := range parts[1:] {
		for v, est := range p {
			dense[v] = est
		}
	}
	s.subtract(dense)
	return dense, nil
}

// scanDense runs the SKIMDENSE extraction test over [lo, hi), recording
// qualifying estimates in out. It only reads the sketch — callers
// subtract the merged dense vector afterwards — and reuses per-call
// scratch buffers so the inner loop allocates nothing.
func (s *HashSketch) scanDense(lo, hi uint64, threshold int64, signed bool, out stream.FreqVector) {
	d, b := s.cfg.Tables, s.cfg.Buckets
	ests := make([]int64, d)
	scratch := make([]int64, d)
	for v := lo; v < hi; v++ {
		for j := 0; j < d; j++ {
			ests[j] = s.counters[j*b+s.bucketOf(j, v)] * s.signOf(j, v)
		}
		est := medianScratch(ests, scratch)
		if est >= threshold || (signed && -est >= threshold) {
			out[v] = est
		}
	}
}

// medianScratch returns stats.MedianInt64(xs) using a caller-provided
// scratch buffer instead of allocating: the multiset's sorted order is
// unique, so the lower-middle element is identical whatever sort
// produces it.
func medianScratch(xs, scratch []int64) int64 {
	copy(scratch, xs)
	for i := 1; i < len(scratch); i++ {
		x := scratch[i]
		j := i - 1
		for j >= 0 && scratch[j] > x {
			scratch[j+1] = scratch[j]
			j--
		}
		scratch[j+1] = x
	}
	return scratch[(len(scratch)-1)/2]
}

// forEachTable runs fn(j) for every table index in [0, d), striped across
// at most `workers` goroutines. Rows are independent in every caller, so
// execution order cannot affect results.
func forEachTable(d, workers int, fn func(j int)) {
	w := workers
	if w > d {
		w = d
	}
	if w <= 1 {
		for j := 0; j < d; j++ {
			fn(j)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for j := start; j < d; j += w {
				fn(j)
			}
		}(i)
	}
	wg.Wait()
}

// subJoinWorkers is subJoin with per-table rows computed concurrently.
// Concurrent read-only iteration over the dense map is safe; each worker
// writes only its own rows[j] slots.
func subJoinWorkers(dense stream.FreqVector, sk *HashSketch, workers int) int64 {
	if len(dense) == 0 {
		return 0
	}
	d, b := sk.cfg.Tables, sk.cfg.Buckets
	rows := make([]int64, d)
	forEachTable(d, workers, func(j int) {
		var sum int64
		for v, w := range dense {
			sum += w * sk.counters[j*b+sk.bucketOf(j, v)] * sk.signOf(j, v)
		}
		rows[j] = sum
	})
	return stats.MedianInt64(rows)
}

// sparseSparseWorkers is sparseSparse with per-table rows computed
// concurrently.
func sparseSparseWorkers(f, g *HashSketch, workers int) int64 {
	d, b := f.cfg.Tables, f.cfg.Buckets
	rows := make([]int64, d)
	forEachTable(d, workers, func(j int) {
		var sum int64
		base := j * b
		for k := 0; k < b; k++ {
			sum += f.counters[base+k] * g.counters[base+k]
		}
		rows[j] = sum
	})
	return stats.MedianInt64(rows)
}
