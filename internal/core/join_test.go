package core

import (
	"testing"

	"skimsketch/internal/agms"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestEstimateJoinRejectsIncompatible(t *testing.T) {
	f := MustNewHashSketch(cfg(3, 8, 1))
	g := MustNewHashSketch(cfg(3, 8, 2))
	if _, err := EstimateJoin(f, g, 16, nil); err == nil {
		t.Fatal("expected pairing error")
	}
	if _, err := EstimateJoinSkimmed(f, g, nil, nil); err == nil {
		t.Fatal("expected pairing error")
	}
}

func TestEstimateJoinExactSingleValue(t *testing.T) {
	c := cfg(5, 32, 7)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	for i := 0; i < 10; i++ {
		f.Update(3, 1)
	}
	for i := 0; i < 20; i++ {
		g.Update(3, 1)
	}
	est, err := EstimateJoin(f, g, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 200 {
		t.Fatalf("Total = %d, want 200", est.Total)
	}
	// Both frequencies exceed their thresholds, so the whole join must be
	// classified dense×dense and computed exactly.
	if est.DenseDense != 200 || est.DenseSparse != 0 || est.SparseDense != 0 || est.SparseSparse != 0 {
		t.Fatalf("decomposition %+v, want pure dense×dense", est)
	}
	if est.DenseCountF != 1 || est.DenseCountG != 1 {
		t.Fatalf("dense counts %d/%d, want 1/1", est.DenseCountF, est.DenseCountG)
	}
}

func TestEstimateJoinDoesNotMutateSketches(t *testing.T) {
	c := cfg(5, 64, 9)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	zf, _ := workload.NewZipf(256, 1.2, 3)
	zg, _ := workload.NewZipf(256, 1.2, 4)
	stream.Apply(workload.MakeStream(zf, 3000), f)
	stream.Apply(workload.MakeStream(zg, 3000), g)
	fc, gc := f.Clone(), g.Clone()
	if _, err := EstimateJoin(f, g, 256, nil); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 64; k++ {
			if f.Counter(j, k) != fc.Counter(j, k) || g.Counter(j, k) != gc.Counter(j, k) {
				t.Fatal("EstimateJoin must not mutate the synopses")
			}
		}
	}
}

func TestEstimateTotalsEqualComponentSum(t *testing.T) {
	c := cfg(7, 128, 5)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	zf, _ := workload.NewZipf(1024, 1.3, 5)
	zg, _ := workload.NewZipf(1024, 1.3, 6)
	stream.Apply(workload.MakeStream(zf, 10000), f)
	stream.Apply(workload.MakeStream(zg, 10000), g)
	est, err := EstimateJoin(f, g, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != est.DenseDense+est.DenseSparse+est.SparseDense+est.SparseSparse {
		t.Fatalf("Total %d must equal component sum in %+v", est.Total, est)
	}
}

// TestPaperExample1 mirrors the worked example of Section 3: two streams
// each dominated by a couple of huge frequencies plus light mass. After
// skimming, the dense×dense part carries almost the whole join and is
// exact, so the estimate must be far more accurate than the no-skim
// bucket product at the same (tiny) space.
func TestPaperExample1(t *testing.T) {
	const domain = 1 << 12
	c := cfg(5, 64, 31)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()

	apply := func(sk *HashSketch, v stream.FreqVector, val uint64, w int64) {
		sk.Update(val, w)
		v.Update(val, w)
	}
	// Heavy shared values dominate the join.
	apply(f, fv, 10, 20000)
	apply(g, gv, 10, 15000)
	apply(f, fv, 999, 12000)
	apply(g, gv, 999, 9000)
	// Light disjoint mass.
	uf := workload.NewUniform(domain, 1)
	ug := workload.NewUniform(domain, 2)
	for i := 0; i < 3000; i++ {
		apply(f, fv, uf.Next(), 1)
		apply(g, gv, ug.Next(), 1)
	}

	exact := float64(fv.InnerProduct(gv))
	skim, err := EstimateJoin(f, g, domain, nil)
	if err != nil {
		t.Fatal(err)
	}
	noskim, err := EstimateJoin(f, g, domain, &Options{NoSkim: true})
	if err != nil {
		t.Fatal(err)
	}
	eSkim := stats.SymmetricError(float64(skim.Total), exact)
	eRaw := stats.SymmetricError(float64(noskim.Total), exact)
	if eSkim > 0.1 {
		t.Fatalf("skimmed error %.4f too large (est %d vs exact %.0f)", eSkim, skim.Total, exact)
	}
	if eSkim >= eRaw {
		t.Fatalf("skimming must win on the paper's example: skim %.4f vs raw %.4f", eSkim, eRaw)
	}
	if skim.DenseCountF < 2 || skim.DenseCountG < 2 {
		t.Fatalf("both heavy values should be extracted: %d/%d", skim.DenseCountF, skim.DenseCountG)
	}
}

func TestNoSkimOptionIsPlainBucketProduct(t *testing.T) {
	c := cfg(5, 64, 11)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	f.Update(1, 10)
	g.Update(1, 5)
	est, err := EstimateJoin(f, g, 16, &Options{NoSkim: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != 50 {
		t.Fatalf("Total = %d, want 50 (single value, exact)", est.Total)
	}
	if est.DenseCountF != 0 || est.ThresholdF != 0 {
		t.Fatalf("no-skim estimate must not report skim state: %+v", est)
	}
}

func TestExplicitThresholdsHonored(t *testing.T) {
	c := cfg(5, 64, 13)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	f.Update(1, 100)
	g.Update(1, 100)
	est, err := EstimateJoin(f, g, 16, &Options{ThresholdF: 7, ThresholdG: 9})
	if err != nil {
		t.Fatal(err)
	}
	if est.ThresholdF != 7 || est.ThresholdG != 9 {
		t.Fatalf("thresholds %d/%d not honored", est.ThresholdF, est.ThresholdG)
	}
}

// TestSkimmedBeatsBasicAGMSOnSkew is the headline claim at unit-test
// scale: at equal space, on a skewed join, the skimmed-sketch estimate is
// more accurate than basic AGMS sketching. Averaged over several seeds to
// keep the test stable.
func TestSkimmedBeatsBasicAGMSOnSkew(t *testing.T) {
	const m, n = 1 << 12, 60000
	const words = 640 // hash sketch: 5×128; AGMS: 128×5
	zf, _ := workload.NewZipf(m, 1.2, 101)
	zg, _ := workload.NewZipf(m, 1.2, 102)
	fs := workload.MakeStream(zf, n)
	gs := workload.MakeStream(workload.NewShifted(zg, 20), n)
	fv, gv := stream.NewFreqVector(), stream.NewFreqVector()
	stream.Apply(fs, fv)
	stream.Apply(gs, gv)
	exact := float64(fv.InnerProduct(gv))

	var skimErr, agmsErr float64
	const seeds = 5
	for seed := uint64(0); seed < seeds; seed++ {
		c := cfg(5, words/5, 1000+seed)
		hf := MustNewHashSketch(c)
		hg := MustNewHashSketch(c)
		af := agms.MustNew(words/5, 5, 2000+seed)
		ag := agms.MustNew(words/5, 5, 2000+seed)
		stream.Apply(fs, hf, af)
		stream.Apply(gs, hg, ag)

		est, err := EstimateJoin(hf, hg, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		skimErr += stats.SymmetricError(float64(est.Total), exact)
		a, err := agms.JoinEstimate(af, ag)
		if err != nil {
			t.Fatal(err)
		}
		agmsErr += stats.SymmetricError(float64(a), exact)
	}
	skimErr /= seeds
	agmsErr /= seeds
	t.Logf("mean symmetric error: skimmed %.4f, basic AGMS %.4f (exact J = %.0f)", skimErr, agmsErr, exact)
	if skimErr >= agmsErr {
		t.Fatalf("skimmed (%.4f) must beat basic AGMS (%.4f) on skewed data", skimErr, agmsErr)
	}
	if skimErr > 0.25 {
		t.Fatalf("skimmed error %.4f too large in absolute terms", skimErr)
	}
}

// TestJoinWithDeletesMatchesNetStream: estimates over a stream with
// insert/delete noise must match estimates over the equivalent net
// stream exactly (sketch linearity), the paper's "general updates"
// property.
func TestJoinWithDeletesMatchesNetStream(t *testing.T) {
	const m = 1 << 10
	zf, _ := workload.NewZipf(m, 1.0, 51)
	zg, _ := workload.NewZipf(m, 1.0, 52)
	fs := workload.MakeStream(zf, 8000)
	gs := workload.MakeStream(zg, 8000)
	fsNoisy := workload.WithDeletes(fs, 0.4, 1)
	gsNoisy := workload.WithDeletes(gs, 0.4, 2)

	c := cfg(5, 128, 77)
	f1 := MustNewHashSketch(c)
	g1 := MustNewHashSketch(c)
	f2 := MustNewHashSketch(c)
	g2 := MustNewHashSketch(c)
	stream.Apply(fs, f1)
	stream.Apply(gs, g1)
	stream.Apply(fsNoisy, f2)
	stream.Apply(gsNoisy, g2)

	e1, err := EstimateJoin(f1, g1, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EstimateJoin(f2, g2, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Total != e2.Total {
		t.Fatalf("delete noise changed the estimate: %d vs %d", e1.Total, e2.Total)
	}
}

// TestSubJoinEmptyDense: an empty dense vector contributes exactly zero.
func TestSubJoinEmptyDense(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 8, 1))
	s.Update(1, 5)
	if got := subJoinWorkers(stream.NewFreqVector(), s, 1); got != 0 {
		t.Fatalf("subJoinWorkers(empty) = %d", got)
	}
}

// TestEstimateJoinSkimmedComposes: manually skimming then calling
// EstimateJoinSkimmed equals EstimateJoin with the same thresholds.
func TestEstimateJoinSkimmedComposes(t *testing.T) {
	const m = 1 << 10
	c := cfg(5, 128, 99)
	f := MustNewHashSketch(c)
	g := MustNewHashSketch(c)
	zf, _ := workload.NewZipf(m, 1.4, 61)
	zg, _ := workload.NewZipf(m, 1.4, 62)
	stream.Apply(workload.MakeStream(zf, 20000), f)
	stream.Apply(workload.MakeStream(zg, 20000), g)

	tf, tg := f.DefaultSkimThreshold(), g.DefaultSkimThreshold()
	want, err := EstimateJoin(f, g, m, &Options{ThresholdF: tf, ThresholdG: tg})
	if err != nil {
		t.Fatal(err)
	}

	fs, gs := f.Clone(), g.Clone()
	fd, err := fs.SkimDense(m, tf)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := gs.SkimDense(m, tg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateJoinSkimmed(fs, gs, fd, gd)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || got.DenseDense != want.DenseDense {
		t.Fatalf("composed estimate %+v differs from direct %+v", got, want)
	}
}
