package core_test

import (
	"fmt"

	"skimsketch/internal/core"
)

// The full skimmed-sketch flow on a toy stream: sketch, skim, estimate.
func ExampleEstimateJoin() {
	cfg := core.Config{Tables: 5, Buckets: 64, Seed: 1}
	f := core.MustNewHashSketch(cfg)
	g := core.MustNewHashSketch(cfg) // same cfg ⇒ join pair

	// F: one dominant value plus light mass; G: overlapping.
	f.Update(7, 1000)
	f.Update(8, 2)
	f.Update(9, 3)
	g.Update(7, 500)
	g.Update(9, 4)

	est, err := core.EstimateJoin(f, g, 64, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("estimate:", est.Total)
	fmt.Println("dense values skimmed from F:", est.DenseCountF)
	// Output:
	// estimate: 500012
	// dense values skimmed from F: 1
}

// Point estimation (the COUNTSKETCH primitive inside SKIMDENSE).
func ExampleHashSketch_PointEstimate() {
	s := core.MustNewHashSketch(core.Config{Tables: 5, Buckets: 32, Seed: 2})
	s.Update(10, 42)
	s.Update(10, -2) // deletes fold in like any other update
	fmt.Println(s.PointEstimate(10))
	// Output: 40
}

// Sizing a sketch for a target error from the Theorem 5 shape.
func ExampleSuggestBuckets() {
	// Streams of ~1M elements, anticipated join ≈ 10⁹, target error 10%.
	b := core.SuggestBuckets(1_000_000, 1_000_000, 1_000_000_000, 0.1)
	fmt.Println(b)
	// Output: 16384
}
