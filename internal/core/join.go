package core

import (
	"fmt"

	"skimsketch/internal/stream"
)

// Estimate is the decomposed result of ESTSKIMJOINSIZE. Total is the join
// size estimate Ĵ = Ĵ_dd + Ĵ_ds + Ĵ_sd + Ĵ_ss; the components and the
// skim parameters are exposed for diagnostics, experiments and tests.
type Estimate struct {
	Total int64

	// DenseDense is Ĵ_dd, computed exactly from the two extracted dense
	// vectors (Step 2a of Section 3).
	DenseDense int64
	// DenseSparse is Ĵ_ds: F's dense frequencies against G's skimmed
	// sketch.
	DenseSparse int64
	// SparseDense is Ĵ_sd: G's dense frequencies against F's skimmed
	// sketch.
	SparseDense int64
	// SparseSparse is Ĵ_ss: the per-bucket inner product of the two
	// skimmed sketches.
	SparseSparse int64

	// ThresholdF and ThresholdG are the skim thresholds used.
	ThresholdF, ThresholdG int64
	// DenseCountF and DenseCountG are the number of dense values
	// extracted from each stream.
	DenseCountF, DenseCountG int
}

// Options tunes EstimateJoin.
type Options struct {
	// ThresholdF and ThresholdG override the skim thresholds; zero means
	// the sketch's DefaultSkimThreshold.
	ThresholdF, ThresholdG int64
	// NoSkim disables skimming entirely, reducing the estimator to the
	// plain per-bucket inner product of the raw hash sketches. This is
	// the ablation baseline showing what skimming buys.
	NoSkim bool
	// Workers parallelizes the skim's domain scan and the per-table
	// subjoin medians: > 1 uses that many goroutines, 0 or 1 runs
	// sequentially, < 0 uses one goroutine per CPU. The result is
	// bit-for-bit identical for every setting — point estimates are
	// independent reads and counter subtraction commutes — so Workers
	// trades nothing but wall-clock time.
	Workers int
}

// EstimateJoin implements procedure ESTSKIMJOINSIZE (Figure 4),
// estimating COUNT(F ⋈ G) over the value domain [0, domain) from the two
// hash sketches. The sketches must be compatible (same Config). They are
// not mutated: skimming operates on clones.
func EstimateJoin(f, g *HashSketch, domain uint64, opts *Options) (Estimate, error) {
	if !f.Compatible(g) {
		return Estimate{}, fmt.Errorf("core: sketches are not a pair (configs %+v vs %+v)", f.cfg, g.cfg)
	}
	if opts == nil {
		opts = &Options{}
	}
	workers := resolveWorkers(opts.Workers)
	if opts.NoSkim {
		ss := sparseSparseWorkers(f, g, workers)
		return Estimate{Total: ss, SparseSparse: ss}, nil
	}

	tf := opts.ThresholdF
	if tf <= 0 {
		tf = f.DefaultSkimThreshold()
	}
	tg := opts.ThresholdG
	if tg <= 0 {
		tg = g.DefaultSkimThreshold()
	}

	fs, gs := f.Clone(), g.Clone()
	fd, err := fs.skimDenseParallel(domain, tf, false, workers)
	if err != nil {
		return Estimate{}, err
	}
	gd, err := gs.skimDenseParallel(domain, tg, false, workers)
	if err != nil {
		return Estimate{}, err
	}
	return estimateFromSkimmedWorkers(fs, gs, fd, gd, tf, tg, workers), nil
}

// EstimateJoinSkimmed is the core of ESTSKIMJOINSIZE for callers that
// have already skimmed (for example via the dyadic fast skimmer): it
// combines the four subjoin estimates from the skimmed sketches and dense
// vectors. The skimmed sketches are not mutated.
func EstimateJoinSkimmed(fSkimmed, gSkimmed *HashSketch, fDense, gDense stream.FreqVector) (Estimate, error) {
	if !fSkimmed.Compatible(gSkimmed) {
		return Estimate{}, fmt.Errorf("core: sketches are not a pair (configs %+v vs %+v)", fSkimmed.cfg, gSkimmed.cfg)
	}
	return estimateFromSkimmed(fSkimmed, gSkimmed, fDense, gDense, 0, 0), nil
}

func estimateFromSkimmed(fs, gs *HashSketch, fd, gd stream.FreqVector, tf, tg int64) Estimate {
	return estimateFromSkimmedWorkers(fs, gs, fd, gd, tf, tg, 1)
}

func estimateFromSkimmedWorkers(fs, gs *HashSketch, fd, gd stream.FreqVector, tf, tg int64, workers int) Estimate {
	e := Estimate{
		ThresholdF:  tf,
		ThresholdG:  tg,
		DenseCountF: len(fd),
		DenseCountG: len(gd),
	}
	e.DenseDense = fd.InnerProduct(gd)
	e.DenseSparse = subJoinWorkers(fd, gs, workers)
	e.SparseDense = subJoinWorkers(gd, fs, workers)
	e.SparseSparse = sparseSparseWorkers(fs, gs, workers)
	e.Total = e.DenseDense + e.DenseSparse + e.SparseDense + e.SparseSparse
	return e
}

// subJoinWorkers (parallel.go) implements procedure ESTSUBJOINSIZE
// (Figure 4): the estimate of Σ_v dense_v · sparse_v as, per table j,
// Σ_{v ∈ dense} dense_v·C[j][h_j(v)]·ξ_j(v), boosted by the median over
// tables. sparseSparseWorkers estimates Σ_v f'_v·g'_v as, per table j,
// the bucket-wise inner product Σ_k F[j][k]·G[j][k] (Steps 3–7 of
// ESTSKIMJOINSIZE; the two sketches share h_j, so identical values meet
// in identical buckets), likewise median-boosted.
