package core

import (
	"fmt"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// Estimate is the decomposed result of ESTSKIMJOINSIZE. Total is the join
// size estimate Ĵ = Ĵ_dd + Ĵ_ds + Ĵ_sd + Ĵ_ss; the components and the
// skim parameters are exposed for diagnostics, experiments and tests.
type Estimate struct {
	Total int64

	// DenseDense is Ĵ_dd, computed exactly from the two extracted dense
	// vectors (Step 2a of Section 3).
	DenseDense int64
	// DenseSparse is Ĵ_ds: F's dense frequencies against G's skimmed
	// sketch.
	DenseSparse int64
	// SparseDense is Ĵ_sd: G's dense frequencies against F's skimmed
	// sketch.
	SparseDense int64
	// SparseSparse is Ĵ_ss: the per-bucket inner product of the two
	// skimmed sketches.
	SparseSparse int64

	// ThresholdF and ThresholdG are the skim thresholds used.
	ThresholdF, ThresholdG int64
	// DenseCountF and DenseCountG are the number of dense values
	// extracted from each stream.
	DenseCountF, DenseCountG int
}

// Options tunes EstimateJoin.
type Options struct {
	// ThresholdF and ThresholdG override the skim thresholds; zero means
	// the sketch's DefaultSkimThreshold.
	ThresholdF, ThresholdG int64
	// NoSkim disables skimming entirely, reducing the estimator to the
	// plain per-bucket inner product of the raw hash sketches. This is
	// the ablation baseline showing what skimming buys.
	NoSkim bool
}

// EstimateJoin implements procedure ESTSKIMJOINSIZE (Figure 4),
// estimating COUNT(F ⋈ G) over the value domain [0, domain) from the two
// hash sketches. The sketches must be compatible (same Config). They are
// not mutated: skimming operates on clones.
func EstimateJoin(f, g *HashSketch, domain uint64, opts *Options) (Estimate, error) {
	if !f.Compatible(g) {
		return Estimate{}, fmt.Errorf("core: sketches are not a pair (configs %+v vs %+v)", f.cfg, g.cfg)
	}
	if opts == nil {
		opts = &Options{}
	}
	if opts.NoSkim {
		return Estimate{Total: sparseSparse(f, g), SparseSparse: sparseSparse(f, g)}, nil
	}

	tf := opts.ThresholdF
	if tf <= 0 {
		tf = f.DefaultSkimThreshold()
	}
	tg := opts.ThresholdG
	if tg <= 0 {
		tg = g.DefaultSkimThreshold()
	}

	fs, gs := f.Clone(), g.Clone()
	fd, err := fs.SkimDense(domain, tf)
	if err != nil {
		return Estimate{}, err
	}
	gd, err := gs.SkimDense(domain, tg)
	if err != nil {
		return Estimate{}, err
	}
	return estimateFromSkimmed(fs, gs, fd, gd, tf, tg), nil
}

// EstimateJoinSkimmed is the core of ESTSKIMJOINSIZE for callers that
// have already skimmed (for example via the dyadic fast skimmer): it
// combines the four subjoin estimates from the skimmed sketches and dense
// vectors. The skimmed sketches are not mutated.
func EstimateJoinSkimmed(fSkimmed, gSkimmed *HashSketch, fDense, gDense stream.FreqVector) (Estimate, error) {
	if !fSkimmed.Compatible(gSkimmed) {
		return Estimate{}, fmt.Errorf("core: sketches are not a pair (configs %+v vs %+v)", fSkimmed.cfg, gSkimmed.cfg)
	}
	return estimateFromSkimmed(fSkimmed, gSkimmed, fDense, gDense, 0, 0), nil
}

func estimateFromSkimmed(fs, gs *HashSketch, fd, gd stream.FreqVector, tf, tg int64) Estimate {
	e := Estimate{
		ThresholdF:  tf,
		ThresholdG:  tg,
		DenseCountF: len(fd),
		DenseCountG: len(gd),
	}
	e.DenseDense = fd.InnerProduct(gd)
	e.DenseSparse = subJoin(fd, gs)
	e.SparseDense = subJoin(gd, fs)
	e.SparseSparse = sparseSparse(fs, gs)
	e.Total = e.DenseDense + e.DenseSparse + e.SparseDense + e.SparseSparse
	return e
}

// subJoin implements procedure ESTSUBJOINSIZE (Figure 4): the estimate of
// Σ_v dense_v · sparse_v as, per table j, Σ_{v ∈ dense}
// dense_v·C[j][h_j(v)]·ξ_j(v), boosted by the median over tables.
func subJoin(dense stream.FreqVector, sk *HashSketch) int64 {
	if len(dense) == 0 {
		return 0
	}
	d, b := sk.cfg.Tables, sk.cfg.Buckets
	rows := make([]int64, d)
	for j := 0; j < d; j++ {
		var sum int64
		for v, w := range dense {
			sum += w * sk.counters[j*b+sk.bucketOf(j, v)] * sk.signOf(j, v)
		}
		rows[j] = sum
	}
	return stats.MedianInt64(rows)
}

// sparseSparse estimates Σ_v f'_v·g'_v as, per table j, the bucket-wise
// inner product Σ_k F[j][k]·G[j][k] (Steps 3–7 of ESTSKIMJOINSIZE; the
// two sketches share h_j, so identical values meet in identical buckets),
// boosted by the median over tables.
func sparseSparse(f, g *HashSketch) int64 {
	d, b := f.cfg.Tables, f.cfg.Buckets
	rows := make([]int64, d)
	for j := 0; j < d; j++ {
		var sum int64
		base := j * b
		for k := 0; k < b; k++ {
			sum += f.counters[base+k] * g.counters[base+k]
		}
		rows[j] = sum
	}
	return stats.MedianInt64(rows)
}
