package core

import (
	"testing"
	"testing/quick"

	"skimsketch/internal/stream"
)

// Property-based tests (testing/quick) pinning down the algebraic
// invariants the estimator's correctness rests on: linearity of the
// sketch transform, exact invertibility of skimming, and consistency of
// the decomposed estimate.

// miniStream turns fuzz input into a bounded update stream.
func miniStream(vals []uint16, weights []int8) []stream.Update {
	us := make([]stream.Update, 0, len(vals))
	for i, v := range vals {
		w := int64(1)
		if i < len(weights) {
			w = int64(weights[i])
		}
		if w == 0 {
			w = 1
		}
		us = append(us, stream.Update{Value: uint64(v % 512), Weight: w})
	}
	return us
}

// Property: sketching is a linear map — sketch(A ++ B) = sketch(A) + sketch(B),
// for arbitrary signed update streams.
func TestQuickLinearity(t *testing.T) {
	c := cfg(3, 32, 99)
	f := func(v1 []uint16, w1 []int8, v2 []uint16, w2 []int8) bool {
		a := MustNewHashSketch(c)
		b := MustNewHashSketch(c)
		both := MustNewHashSketch(c)
		u1, u2 := miniStream(v1, w1), miniStream(v2, w2)
		stream.Apply(u1, a, both)
		stream.Apply(u2, b, both)
		if err := a.Combine(b); err != nil {
			return false
		}
		for j := 0; j < 3; j++ {
			for k := 0; k < 32; k++ {
				if a.Counter(j, k) != both.Counter(j, k) {
					return false
				}
			}
		}
		return a.NetCount() == both.NetCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: update order never matters (commutativity of the transform).
func TestQuickOrderInvariance(t *testing.T) {
	c := cfg(3, 32, 7)
	f := func(vals []uint16, weights []int8) bool {
		us := miniStream(vals, weights)
		fwd := MustNewHashSketch(c)
		rev := MustNewHashSketch(c)
		stream.Apply(us, fwd)
		for i := len(us) - 1; i >= 0; i-- {
			rev.Update(us[i].Value, us[i].Weight)
		}
		for j := 0; j < 3; j++ {
			for k := 0; k < 32; k++ {
				if fwd.Counter(j, k) != rev.Counter(j, k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Skim then Unskim restores the counters exactly, for any
// stream and any positive threshold.
func TestQuickSkimUnskimIdentity(t *testing.T) {
	c := cfg(5, 16, 3)
	f := func(vals []uint16, weights []int8, thrRaw uint8) bool {
		s := MustNewHashSketch(c)
		stream.Apply(miniStream(vals, weights), s)
		before := s.Clone()
		thr := int64(thrRaw%32) + 1
		dense, err := s.SkimDenseSigned(512, thr)
		if err != nil {
			return false
		}
		s.Unskim(dense)
		for j := 0; j < 5; j++ {
			for k := 0; k < 16; k++ {
				if s.Counter(j, k) != before.Counter(j, k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// chunkBy splits updates into consecutive chunks whose sizes are driven
// by the fuzz bytes (size = b%7 + 1, so empty and tiny chunks both occur).
func chunkBy(us []stream.Update, sizes []uint8) [][]stream.Update {
	var chunks [][]stream.Update
	i := 0
	for off := 0; off < len(us); {
		n := 1
		if len(sizes) > 0 {
			n = int(sizes[i%len(sizes)]%7) + 1
			i++
		}
		end := off + n
		if end > len(us) {
			end = len(us)
		}
		chunks = append(chunks, us[off:end])
		off = end
	}
	return chunks
}

// Property: UpdateBatch over any chunking of the stream is bit-for-bit
// identical to the sequential Update loop — same counters, same counts,
// and exactly the same skimmed-sketch estimate (components included).
func TestQuickBatchSequentialEquivalence(t *testing.T) {
	c := cfg(5, 32, 17)
	f := func(v1 []uint16, w1 []int8, v2 []uint16, w2 []int8, splits []uint8) bool {
		u1, u2 := miniStream(v1, w1), miniStream(v2, w2)
		fSeq, gSeq := MustNewHashSketch(c), MustNewHashSketch(c)
		stream.Apply(u1, fSeq)
		stream.Apply(u2, gSeq)
		fBat, gBat := MustNewHashSketch(c), MustNewHashSketch(c)
		for _, chunk := range chunkBy(u1, splits) {
			fBat.UpdateBatch(chunk)
		}
		for _, chunk := range chunkBy(u2, splits) {
			gBat.UpdateBatch(chunk)
		}
		for _, pair := range [][2]*HashSketch{{fSeq, fBat}, {gSeq, gBat}} {
			seq, bat := pair[0], pair[1]
			if seq.NetCount() != bat.NetCount() || seq.GrossCount() != bat.GrossCount() {
				return false
			}
			for j := 0; j < 5; j++ {
				for k := 0; k < 32; k++ {
					if seq.Counter(j, k) != bat.Counter(j, k) {
						return false
					}
				}
			}
		}
		// Exact equality of the full decomposed estimate, skim included.
		estSeq, err1 := EstimateJoin(fSeq, gSeq, 512, nil)
		estBat, err2 := EstimateJoin(fBat, gBat, 512, nil)
		if err1 != nil || err2 != nil || estSeq != estBat {
			return false
		}
		// And of the no-skim (raw bucket inner product) estimate.
		rawSeq, err1 := EstimateJoin(fSeq, gSeq, 512, &Options{NoSkim: true})
		rawBat, err2 := EstimateJoin(fBat, gBat, 512, &Options{NoSkim: true})
		return err1 == nil && err2 == nil && rawSeq == rawBat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ApplyBatched is equivalent to Apply for any batch size,
// including batch sizes larger than the stream.
func TestQuickApplyBatchedEquivalence(t *testing.T) {
	c := cfg(3, 16, 23)
	f := func(vals []uint16, weights []int8, bsRaw uint8) bool {
		us := miniStream(vals, weights)
		bs := int(bsRaw % 40) // 0 means one chunk
		seq, bat := MustNewHashSketch(c), MustNewHashSketch(c)
		stream.Apply(us, seq)
		stream.ApplyBatched(us, bs, bat)
		for j := 0; j < 3; j++ {
			for k := 0; k < 16; k++ {
				if seq.Counter(j, k) != bat.Counter(j, k) {
					return false
				}
			}
		}
		return seq.NetCount() == bat.NetCount() && seq.GrossCount() == bat.GrossCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the estimate's Total always equals the sum of its reported
// components, and the no-skim estimate is pure sparse×sparse.
func TestQuickDecompositionConsistency(t *testing.T) {
	c := cfg(3, 16, 11)
	f := func(v1 []uint16, w1 []int8, v2 []uint16, w2 []int8) bool {
		fs := MustNewHashSketch(c)
		gs := MustNewHashSketch(c)
		stream.Apply(miniStream(v1, w1), fs)
		stream.Apply(miniStream(v2, w2), gs)
		est, err := EstimateJoin(fs, gs, 512, nil)
		if err != nil {
			return false
		}
		if est.Total != est.DenseDense+est.DenseSparse+est.SparseDense+est.SparseSparse {
			return false
		}
		raw, err := EstimateJoin(fs, gs, 512, &Options{NoSkim: true})
		if err != nil {
			return false
		}
		return raw.Total == raw.SparseSparse && raw.DenseDense == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary sketch states exactly.
func TestQuickMarshalRoundTrip(t *testing.T) {
	c := cfg(3, 16, 5)
	f := func(vals []uint16, weights []int8) bool {
		s := MustNewHashSketch(c)
		stream.Apply(miniStream(vals, weights), s)
		blob, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		var r HashSketch
		if err := r.UnmarshalBinary(blob); err != nil {
			return false
		}
		for j := 0; j < 3; j++ {
			for k := 0; k < 16; k++ {
				if s.Counter(j, k) != r.Counter(j, k) {
					return false
				}
			}
		}
		return r.NetCount() == s.NetCount() && r.GrossCount() == s.GrossCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-value stream is always estimated exactly, whatever
// its (non-zero) frequency — ξ(v)² = 1 makes collisions irrelevant when
// only one value exists.
func TestQuickSingleValueExact(t *testing.T) {
	c := cfg(5, 8, 13)
	f := func(vRaw uint16, wRaw int8) bool {
		v := uint64(vRaw)
		w := int64(wRaw)
		if w == 0 {
			w = 3
		}
		s := MustNewHashSketch(c)
		s.Update(v, w)
		return s.PointEstimate(v) == w && s.SelfJoinEstimate() == w*w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
