package core

import (
	"testing"

	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func TestEstimateSelfJoinExactSingleValue(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 64, 3))
	s.Update(9, 12)
	d, err := s.EstimateSelfJoin(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 144 {
		t.Fatalf("Total = %d, want 144", d.Total)
	}
	if d.DenseDense != 144 || d.DenseSparse != 0 || d.SparseSparse != 0 {
		t.Fatalf("decomposition %+v, want pure dense", d)
	}
	if d.DenseCount != 1 {
		t.Fatalf("DenseCount = %d", d.DenseCount)
	}
}

func TestEstimateSelfJoinNoSkim(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 64, 3))
	s.Update(9, 12)
	d, err := s.EstimateSelfJoin(32, &SelfJoinEstimateOpts{NoSkim: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 144 || d.DenseCount != 0 {
		t.Fatalf("NoSkim decomposition %+v", d)
	}
}

func TestEstimateSelfJoinDoesNotMutate(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 64, 7))
	z, _ := workload.NewZipf(256, 1.3, 3)
	stream.Apply(workload.MakeStream(z, 5000), s)
	before := s.Clone()
	if _, err := s.EstimateSelfJoin(256, nil); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 64; k++ {
			if s.Counter(j, k) != before.Counter(j, k) {
				t.Fatal("EstimateSelfJoin must not mutate the sketch")
			}
		}
	}
}

// TestSkimmedSelfJoinBeatsRawOnSkew: on a heavily skewed stream with a
// small sketch, the skimmed F2 estimate must be more accurate than the
// raw bucket-square estimate on average.
func TestSkimmedSelfJoinBeatsRawOnSkew(t *testing.T) {
	const m, n = 1 << 12, 50000
	z, _ := workload.NewZipf(m, 1.5, 17)
	updates := workload.MakeStream(z, n)
	f := stream.NewFreqVector()
	stream.Apply(updates, f)
	exact := float64(f.SelfJoinSize())

	var skimErr, rawErr float64
	const seeds = 5
	for seed := uint64(0); seed < seeds; seed++ {
		s := MustNewHashSketch(cfg(5, 64, 100+seed))
		stream.Apply(updates, s)
		d, err := s.EstimateSelfJoin(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		skimErr += stats.SymmetricError(float64(d.Total), exact)
		rawErr += stats.SymmetricError(float64(s.SelfJoinEstimate()), exact)
	}
	skimErr /= seeds
	rawErr /= seeds
	t.Logf("skimmed F2 err %.4f vs raw %.4f", skimErr, rawErr)
	if skimErr >= rawErr {
		t.Fatalf("skimmed F2 (%.4f) must beat raw (%.4f) at high skew", skimErr, rawErr)
	}
	if skimErr > 0.2 {
		t.Fatalf("skimmed F2 error %.4f too large", skimErr)
	}
}

func TestEstimateSelfJoinBadThreshold(t *testing.T) {
	s := MustNewHashSketch(cfg(3, 8, 1))
	s.Update(1, 5)
	// Explicit negative threshold resolves to the default rather than
	// erroring (0 and negatives mean "auto").
	if _, err := s.EstimateSelfJoin(16, &SelfJoinEstimateOpts{Threshold: -1}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorBoundAndSuggestBuckets(t *testing.T) {
	c := cfg(5, 1024, 1)
	if got := c.ErrorBound(1000, 2000); got != 1000.0*2000.0/1024.0 {
		t.Fatalf("ErrorBound = %v", got)
	}
	if got := c.ErrorBound(-1000, 2000); got != 1000.0*2000.0/1024.0 {
		t.Fatalf("ErrorBound must use magnitudes, got %v", got)
	}
	// Need n_f·n_g/(ε·J) = 1e6·1e6/(0.1·1e9) = 10000 → next pow2 = 16384.
	if got := SuggestBuckets(1000000, 1000000, 1000000000, 0.1); got != 16384 {
		t.Fatalf("SuggestBuckets = %d, want 16384", got)
	}
	if got := SuggestBuckets(10, 10, 0, 0.1); got != 1 {
		t.Fatalf("SuggestBuckets with zero join = %d, want 1", got)
	}
	if got := SuggestBuckets(10, 10, 100, 0); got != 1 {
		t.Fatalf("SuggestBuckets with zero target = %d, want 1", got)
	}
}

func TestDenseEnergyFraction(t *testing.T) {
	s := MustNewHashSketch(cfg(7, 256, 5))
	s.Update(3, 10000)
	u := workload.NewUniform(1024, 1)
	for i := 0; i < 2000; i++ {
		s.Update(u.Next(), 1)
	}
	frac := s.DenseEnergyFraction(1024, 0)
	if frac < 0.9 || frac > 1.0 {
		t.Fatalf("dense energy fraction %.3f; a single huge value should dominate", frac)
	}
	empty := MustNewHashSketch(cfg(3, 8, 1))
	if got := empty.DenseEnergyFraction(8, 0); got != 0 {
		t.Fatalf("empty sketch fraction = %v", got)
	}
}

func TestDenseValuesReadOnly(t *testing.T) {
	s := MustNewHashSketch(cfg(5, 64, 9))
	s.Update(7, 500)
	before := s.Clone()
	d := s.DenseValues(16, 0)
	if d[7] != 500 {
		t.Fatalf("DenseValues = %v", d)
	}
	for j := 0; j < 5; j++ {
		for k := 0; k < 64; k++ {
			if s.Counter(j, k) != before.Counter(j, k) {
				t.Fatal("DenseValues must not mutate the sketch")
			}
		}
	}
}
