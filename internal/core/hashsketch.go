// Package core implements the paper's contribution: the hash-sketch data
// structure (Section 4.1), the SKIMDENSE dense-frequency extraction
// procedure (Section 4.2, Figure 3), and the ESTSKIMJOINSIZE skimmed-
// sketch join-size estimator (Section 4.3, Figure 4).
//
// A HashSketch is an array of d hash tables with b buckets each. Each
// bucket holds a single AGMS atomic-sketch counter over the stream
// elements that hash into it, so processing one stream element updates
// exactly one counter per table — O(d) work, versus O(s1·s2) for basic
// AGMS sketching at comparable space. With d = O(log 1/δ) this is the
// "guaranteed logarithmic processing time per stream element" of the
// paper.
//
// Two hash sketches participating in a join must be built from the same
// Config (identical d, b and seed) so that they share the bucket hashes
// h_j and the ±1 families ξ_j; sketches built from equal Configs are
// guaranteed to do so because all randomness is derived deterministically
// from the seed.
package core

import (
	"fmt"
	"math"

	"skimsketch/internal/hashfam"
	"skimsketch/internal/stats"
	"skimsketch/internal/stream"
)

// Config describes a hash sketch.
type Config struct {
	// Tables is d, the number of hash tables. Estimates are medians over
	// tables, so an odd value is recommended (and what the paper's
	// s2 ∈ {11, ..., 59} grid uses).
	Tables int
	// Buckets is b, the number of buckets per table.
	Buckets int
	// Seed derives every hash family. Sketches that will be joined must
	// share it.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Tables <= 0 {
		return fmt.Errorf("core: Tables must be positive, got %d", c.Tables)
	}
	if c.Buckets <= 0 {
		return fmt.Errorf("core: Buckets must be positive, got %d", c.Buckets)
	}
	return nil
}

// HashSketch is the d × b counter structure of Section 4.1.
type HashSketch struct {
	cfg      Config
	counters []int64 // row-major: counters[j*b + k] is bucket k of table j
	hs       []hashfam.Pairwise
	xs       []hashfam.FourWise
	net      int64 // Σ weights: the net stream size n for insert-only streams
	gross    int64 // Σ |weights|: total update volume
}

// NewHashSketch returns an empty hash sketch for the configuration.
func NewHashSketch(cfg Config) (*HashSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ss := hashfam.NewSeedStream(cfg.Seed)
	hs := make([]hashfam.Pairwise, cfg.Tables)
	xs := make([]hashfam.FourWise, cfg.Tables)
	for j := 0; j < cfg.Tables; j++ {
		hs[j] = hashfam.NewPairwise(ss)
		xs[j] = hashfam.NewFourWise(ss)
	}
	return &HashSketch{
		cfg:      cfg,
		counters: make([]int64, cfg.Tables*cfg.Buckets),
		hs:       hs,
		xs:       xs,
	}, nil
}

// MustNewHashSketch is NewHashSketch for static configurations.
func MustNewHashSketch(cfg Config) *HashSketch {
	s, err := NewHashSketch(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Update folds one stream element into the sketch, touching one counter
// per table. It implements stream.Sink. Negative weights are deletes;
// arbitrary weights carry SUM semantics.
func (s *HashSketch) Update(value uint64, weight int64) {
	b := s.cfg.Buckets
	for j := 0; j < s.cfg.Tables; j++ {
		k := s.hs[j].Bucket(value, b)
		s.counters[j*b+k] += weight * s.xs[j].Sign(value)
	}
	s.net += weight
	if weight < 0 {
		s.gross -= weight
	} else {
		s.gross += weight
	}
}

// UpdateBatch folds a whole batch of stream elements into the sketch. It
// is bit-for-bit equivalent to calling Update once per element (int64
// addition is exact, commutative and associative, so applying the batch
// table-by-table reorders only additions) but amortizes the per-update
// overhead: the hash families and the table's counter row are hoisted out
// of the inner loop, and the net/gross tallies are folded once per batch.
// It implements stream.BatchSink.
func (s *HashSketch) UpdateBatch(batch []stream.Update) {
	b := s.cfg.Buckets
	for j := 0; j < s.cfg.Tables; j++ {
		h, x := s.hs[j], s.xs[j]
		row := s.counters[j*b : (j+1)*b]
		for _, u := range batch {
			row[h.Bucket(u.Value, b)] += u.Weight * x.Sign(u.Value)
		}
	}
	var net, gross int64
	for _, u := range batch {
		net += u.Weight
		if u.Weight < 0 {
			gross -= u.Weight
		} else {
			gross += u.Weight
		}
	}
	s.net += net
	s.gross += gross
}

// Config returns the sketch configuration.
func (s *HashSketch) Config() Config { return s.cfg }

// Words returns the synopsis size in counter words (d·b), the unit used
// for space accounting in the experiments.
func (s *HashSketch) Words() int { return s.cfg.Tables * s.cfg.Buckets }

// NetCount returns Σ weights, i.e. the net stream size n for insert-only
// streams.
func (s *HashSketch) NetCount() int64 { return s.net }

// GrossCount returns Σ |weights|, the total update volume.
func (s *HashSketch) GrossCount() int64 { return s.gross }

// Compatible reports whether two sketches share a configuration (and
// hence hash families) and may be joined or combined.
func (s *HashSketch) Compatible(o *HashSketch) bool { return s.cfg == o.cfg }

// PointEstimateTable returns table j's estimate of f_v, the product
// C[j][h_j(v)]·ξ_j(v) of the COUNTSKETCH point estimator.
func (s *HashSketch) PointEstimateTable(j int, v uint64) int64 {
	k := s.hs[j].Bucket(v, s.cfg.Buckets)
	return s.counters[j*s.cfg.Buckets+k] * s.xs[j].Sign(v)
}

// PointEstimate returns the boosted estimate of f_v: the median over
// tables of the per-table estimates (Step 5 of SKIMDENSE). Its additive
// error is O(‖f‖₂/√b) with probability 1 − 2^{−Ω(d)}.
func (s *HashSketch) PointEstimate(v uint64) int64 {
	ests := make([]int64, s.cfg.Tables)
	for j := range ests {
		ests[j] = s.PointEstimateTable(j, v)
	}
	return stats.MedianInt64(ests)
}

// SelfJoinEstimate estimates F2 = Σ f_v² as the median over tables of the
// per-table sum of squared bucket counters. (Splitting the domain across
// buckets plays the variance-reduction role that averaging s1 copies
// plays in basic AGMS.)
func (s *HashSketch) SelfJoinEstimate() int64 {
	b := s.cfg.Buckets
	rows := make([]int64, s.cfg.Tables)
	for j := 0; j < s.cfg.Tables; j++ {
		var sum int64
		for k := 0; k < b; k++ {
			c := s.counters[j*b+k]
			sum += c * c
		}
		rows[j] = sum
	}
	return stats.MedianInt64(rows)
}

// DefaultSkimThreshold returns the extraction threshold the estimator
// uses when none is supplied: T = ⌈n/√b⌉ with n the net stream size,
// the Θ(n/√b) choice of Sections 3–4 under which every residual
// frequency is O(n/√b) with high probability.
func (s *HashSketch) DefaultSkimThreshold() int64 {
	n := s.net
	if n < 0 {
		n = -n
	}
	t := int64(math.Ceil(float64(n) / math.Sqrt(float64(s.cfg.Buckets))))
	if t < 1 {
		t = 1
	}
	return t
}

// Clone returns a deep copy (used so that estimation-time skimming never
// mutates the maintained synopsis).
func (s *HashSketch) Clone() *HashSketch {
	c := *s
	c.counters = make([]int64, len(s.counters))
	copy(c.counters, s.counters)
	return &c
}

// Combine adds o into s (sketch linearity): the result summarizes the
// concatenation of the two input streams.
func (s *HashSketch) Combine(o *HashSketch) error {
	if !s.Compatible(o) {
		return fmt.Errorf("core: cannot combine sketches with different configs (%+v vs %+v)", s.cfg, o.cfg)
	}
	for i := range s.counters {
		s.counters[i] += o.counters[i]
	}
	s.net += o.net
	s.gross += o.gross
	return nil
}

// Reset zeroes the counters and counts, keeping the hash families.
func (s *HashSketch) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
	s.net, s.gross = 0, 0
}

// Counter exposes the raw counter of bucket k in table j for tests and
// diagnostics.
func (s *HashSketch) Counter(j, k int) int64 {
	return s.counters[j*s.cfg.Buckets+k]
}

// bucketOf returns h_j(v); it is used by the skimming and subjoin code.
func (s *HashSketch) bucketOf(j int, v uint64) int {
	return s.hs[j].Bucket(v, s.cfg.Buckets)
}

// signOf returns ξ_j(v).
func (s *HashSketch) signOf(j int, v uint64) int64 {
	return s.xs[j].Sign(v)
}
