package core

import (
	"fmt"

	"skimsketch/internal/stream"
)

// SkimDense implements procedure SKIMDENSE (Figure 3): it extracts every
// domain value whose estimated |frequency| is at least threshold into the
// returned dense frequency vector, and subtracts those estimates from the
// sketch's counters (Steps 8–9), leaving a *skimmed* sketch that reflects
// only the residual (sparse) frequencies. With threshold T = Θ(n/√b) the
// paper's Theorem 4 gives, with high probability, residual frequencies
// all below 2T and no larger than the originals.
//
// Like the paper's Step 6, only values with estimate ≥ threshold are
// extracted: frequencies in the stream model are non-negative, so a large
// *negative* estimate can only be collision noise, and extracting it
// would plant a phantom frequency in the residual that corrupts the
// subjoin estimates. Streams whose net frequencies are genuinely negative
// (delete-heavy reconciliation feeds) should use SkimDenseSigned.
//
// This is the reference O(m·d) implementation that scans the whole domain
// [0, domain); package dyadic provides the O(b·d·log m) dyadic-interval
// variant of Section 4.2 and tests verify the two extract identical dense
// sets, and SkimDenseParallel partitions this scan across goroutines with
// bit-identical results. The sketch is mutated; callers who need to
// preserve the synopsis should Clone first (EstimateJoin does).
func (s *HashSketch) SkimDense(domain uint64, threshold int64) (stream.FreqVector, error) {
	return s.skimDense(domain, threshold, false)
}

// SkimDenseSigned is SkimDense extracting dense frequencies of either
// sign (|estimate| ≥ threshold), for streams whose net frequencies can be
// negative. On insert-dominated streams prefer SkimDense: the two-sided
// test admits collision phantoms that the one-sided test rejects.
func (s *HashSketch) SkimDenseSigned(domain uint64, threshold int64) (stream.FreqVector, error) {
	return s.skimDense(domain, threshold, true)
}

func (s *HashSketch) skimDense(domain uint64, threshold int64, signed bool) (stream.FreqVector, error) {
	return s.skimDenseParallel(domain, threshold, signed, 1)
}

func errSkimThreshold(threshold int64) error {
	return fmt.Errorf("core: skim threshold must be positive, got %d", threshold)
}

// SkimValues performs the (one-sided) extraction test and counter
// subtraction for an explicit candidate set instead of a full domain
// scan. It is the back-end shared with the dyadic skimmer, which
// discovers the candidates by descending the interval hierarchy.
func (s *HashSketch) SkimValues(candidates []uint64, threshold int64) (stream.FreqVector, error) {
	if threshold <= 0 {
		return nil, errSkimThreshold(threshold)
	}
	dense := stream.NewFreqVector()
	for _, v := range candidates {
		if _, seen := dense[v]; seen {
			continue
		}
		if est := s.PointEstimate(v); est >= threshold {
			dense[v] = est
		}
	}
	s.subtract(dense)
	return dense, nil
}

// Subtract removes a dense estimate vector from the owning bucket of
// every table, preserving sketch linearity: afterwards the counters
// summarize the residual frequency vector f − f̂_dense. SkimDense and
// SkimValues call it internally; the dyadic skimmer also uses it to keep
// its higher-level sketches consistent after an extraction.
func (s *HashSketch) Subtract(dense stream.FreqVector) {
	s.subtract(dense)
}

func (s *HashSketch) subtract(dense stream.FreqVector) {
	b := s.cfg.Buckets
	for v, w := range dense {
		for j := 0; j < s.cfg.Tables; j++ {
			k := s.bucketOf(j, v)
			s.counters[j*b+k] -= w * s.signOf(j, v)
		}
	}
}

// Unskim adds a previously extracted dense vector back into the sketch,
// restoring the pre-skim state exactly (the inverse of Steps 8–9). It is
// the cheap alternative to Clone when a caller wants to reuse one sketch
// across repeated estimates.
func (s *HashSketch) Unskim(dense stream.FreqVector) {
	b := s.cfg.Buckets
	for v, w := range dense {
		for j := 0; j < s.cfg.Tables; j++ {
			k := s.bucketOf(j, v)
			s.counters[j*b+k] += w * s.signOf(j, v)
		}
	}
}
