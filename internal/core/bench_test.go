package core

import (
	"testing"

	"skimsketch/internal/stream"
	"skimsketch/internal/workload"
)

func benchSketch(b *testing.B, c Config, n int) *HashSketch {
	b.Helper()
	s := MustNewHashSketch(c)
	z, _ := workload.NewZipf(1<<14, 1.2, 1)
	stream.Apply(workload.MakeStream(z, n), s)
	return s
}

func BenchmarkUpdate(b *testing.B) {
	s := MustNewHashSketch(cfg(7, 1024, 1))
	z, _ := workload.NewZipf(1<<14, 1.2, 1)
	vs := make([]uint64, 4096)
	for i := range vs {
		vs[i] = z.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vs[i&4095], 1)
	}
}

// BenchmarkUpdateBatch measures the amortized per-element cost of the
// batched update path; compare ns per update against BenchmarkUpdate for
// the batching win at identical bit-for-bit results.
func BenchmarkUpdateBatch(b *testing.B) {
	s := MustNewHashSketch(cfg(7, 1024, 1))
	z, _ := workload.NewZipf(1<<14, 1.2, 1)
	batch := workload.MakeStream(z, 256)
	b.SetBytes(int64(len(batch)) * 16) // one Update{uint64,int64} per element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateBatch(batch)
	}
	b.ReportMetric(float64(b.N)*float64(len(batch))/b.Elapsed().Seconds(), "updates/sec")
}

func BenchmarkPointEstimate7Tables(b *testing.B) {
	s := benchSketch(b, cfg(7, 1024, 1), 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PointEstimate(uint64(i & 16383))
	}
}

func BenchmarkSelfJoinEstimate(b *testing.B) {
	s := benchSketch(b, cfg(7, 1024, 1), 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SelfJoinEstimate()
	}
}

func BenchmarkSkimDense(b *testing.B) {
	s := benchSketch(b, cfg(7, 1024, 1), 100000)
	thr := s.DefaultSkimThreshold()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.Clone()
		if _, err := c.SkimDense(1<<14, thr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateJoin(b *testing.B) {
	f := benchSketch(b, cfg(7, 1024, 9), 100000)
	g := benchSketch(b, cfg(7, 1024, 9), 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateJoin(f, g, 1<<14, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEstimateJoin1M measures the full skimmed-join estimate over a
// ≥1M-value domain, the regime where the O(m·d) skim scan dominates and
// the parallel scan pays. Compare the Workers variants for the query-path
// speedup; outputs are bit-identical by TestQuickEstimateJoinWorkers-
// Equivalence, so only wall-clock differs.
func benchEstimateJoin1M(b *testing.B, workers int) {
	const domain = 1 << 20
	c := cfg(7, 1024, 9)
	f, g := MustNewHashSketch(c), MustNewHashSketch(c)
	z1, _ := workload.NewZipf(domain, 1.2, 1)
	z2, _ := workload.NewZipf(domain, 1.2, 2)
	stream.Apply(workload.MakeStream(z1, 200000), f)
	stream.Apply(workload.MakeStream(z2, 200000), g)
	opts := &Options{Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateJoin(f, g, domain, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateJoin1MSequential(b *testing.B) { benchEstimateJoin1M(b, 1) }
func BenchmarkEstimateJoin1MWorkers2(b *testing.B)   { benchEstimateJoin1M(b, 2) }
func BenchmarkEstimateJoin1MWorkers4(b *testing.B)   { benchEstimateJoin1M(b, 4) }

func BenchmarkClone(b *testing.B) {
	s := benchSketch(b, cfg(7, 1024, 1), 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Clone()
	}
}

func BenchmarkMarshalRoundTrip(b *testing.B) {
	s := benchSketch(b, cfg(7, 1024, 1), 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := s.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var r HashSketch
		if err := r.UnmarshalBinary(blob); err != nil {
			b.Fatal(err)
		}
	}
}
